#!/usr/bin/env python
"""Docs gate for CI: public docstrings present, markdown links resolve.

Two checks, both hard failures:

1. **Docstrings.**  Imports :mod:`repro` and verifies every name in
   ``repro.__all__`` plus the documented batched primitives (the API
   surface ``docs/architecture.md`` describes) carries a docstring.
2. **Links.**  Every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file (anchors are stripped;
   external ``http(s)`` links are not fetched).

Run from the repo root: ``PYTHONPATH=src python tools/check_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: attribute paths (under the repro package) whose docstrings are part of
#: the documented contract — the batched primitives and the sweep API.
DOCUMENTED_NAMES = [
    "flash.block.FlashBlock.read_pages",
    "flash.block.FlashBlock.page_error_counts",
    "flash.block.FlashBlock.threshold_sweep_counts",
    "flash.block.FlashBlock.block_voltages",
    "flash.block.FlashBlock.invalidate_voltage_cache",
    "flash.block.FlashBlock.record_retry_sweep",
    "controller.executor.BlockGroupExecutor",
    "controller.executor.SerialExecutor",
    "controller.executor.ThreadedExecutor",
    "controller.executor.ProcessExecutor",
    "controller.executor.ProcessExecutor.process_map",
    "controller.executor.resolve_executor",
    "controller.backends.FlashChipBackend.flush_programs",
    "flash.arena.BlockStore",
    "flash.arena.SlabLayout",
    "flash.block.FlashBlock.attach",
    "rng.block_spawn_key",
    "workloads.trace_cache.generated_trace",
    "workloads.trace_cache.warm_trace_cache",
    "workloads.trace_cache.enable_disk_tier",
    "ecc.decoder.EccDecoder.decode_pages",
    "ecc.decoder.EccDecoder.check_pages",
    "controller.backends.FlashChipBackend.on_reads",
    "controller.ftl.PageMappingFtl.relocate_block",
    "controller.factory.run_scenario",
    "controller.factory.build_engine",
    "rng.spawn_key",
    "workloads.grid.Scenario",
    "workloads.grid.ScenarioGrid",
    "workloads.suites.suite_grid",
    "parallel.runner.SweepRunner",
    "parallel.runner.SweepRunner.run",
    "parallel.runner.SweepRunner.map",
    "parallel.results.ScenarioResult",
    "parallel.results.SweepReport",
]

MARKDOWN_FILES = ["README.md", "docs/architecture.md", "ROADMAP.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _resolve(path: str):
    import repro

    obj = repro
    for part in path.split("."):
        obj = getattr(obj, part)
    return obj


def check_docstrings() -> list[str]:
    import repro

    problems = []
    for name in repro.__all__:
        if name == "__version__":
            continue
        obj = getattr(repro, name, None)
        if obj is None:
            problems.append(f"repro.{name}: exported but missing")
        elif not isinstance(obj, (int, float, str)) and not getattr(
            obj, "__doc__", None
        ):
            problems.append(f"repro.{name}: missing docstring")
    for path in DOCUMENTED_NAMES:
        try:
            obj = _resolve(path)
        except AttributeError as exc:
            problems.append(f"repro.{path}: cannot resolve ({exc})")
            continue
        if not getattr(obj, "__doc__", None):
            problems.append(f"repro.{path}: missing docstring")
    return problems


def check_links() -> list[str]:
    problems = []
    for name in MARKDOWN_FILES:
        source = REPO / name
        if not source.exists():
            problems.append(f"{name}: file missing")
            continue
        for target in _LINK.findall(source.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue  # pure in-page anchor
            if not (source.parent / relative).exists():
                problems.append(f"{name}: broken link -> {target}")
    return problems


def main() -> int:
    problems = check_docstrings() + check_links()
    if problems:
        print("docs check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"docs check OK: {len(DOCUMENTED_NAMES)} documented names, "
        f"links resolve in {', '.join(MARKDOWN_FILES)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
