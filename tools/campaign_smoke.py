"""CI smoke: campaigns survive worker crashes, parent SIGKILLs, and
elastic-worker deaths.

Drives the real ``python -m repro.sweep`` CLI end to end through two
recovery stories, deterministically:

**Kill-and-resume** (``--campaign`` + ``--resume``):

1. Launch a small campaign with two faults armed through the
   :mod:`repro.testing.faults` env hooks: scenario *k* hard-crashes its
   first attempt (``--on-failure retry:2`` must retry it), and the last
   scenario hangs forever (so the parent is provably mid-campaign).
2. Poll the result store until every non-hung scenario has landed
   durably, then SIGKILL the campaign's whole process group — the
   unceremonious end of a host.
3. Re-run the same CLI command with ``--resume`` and no faults armed,
   plus ``--serial-check``: the resumed campaign must complete only the
   missing scenario and the merged report must be bit-identical to the
   uninterrupted in-process serial reference.

**Elastic reclaim** (``--elastic``, no shard arithmetic):

1. Start elastic worker A with a hang fault on the first scenario and a
   short lease TTL: A claims batch ``b00000`` and is pinned mid-lease,
   heartbeating but never finishing.
2. Start elastic worker B (no faults) over the *same* store with
   ``--serial-check``: B completes every other batch, then spins on
   ``b00000`` — held live by A's heartbeats.
3. SIGKILL A's process group mid-lease.  B reclaims the batch once the
   heartbeat lapses (with a higher fencing token), finishes the grid,
   and its serial check must pass bit-for-bit.

The elastic story runs with ``--trace`` armed, so it doubles as the
telemetry acceptance check: the merged trace (including A's torn,
SIGKILL'd files) must pass ``tools/trace_validate.py`` with spans for
every scenario attempt, lease claim/renew, and compaction step; the
reclaim must be visible as a ``lease.claim`` span with ``takeover`` and
a fencing token >= 2; and ``--status --json`` must agree with the
store's own counts exactly.

Exit code 0 means both stories held, including the crash attempt in
the failure ledger and the fenced re-claim in the lease file.

Run from the repo root: ``PYTHONPATH=src python tools/campaign_smoke.py``.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.parallel.store import ResultStore  # noqa: E402
from repro.testing.faults import ENV_FAULTS, ENV_STATE  # noqa: E402
from repro.workloads.grid import GeometrySpec, ScenarioGrid  # noqa: E402
from repro.workloads.suites import WORKLOAD_SUITE  # noqa: E402

SEEDS = 3
ARGV = [
    sys.executable, "-m", "repro.sweep",
    "--workloads", "web_0",
    "--seeds", str(SEEDS),
    "--days", "0.02",
    "--blocks", "64", "--pages-per-block", "64",
    "--on-failure", "retry:2",
    "--workers", "2",
    "--resume",
]


def scenario_ids() -> list[str]:
    grid = ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
        seeds=SEEDS,
        duration_days=0.02,
    )
    return [s.scenario_id for s in grid]


def kill_resume_smoke() -> int:
    ids = scenario_ids()
    crash_target, hang_target = ids[1], ids[-1]
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        env = dict(
            os.environ,
            **{
                ENV_FAULTS: f"crash:1:{crash_target};hang:*:{hang_target}",
                ENV_STATE: str(Path(tmp) / "faults"),
            },
        )
        print(f"[1/3] campaign with crash@{crash_target} hang@{hang_target}")
        process = subprocess.Popen(
            ARGV + ["--campaign", str(store)],
            env=env,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 300
            expected = set(ids) - {hang_target}
            while ResultStore(store).scenario_ids() != expected:
                if process.poll() is not None:
                    print("FAIL: campaign exited before the kill")
                    return 1
                if time.monotonic() > deadline:
                    print("FAIL: campaign made no progress before the kill")
                    return 1
                time.sleep(0.2)
        finally:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            process.wait()
        print(f"[2/3] SIGKILL'd campaign with {len(expected)}/{len(ids)} stored")
        ledger = ResultStore(store).failures()
        if not any(entry["kind"] == "worker-death" for entry in ledger):
            print(f"FAIL: injected crash not in the failure ledger: {ledger}")
            return 1
        print("[3/3] resume without faults, with --serial-check")
        resumed = subprocess.run(ARGV + ["--campaign", str(store), "--serial-check"])
        if resumed.returncode != 0:
            print("FAIL: resumed campaign (or its serial check) failed")
            return 1
        stored = ResultStore(store).scenario_ids()
        if stored != set(ids):
            print(f"FAIL: resumed store incomplete: {sorted(stored)}")
            return 1
    print("campaign kill-and-resume smoke: OK")
    return 0


def elastic_smoke() -> int:
    from repro.parallel.leases import LeaseLedger

    ids = sorted(scenario_ids())
    hang_target = ids[0]  # sorted ids, batch size 1 -> batch b00000
    lease_ttl = "2.0"
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        elastic_argv = [
            sys.executable, "-m", "repro.sweep",
            "--workloads", "web_0",
            "--seeds", str(SEEDS),
            "--days", "0.02",
            "--blocks", "64", "--pages-per-block", "64",
            "--campaign", str(store),
            "--elastic", "--lease-batch", "1", "--lease-ttl", lease_ttl,
            "--trace",
        ]
        env_a = dict(os.environ, **{ENV_FAULTS: f"hang:*:{hang_target}"})
        print(f"[1/4] elastic worker A pinned mid-lease (hang@{hang_target})")
        worker_a = subprocess.Popen(
            elastic_argv + ["--worker-name", "wA", "--workers", "1"],
            env=env_a,
            start_new_session=True,
        )
        worker_b = None
        try:
            deadline = time.monotonic() + 300
            claims = store / "leases" / "b00000.jsonl"
            while not claims.exists():
                if worker_a.poll() is not None:
                    print("FAIL: worker A exited before claiming its lease")
                    return 1
                if time.monotonic() > deadline:
                    print("FAIL: worker A never claimed a lease")
                    return 1
                time.sleep(0.1)
            print("[2/4] elastic worker B joins the same store")
            worker_b = subprocess.Popen(
                elastic_argv + ["--worker-name", "wB", "--workers", "2",
                                "--serial-check"],
                start_new_session=True,
            )
            # B drains every batch except A's; A heartbeats but never
            # finishes (its only scenario hangs).
            others = set(ids) - {hang_target}
            while ResultStore(store).scenario_ids() != others:
                for name, worker in (("A", worker_a), ("B", worker_b)):
                    if worker.poll() is not None:
                        print(f"FAIL: worker {name} exited prematurely")
                        return 1
                if time.monotonic() > deadline:
                    print("FAIL: worker B made no progress")
                    return 1
                time.sleep(0.2)
        finally:
            try:
                os.killpg(worker_a.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            worker_a.wait()
        print("[3/4] SIGKILL'd worker A mid-lease; B must reclaim and finish")
        if worker_b.wait(timeout=300) != 0:
            print("FAIL: survivor worker B (or its serial check) failed")
            return 1
        stored = ResultStore(store).scenario_ids()
        if stored != set(ids):
            print(f"FAIL: elastic store incomplete: {sorted(stored)}")
            return 1
        state = LeaseLedger(store, owner="smoke-check").state("b00000")
        if not state.done or state.token < 2 or state.owner != "wB":
            print(f"FAIL: b00000 was not fenced and reclaimed by B: {state}")
            return 1
        print(
            f"[4/4] B reclaimed b00000 with fencing token {state.token} "
            f"and --serial-check passed"
        )
        if trace_checks(store, ids) != 0:
            return 1
    print("elastic reclaim smoke: OK")
    return 0


def trace_checks(store: Path, ids: list[str]) -> int:
    """Telemetry acceptance over the finished elastic store.

    Compacts with tracing on (so compaction steps land in the same
    trace directory), validates the merged trace structurally, asserts
    the fenced reclaim is visible as a span, and cross-checks
    ``--status --json`` against the store.
    """
    import json

    from repro.obs.tracing import merge_spans

    print("[5/6] compact with --trace, then validate the merged trace")
    compacted = subprocess.run(
        [sys.executable, "-m", "repro.sweep",
         "--compact", str(store), "--trace"],
    )
    if compacted.returncode != 0:
        print("FAIL: traced compaction failed")
        return 1
    validator = subprocess.run(
        [sys.executable, str(Path(__file__).resolve().parent / "trace_validate.py"),
         str(store / "trace"),
         "--expect", "campaign.run:2",
         "--expect", f"campaign.attempt:{len(ids)}",
         "--expect", "scenario.run",
         "--expect", "lease.claim",
         "--expect", "lease.renew",
         "--expect", "store.append",
         "--expect", "store.compact",
         "--expect", "store.compact.collect"],
    )
    if validator.returncode != 0:
        print("FAIL: trace validation failed")
        return 1
    spans = merge_spans(store / "trace")
    reclaims = [
        span for span in spans
        if span["name"] == "lease.claim"
        and span["attrs"].get("batch") == "b00000"
        and span["attrs"].get("takeover")
        and span["attrs"].get("token", 0) >= 2
    ]
    if not reclaims:
        print("FAIL: no takeover lease.claim span for b00000 in the trace")
        return 1
    print("[6/6] --status --json agrees with the store")
    status = subprocess.run(
        [sys.executable, "-m", "repro.sweep", "--status", str(store), "--json"],
        capture_output=True, text=True,
    )
    if status.returncode != 0:
        print(f"FAIL: --status --json exited {status.returncode}")
        return 1
    doc = json.loads(status.stdout)
    stored = ResultStore(store).scenario_ids()
    if doc["completed"] != len(stored) or doc["completed"] != len(ids):
        print(f"FAIL: status completed={doc['completed']} != store {len(stored)}")
        return 1
    if doc["scenario_count"] != len(ids):
        print(f"FAIL: status scenario_count={doc['scenario_count']}")
        return 1
    return 0


def main() -> int:
    code = kill_resume_smoke()
    if code != 0:
        return code
    return elastic_smoke()


if __name__ == "__main__":
    sys.exit(main())
