"""CI smoke: a campaign survives worker crashes and a parent SIGKILL.

Drives the real ``python -m repro.sweep --campaign`` CLI end to end
through the full recovery story, deterministically:

1. Launch a small campaign with two faults armed through the
   :mod:`repro.testing.faults` env hooks: scenario *k* hard-crashes its
   first attempt (``--on-failure retry:2`` must retry it), and the last
   scenario hangs forever (so the parent is provably mid-campaign).
2. Poll the result store until every non-hung scenario has landed
   durably, then SIGKILL the campaign's whole process group — the
   unceremonious end of a host.
3. Re-run the same CLI command with ``--resume`` and no faults armed,
   plus ``--serial-check``: the resumed campaign must complete only the
   missing scenario and the merged report must be bit-identical to the
   uninterrupted in-process serial reference.

Exit code 0 means the whole story held, including the crash attempt
being visible in the store's failure ledger.

Run from the repo root: ``PYTHONPATH=src python tools/campaign_smoke.py``.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.parallel.store import ResultStore  # noqa: E402
from repro.testing.faults import ENV_FAULTS, ENV_STATE  # noqa: E402
from repro.workloads.grid import GeometrySpec, ScenarioGrid  # noqa: E402
from repro.workloads.suites import WORKLOAD_SUITE  # noqa: E402

SEEDS = 3
ARGV = [
    sys.executable, "-m", "repro.sweep",
    "--workloads", "web_0",
    "--seeds", str(SEEDS),
    "--days", "0.02",
    "--blocks", "64", "--pages-per-block", "64",
    "--on-failure", "retry:2",
    "--workers", "2",
    "--resume",
]


def scenario_ids() -> list[str]:
    grid = ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
        seeds=SEEDS,
        duration_days=0.02,
    )
    return [s.scenario_id for s in grid]


def main() -> int:
    ids = scenario_ids()
    crash_target, hang_target = ids[1], ids[-1]
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        env = dict(
            os.environ,
            **{
                ENV_FAULTS: f"crash:1:{crash_target};hang:*:{hang_target}",
                ENV_STATE: str(Path(tmp) / "faults"),
            },
        )
        print(f"[1/3] campaign with crash@{crash_target} hang@{hang_target}")
        process = subprocess.Popen(
            ARGV + ["--campaign", str(store)],
            env=env,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 300
            expected = set(ids) - {hang_target}
            while ResultStore(store).scenario_ids() != expected:
                if process.poll() is not None:
                    print("FAIL: campaign exited before the kill")
                    return 1
                if time.monotonic() > deadline:
                    print("FAIL: campaign made no progress before the kill")
                    return 1
                time.sleep(0.2)
        finally:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            process.wait()
        print(f"[2/3] SIGKILL'd campaign with {len(expected)}/{len(ids)} stored")
        ledger = ResultStore(store).failures()
        if not any(entry["kind"] == "worker-death" for entry in ledger):
            print(f"FAIL: injected crash not in the failure ledger: {ledger}")
            return 1
        print("[3/3] resume without faults, with --serial-check")
        resumed = subprocess.run(ARGV + ["--campaign", str(store), "--serial-check"])
        if resumed.returncode != 0:
            print("FAIL: resumed campaign (or its serial check) failed")
            return 1
        stored = ResultStore(store).scenario_ids()
        if stored != set(ids):
            print(f"FAIL: resumed store incomplete: {sorted(stored)}")
            return 1
    print("campaign kill-and-resume smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
