#!/usr/bin/env python
"""Perf-trajectory gate for CI: ``BENCH_physics.json`` must hold its floors.

The perf benches *record* the trajectory; this tool *gates* it.  It
reads the committed ``BENCH_physics.json`` at the repo root and fails
(exit 1) when

1. a required section or key is missing (a bench silently stopped
   recording), or
2. a recorded number sits below its floor — the "never regress past
   this" line for each hot path, set with margin below the currently
   committed values so machine jitter does not flap CI, or
3. a recorded overhead ratio rises above its ceiling (telemetry must
   stay within 2% of the untraced flash-chip row).

Core-count-gated floors (the multi-core speedups) only apply when the
*recorded* payload says the recording machine had enough CPUs: a 1-CPU
container legitimately records ~1x sweep and executor speedups, and the
payloads carry ``cpu_count`` exactly so this gate can tell the
difference.  Re-record on a >=4-core machine and the >=1.5x floors arm
themselves automatically.

Run from the repo root: ``python tools/check_bench.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_physics.json"

#: (section, key, floor) — unconditional floors for single-machine rows.
FLOORS = [
    # The unified engine: batched counter path and Monte-Carlo physics.
    ("engine_throughput", "counter_batched_ops_per_sec", 5_000_000),
    ("engine_throughput", "counter_batched_speedup", 8.0),
    ("engine_throughput", "flash_chip_ops_per_sec", 25_000),
    # The batched device primitives.
    ("physics_hotpath", "decode_nominal_speedup", 1.2),
    ("physics_hotpath", "decode_relaxed_speedup", 100.0),
    ("physics_hotpath", "block_rber_speedup", 1.1),
    # The vectorized RS engine: batched mask decode vs. per-page loop
    # (ISSUE-8 acceptance bar: >= 10x on a 512-page batch).
    ("rs_decode", "speedup_batched", 10.0),
]

#: (section, key, ceiling) — overhead ratios that must stay *below* the
#: line.  Floors guard "fast stays fast"; ceilings guard "cheap stays
#: cheap" — today, that telemetry armed at coarse detail costs at most
#: 2% of the flash-chip engine row.
CEILINGS = [
    ("engine_throughput", "telemetry_overhead_ratio", 1.02),
]

#: (section, key, floor, min_cpus) — floors that only bind when the
#: recording machine had the cores to show the speedup.
CORE_GATED_FLOORS = [
    ("sweep_parallel", "speedup_workers_4", 1.5, 4),
    ("intra_scenario", "speedup_threaded_4", 1.5, 4),
    ("process_executor", "speedup_process_4", 1.5, 4),
]

#: keys that must exist per section even when no floor binds (so a bench
#: cannot silently stop recording a row the README table quotes).
REQUIRED_KEYS = {
    "engine_throughput": ["flash_chip_seconds", "flash_chip_trace_ops"],
    "physics_hotpath": ["decode_relaxed_pages_per_sec_batched"],
    "sweep_parallel": ["cpu_count", "seconds_workers_1"],
    "intra_scenario": ["cpu_count", "seconds_serial", "serial_ops_per_sec"],
    "process_executor": ["cpu_count", "seconds_serial", "serial_ops_per_sec"],
    # No floor on the append rate (fsync latency is filesystem-dependent)
    # — the gate only demands the durability-overhead row keeps being
    # recorded alongside the ratio the README quotes.
    # ... and that compaction keeps being measured: fold rate plus the
    # segments-only reload rate that proves load() is O(segments)+tail.
    "campaign_store": [
        "appends_per_second",
        "campaign_overhead_ratio",
        "scenarios",
        "compact_records_per_second",
        "compacted_loads_per_second",
        "compacted_segments",
    ],
    "rs_decode": ["cpu_count", "pages", "pages_per_sec_batched"],
}


def check(data: dict) -> list[str]:
    """Every floor violation / missing key in *data*, as messages."""
    problems = []
    sections = set(REQUIRED_KEYS) | {s for s, *_ in FLOORS} | {
        s for s, *_ in CORE_GATED_FLOORS
    }
    for section in sorted(sections):
        if section not in data:
            problems.append(f"missing section {section!r}")
    for section, keys in REQUIRED_KEYS.items():
        payload = data.get(section)
        if payload is None:
            continue
        for key in keys:
            if key not in payload:
                problems.append(f"{section}.{key} missing")
    for section, key, floor in FLOORS:
        payload = data.get(section)
        if payload is None:
            continue
        value = payload.get(key)
        if value is None:
            problems.append(f"{section}.{key} missing")
        elif value < floor:
            problems.append(
                f"{section}.{key} = {value} regressed below floor {floor}"
            )
    for section, key, ceiling in CEILINGS:
        payload = data.get(section)
        if payload is None:
            continue
        value = payload.get(key)
        if value is None:
            problems.append(f"{section}.{key} missing")
        elif value > ceiling:
            problems.append(
                f"{section}.{key} = {value} rose above ceiling {ceiling}"
            )
    for section, key, floor, min_cpus in CORE_GATED_FLOORS:
        payload = data.get(section)
        if payload is None:
            continue
        cpus = payload.get("cpu_count", 0)
        if cpus < min_cpus:
            print(
                f"note: {section}.{key} floor ({floor}x) not armed — "
                f"recorded on {cpus} CPU(s), needs >= {min_cpus}"
            )
            continue
        value = payload.get(key)
        if value is None:
            problems.append(f"{section}.{key} missing (cpu_count={cpus})")
        elif value < floor:
            problems.append(
                f"{section}.{key} = {value} regressed below floor {floor} "
                f"(recorded on {cpus} CPUs)"
            )
    return problems


def main() -> int:
    if not BENCH_JSON.exists():
        print(f"FAIL: {BENCH_JSON} does not exist")
        return 1
    data = json.loads(BENCH_JSON.read_text())
    problems = check(data)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    armed = len(FLOORS) + len(CEILINGS) + sum(
        1
        for section, _, _, min_cpus in CORE_GATED_FLOORS
        if data.get(section, {}).get("cpu_count", 0) >= min_cpus
    )
    print(f"BENCH_physics.json holds all floors and ceilings ({armed} armed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
