#!/usr/bin/env bash
# Re-record the perf trajectory (BENCH_physics.json) at full scale.
#
# The committed BENCH_physics.json is *data recorded on one machine*;
# tools/check_bench.py gates later commits against it.  The multi-core
# speedup floors (sweep workers, threaded executor, process executor —
# all >=1.5x at 4 workers) arm themselves only when the recorded
# payloads say cpu_count >= 4, so re-recording on a >=4-core machine is
# what turns those floors on.  Procedure:
#
#   1. Run this script on the target machine (no BENCH_SMOKE in the
#      environment — smoke payloads are never written).
#   2. Inspect the refreshed BENCH_physics.json and the tables under
#      benchmarks/results/.
#   3. python tools/check_bench.py   # floors must hold, and the
#      "armed" count should include the core-gated ones on >=4 cores.
#   4. Commit BENCH_physics.json with a note naming the machine.
#
# Each bench file asserts bit-identity between its serial reference and
# every parallel configuration before recording a single number, so a
# recording run is also an equivalence check at full scale.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "recording perf trajectory on $(nproc 2>/dev/null || echo '?') CPU(s)..."

PYTHONPATH=src python -m pytest \
    benchmarks/bench_engine_throughput.py \
    benchmarks/bench_physics_hotpath.py \
    benchmarks/bench_sweep_parallel.py \
    benchmarks/bench_intra_scenario.py \
    benchmarks/bench_process_executor.py \
    benchmarks/bench_campaign_store.py \
    benchmarks/bench_rs_decode.py \
    -o python_functions='bench_*' -q "$@"

python tools/check_bench.py
