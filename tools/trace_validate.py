#!/usr/bin/env python
"""Structural validator for a ``repro.obs`` trace directory.

A trace directory holds one append-only JSONL file per writer
(``trace-<label>.jsonl``).  This tool loads every file with the same
torn-tail-tolerant loader the library uses, merges them, and checks the
invariants the begin/end event model promises:

1. at least one file with a valid ``repro-trace`` header,
2. span ids are globally unique across the merged set (per-writer
   labels guarantee this by construction),
3. every span's parent is either ``None`` or present in the merged set
   (cross-file parents included — that is how worker scenario spans
   attach to the coordinator's attempt spans),
4. ``t0 <= t1`` for every closed span,
5. same-file nesting is temporally sane: a child starts no earlier
   than its parent (``parent.t0 <= child.t0``) and, when both are
   closed, ends no later (``child.t1 <= parent.t1``).

Open spans (``t1 is None``) are legal — they are exactly what a
SIGKILL'd worker leaves behind — so no rule here requires an end.
Cross-file timing is deliberately *not* compared: writers in different
processes use unsynchronised monotonic clocks.

``--expect NAME`` (repeatable, optionally ``NAME:MIN``) additionally
requires at least MIN spans (default 1) with that name, so smoke tests
can assert coverage ("every scenario attempt got a span") rather than
mere parseability.

Usage: ``python tools/trace_validate.py TRACE_DIR [--expect NAME[:MIN]]...``
Exit 0 when every check passes, 1 otherwise, with one line per failure.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.tracing import load_trace_dir  # noqa: E402


def parse_expect(raw: str) -> tuple[str, int]:
    """``NAME`` or ``NAME:MIN`` -> (name, minimum count)."""
    name, sep, count = raw.rpartition(":")
    if sep and count.isdigit():
        return name, int(count)
    return raw, 1


def validate(trace_dir: Path, expects: list[tuple[str, int]]) -> list[str]:
    """Return a list of human-readable failures (empty = valid)."""
    failures: list[str] = []
    loaded = load_trace_dir(trace_dir)
    if not loaded:
        return [f"{trace_dir}: no trace-*.jsonl files found"]

    headered = [entry for entry in loaded if entry["header"] is not None]
    if not headered:
        failures.append(f"{trace_dir}: no file has a valid repro-trace header")
    for entry in loaded:
        if entry["header"] is None:
            failures.append(f"{entry['path'].name}: missing/invalid header")

    # Merge by hand (not merge_spans) so duplicate ids become a listed
    # failure instead of an exception that hides the other checks.
    merged: dict[str, dict] = {}
    for entry in loaded:
        for span in entry["spans"]:
            previous = merged.get(span["id"])
            if previous is not None and previous["file"] != span["file"]:
                failures.append(
                    f"duplicate span id {span['id']!r} in "
                    f"{previous['file']} and {span['file']}"
                )
                continue
            merged[span["id"]] = span

    for span in merged.values():
        parent_id = span["parent"]
        if parent_id is not None and parent_id not in merged:
            failures.append(
                f"{span['file']}: span {span['id']!r} ({span['name']}) "
                f"references unknown parent {parent_id!r}"
            )
        if span["t1"] is not None and span["t1"] < span["t0"]:
            failures.append(
                f"{span['file']}: span {span['id']!r} ({span['name']}) "
                f"ends before it starts (t0={span['t0']}, t1={span['t1']})"
            )

    # Same-file temporal nesting; cross-file clocks are unsynchronised.
    for span in merged.values():
        parent = merged.get(span["parent"]) if span["parent"] else None
        if parent is None or parent["file"] != span["file"]:
            continue
        if span["t0"] < parent["t0"]:
            failures.append(
                f"{span['file']}: child {span['id']!r} starts before "
                f"parent {parent['id']!r}"
            )
        if (span["t1"] is not None and parent["t1"] is not None
                and span["t1"] > parent["t1"]):
            failures.append(
                f"{span['file']}: child {span['id']!r} ends after "
                f"parent {parent['id']!r}"
            )

    names = Counter(span["name"] for span in merged.values())
    for name, minimum in expects:
        if names[name] < minimum:
            failures.append(
                f"expected >= {minimum} span(s) named {name!r}, "
                f"found {names[name]}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace_dir", type=Path,
                        help="directory holding trace-*.jsonl files")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="NAME[:MIN]",
                        help="require >= MIN spans (default 1) named NAME; "
                             "repeatable")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line on success")
    args = parser.parse_args(argv)

    expects = [parse_expect(raw) for raw in args.expect]
    failures = validate(args.trace_dir, expects)
    if failures:
        for failure in failures:
            print(f"trace_validate: FAIL {failure}", file=sys.stderr)
        return 1
    if not args.quiet:
        loaded = load_trace_dir(args.trace_dir)
        spans = sum(len(entry["spans"]) for entry in loaded)
        skipped = sum(entry["skipped"] for entry in loaded)
        print(f"trace_validate: OK {len(loaded)} file(s), {spans} span(s), "
              f"{skipped} skipped line(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
