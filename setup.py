"""Legacy setup shim.

The execution environment has setuptools but no `wheel` package (and no
network), so PEP 517 editable installs cannot build a wheel; this shim lets
``pip install -e . --no-use-pep517`` fall back to the classic develop-mode
install.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
