"""Quickstart: simulate read disturb on an MLC NAND block and mitigate it.

Walks the paper's core loop in a dozen lines of API:

1. build a simulated chip and wear a block to 8K P/E cycles;
2. program pseudo-random data and hammer the block with reads;
3. watch the raw bit error rate climb;
4. run Vpass Tuning and see how much disturb the tuned Vpass avoids.

Run:  python examples/quickstart.py
"""

from repro import (
    FlashChip,
    FlashGeometry,
    MonteCarloTunableBlock,
    VpassTuner,
)
from repro.physics.read_disturb import vpass_exposure_weight

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=32, bitlines_per_block=8192)


def main() -> None:
    chip = FlashChip(GEOMETRY, seed=42)
    block = chip.block(0)

    # Age the block the way the paper's testbed does, then fill it.
    block.cycle_wear_to(8000)
    block.program_random()
    print(f"block ready: {block}")

    print("\nRBER vs. read disturb count (nominal Vpass):")
    applied = 0
    for reads in (0, 100_000, 300_000, 1_000_000):
        block.apply_read_disturb(reads - applied)
        applied = reads
        rber = block.measure_block_rber(now=chip.now)
        print(f"  {reads:>9,} reads -> RBER {rber:.2e}")

    # Fresh block for the mitigation story.
    block.erase(chip.now)
    block.program_random(chip.now)
    tunable = MonteCarloTunableBlock(block, now=chip.now, characterize=False)
    outcome = VpassTuner().tune_after_refresh(tunable)
    print(
        f"\nVpass Tuning: margin M={outcome.margin} bits -> "
        f"Vpass {outcome.vpass:.0f} ({outcome.reduction_percent:.1f}% below nominal)"
    )
    factor = 1.0 / float(vpass_exposure_weight(outcome.vpass))
    print(f"each read now disturbs {factor:.0f}x less than at nominal Vpass")


if __name__ == "__main__":
    main()
