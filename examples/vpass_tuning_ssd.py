"""Vpass Tuning inside a full SSD (Section 3's deployment story).

Runs a synthetic enterprise workload through the page-mapping FTL with
7-day remap refresh, extracts the hottest block's read pressure, and
compares drive endurance with and without Vpass Tuning — a two-workload
miniature of the paper's Figure 8.

Run:  python examples/vpass_tuning_ssd.py
"""

from repro.analysis import format_table
from repro.controller import SsdConfig, SsdSimulator
from repro.controller.stats import hottest_block_reads_per_day
from repro.model import BaselinePolicy, FlashChannelModel, TunedVpassPolicy, endurance
from repro.workloads import get_workload


def drive_demo() -> None:
    """Controller-in-the-loop: every op goes through the FTL.

    ``SsdSimulator`` is the unified engine with the default counter
    backend and batched execution; see examples/engine_backends.py for
    the flash-chip backend with ECC and RDR in the loop.
    """
    print("== SSD controller run (web_0, quarter-day slice) ==")
    sim = SsdSimulator(
        SsdConfig(blocks=64, pages_per_block=64, overprovision=0.15),
        refresh_interval_days=7.0,
        read_reclaim_threshold=50_000,
    )
    trace = get_workload("web_0", seed=3).generate(0.25)
    stats = sim.run_trace(trace)
    print(f"  host ops: {stats.host_reads:,} reads / {stats.host_writes:,} writes")
    print(f"  write amplification: {stats.write_amplification:.2f}")
    print(f"  GC runs: {stats.gc_runs}, refreshed blocks: {stats.refreshed_blocks}")
    print(f"  peak block reads per interval: {stats.peak_block_reads_per_interval:,}")


def endurance_comparison() -> None:
    print("\n== Endurance, baseline vs. Vpass Tuning ==")
    model = FlashChannelModel(grid_points=700, leak_nodes=7)
    rows = []
    for name in ("web_0", "wdev_0"):
        trace = get_workload(name, seed=7).generate(1.0)
        pressure = hottest_block_reads_per_day(trace, pages_per_block=256)
        base = endurance(model, pressure, BaselinePolicy)
        tuned = endurance(model, pressure, lambda: TunedVpassPolicy())
        rows.append(
            [name, f"{pressure:.0f}", base, tuned, f"{100 * (tuned / base - 1):.1f}%"]
        )
    print(
        format_table(
            ["workload", "hot reads/day", "baseline P/E", "tuned P/E", "gain"], rows
        )
    )
    print("(read-hot workloads gain the most; the paper's suite averages 21%)")


if __name__ == "__main__":
    drive_demo()
    endurance_comparison()
