"""Reproduce the paper's characterization campaign (Section 2).

Plays the role of the FPGA testbed: measures threshold-voltage
distributions through read-retry sweeps before and after read disturb
(Figure 2), fits the RBER-vs-reads slopes across wear levels (Figure 3),
and sweeps Vpass relaxations against retention age (Figure 5).

Run:  python examples/characterization_campaign.py
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.characterization import (
    rber_vs_read_disturb,
    relaxed_vpass_errors,
    vth_shift_experiment,
)
from repro.flash import MlcState


def figure2() -> None:
    print("== Figure 2: threshold-voltage shift under read disturb ==")
    snapshots = vth_shift_experiment(read_counts=(0, 250_000, 1_000_000), seed=1)
    base = None
    for snap in snapshots:
        er = snap.voltages[snap.true_states == int(MlcState.ER)]
        if base is None:
            base = er.mean()
        print(
            f"  {snap.reads:>9,} reads: ER mean {er.mean():7.2f} "
            f"(shift {er.mean() - base:+5.2f}), p99.9 {np.percentile(er, 99.9):7.1f}"
        )


def figure3() -> None:
    print("\n== Figure 3: RBER slopes by P/E wear ==")
    series = rber_vs_read_disturb(pe_values=(2000, 8000, 15000))
    rows = [[s.pe_cycles, f"{s.slope:.2e}", f"{s.intercept:.2e}"] for s in series]
    print(format_table(["P/E", "slope per read", "intercept"], rows))


def figure5() -> None:
    print("\n== Figure 5: extra errors from relaxed Vpass, by retention age ==")
    vpass = np.array([480.0, 490.0, 500.0])
    curves = relaxed_vpass_errors(retention_ages_days=(0, 6, 21), vpass_values=vpass)
    rows = [
        [f"{v:.0f}"] + [f"{curves[a][i]:.2e}" for a in (0, 6, 21)]
        for i, v in enumerate(vpass)
    ]
    print(format_table(["Vpass", "0-day", "6-day", "21-day"], rows))


if __name__ == "__main__":
    figure2()
    figure3()
    figure5()
