"""One engine, two physics: fast sweeps and RBER-in-the-loop recovery.

Part 1 runs the same workload through the counter backend twice — per-op
and batched — to show the batched path is exact and much faster.

Part 2 swaps in the flash-chip backend on a hot-read workload: without
read reclaim the hammered block crosses the ECC limit and the engine
recovers the data through RDR; with reclaim enabled the crossing never
happens (the paper's Sections 3-5 story, controller-in-the-loop).

Run:  python examples/engine_backends.py
"""

import time

import numpy as np

from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.ecc import EccConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE, SyntheticWorkload, WorkloadSpec

#: A read-hot cache server: the regime where read disturb matters and
#: where batched execution shines (reads vectorize; writes replay as-is).
READ_HOT = WorkloadSpec(
    name="readhot_cache",
    description="zipf-skewed cache reads over a warm working set",
    iops=6.0,
    read_fraction=0.98,
    working_set_pages=40_000,
    read_zipf_theta=0.9,
)


def counter_backend_demo() -> None:
    print("== Counter backend: batched == per-op, only faster ==")
    config = SsdConfig()  # 256 x 256 pages, ~61K logical
    workload = SyntheticWorkload(READ_HOT, seed=3)
    precondition = workload.generate(0.02, seed=4).writes
    trace = workload.generate(2.0)
    runs = {}
    for label, batch in (("per-op", False), ("batched", True)):
        engine = SimulationEngine(config, read_reclaim_threshold=50_000, batch=batch)
        engine.run_trace(precondition)
        start = time.perf_counter()
        runs[label] = engine.run_trace(trace)
        print(f"  {label:8s}: {len(trace):,} ops in {time.perf_counter() - start:.2f}s")
    assert runs["per-op"] == runs["batched"]
    print(f"  identical stats, WA={runs['batched'].write_amplification:.2f}, "
          f"peak reads/interval={runs['batched'].peak_block_reads_per_interval:,}")


def _hot_read_trace(hot_pages: int, n_reads: int, seed: int = 5) -> IoTrace:
    rng = np.random.default_rng(seed)
    ts = np.concatenate(
        [np.linspace(0.0, days(0.01), hot_pages),
         np.sort(rng.uniform(days(0.02), days(6.0), n_reads))]
    )
    ops = np.concatenate(
        [np.full(hot_pages, OP_WRITE), np.full(n_reads, OP_READ)]
    ).astype(np.int64)
    lpns = np.concatenate(
        [np.arange(hot_pages), rng.integers(0, hot_pages, n_reads)]
    ).astype(np.int64)
    return IoTrace(ts, ops, lpns, "hot-read")


def flash_chip_demo() -> None:
    print("\n== Flash-chip backend: ECC + RDR in the loop ==")
    config = SsdConfig(blocks=8, pages_per_block=32, overprovision=0.4,
                       gc_threshold_blocks=1)
    trace = _hot_read_trace(hot_pages=32, n_reads=1_200_000)
    ecc = EccConfig(codeword_bits=9216, correctable_bits=105)
    for label, reclaim in (("no read reclaim", None), ("reclaim @ 50K", 50_000)):
        backend = FlashChipBackend(
            bitlines_per_block=8192, initial_pe_cycles=8000, ecc=ecc, seed=11
        )
        engine = SimulationEngine(
            config,
            read_reclaim_threshold=reclaim,
            maintenance_period_days=0.25,
            backend=backend,
            batch=True,
        )
        stats = engine.run_trace(trace)
        s = backend.summary()
        print(f"  {label:15s}: uncorrectable={s['uncorrectable_pages']}, "
              f"RDR recovered={s['rdr_recovered']}, data loss={s['data_loss_events']}, "
              f"reclaimed blocks={stats.reclaimed_blocks}")
    print("  (RDR turns would-be data loss into recoveries; reclaim prevents it)")


if __name__ == "__main__":
    counter_backend_demo()
    flash_chip_demo()
