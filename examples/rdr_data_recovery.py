"""Read Disturb Recovery rescuing data ECC gave up on (Section 4).

A block at 8K P/E cycles absorbs a million reads; a page then carries
more raw bit errors than the (deliberately weak) ECC can correct — the
traditional point of data loss.  RDR induces additional disturbs,
classifies disturb-prone cells by their measured ΔVth, probabilistically
corrects the boundary population, and hands ECC a decodable page.

Run:  python examples/rdr_data_recovery.py
"""

from repro import FlashGeometry, RdrConfig, ReadDisturbRecovery, UncorrectableError
from repro.ecc import EccConfig, EccDecoder
from repro.flash import FlashBlock
from repro.rng import RngFactory


def main() -> None:
    geometry = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=8192)
    ecc = EccConfig(codeword_bits=9216, correctable_bits=60)
    decoder = EccDecoder(ecc)

    block = FlashBlock(geometry, RngFactory(21))
    block.cycle_wear_to(8000)
    block.program_random()
    block.apply_read_disturb(450_000, target_wordline=1)
    print("block after 450K read disturbs:", block)

    # Disturb flips ER cells into P1, corrupting the MSB page (gray code).
    page = 1
    read = block.read_page(page)
    truth = block.expected_page_bits(page)
    try:
        decoder.decode_or_raise(read, truth)
        print("unexpected: ECC decoded the page")
    except UncorrectableError as exc:
        print(f"ECC failed: {exc}")

    outcome = ReadDisturbRecovery(RdrConfig(upper_window=32.0)).recover_wordline(
        block, wordline=0
    )
    print(
        f"\nRDR: {outcome.candidate_cells} boundary candidates, "
        f"{outcome.corrected_to_lower} corrected down / "
        f"{outcome.corrected_to_higher} up"
    )
    print(
        f"raw bit errors: {outcome.bit_errors_before} -> {outcome.bit_errors_after} "
        f"({100 * outcome.reduction_fraction:.1f}% reduction)"
    )

    capability = ecc.page_capability_bits(geometry.bits_per_page)
    # Bound: even if every remaining error sat on the failed page.
    verdict = "within" if outcome.bit_errors_after <= capability else "still beyond"
    print(
        f"post-RDR errors <= {outcome.bit_errors_after} vs page capability "
        f"{capability}: {verdict} ECC reach"
    )


if __name__ == "__main__":
    main()
