"""Sharded scenario sweeps: the paper's campaigns across worker processes.

The evaluation results of the paper are grids of independent
simulations — exactly the workload the sweep runner shards.  This
example builds a small read-reclaim ablation grid over two suite
workloads, runs it serially and sharded, verifies the reports are
bit-identical, and prints the ablation table.

Run:  python examples/parallel_sweep.py
"""

import os
import time

from repro.analysis.reporting import format_table
from repro.parallel import SweepRunner
from repro.workloads import GeometrySpec, PolicySpec, suite_grid

#: reclaim ablation: does capping per-interval reads tame the hot block?
#: (maintenance every ~30 simulated minutes so reclaim gets to act)
GRID = suite_grid(
    ["web_0", "webmail"],
    geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
    policies=(
        PolicySpec(name="baseline", maintenance_period_days=0.02),
        PolicySpec(name="reclaim", read_reclaim_threshold=25,
                   maintenance_period_days=0.02),
    ),
    seeds=2,
    duration_days=0.1,
)


def main() -> None:
    workers = min(4, os.cpu_count() or 1)
    print(f"grid: {len(GRID)} scenarios "
          "(2 workloads x 2 policies x 2 seeds)")

    start = time.perf_counter()
    serial = SweepRunner(workers=1).run(GRID)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    sharded = SweepRunner(workers=workers).run(GRID)
    t_sharded = time.perf_counter() - start

    assert serial.results == sharded.results, "sharding must not change results"
    print(f"workers=1: {t_serial:.2f}s   workers={workers}: {t_sharded:.2f}s   "
          f"(bit-identical reports; speedup needs cores)\n")

    rows = []
    for result in sharded:
        stats = result.stats
        rows.append(
            [
                result.scenario_id,
                f"{stats['host_reads']:,}",
                f"{stats['peak_block_reads_per_interval']:,}",
                stats["reclaimed_blocks"],
                f"{stats['write_amplification']:.2f}",
            ]
        )
    print(format_table(
        ["scenario", "reads", "peak reads/interval", "reclaimed", "WA"],
        rows,
        title="Read-reclaim ablation (reclaim caps the hottest block's pressure)",
    ))


if __name__ == "__main__":
    main()
