"""DRAM RowHammer, the read-disturb sibling (Section 5.2).

Builds a module fleet like the 129 modules of Kim et al. (ISCA 2014),
measures error rates by manufacture year, and hammers one vulnerable
module's worst row.

Run:  python examples/rowhammer_dram.py
"""

import numpy as np

from repro.analysis import format_table
from repro.dram import (
    DramModule,
    DramModuleSpec,
    Manufacturer,
    hammer_test_error_rate,
    module_fleet,
)
from repro.dram.rowhammer import MIN_HAMMER_COUNT, STANDARD_HAMMER_COUNT


def fleet_study() -> None:
    print("== error rate by manufacture year (129-module fleet) ==")
    fleet = module_fleet(129, seed=1)
    rows = []
    for year in range(2008, 2015):
        specs = [s for s in fleet if s.year == year]
        if not specs:
            continue
        rates = [hammer_test_error_rate(s, rows=1024, seed=2) for s in specs]
        vulnerable = sum(1 for r in rates if r > 0)
        median = np.median([r for r in rates if r > 0]) if vulnerable else 0.0
        rows.append([year, len(specs), f"{vulnerable}/{len(specs)}", f"{median:.1e}"])
    print(format_table(["year", "modules", "vulnerable", "median err/1e9"], rows))


def hammer_one_module() -> None:
    spec = DramModuleSpec(Manufacturer.A, 2013, 12, 0)
    module = DramModule(spec, rows=8192, cells_per_row=4096, seed=5)
    worst_row = int(np.argmax(module.victims_per_row()))
    print(f"\n== hammering module {spec.label}, worst row {worst_row} ==")
    for count in (MIN_HAMMER_COUNT // 2, MIN_HAMMER_COUNT, 1_000_000, STANDARD_HAMMER_COUNT):
        flips = module.hammer(worst_row, count)
        print(f"  {count:>9,} activations -> {flips} victim bit flips")


if __name__ == "__main__":
    fleet_study()
    hammer_one_module()
