"""A thousands-of-blocks drive on the out-of-core block arena.

Every other example sizes its chip so the Monte-Carlo cell state fits
comfortably in RAM.  This one goes the other way: a 4096-block drive
whose full per-cell state is hundreds of megabytes, simulated with
``arena="mmap"`` and a small ``resident_blocks`` budget, so only an LRU
window of blocks occupies memory at any moment.  Evicted blocks are
flushed to the arena's backing file and dropped from residency
(``madvise(MADV_DONTNEED)``); touching one again simply refaults it —
the spill schedule can never change a result, only the peak RSS.

The script preconditions the whole logical space, runs a read-heavy
workload across it, and reports peak RSS against the size of the full
block state it simulated.

Run:  PYTHONPATH=src python examples/full_drive.py
"""

import resource

import numpy as np

from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

BLOCKS = 4096
PAGES_PER_BLOCK = 16
BITLINES = 2048
RESIDENT_BLOCKS = 32  # LRU window: ~1.6% of the drive in memory
N_READ_OPS = 30_000


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def main() -> None:
    config = SsdConfig(
        blocks=BLOCKS, pages_per_block=PAGES_PER_BLOCK, overprovision=0.2
    )
    backend = FlashChipBackend(
        bitlines_per_block=BITLINES,
        seed=11,
        arena="mmap",
        resident_blocks=RESIDENT_BLOCKS,
    )
    engine = SimulationEngine(config, backend=backend)
    store = backend._store
    slab_mb = store.layout.slab_bytes / 2**20
    print(
        f"drive: {BLOCKS} blocks x {PAGES_PER_BLOCK} pages x {BITLINES} "
        f"bitlines -> {BLOCKS * slab_mb:,.0f} MB of block state on disk, "
        f"{RESIDENT_BLOCKS * slab_mb:,.1f} MB resident budget"
    )

    logical_pages = int(BLOCKS * PAGES_PER_BLOCK * (1 - config.overprovision))
    rng = np.random.default_rng(7)
    precondition = IoTrace(
        np.zeros(logical_pages),
        np.full(logical_pages, OP_WRITE, dtype=np.int64),
        rng.permutation(logical_pages).astype(np.int64),
        "precondition",
    )
    print(f"preconditioning {logical_pages:,} logical pages...")
    engine.run_trace(precondition)
    print(
        f"  bound blocks: {backend.summary()['bound_blocks']:,}, "
        f"evictions so far: {store.evictions:,}, "
        f"peak RSS {_peak_rss_mb():,.0f} MB"
    )

    trace = IoTrace(
        np.sort(rng.uniform(days(0.05), days(2.0), N_READ_OPS)),
        np.where(rng.random(N_READ_OPS) < 0.98, OP_READ, OP_WRITE).astype(
            np.int64
        ),
        rng.integers(0, logical_pages, N_READ_OPS).astype(np.int64),
        "full-drive-reads",
    )
    print(f"reading across the whole drive ({N_READ_OPS:,} ops)...")
    stats = engine.run_trace(trace)
    summary = backend.summary()
    engine.close()

    print(
        f"  host reads {stats.host_reads:,}, "
        f"pages checked {summary['pages_checked']:,}, "
        f"uncorrectable {summary['uncorrectable_pages']}"
    )
    print(
        f"arena evictions: {store.evictions:,} "
        f"(residency capped at {RESIDENT_BLOCKS} blocks throughout)"
    )
    peak = _peak_rss_mb()
    full_state = BLOCKS * slab_mb
    print(
        f"peak RSS: {peak:,.0f} MB for {full_state:,.0f} MB of simulated "
        f"block state ({full_state / peak:.1f}x larger than the process "
        f"ever was)"
    )


if __name__ == "__main__":
    main()
