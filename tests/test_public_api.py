"""The package's public API surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_mechanisms_exported():
    assert repro.VpassTuner is not None
    assert repro.ReadDisturbRecovery is not None
    assert repro.FlashChannelModel is not None
    assert repro.FlashChip is not None


def test_analysis_lazy_exports():
    from repro import analysis

    assert callable(analysis.vth_shift_experiment)
    assert callable(analysis.rdr_experiment)
    try:
        analysis.does_not_exist
    except AttributeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("unknown attribute should raise AttributeError")
