"""Shared fixtures: small geometries and coarse models keep the suite fast
while exercising the same code paths as the full-size benches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash import FlashBlock, FlashChip, FlashGeometry
from repro.model import FlashChannelModel
from repro.rng import RngFactory


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_geometry() -> FlashGeometry:
    return FlashGeometry(blocks=2, wordlines_per_block=8, bitlines_per_block=512)


@pytest.fixture
def block(small_geometry) -> FlashBlock:
    return FlashBlock(small_geometry, RngFactory(7))


@pytest.fixture
def programmed_block(small_geometry) -> FlashBlock:
    blk = FlashBlock(small_geometry, RngFactory(7))
    blk.cycle_wear_to(8000)
    blk.program_random()
    return blk


@pytest.fixture
def chip(small_geometry) -> FlashChip:
    return FlashChip(small_geometry, seed=11)


@pytest.fixture(scope="session")
def fast_model() -> FlashChannelModel:
    """Coarse-grid analytic model: ~5x faster, plenty for assertions."""
    return FlashChannelModel(grid_points=500, leak_nodes=5)
