"""The fault-injection harness itself: parsing, arming, counted firing.

The crash/hang modes are exercised end-to-end by the campaign suite
(they kill or stall real worker processes); here we pin the harness
mechanics that everything else leans on — spec syntax, env gating, and
the crash-surviving firing tally.
"""

import pytest

from repro.testing.faults import (
    ENV_FAULTS,
    ENV_STATE,
    FaultSpec,
    InjectedFault,
    active_faults,
    corrupt_store_record,
    injected_faults,
    maybe_inject,
    parse_faults,
    truncate_store_tail,
)


def test_parse_faults_round_trip():
    text = "crash:1:web_0/d0.02/64x64/baseline/counter/s0;raise:*:a/b;hang:3:x"
    specs = parse_faults(text)
    assert [s.mode for s in specs] == ["crash", "raise", "hang"]
    assert [s.count for s in specs] == [1, None, 3]
    assert specs[0].scenario_id == "web_0/d0.02/64x64/baseline/counter/s0"
    assert ";".join(s.spec for s in specs) == text
    assert parse_faults(" ; ;") == ()


def test_parse_faults_rejects_malformed():
    for bad in ("crash", "crash:1", "crash:x:id", "explode:1:id", "crash:0:id",
                "crash:1:"):
        with pytest.raises(ValueError):
            parse_faults(bad)


def test_nothing_armed_is_a_noop(monkeypatch):
    monkeypatch.delenv(ENV_FAULTS, raising=False)
    assert active_faults() == ()
    maybe_inject("any/scenario")  # must not raise


def test_injected_faults_arms_and_disarms():
    spec = FaultSpec("raise", None, "target/id")
    with injected_faults(spec):
        assert spec in active_faults()
        with pytest.raises(InjectedFault):
            maybe_inject("target/id")
        maybe_inject("other/id")  # wrong scenario: no fire
    assert spec not in active_faults()
    maybe_inject("target/id")  # disarmed


def test_env_armed_faults(monkeypatch):
    monkeypatch.setenv(ENV_FAULTS, "raise:*:env/armed")
    with pytest.raises(InjectedFault):
        maybe_inject("env/armed")


def test_counted_fault_fires_exactly_count_times(tmp_path):
    spec = FaultSpec("raise", 2, "counted/id")
    with injected_faults(spec, state_dir=tmp_path):
        for _ in range(2):
            with pytest.raises(InjectedFault):
                maybe_inject("counted/id")
        maybe_inject("counted/id")  # third attempt: stood down
    # The tally survives re-arming (what a crashed worker's parent sees).
    with injected_faults(spec, state_dir=tmp_path):
        maybe_inject("counted/id")


def test_counted_fault_requires_state_dir(monkeypatch):
    monkeypatch.delenv(ENV_STATE, raising=False)
    with injected_faults(FaultSpec("raise", 1, "x")):
        with pytest.raises(RuntimeError, match="REPRO_FAULTS_STATE"):
            maybe_inject("x")


def test_corrupt_store_record_requires_a_match(tmp_path):
    (tmp_path / "records").mkdir(parents=True)
    with pytest.raises(ValueError, match="no stored record"):
        corrupt_store_record(tmp_path, "missing/id")
    with pytest.raises(ValueError, match="no record files"):
        truncate_store_tail(tmp_path)
