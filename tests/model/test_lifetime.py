"""Lifetime and endurance machinery."""

import pytest

from repro.ecc import DEFAULT_ECC
from repro.model import BaselinePolicy, TunedVpassPolicy, endurance, worst_case_rber
from repro.model.lifetime import (
    AnalyticTunableBlock,
    refresh_interval_series,
    simulate_refresh_interval,
)
from repro.units import VPASS_NOMINAL


def test_interval_rber_grows_daily(fast_model):
    records = simulate_refresh_interval(
        fast_model, 8000, 10_000, BaselinePolicy(), interval_days=7
    )
    assert len(records) == 7
    rbers = [r.rber_end_of_day for r in records]
    assert rbers == sorted(rbers)
    assert all(r.vpass == VPASS_NOMINAL for r in records)


def test_tuned_policy_relaxes_vpass(fast_model):
    policy = TunedVpassPolicy()
    records = simulate_refresh_interval(fast_model, 8000, 10_000, policy, interval_days=7)
    assert records[0].vpass < VPASS_NOMINAL
    # Vpass never drops further mid-interval (Action 1 only raises).
    vpasses = [r.vpass for r in records]
    assert all(b >= a for a, b in zip(vpasses, vpasses[1:]))


def test_tuning_reduces_worst_case_rber(fast_model):
    base = worst_case_rber(fast_model, 8000, 30_000, BaselinePolicy())
    tuned = worst_case_rber(fast_model, 8000, 30_000, TunedVpassPolicy())
    assert tuned < base


def test_endurance_decreases_with_read_pressure(fast_model):
    light = endurance(fast_model, 1_000, BaselinePolicy)
    heavy = endurance(fast_model, 50_000, BaselinePolicy)
    assert heavy < light


def test_tuning_extends_endurance(fast_model):
    base = endurance(fast_model, 20_000, BaselinePolicy)
    tuned = endurance(fast_model, 20_000, lambda: TunedVpassPolicy())
    assert tuned > base * 1.05


def test_endurance_zero_when_unreachable(fast_model):
    assert endurance(fast_model, 1e9, BaselinePolicy, pe_min=5000) == 0


def test_refresh_interval_series_peaks_reduced(fast_model):
    series = refresh_interval_series(fast_model, 8000, 30_000, intervals=2)
    assert len(series["day"]) == 14
    # Mitigation lowers the end-of-interval peaks (Figure 7).
    peak_unmitigated = max(series["unmitigated"])
    peak_mitigated = max(series["mitigated"])
    assert peak_mitigated < peak_unmitigated


def test_analytic_block_protocol(fast_model):
    blk = AnalyticTunableBlock(model=fast_model, pe_cycles=8000)
    assert blk.page_bits == 65536
    assert blk.measure_worst_page_errors() >= 0
    assert blk.measure_extra_errors(VPASS_NOMINAL) == 0
    assert blk.measure_extra_errors(480.0) > 0


def test_negative_reads_rejected(fast_model):
    with pytest.raises(ValueError):
        simulate_refresh_interval(fast_model, 8000, -1, BaselinePolicy())
