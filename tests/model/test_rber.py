"""Analytic flash-channel model."""

import numpy as np
import pytest

from repro.model import FlashChannelModel
from repro.units import VPASS_NOMINAL, days, hours


def test_misread_matrix_rows_sum_to_one(fast_model):
    m = fast_model.misread_matrix(8000, days(1), 1e5)
    assert np.allclose(m.sum(axis=1), 1.0, atol=1e-9)
    assert (m >= 0).all()
    # Diagonal dominates: most cells are read correctly.
    assert (np.diag(m) > 0.9).all()


def test_rber_monotone_in_reads(fast_model):
    rs = [fast_model.rber(8000, hours(1), n, include_pass_through=False)
          for n in (0, 1e4, 1e5, 1e6)]
    assert rs == sorted(rs)


def test_rber_monotone_in_wear(fast_model):
    rs = [fast_model.rber(pe, hours(1), 5e4, include_pass_through=False)
          for pe in (2000, 5000, 8000, 15000)]
    assert rs == sorted(rs)


def test_rber_monotone_in_retention_age(fast_model):
    rs = [fast_model.rber(8000, days(d), 0, include_pass_through=False)
          for d in (0, 1, 7, 21)]
    assert rs == sorted(rs)


def test_relaxed_vpass_reduces_disturb_rber(fast_model):
    nominal = fast_model.rber(8000, hours(1), 1e5, vpass_emulated_via_vref=True)
    relaxed = fast_model.rber(
        8000, hours(1), 1e5, vpass=0.98 * VPASS_NOMINAL, vpass_emulated_via_vref=True
    )
    assert relaxed < 0.7 * nominal


def test_emulated_vpass_has_no_pass_through_errors(fast_model):
    """The paper's Vref emulation shows the disturb effect only."""
    emulated = fast_model.rber(8000, hours(1), 0, vpass=470.0, vpass_emulated_via_vref=True)
    real = fast_model.rber(8000, hours(1), 0, vpass=470.0, include_pass_through=True)
    assert real > emulated


def test_breakdown_components_sum(fast_model):
    b = fast_model.rber_breakdown(8000, days(3), 5e4, vpass=490.0)
    assert b.total == pytest.approx(
        b.baseline + b.retention + b.read_disturb + b.pass_through, rel=1e-9
    )
    assert b.baseline > 0 and b.retention > 0 and b.read_disturb > 0
    assert b.pass_through >= 0


def test_exposure_equivalence(fast_model):
    """rber(reads, vpass) equals rber_at_exposure with the weighted count."""
    reads, vpass = 2e5, 0.99 * VPASS_NOMINAL
    direct = fast_model.rber(8000, days(1), reads, vpass=vpass, include_pass_through=False)
    via_exposure = fast_model.rber_at_exposure(
        8000, days(1), fast_model.exposure(reads, vpass)
    )
    assert direct == pytest.approx(via_exposure, rel=1e-12)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        FlashChannelModel(state_fractions=(0.5, 0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        FlashChannelModel(references=(300.0, 200.0, 100.0))
    with pytest.raises(ValueError):
        FlashChannelModel(leak_nodes=0)


def test_figure3_slope_calibration(fast_model):
    """Fitted slope at 8K P/E within 2x of the paper's 7.5e-9 per read."""
    reads = np.array([0.0, 2.5e4, 5e4, 7.5e4, 1e5])
    rber = np.array(
        [fast_model.rber(8000, hours(1), n, include_pass_through=False) for n in reads]
    )
    slope = np.polyfit(reads, rber, 1)[0]
    assert 7.5e-9 / 2 < slope < 7.5e-9 * 2
