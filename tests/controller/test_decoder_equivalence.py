"""RS vs. threshold decoder equivalence through the full engine.

Within capability the two engines must be indistinguishable: every page
the threshold model passes, the RS codec also corrects, raw bit errors
are popcounts of the same masks, and the summary dictionaries come out
bit-identical — under the serial, threaded, and process executors alike
(the RS mask path exercises different flash-block kernels than the
threshold count path, so executor equivalence is re-pinned here rather
than assumed from ``test_block_executor``).  Beyond capability the RS
engine reports what threshold cannot: nonzero ``miscorrected_pages`` —
silent data corruption — and the fault-pattern taxonomy of the pages
that failed.
"""

import numpy as np
import pytest

from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.ecc import EccConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

CONFIG = SsdConfig(blocks=12, pages_per_block=16, overprovision=0.25)
#: fresh cells at nominal Vpass: every page decodes under both engines.
FRESH = dict(bitlines_per_block=512, seed=5)


def _traces(footprint=300, n_ops=12_000, seed=11):
    rng = np.random.default_rng(seed)
    precondition = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.05), days(3.0), n_ops)),
        np.where(rng.random(n_ops) < 0.97, OP_READ, OP_WRITE).astype(np.int64),
        rng.integers(0, footprint, n_ops).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _run(backend_kwargs, executor="serial", ecc=None, fault_pattern=None):
    backend = FlashChipBackend(
        **backend_kwargs,
        executor=executor,
        **({} if ecc is None else {"ecc": ecc}),
        **({} if fault_pattern is None else {"fault_pattern": fault_pattern}),
    )
    engine = SimulationEngine(
        CONFIG, read_reclaim_threshold=20_000, backend=backend, batch=True
    )
    precondition, trace = _traces()
    engine.run_trace(precondition)
    stats = engine.run_trace(trace)
    return engine, stats


RS_ECC = EccConfig(decoder="rs", rs_n=255, rs_k=223)


def test_rs_summary_bit_identical_to_threshold_within_capability():
    threshold_engine, threshold_stats = _run(FRESH)
    rs_engine, rs_stats = _run(FRESH, ecc=RS_ECC)
    assert rs_engine.backend.summary() == threshold_engine.backend.summary()
    assert rs_stats == threshold_stats
    summary = rs_engine.backend.summary()
    # Not vacuous: real pages were checked and real bits corrected.
    assert summary["pages_checked"] > 0
    assert summary["corrected_bits"] > 0
    assert summary["uncorrectable_pages"] == 0
    assert summary["miscorrected_pages"] == 0


@pytest.mark.parametrize("executor", ["threaded:2", "process:2"])
def test_rs_decode_is_executor_independent(executor):
    serial_engine, serial_stats = _run(FRESH, ecc=RS_ECC)
    parallel_engine, parallel_stats = _run(FRESH, executor=executor, ecc=RS_ECC)
    assert parallel_engine.backend.summary() == serial_engine.backend.summary()
    assert parallel_stats == serial_stats


def test_weak_rs_code_reports_miscorrections():
    """A >t burst against a t=1 code yields nonzero miscorrection rate —
    the silent-data-corruption observable the threshold model cannot
    express (its only failure mode is detected-uncorrectable)."""
    weak = EccConfig(decoder="rs", rs_n=32, rs_k=30)
    engine, _ = _run(FRESH, ecc=weak, fault_pattern="burst4:0.2")
    summary = engine.backend.summary()
    assert summary["injected_faults"] > 0
    assert summary["miscorrected_pages"] > 0
    checked = summary["pages_checked"]
    assert 0.0 < summary["miscorrected_pages"] / checked < 1.0
    # Failing/miscorrected pages carry their taxonomy class.  Injected
    # bursts dominate; the residue of pages whose *natural* bit errors
    # land outside the burst window classifies as scattered.
    patterns = summary["fault_patterns"]
    burst_like = patterns["single"] + patterns["burst2"] + patterns["burst4"]
    assert burst_like > 0
    assert burst_like > patterns["scattered"]


@pytest.mark.parametrize("executor", ["threaded:2", "process:2"])
def test_fault_injection_is_executor_independent(executor):
    weak = EccConfig(decoder="rs", rs_n=32, rs_k=30)
    serial_engine, serial_stats = _run(
        FRESH, ecc=weak, fault_pattern="burst4:0.2"
    )
    parallel_engine, parallel_stats = _run(
        FRESH, executor=executor, ecc=weak, fault_pattern="burst4:0.2"
    )
    assert parallel_engine.backend.summary() == serial_engine.backend.summary()
    assert parallel_stats == serial_stats
    assert serial_engine.backend.summary()["injected_faults"] > 0


def test_threshold_with_injection_counts_but_cannot_miscorrect():
    """Fault injection composes with the threshold engine too (masks are
    decoded through the popcount path); it can fail pages but can never
    produce a miscorrection — that concept requires a real codec."""
    engine, _ = _run(FRESH, fault_pattern="scatter40:0.05")
    summary = engine.backend.summary()
    assert summary["injected_faults"] > 0
    assert summary["miscorrected_pages"] == 0


def test_scattered_faults_classify_as_scattered():
    weak = EccConfig(decoder="rs", rs_n=32, rs_k=30)
    engine, _ = _run(FRESH, ecc=weak, fault_pattern="scatter6:0.2")
    summary = engine.backend.summary()
    patterns = summary["fault_patterns"]
    assert summary["uncorrectable_pages"] + summary["miscorrected_pages"] > 0
    assert patterns["scattered"] > 0
