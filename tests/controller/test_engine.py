"""Unified simulation engine: backends, batching, and exact equivalence."""

import numpy as np
import pytest

from repro.controller import (
    CounterBackend,
    FlashChipBackend,
    PhysicsBackend,
    SimulationEngine,
    SsdConfig,
    SsdSimulator,
)
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

SMALL = SsdConfig(blocks=16, pages_per_block=32, overprovision=0.2)


def _mixed_trace(n_ops, read_fraction, duration_days, pages, seed=0):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0, days(duration_days), n_ops))
    ops = np.where(rng.random(n_ops) < read_fraction, OP_READ, OP_WRITE).astype(
        np.int64
    )
    lpns = rng.integers(0, pages, n_ops).astype(np.int64)
    return IoTrace(ts, ops, lpns, "mixed")


def test_backends_satisfy_protocol():
    assert isinstance(CounterBackend(), PhysicsBackend)
    assert isinstance(FlashChipBackend(), PhysicsBackend)


def test_ssd_simulator_is_the_engine():
    """The historical entry point is the unified engine."""
    assert issubclass(SsdSimulator, SimulationEngine)
    sim = SsdSimulator(SMALL)
    assert isinstance(sim.backend, CounterBackend)
    assert sim.batch


@pytest.mark.parametrize(
    "read_fraction,pages_frac,reclaim,seed",
    [
        (0.6, 0.5, None, 0),
        (0.9, 0.1, 150, 1),
        (0.5, 1.0, 100, 2),
        (0.99, 0.05, None, 3),
        (0.0, 0.7, None, 4),
    ],
)
def test_batched_counter_backend_reproduces_serial_stats_exactly(
    read_fraction, pages_frac, reclaim, seed
):
    """The windowed/vectorized path is bit-for-bit the per-op loop."""
    pages = max(1, int(SMALL.logical_pages * pages_frac))
    trace = _mixed_trace(20_000, read_fraction, 9.0, pages, seed)
    serial = SimulationEngine(
        SMALL, read_reclaim_threshold=reclaim, batch=False
    ).run_trace(trace)
    batched = SimulationEngine(
        SMALL, read_reclaim_threshold=reclaim, batch=True
    ).run_trace(trace)
    assert batched == serial


def test_dirty_reads_resolve_in_op_order():
    """Reads of a page written in the same window charge the pre-write
    block before the write, and the new block after it."""
    cfg = SsdConfig(blocks=8, pages_per_block=4, overprovision=0.45)
    ts = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
    ops = np.array([OP_WRITE, OP_READ, OP_WRITE, OP_READ, OP_READ], dtype=np.int64)
    lpns = np.zeros(5, dtype=np.int64)
    trace = IoTrace(ts, ops, lpns, "dirty")
    serial = SimulationEngine(cfg, batch=False)
    batched = SimulationEngine(cfg, batch=True)
    s = serial.run_trace(trace)
    b = batched.run_trace(trace)
    assert b == s
    assert np.array_equal(
        serial.ftl.reads_since_program, batched.ftl.reads_since_program
    )


def test_unmapped_reads_charge_no_pressure():
    sim = SimulationEngine(SMALL)
    trace = IoTrace(
        np.array([0.0, 1.0, 2.0]),
        np.array([OP_READ, OP_READ, OP_WRITE], dtype=np.int64),
        np.array([5, 6, 7], dtype=np.int64),
        "unmapped",
    )
    stats = sim.run_trace(trace)
    assert stats.unmapped_reads == 2
    assert stats.host_reads == 0
    assert int(sim.ftl.reads_since_program.sum()) == 0


def test_on_window_callback_sees_consistent_state():
    trace = _mixed_trace(8_000, 0.7, 5.0, SMALL.logical_pages // 2, seed=9)
    windows = []

    def check(engine):
        engine.ftl.check_invariants()
        windows.append(engine.now)

    SimulationEngine(SMALL, read_reclaim_threshold=300).run_trace(
        trace, on_window=check
    )
    # One callback per daily maintenance pass plus the final pass.
    assert len(windows) == int(trace.timestamps[-1] // days(1)) + 1


def test_pure_read_windows_are_vectorized_and_exact():
    """A write-free window takes the all-at-once flush path."""
    n = 5_000
    rng = np.random.default_rng(3)
    write_ts = np.linspace(0.0, days(0.1), 50)
    read_ts = np.sort(rng.uniform(days(1.5), days(2.5), n))
    trace = IoTrace(
        np.concatenate([write_ts, read_ts]),
        np.concatenate(
            [np.full(50, OP_WRITE), np.full(n, OP_READ)]
        ).astype(np.int64),
        np.concatenate([np.arange(50), rng.integers(0, 50, n)]).astype(np.int64),
        "read-heavy",
    )
    serial = SimulationEngine(SMALL, batch=False).run_trace(trace)
    batched = SimulationEngine(SMALL, batch=True).run_trace(trace)
    assert batched == serial
    assert batched.host_reads == n


def test_engine_batched_matches_serial_on_preconditioned_read_heavy_trace():
    """Large preconditioned hot-read run: the shape the batched path is
    built for stays exact.  (The >=10x wall-clock gate lives in
    benchmarks/bench_engine_throughput.py, not the unit suite.)"""
    cfg = SsdConfig(blocks=64, pages_per_block=128, overprovision=0.2)
    footprint = 4_000
    rng = np.random.default_rng(11)
    n = 200_000
    pre = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.1), days(6), n)),
        np.where(rng.random(n) < 0.99, OP_READ, OP_WRITE).astype(np.int64),
        rng.integers(0, footprint, n).astype(np.int64),
        "hot",
    )

    def run(batch):
        engine = SimulationEngine(cfg, read_reclaim_threshold=50_000, batch=batch)
        engine.run_trace(pre)
        return engine.run_trace(trace)

    assert run(True) == run(False)


def test_flash_chip_backend_binds_blocks_lazily():
    backend = FlashChipBackend(bitlines_per_block=256, seed=1)
    engine = SimulationEngine(SMALL, backend=backend, batch=True)
    trace = _mixed_trace(500, 0.5, 0.5, 40, seed=2)
    engine.run_trace(trace)
    assert 0 < len(backend._blocks) <= SMALL.blocks
    summary = backend.summary()
    assert summary["pages_checked"] > 0
    assert summary["data_loss_events"] == 0  # fresh blocks: nothing fails


def test_flash_chip_backend_serial_and_batched_agree_on_stats():
    """Physics decode granularity differs, but controller-visible stats
    (mapping, counters, maintenance) stay identical across modes."""
    trace = _mixed_trace(2_000, 0.8, 3.0, 60, seed=5)
    runs = []
    for batch in (False, True):
        backend = FlashChipBackend(bitlines_per_block=256, seed=3)
        engine = SimulationEngine(SMALL, backend=backend, batch=batch)
        runs.append(engine.run_trace(trace))
    assert runs[0] == runs[1]


def test_user_installed_observer_survives_batched_runs():
    """Batched window replay borrows the FTL observer hook; an observer
    the user installed keeps receiving events and stays installed."""
    from repro.controller import FtlObserver

    class Recorder(FtlObserver):
        def __init__(self):
            self.appends = 0
            self.erases = 0

        def on_append(self, block, page, lpn, old_ppn, now):
            self.appends += 1

        def on_erase(self, block, now):
            self.erases += 1

    trace = _mixed_trace(5_000, 0.5, 3.0, SMALL.logical_pages // 2, seed=8)
    counts = {}
    for batch in (False, True):
        engine = SimulationEngine(SMALL, batch=batch)
        recorder = Recorder()
        engine.ftl.observer = recorder
        engine.run_trace(trace)
        assert engine.ftl.observer is recorder
        counts[batch] = (recorder.appends, recorder.erases)
    assert counts[True] == counts[False]
    assert counts[True][0] > 0


def test_user_observer_does_not_disconnect_physics_backend():
    """Overwriting ftl.observer on a physics engine must not silently
    starve the backend of append events: the engine reclaims the hook
    and chains the user's observer."""
    from repro.controller import FtlObserver

    class Recorder(FtlObserver):
        def __init__(self):
            self.appends = 0

        def on_append(self, block, page, lpn, old_ppn, now):
            self.appends += 1

    backend = FlashChipBackend(bitlines_per_block=256, seed=1)
    engine = SimulationEngine(SMALL, backend=backend, batch=True)
    recorder = Recorder()
    engine.ftl.observer = recorder
    engine.run_trace(_mixed_trace(500, 0.5, 0.5, 40, seed=2))
    assert recorder.appends > 0
    assert backend.summary()["pages_checked"] > 0


def test_flash_chip_backend_rejects_odd_pages_per_block():
    backend = FlashChipBackend()
    with pytest.raises(ValueError):
        SimulationEngine(
            SsdConfig(blocks=16, pages_per_block=25, overprovision=0.3),
            backend=backend,
        )
