"""Remapping-based refresh scheduler."""

import pytest

from repro.controller.ftl import PageMappingFtl, SsdConfig
from repro.controller.refresh import RefreshScheduler
from repro.units import days

SMALL = SsdConfig(blocks=8, pages_per_block=16, overprovision=0.45)


def test_due_blocks_by_age():
    ftl = PageMappingFtl(SMALL)
    ftl.write(0, now=0.0)
    sched = RefreshScheduler(interval_days=7)
    assert len(sched.due_blocks(ftl, days(3))) == 0
    assert len(sched.due_blocks(ftl, days(8))) == 1


def test_refresh_moves_data_and_resets_age():
    ftl = PageMappingFtl(SMALL)
    for lpn in range(5):
        ftl.write(lpn, now=0.0)
    sched = RefreshScheduler(interval_days=7)
    refreshed = sched.run(ftl, days(8))
    assert refreshed
    assert sched.refreshed_pages >= 5
    # Data now lives in blocks programmed at refresh time.
    block, _ = ftl.read(0)
    assert ftl.program_time[block] == days(8)
    assert len(sched.due_blocks(ftl, days(8))) == 0
    for lpn in range(5):
        assert ftl.read(lpn) is not None


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        RefreshScheduler(interval_days=0)
