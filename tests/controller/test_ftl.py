"""Page-mapping FTL: mapping correctness, GC, wear leveling."""

import numpy as np
import pytest

from repro.controller.ftl import BlockState, GcStarvationError, PageMappingFtl, SsdConfig

SMALL = SsdConfig(blocks=8, pages_per_block=16, overprovision=0.45, gc_threshold_blocks=2)


def test_write_then_read_maps_consistently():
    ftl = PageMappingFtl(SMALL)
    loc = ftl.write(5)
    assert ftl.read(5) == loc
    ftl.check_invariants()


def test_read_unwritten_returns_none():
    ftl = PageMappingFtl(SMALL)
    assert ftl.read(3) is None


def test_unmapped_reads_charge_no_disturb_pressure():
    """Reads of never-written pages touch no flash: they count in their
    own bucket (not host_reads) and charge no block's reclaim counter."""
    ftl = PageMappingFtl(SMALL)
    for _ in range(25):
        assert ftl.read(3) is None
    assert ftl.unmapped_reads == 25
    assert ftl.host_reads == 0
    assert int(ftl.reads_since_program.sum()) == 0
    ftl.write(3)
    ftl.read(3)
    assert ftl.host_reads == 1
    assert int(ftl.reads_since_program.sum()) == 1


def test_read_many_matches_per_op_reads():
    a, b = PageMappingFtl(SMALL), PageMappingFtl(SMALL)
    for lpn in range(6):
        a.write(lpn)
        b.write(lpn)
    lpns = np.array([0, 1, 1, 5, 30, 2, 30], dtype=np.int64)
    mapped = a.read_many(lpns)
    for lpn in lpns:
        b.read(int(lpn))
    assert a.host_reads == b.host_reads == 5
    assert a.unmapped_reads == b.unmapped_reads == 2
    assert np.array_equal(a.reads_since_program, b.reads_since_program)
    assert mapped.size == 5


def test_overwrite_invalidates_old_copy():
    ftl = PageMappingFtl(SMALL)
    first = ftl.write(7)
    second = ftl.write(7)
    assert first != second
    assert ftl.read(7) == second
    assert ftl.valid_count.sum() == 1
    ftl.check_invariants()


def test_lpn_bounds_checked():
    ftl = PageMappingFtl(SMALL)
    with pytest.raises(IndexError):
        ftl.write(ftl.config.logical_pages)
    with pytest.raises(IndexError):
        ftl.read(-1)


def test_gc_reclaims_space_under_sustained_writes(rng):
    ftl = PageMappingFtl(SMALL)
    for lpn in rng.integers(0, ftl.config.logical_pages, 2000):
        ftl.write(int(lpn))
    assert ftl.gc_runs > 0
    assert ftl.write_amplification >= 1.0
    ftl.check_invariants()
    # All logical data still readable.
    mapped = np.flatnonzero(ftl.l2p != ftl.INVALID)
    for lpn in mapped[:50]:
        assert ftl.read(int(lpn)) is not None


def test_read_counts_accumulate_per_block():
    ftl = PageMappingFtl(SMALL)
    ftl.write(1)
    block, _ = ftl.read(1)
    before = ftl.reads_since_program[block]
    for _ in range(9):
        ftl.read(1)
    assert ftl.reads_since_program[block] == before + 9


def test_relocate_block_preserves_data():
    ftl = PageMappingFtl(SMALL)
    for lpn in range(10):
        ftl.write(lpn)
    victim = ftl.read(0)[0]
    moved = ftl.relocate_block(victim, now=1.0)
    assert moved > 0
    assert ftl.block_state[victim] == int(BlockState.FREE)
    for lpn in range(10):
        assert ftl.read(lpn) is not None
    ftl.check_invariants()


def test_relocate_resets_read_counter():
    ftl = PageMappingFtl(SMALL)
    ftl.write(1)
    for _ in range(100):
        ftl.read(1)
    block = ftl.read(1)[0]
    ftl.relocate_block(block, now=2.0)
    new_block = ftl.read(1)[0]
    assert ftl.reads_since_program[new_block] <= 2


def test_relocate_free_block_rejected():
    ftl = PageMappingFtl(SMALL)
    free = [b for b in range(SMALL.blocks) if ftl.block_state[b] == int(BlockState.FREE)]
    with pytest.raises(ValueError):
        ftl.relocate_block(free[0], now=0.0)


def test_wear_leveling_prefers_least_worn(rng):
    ftl = PageMappingFtl(SMALL)
    for lpn in rng.integers(0, ftl.config.logical_pages, 4000):
        ftl.write(int(lpn))
    pe = ftl.pe_cycles
    # Greedy GC + least-worn allocation keep wear within a tight band.
    assert pe.max() - pe.min() <= max(4, int(0.5 * pe.max()))


def test_invalid_configs():
    with pytest.raises(ValueError):
        SsdConfig(blocks=2)
    with pytest.raises(ValueError):
        SsdConfig(overprovision=0.9)
    with pytest.raises(ValueError):
        SsdConfig(gc_threshold_blocks=0)
