"""Page-mapping FTL: mapping correctness, GC, wear leveling."""

import numpy as np
import pytest

from repro.controller.ftl import BlockState, GcStarvationError, PageMappingFtl, SsdConfig

SMALL = SsdConfig(blocks=8, pages_per_block=16, overprovision=0.45, gc_threshold_blocks=2)


def test_write_then_read_maps_consistently():
    ftl = PageMappingFtl(SMALL)
    loc = ftl.write(5)
    assert ftl.read(5) == loc
    ftl.check_invariants()


def test_read_unwritten_returns_none():
    ftl = PageMappingFtl(SMALL)
    assert ftl.read(3) is None


def test_unmapped_reads_charge_no_disturb_pressure():
    """Reads of never-written pages touch no flash: they count in their
    own bucket (not host_reads) and charge no block's reclaim counter."""
    ftl = PageMappingFtl(SMALL)
    for _ in range(25):
        assert ftl.read(3) is None
    assert ftl.unmapped_reads == 25
    assert ftl.host_reads == 0
    assert int(ftl.reads_since_program.sum()) == 0
    ftl.write(3)
    ftl.read(3)
    assert ftl.host_reads == 1
    assert int(ftl.reads_since_program.sum()) == 1


def test_read_many_matches_per_op_reads():
    a, b = PageMappingFtl(SMALL), PageMappingFtl(SMALL)
    for lpn in range(6):
        a.write(lpn)
        b.write(lpn)
    lpns = np.array([0, 1, 1, 5, 30, 2, 30], dtype=np.int64)
    mapped = a.read_many(lpns)
    for lpn in lpns:
        b.read(int(lpn))
    assert a.host_reads == b.host_reads == 5
    assert a.unmapped_reads == b.unmapped_reads == 2
    assert np.array_equal(a.reads_since_program, b.reads_since_program)
    assert mapped.size == 5


def test_overwrite_invalidates_old_copy():
    ftl = PageMappingFtl(SMALL)
    first = ftl.write(7)
    second = ftl.write(7)
    assert first != second
    assert ftl.read(7) == second
    assert ftl.valid_count.sum() == 1
    ftl.check_invariants()


def test_lpn_bounds_checked():
    ftl = PageMappingFtl(SMALL)
    with pytest.raises(IndexError):
        ftl.write(ftl.config.logical_pages)
    with pytest.raises(IndexError):
        ftl.read(-1)


def test_gc_reclaims_space_under_sustained_writes(rng):
    ftl = PageMappingFtl(SMALL)
    for lpn in rng.integers(0, ftl.config.logical_pages, 2000):
        ftl.write(int(lpn))
    assert ftl.gc_runs > 0
    assert ftl.write_amplification >= 1.0
    ftl.check_invariants()
    # All logical data still readable.
    mapped = np.flatnonzero(ftl.l2p != ftl.INVALID)
    for lpn in mapped[:50]:
        assert ftl.read(int(lpn)) is not None


def test_read_counts_accumulate_per_block():
    ftl = PageMappingFtl(SMALL)
    ftl.write(1)
    block, _ = ftl.read(1)
    before = ftl.reads_since_program[block]
    for _ in range(9):
        ftl.read(1)
    assert ftl.reads_since_program[block] == before + 9


def test_relocate_block_preserves_data():
    ftl = PageMappingFtl(SMALL)
    for lpn in range(10):
        ftl.write(lpn)
    victim = ftl.read(0)[0]
    moved = ftl.relocate_block(victim, now=1.0)
    assert moved > 0
    assert ftl.block_state[victim] == int(BlockState.FREE)
    for lpn in range(10):
        assert ftl.read(lpn) is not None
    ftl.check_invariants()


def test_relocate_resets_read_counter():
    ftl = PageMappingFtl(SMALL)
    ftl.write(1)
    for _ in range(100):
        ftl.read(1)
    block = ftl.read(1)[0]
    ftl.relocate_block(block, now=2.0)
    new_block = ftl.read(1)[0]
    assert ftl.reads_since_program[new_block] <= 2


def test_relocate_free_block_rejected():
    ftl = PageMappingFtl(SMALL)
    free = [b for b in range(SMALL.blocks) if ftl.block_state[b] == int(BlockState.FREE)]
    with pytest.raises(ValueError):
        ftl.relocate_block(free[0], now=0.0)


def test_wear_leveling_prefers_least_worn(rng):
    ftl = PageMappingFtl(SMALL)
    for lpn in rng.integers(0, ftl.config.logical_pages, 4000):
        ftl.write(int(lpn))
    pe = ftl.pe_cycles
    # Greedy GC + least-worn allocation keep wear within a tight band.
    assert pe.max() - pe.min() <= max(4, int(0.5 * pe.max()))


def test_invalid_configs():
    with pytest.raises(ValueError):
        SsdConfig(blocks=2)
    with pytest.raises(ValueError):
        SsdConfig(overprovision=0.9)
    with pytest.raises(ValueError):
        SsdConfig(gc_threshold_blocks=0)


# ----------------------------------------------------------------------
# Batched relocation: bit-identical to the per-page append loop
# ----------------------------------------------------------------------


class _EventRecorder:
    """Observer recording every hook invocation, per-page granularity."""

    def __init__(self):
        self.events = []

    def on_append(self, block, page, lpn, old_ppn, now):
        self.events.append(("append", block, page, lpn, old_ppn, now))

    def on_open(self, block, now):
        self.events.append(("open", block, now))

    def on_erase(self, block, now):
        self.events.append(("erase", block, now))

    def on_relocate_begin(self, block, now):
        self.events.append(("relocate", block, now))

    def on_append_many(self, block, pages, lpns, old_ppns, now):
        # Deliberately rely on the FtlObserver default unrolling.
        from repro.controller.ftl import FtlObserver

        FtlObserver.on_append_many(self, block, pages, lpns, old_ppns, now)


def _relocate_per_page(ftl, block, now):
    """The historical per-page relocation loop (pre-batching reference)."""
    if ftl.block_state[block] == int(BlockState.FREE):
        raise ValueError(f"block {block} is free; nothing to relocate")
    if ftl.observer is not None:
        ftl.observer.on_relocate_begin(block, now)
    if block == ftl._active_block:
        ftl.block_state[block] = int(BlockState.CLOSED)
        ftl._active_block = ftl._allocate_block(now)
    start = block * ftl.config.pages_per_block
    lpns = ftl.p2l[start : start + ftl.config.pages_per_block]
    moved = 0
    for lpn in lpns[lpns != ftl.INVALID]:
        ftl._append(int(lpn), now)
        moved += 1
    ftl._erase(block, now)
    return moved


def _prepare_pair(seed=0, writes=600):
    """Two FTLs in an identical, GC-exercised state with recorders."""
    rng = np.random.default_rng(seed)
    lpns = rng.integers(0, SMALL.logical_pages, writes)
    pair = []
    for _ in range(2):
        ftl = PageMappingFtl(SMALL)
        recorder = _EventRecorder()
        ftl.observer = recorder
        for lpn in lpns:
            ftl.write(int(lpn), now=1.0)
        recorder.events.clear()
        pair.append((ftl, recorder))
    return pair


def _assert_same_state(a, b):
    assert np.array_equal(a.l2p, b.l2p)
    assert np.array_equal(a.p2l, b.p2l)
    assert np.array_equal(a.valid_count, b.valid_count)
    assert np.array_equal(a.block_state, b.block_state)
    assert np.array_equal(a.write_pointer, b.write_pointer)
    assert np.array_equal(a.pe_cycles, b.pe_cycles)
    assert np.array_equal(a.reads_since_program, b.reads_since_program)
    assert a._free_blocks == b._free_blocks
    assert a._active_block == b._active_block
    assert a.flash_writes == b.flash_writes


def test_batched_relocation_matches_per_page_loop():
    """relocate_block's bulk path == the per-page reference: same final
    state and the same per-page observer event sequence."""
    (batched, rec_b), (reference, rec_r) = _prepare_pair()
    victims = np.flatnonzero(batched.block_state == int(BlockState.CLOSED))[:3]
    for victim in victims:
        moved_b = batched.relocate_block(int(victim), now=2.0)
        moved_r = _relocate_per_page(reference, int(victim), now=2.0)
        assert moved_b == moved_r
    _assert_same_state(batched, reference)
    assert rec_b.events == rec_r.events
    batched.check_invariants()


def test_batched_relocation_spanning_multiple_destinations():
    """A relocation that overflows the open block closes it mid-move and
    continues into freshly allocated blocks, exactly like the loop."""
    (batched, rec_b), (reference, rec_r) = _prepare_pair(seed=7)
    # Nearly fill the active block so the victim's pages must span it.
    fill = SMALL.pages_per_block - int(
        batched.write_pointer[batched._active_block]
    ) - 2
    for i in range(max(fill, 0)):
        batched.write(i % SMALL.logical_pages, now=1.5)
        reference.write(i % SMALL.logical_pages, now=1.5)
    rec_b.events.clear()
    rec_r.events.clear()
    closed = np.flatnonzero(batched.block_state == int(BlockState.CLOSED))
    victim = int(closed[np.argmax(batched.valid_count[closed])])
    assert batched.valid_count[victim] > 2
    batched.relocate_block(victim, now=2.0)
    _relocate_per_page(reference, victim, now=2.0)
    _assert_same_state(batched, reference)
    assert rec_b.events == rec_r.events
    # The relocation really did cross a block boundary.
    open_events = [e for e in rec_b.events if e[0] == "open"]
    assert open_events, "victim should have spanned into a new destination"
    batched.check_invariants()


def test_batched_relocation_of_active_block():
    (batched, rec_b), (reference, rec_r) = _prepare_pair(seed=3)
    active = batched._active_block
    assert reference._active_block == active
    if batched.valid_count[active] == 0:
        batched.write(0, now=1.5)
        reference.write(0, now=1.5)
        rec_b.events.clear()
        rec_r.events.clear()
        active = batched._active_block
    batched.relocate_block(int(active), now=2.0)
    _relocate_per_page(reference, int(active), now=2.0)
    _assert_same_state(batched, reference)
    assert rec_b.events == rec_r.events
