"""Read-reclaim baseline mitigation."""

import pytest

from repro.controller.ftl import PageMappingFtl, SsdConfig
from repro.controller.read_reclaim import ReadReclaimPolicy

SMALL = SsdConfig(blocks=8, pages_per_block=16, overprovision=0.45)


def test_reclaim_triggers_at_threshold():
    ftl = PageMappingFtl(SMALL)
    ftl.write(0)
    policy = ReadReclaimPolicy(threshold_reads=100)
    for _ in range(99):
        ftl.read(0)
    assert len(policy.due_blocks(ftl)) == 0
    ftl.read(0)
    assert len(policy.due_blocks(ftl)) == 1
    reclaimed = policy.run(ftl, now=1.0)
    assert len(reclaimed) == 1
    assert policy.reclaimed_blocks == 1
    # The relocated block starts with a clean read counter.
    assert len(policy.due_blocks(ftl)) == 0
    assert ftl.read(0) is not None


def test_threshold_validation():
    with pytest.raises(ValueError):
        ReadReclaimPolicy(threshold_reads=0)
