"""Process-executor specifics: worker dispatch, the deferred write path,
and shared-memory lifecycle.

Bit-identity of `executor="process[:N]"` against serial is pinned by the
equivalence suite in ``test_block_executor.py``; this module covers what
is unique to the process tier: the pool's fork/ownership rules, the
parallel program path's RNG round-trip, and — the satellite the ISSUE
calls out — that no ``/dev/shm`` segment leaks on normal exit, on an
exception mid-run, or on a :class:`ScenarioFailure` inside a sweep.
"""

import os

import numpy as np
import pytest

from repro.controller import FlashChipBackend, ProcessExecutor, SimulationEngine, SsdConfig
from repro.controller.factory import run_scenario
from repro.parallel import SweepRunner
from repro.parallel.results import ScenarioFailure
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE
from repro.workloads.grid import BackendSpec, GeometrySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE

CONFIG = SsdConfig(blocks=12, pages_per_block=16, overprovision=0.25)


def _shm_entries():
    return set(os.listdir("/dev/shm"))


def _trace(n_ops=3_000, footprint=200, seed=13, read_fraction=0.9):
    rng = np.random.default_rng(seed)
    precondition = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.05), days(1.0), n_ops)),
        np.where(rng.random(n_ops) < read_fraction, OP_READ, OP_WRITE).astype(
            np.int64
        ),
        rng.integers(0, footprint, n_ops).astype(np.int64),
        "mixed",
    )
    return precondition, trace


def _run_engine(executor="process:2", **backend_kwargs):
    backend = FlashChipBackend(
        bitlines_per_block=128, seed=7, executor=executor, **backend_kwargs
    )
    engine = SimulationEngine(CONFIG, backend=backend)
    precondition, trace = _trace()
    engine.run_trace(precondition)
    stats = engine.run_trace(trace)
    summary = backend.summary()
    engine.close()
    return stats, summary, backend


# ----------------------------------------------------------------------
# Dispatch plumbing
# ----------------------------------------------------------------------


def test_process_executor_defaults_to_shm_arena():
    backend = FlashChipBackend(executor="process:2")
    assert backend.arena == "shm"
    serial = FlashChipBackend(executor="serial")
    assert serial.arena is None
    # A 1-worker process executor never forks, so no arena is forced.
    single = FlashChipBackend(executor="process:1")
    assert single.arena is None


def test_process_map_is_order_preserving_and_owner_bound():
    executor = ProcessExecutor(workers=2)
    try:
        # Single-payload calls bypass the pool entirely.
        assert executor.process_map(abs, [-3]) == [3]
        assert executor._pool is None
        owner_a, owner_b = object(), object()
        got = executor.process_map(abs, [-1, -2, -3], initargs=(owner_a,))
        assert got == [1, 2, 3]
        assert executor._pool is not None
        with pytest.raises(RuntimeError, match="another backend"):
            executor.process_map(abs, [-1, -2], initargs=(owner_b,))
    finally:
        executor.close()
    assert executor._pool is None
    executor.close()  # idempotent


def test_plain_map_runs_in_place():
    executor = ProcessExecutor(workers=4)
    calls = []
    assert executor.map(lambda t: calls.append(t) or t * 2, [1, 2, 3]) == [2, 4, 6]
    assert calls == [1, 2, 3]
    assert executor._pool is None  # map never forks


def test_deferred_programs_flush_at_every_observer(tmp_path):
    """A parallel backend queues programs; summary()/erase/rber flush
    them, so a write-only run still lands every wordline."""
    backend = FlashChipBackend(bitlines_per_block=64, seed=1, executor="threaded:2")
    engine = SimulationEngine(CONFIG, backend=backend)
    footprint = 40
    precondition, _ = _trace(footprint=footprint)
    engine.run_trace(precondition)  # write-only: nothing calls on_reads
    assert backend.summary()["bound_blocks"] > 0
    programmed = sum(
        int(fb.programmed.sum()) for fb in backend._blocks.values()
    )
    assert programmed >= footprint // 2
    assert not backend._pending_programs
    engine.close()


# ----------------------------------------------------------------------
# Shared-memory lifecycle (no leaked /dev/shm segments)
# ----------------------------------------------------------------------


def test_no_shm_leak_on_normal_engine_run():
    before = _shm_entries()
    stats, summary, backend = _run_engine("process:2")
    assert summary["pages_checked"] > 0
    assert _shm_entries() == before
    # Serial shm arenas clean up the same way.
    _run_engine("serial", arena="shm")
    assert _shm_entries() == before


def test_no_shm_leak_on_exception_mid_run():
    before = _shm_entries()
    backend = FlashChipBackend(bitlines_per_block=128, seed=7, executor="process:2")
    engine = SimulationEngine(CONFIG, backend=backend)
    precondition, trace = _trace()
    engine.run_trace(precondition)
    boom = RuntimeError("mid-run failure")

    def exploding_drain():
        raise boom

    backend.drain_relocations = exploding_drain
    with pytest.raises(RuntimeError, match="mid-run failure"):
        engine.run_trace(trace)
    # The engine surface contract: whoever drives the engine closes it
    # on the way out (run_scenario does this in a finally).
    engine.close()
    assert _shm_entries() == before


def test_no_shm_leak_when_pool_worker_is_killed():
    """SIGKILL an executor pool worker mid-campaign: the next dispatch
    surfaces BrokenProcessPool (not a hang), and closing the engine
    still tears down every /dev/shm segment — the killed worker only
    ever *attached* to the parent-owned arena, so cleanup is intact."""
    import signal

    from concurrent.futures.process import BrokenProcessPool

    before = _shm_entries()
    backend = FlashChipBackend(bitlines_per_block=128, seed=7, executor="process:2")
    engine = SimulationEngine(CONFIG, backend=backend)
    precondition, trace = _trace()
    engine.run_trace(precondition)
    engine.run_trace(trace)  # read flushes create the worker pool
    pool = backend.executor._pool
    assert pool is not None
    victim = next(iter(pool._processes.values()))
    os.kill(victim.pid, signal.SIGKILL)
    victim.join()
    with pytest.raises(BrokenProcessPool):
        while True:  # the next pooled flush must raise, never stall
            engine.run_trace(trace)
    engine.close()
    assert _shm_entries() == before


def test_no_shm_leak_on_scenario_failure_in_sweep():
    before = _shm_entries()
    good = ScenarioGrid(
        workloads=(WORKLOAD_SUITE["webmail"],),
        geometries=(GeometrySpec(blocks=12, pages_per_block=16, overprovision=0.25),),
        backends=(
            BackendSpec(
                kind="flash_chip", bitlines_per_block=128, executor="process:2"
            ),
        ),
        duration_days=0.01,
    ).scenarios()
    # Same scenario with an impossible geometry: GC starvation raises
    # inside run_scenario, after the backend (and its arena) exist.
    bad = ScenarioGrid(
        workloads=(WORKLOAD_SUITE["webmail"],),
        geometries=(GeometrySpec(blocks=3, pages_per_block=4, overprovision=0.01),),
        backends=(
            BackendSpec(
                kind="flash_chip", bitlines_per_block=128, executor="process:2"
            ),
        ),
        duration_days=0.05,
    ).scenarios()
    runner = SweepRunner(workers=1)
    report = runner.run(good)
    assert len(report.results) == 1
    with pytest.raises(ScenarioFailure):
        runner.run(bad)
    assert _shm_entries() == before


# ----------------------------------------------------------------------
# Scenario-level equivalence including the parallel program path
# ----------------------------------------------------------------------


def test_out_of_core_run_is_bit_identical_to_heap():
    """A tiny residency budget forces chunked execute/merge and constant
    spilling; the spill schedule must not change a bit."""
    heap_stats, heap_summary, _ = _run_engine("serial")
    ooc_stats, ooc_summary, _ = _run_engine(
        "serial", arena="mmap", resident_blocks=2
    )
    assert (ooc_stats, ooc_summary) == (heap_stats, heap_summary)


def test_scenario_equivalence_with_write_heavy_workload():
    """Writes exercise the deferred/parallel program path hard (GC
    relocations included); the result must still match serial bits."""
    geometry = GeometrySpec(blocks=12, pages_per_block=16, overprovision=0.25)

    def scenario(executor):
        return ScenarioGrid(
            workloads=(WORKLOAD_SUITE["wdev_0"],),
            geometries=(geometry,),
            backends=(
                BackendSpec(
                    kind="flash_chip",
                    bitlines_per_block=128,
                    initial_pe_cycles=6000,
                    executor=executor,
                ),
            ),
            duration_days=0.02,
            record_trajectory=True,
        ).scenarios()[0]

    serial = run_scenario(scenario("serial"))
    process = run_scenario(scenario("process:2"))
    assert serial == process
