"""The vectorized FlashChipBackend read path is bit-identical to the
scalar reference.

`_scalar_on_reads` below is the pre-vectorization `on_reads` loop,
preserved verbatim as an executable specification: a full engine run with
it monkeypatched in must produce exactly the same backend summary, run
stats, and recovery relocations as the shipping vectorized path.  The
golden-summary tests additionally pin today's behavior to values captured
*before* the vectorization landed, so a silent semantic drift in either
path cannot hide.
"""

import numpy as np
import pytest

from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE


def _scalar_on_reads(backend, ppns, now):
    """The per-page reference decode loop (PR 1 semantics)."""
    if ppns.size == 0:
        return
    pages_per_block = backend.ftl.config.pages_per_block
    unique_ppns, counts = np.unique(ppns, return_counts=True)
    blocks = unique_ppns // pages_per_block
    pages = unique_ppns % pages_per_block
    wordlines = pages // 2
    for block in np.unique(blocks):
        in_block = blocks == block
        fb = backend.block(int(block))
        fb.record_reads(wordlines[in_block], counts[in_block], backend.vpass)
    escalated_blocks = set()
    rescued_wordlines = set()
    for block, page, wordline in zip(blocks, pages, wordlines):
        block = int(block)
        if block in escalated_blocks:
            continue
        fb = backend._blocks[block]
        if not fb.programmed[wordline]:
            continue
        result = backend.decoder.check_page(fb, int(page), now, backend.vpass)
        backend.pages_checked += 1
        if result.success:
            backend.corrected_bits += result.raw_errors
            continue
        backend.uncorrectable_pages += 1
        backend._escalate(block, int(wordline), now, rescued_wordlines)
        escalated_blocks.add(block)


def _traces(footprint=300, n_ops=20_000, seed=11):
    rng = np.random.default_rng(seed)
    precondition = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.05), days(3.0), n_ops)),
        np.where(rng.random(n_ops) < 0.97, OP_READ, OP_WRITE).astype(np.int64),
        rng.integers(0, footprint, n_ops).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _run(backend_kwargs, batch=True, scalar_reference=False, n_ops=20_000):
    config = SsdConfig(blocks=12, pages_per_block=16, overprovision=0.25)
    backend = FlashChipBackend(**backend_kwargs)
    if scalar_reference:
        backend.on_reads = lambda ppns, now: _scalar_on_reads(backend, ppns, now)
    engine = SimulationEngine(
        config, read_reclaim_threshold=20_000, backend=backend, batch=batch
    )
    precondition, trace = _traces(n_ops=n_ops)
    engine.run_trace(precondition)
    stats = engine.run_trace(trace)
    return engine, stats


FRESH = dict(bitlines_per_block=512, seed=5)
#: heavy wear + relaxed Vpass: exercises cutoff masks, uncorrectable
#: pages, and the RDR escalation path.
WORN = dict(bitlines_per_block=512, seed=5, initial_pe_cycles=12000, vpass=500.0)


@pytest.mark.parametrize("backend_kwargs", [FRESH, WORN], ids=["fresh", "worn"])
def test_vectorized_on_reads_matches_scalar_reference(backend_kwargs):
    vectorized, stats_v = _run(backend_kwargs, n_ops=10_000)
    reference, stats_r = _run(backend_kwargs, scalar_reference=True, n_ops=10_000)
    assert vectorized.backend.summary() == reference.backend.summary()
    assert stats_v == stats_r
    assert vectorized.recovery_relocations == reference.recovery_relocations


# Golden summaries captured on the pre-vectorization implementation (same
# traces, same seeds).  The vectorized path must keep reproducing them.
GOLDEN_BATCHED = {
    "fresh": {
        "backend": "flash_chip",
        "bound_blocks": 12,
        "pages_checked": 18472,
        "corrected_bits": 329,
        "uncorrectable_pages": 0,
        "miscorrected_pages": 0,
        "injected_faults": 0,
        "fault_patterns": {"single": 0, "burst2": 0, "burst4": 0, "scattered": 0},
        "rdr_attempts": 0,
        "rdr_recovered": 0,
        "data_loss_events": 0,
    },
    "worn": {
        "backend": "flash_chip",
        "bound_blocks": 12,
        "pages_checked": 16930,
        "corrected_bits": 2750,
        "uncorrectable_pages": 138,
        "miscorrected_pages": 0,
        "injected_faults": 0,
        "fault_patterns": {"single": 0, "burst2": 0, "burst4": 0, "scattered": 0},
        "rdr_attempts": 138,
        "rdr_recovered": 0,
        "data_loss_events": 138,
    },
}

GOLDEN_SERIAL_WORN = {
    "backend": "flash_chip",
    "bound_blocks": 12,
    "pages_checked": 7739,
    "corrected_bits": 1357,
    "uncorrectable_pages": 51,
    "miscorrected_pages": 0,
    "injected_faults": 0,
    "fault_patterns": {"single": 0, "burst2": 0, "burst4": 0, "scattered": 0},
    "rdr_attempts": 51,
    "rdr_recovered": 0,
    "data_loss_events": 51,
}


def test_summary_identical_to_pre_vectorization_golden_fresh():
    engine, stats = _run(FRESH, n_ops=30_000)
    assert engine.backend.summary() == GOLDEN_BATCHED["fresh"]
    assert (stats.host_reads, stats.host_writes, stats.gc_runs) == (29094, 1206, 280)


def test_summary_identical_to_pre_vectorization_golden_worn():
    engine, stats = _run(WORN, n_ops=30_000)
    assert engine.backend.summary() == GOLDEN_BATCHED["worn"]
    assert (stats.host_reads, stats.host_writes, stats.gc_runs) == (29094, 1206, 250)
    assert engine.recovery_relocations == 137


def test_summary_identical_to_pre_vectorization_golden_serial():
    engine, stats = _run(WORN, batch=False, n_ops=8_000)
    assert engine.backend.summary() == GOLDEN_SERIAL_WORN
    assert (stats.host_reads, stats.host_writes, stats.gc_runs) == (7739, 561, 88)
    assert engine.recovery_relocations == 51
