"""SSD simulator end-to-end on small traces."""

import numpy as np
import pytest

from repro.controller.ftl import SsdConfig
from repro.controller.ssd import SsdSimulator
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

SMALL = SsdConfig(blocks=16, pages_per_block=32, overprovision=0.2)


def _trace(n_ops: int, read_fraction: float, duration_days: float, pages: int, seed=0):
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0, days(duration_days), n_ops))
    ops = np.where(rng.random(n_ops) < read_fraction, OP_READ, OP_WRITE).astype(np.int64)
    lpns = rng.integers(0, pages, n_ops)
    return IoTrace(ts, ops, lpns.astype(np.int64), "test")


def test_run_trace_accounts_operations():
    sim = SsdSimulator(SMALL)
    trace = _trace(5000, 0.6, 2.0, SMALL.logical_pages // 2)
    stats = sim.run_trace(trace)
    # Reads of never-written pages touch no flash; they are accounted
    # separately so they cannot inflate disturb pressure.
    assert stats.host_reads + stats.host_writes + stats.unmapped_reads == 5000
    assert stats.unmapped_reads > 0
    assert stats.write_amplification >= 1.0
    sim.ftl.check_invariants()


def test_refresh_runs_on_old_data():
    """Data written once and then only read must get refreshed at 7 days."""
    sim = SsdSimulator(SMALL, refresh_interval_days=7)
    n_writes, n_reads = 100, 2000
    write_ts = np.linspace(0.0, days(0.1), n_writes)
    read_ts = np.linspace(days(0.2), days(10.0), n_reads)
    rng = np.random.default_rng(2)
    trace = IoTrace(
        np.concatenate([write_ts, read_ts]),
        np.concatenate(
            [np.full(n_writes, OP_WRITE), np.full(n_reads, OP_READ)]
        ).astype(np.int64),
        np.concatenate(
            [np.arange(n_writes), rng.integers(0, n_writes, n_reads)]
        ).astype(np.int64),
        "write-once-read-many",
    )
    stats = sim.run_trace(trace)
    assert stats.refreshed_blocks > 0


def test_read_reclaim_engages_for_hot_reads():
    sim = SsdSimulator(SMALL, read_reclaim_threshold=200)
    rng = np.random.default_rng(1)
    n = 4000
    ts = np.sort(rng.uniform(0, days(4), n))
    ops = np.full(n, OP_READ, dtype=np.int64)
    ops[:10] = OP_WRITE
    lpns = np.zeros(n, dtype=np.int64)  # hammer one page
    ts.sort()
    stats = sim.run_trace(IoTrace(ts, ops, lpns, "hot"))
    assert stats.reclaimed_blocks >= 3
    # Reclaim caps the exposure at the threshold plus at most one day's
    # reads (~1000/day here) accumulated between maintenance passes.
    assert stats.peak_block_reads_per_interval <= 200 + 1100


def test_peak_interval_reads_tracked():
    sim = SsdSimulator(SMALL, refresh_interval_days=7)
    trace = _trace(3000, 0.9, 3.0, SMALL.logical_pages // 8)
    stats = sim.run_trace(trace)
    assert stats.peak_block_reads_per_interval > 0


def test_invalid_maintenance_period():
    with pytest.raises(ValueError):
        SsdSimulator(SMALL, maintenance_period_days=0.0)
