"""Static-binning read-pressure statistics."""

import numpy as np
import pytest

from repro.controller.stats import (
    block_read_pressure,
    hottest_block_reads_per_day,
    read_pressure_percentiles,
)
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE


def _trace():
    ts = np.linspace(0, days(2), 1000)
    ops = np.full(1000, OP_READ, dtype=np.int64)
    ops[::10] = OP_WRITE
    lpns = np.concatenate([np.zeros(500), np.arange(500) * 7]).astype(np.int64)
    return IoTrace(ts, ops, lpns, "t")


def test_pressure_counts_reads_only():
    trace = _trace()
    pressure = block_read_pressure(trace, pages_per_block=64)
    assert pressure.sum() == int((trace.ops == OP_READ).sum())


def test_hottest_block_is_the_hammered_one():
    trace = _trace()
    pressure = block_read_pressure(trace, pages_per_block=64)
    assert pressure.argmax() == 0  # lpn 0 hammered
    per_day = hottest_block_reads_per_day(trace, 64)
    assert per_day == pytest.approx(pressure.max() / 2.0, rel=0.01)


def test_percentiles_ordered():
    trace = _trace()
    p = read_pressure_percentiles(trace, 64)
    assert p[50.0] <= p[90.0] <= p[99.0] <= p[100.0]


def test_validation():
    trace = _trace()
    with pytest.raises(ValueError):
        block_read_pressure(trace, 0)
