"""Serial vs. threaded block-group executors are bit-identical.

The contract under test (docs/architecture.md, "The block-group
executor"): `FlashChipBackend.on_reads` splits every flush into pure
per-block tasks plus a deterministic ordered merge, so the executor
choice — `"serial"`, `"threaded[:N]"`, `"process[:N]"` — cannot change a
single bit of the engine summary, the backend counters, the per-block
device state, the relocation order, or the RDR escalation bookkeeping.
The worn/relaxed-Vpass configuration drives the uncorrectable-page path
(including the skip of later pages of a failing block's flush), so the
equivalence covers escalation, not just the happy path.
"""

import numpy as np
import pytest

from repro.controller import (
    CounterBackend,
    FlashChipBackend,
    ProcessExecutor,
    SerialExecutor,
    SimulationEngine,
    SsdConfig,
    ThreadedExecutor,
    resolve_executor,
)
from repro.controller.executor import parse_executor_spec
from repro.controller.factory import run_scenario
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE
from repro.workloads.grid import BackendSpec, GeometrySpec, PolicySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE

CONFIG = SsdConfig(blocks=12, pages_per_block=16, overprovision=0.25)
#: fresh cells at nominal Vpass: the failure-free decode path.
FRESH = dict(bitlines_per_block=512, seed=5)
#: heavy wear + relaxed Vpass: uncorrectable pages, RDR escalation, and
#: the skip of later pages of a failing block's flush.
WORN = dict(bitlines_per_block=512, seed=5, initial_pe_cycles=12000, vpass=500.0)


def _traces(footprint=300, n_ops=12_000, seed=11):
    rng = np.random.default_rng(seed)
    precondition = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.05), days(3.0), n_ops)),
        np.where(rng.random(n_ops) < 0.97, OP_READ, OP_WRITE).astype(np.int64),
        rng.integers(0, footprint, n_ops).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _run(backend_kwargs, executor, batch=True):
    backend = FlashChipBackend(**backend_kwargs, executor=executor)
    relocation_log: list[int] = []
    inner_drain = backend.drain_relocations

    def logging_drain():
        pending = inner_drain()
        relocation_log.extend(pending)
        return pending

    backend.drain_relocations = logging_drain
    engine = SimulationEngine(
        CONFIG, read_reclaim_threshold=20_000, backend=backend, batch=batch
    )
    precondition, trace = _traces()
    engine.run_trace(precondition)
    stats = engine.run_trace(trace)
    return engine, stats, relocation_log


def _per_block_state(backend):
    """Every per-block observable the executor could possibly perturb."""
    return {
        block_id: (
            fb.pe_cycles,
            fb.total_reads,
            fb.reads_targeted.tolist(),
            fb.disturb_exposure().tolist(),
            fb.programmed.tolist(),
            fb.voltage_epoch,
        )
        for block_id, fb in sorted(backend._blocks.items())
    }


@pytest.mark.parametrize("backend_kwargs", [FRESH, WORN], ids=["fresh", "worn"])
@pytest.mark.parametrize("executor", ["threaded", "threaded:2", "process:2"])
def test_parallel_executor_bit_identical_to_serial(backend_kwargs, executor):
    serial_engine, serial_stats, serial_relocs = _run(backend_kwargs, "serial")
    threaded_engine, threaded_stats, threaded_relocs = _run(
        backend_kwargs, executor
    )
    assert threaded_engine.backend.summary() == serial_engine.backend.summary()
    assert threaded_stats == serial_stats
    # Relocation *order* (not just count): the merge queues escalated
    # blocks in ascending-block flush order, executor-independent.
    assert threaded_relocs == serial_relocs
    assert (
        threaded_engine.recovery_relocations == serial_engine.recovery_relocations
    )
    assert _per_block_state(threaded_engine.backend) == _per_block_state(
        serial_engine.backend
    )


def test_worn_path_actually_escalates():
    """The equivalence above must cover the uncorrectable/RDR/skip path,
    not vacuously pass on a failure-free run."""
    engine, _, relocs = _run(WORN, "threaded:2")
    summary = engine.backend.summary()
    assert summary["uncorrectable_pages"] > 0
    assert summary["rdr_attempts"] > 0
    assert relocs, "escalation should queue relocations"
    # Skip path: a failing block's later pages are not decoded that
    # flush, so fewer pages are checked than a failure-free run checks.
    fresh_engine, _, _ = _run(FRESH, "threaded:2")
    assert summary["pages_checked"] < fresh_engine.backend.summary()["pages_checked"]


@pytest.mark.parametrize("executor", ["threaded:2", "process:2"])
def test_per_op_reference_loop_supports_executors(executor):
    serial_engine, serial_stats, _ = _run(WORN, "serial", batch=False)
    parallel_engine, parallel_stats, _ = _run(WORN, executor, batch=False)
    assert parallel_engine.backend.summary() == serial_engine.backend.summary()
    assert parallel_stats == serial_stats


def test_executor_equivalence_through_scenarios_both_backends():
    """Grid-level equivalence: a flash-chip scenario produces the same
    ScenarioResult under both executors (same scenario id, same seeds —
    the executor never enters the id), and the counter backend is
    executor-oblivious by construction."""
    workload = WORKLOAD_SUITE["webmail"]
    geometry = GeometrySpec(blocks=16, pages_per_block=32, overprovision=0.2)
    policy = PolicySpec(name="reclaim", read_reclaim_threshold=5_000)

    def scenario(backend_spec):
        return ScenarioGrid(
            workloads=(workload,),
            geometries=(geometry,),
            policies=(policy,),
            backends=(backend_spec,),
            duration_days=0.03,
            record_trajectory=True,
        ).scenarios()[0]

    flash = dict(kind="flash_chip", bitlines_per_block=256, initial_pe_cycles=8000)
    serial_result = run_scenario(scenario(BackendSpec(**flash)))
    threaded_result = run_scenario(
        scenario(BackendSpec(**flash, executor="threaded:2"))
    )
    assert serial_result == threaded_result
    process_result = run_scenario(
        scenario(BackendSpec(**flash, executor="process:2"))
    )
    assert serial_result == process_result
    counter_serial = run_scenario(scenario(BackendSpec(kind="counter")))
    counter_threaded = run_scenario(
        scenario(BackendSpec(kind="counter", executor="threaded:2"))
    )
    assert counter_serial == counter_threaded


# ----------------------------------------------------------------------
# Executor plumbing
# ----------------------------------------------------------------------


def test_parse_executor_spec():
    assert parse_executor_spec("serial") == ("serial", None)
    assert parse_executor_spec("threaded") == ("threaded", None)
    assert parse_executor_spec("threaded:3") == ("threaded", 3)
    assert parse_executor_spec("process") == ("process", None)
    assert parse_executor_spec("process:4") == ("process", 4)
    for bad in ("serial:2", "serial:", "threaded:", "threaded:0", "threaded:x",
                "process:", "process:0", "process:x", "fibers"):
        with pytest.raises(ValueError):
            parse_executor_spec(bad)


def test_resolve_executor():
    assert isinstance(resolve_executor(None), SerialExecutor)
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    threaded = resolve_executor("threaded:3")
    assert isinstance(threaded, ThreadedExecutor) and threaded.workers == 3
    process = resolve_executor("process:2")
    assert isinstance(process, ProcessExecutor) and process.workers == 2
    ready = ThreadedExecutor(workers=2)
    assert resolve_executor(ready) is ready
    with pytest.raises(TypeError):
        resolve_executor(42)


def test_threaded_executor_maps_in_order_and_reuses_pool():
    executor = ThreadedExecutor(workers=3)
    try:
        items = list(range(25))
        assert executor.map(lambda x: x * x, items) == [x * x for x in items]
        pool = executor._pool
        assert pool is not None
        assert executor.map(lambda x: -x, items) == [-x for x in items]
        assert executor._pool is pool, "pool should persist across flushes"
        # Single-task flushes bypass the pool (the per-op loop's shape).
        assert executor.map(lambda x: x + 1, [41]) == [42]
    finally:
        executor.close()
    assert executor._pool is None
    executor.close()  # idempotent


def test_backend_spec_validates_executor():
    assert BackendSpec(executor="threaded:4").executor == "threaded:4"
    assert BackendSpec(executor="process:4").executor == "process:4"
    # The grid-level check must reject exactly what parse_executor_spec
    # rejects — a spec that passes grid construction but fails in a
    # worker would surface as a mid-sweep ScenarioFailure instead.
    for bad in ("serial:2", "serial:", "threaded:", "threaded:0",
                "process:", "process:0", "pool"):
        with pytest.raises(ValueError):
            BackendSpec(executor=bad)


def test_executor_is_excluded_from_labels_and_ids():
    """The executor is an execution knob: it must never perturb scenario
    ids (and therefore derived seeds) — that is exactly what makes the
    serial/threaded results comparable bit-for-bit."""
    base = BackendSpec(kind="flash_chip", initial_pe_cycles=500)
    threaded = BackendSpec(
        kind="flash_chip", initial_pe_cycles=500, executor="threaded:2"
    )
    assert base.label == threaded.label
    with pytest.raises(ValueError, match="distinct labels"):
        ScenarioGrid(
            workloads=(WORKLOAD_SUITE["webmail"],),
            backends=(base, threaded),
        )
