"""Vpass Tuning mechanism: margins, search, fallback, daily actions."""

import pytest

from repro.core import TunerConfig, VpassTuner
from repro.ecc import DEFAULT_ECC
from repro.units import VPASS_NOMINAL


class FakeBlock:
    """Scriptable TunableBlock: extra errors follow a step function of
    vpass so the expected search outcome is known exactly."""

    def __init__(self, mee: int, page_bits: int = 65536, error_scale: float = 500.0):
        self.mee = mee
        self._page_bits = page_bits
        self.error_scale = error_scale
        self.measurements = 0

    @property
    def page_bits(self) -> int:
        return self._page_bits

    def measure_worst_page_errors(self) -> int:
        return self.mee

    def measure_extra_errors(self, vpass: float) -> int:
        self.measurements += 1
        reduction = max(VPASS_NOMINAL - vpass, 0.0)
        # Quadratic growth in relaxation depth.
        return int(self.error_scale * (reduction / 32.0) ** 2)


def test_margin_formula():
    tuner = VpassTuner()
    block = FakeBlock(mee=10)
    mee, margin = tuner.available_margin(block)
    assert mee == 10
    assert margin == DEFAULT_ECC.usable_capability_bits(65536) - 10


def test_full_tune_finds_deepest_safe_vpass():
    tuner = VpassTuner(config=TunerConfig(step=2.0))
    block = FakeBlock(mee=10)
    outcome = tuner.tune_after_refresh(block)
    margin = outcome.margin
    # The found vpass respects the margin; one step deeper would not.
    assert block.measure_extra_errors(outcome.vpass) <= margin
    assert block.measure_extra_errors(outcome.vpass - 2.0) > margin
    assert outcome.vpass < VPASS_NOMINAL
    assert not outcome.fell_back


def test_fallback_on_exhausted_margin():
    tuner = VpassTuner()
    block = FakeBlock(mee=10_000)  # far beyond usable capability
    outcome = tuner.tune_after_refresh(block)
    assert outcome.fell_back
    assert outcome.vpass == VPASS_NOMINAL
    assert outcome.margin < 0


def test_min_vpass_floor_respected():
    tuner = VpassTuner(config=TunerConfig(step=2.0, min_vpass=500.0))
    block = FakeBlock(mee=0, error_scale=0.0)  # no extra errors ever
    outcome = tuner.tune_after_refresh(block)
    assert outcome.vpass >= 500.0 - 1e-9


def test_daily_verify_raises_vpass_when_margin_shrinks():
    tuner = VpassTuner(config=TunerConfig(step=2.0))
    block = FakeBlock(mee=10)
    tuned = tuner.tune_after_refresh(block)
    # Errors grow: margin collapses to a sliver.
    block.mee = DEFAULT_ECC.usable_capability_bits(65536) - 2
    verified = tuner.verify_daily(block, tuned.vpass)
    assert verified.vpass > tuned.vpass
    assert verified.extra_errors <= verified.margin


def test_daily_verify_keeps_vpass_when_margin_holds():
    tuner = VpassTuner(config=TunerConfig(step=2.0))
    block = FakeBlock(mee=10)
    tuned = tuner.tune_after_refresh(block)
    verified = tuner.verify_daily(block, tuned.vpass)
    assert verified.vpass == tuned.vpass


def test_daily_verify_falls_back_on_negative_margin():
    tuner = VpassTuner()
    block = FakeBlock(mee=10_000)
    outcome = tuner.verify_daily(block, 490.0)
    assert outcome.fell_back
    assert outcome.vpass == VPASS_NOMINAL


def test_reduction_percent():
    tuner = VpassTuner(config=TunerConfig(step=VPASS_NOMINAL * 0.01))
    block = FakeBlock(mee=10)
    outcome = tuner.tune_after_refresh(block)
    assert outcome.reduction_percent == pytest.approx(
        100 * (1 - outcome.vpass / VPASS_NOMINAL)
    )


def test_invalid_configs():
    with pytest.raises(ValueError):
        TunerConfig(step=0.0)
    with pytest.raises(ValueError):
        TunerConfig(min_vpass=600.0)
