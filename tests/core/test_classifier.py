"""Otsu intersection threshold for RDR's prone/resistant split."""

import numpy as np
import pytest

from repro.core.classifier import intersection_threshold


def test_separates_two_clear_modes(rng):
    low = rng.normal(0.5, 0.3, 3000)
    high = rng.normal(8.0, 1.0, 1000)
    t = intersection_threshold(np.concatenate([low, high]))
    assert 1.5 < t < 6.5


def test_classification_accuracy(rng):
    low = rng.normal(0.0, 0.5, 2000)
    high = rng.normal(10.0, 1.0, 2000)
    samples = np.concatenate([low, high])
    labels = np.concatenate([np.zeros(2000), np.ones(2000)])
    t = intersection_threshold(samples)
    predicted = samples > t
    accuracy = (predicted == labels.astype(bool)).mean()
    assert accuracy > 0.99


def test_degenerate_inputs():
    assert intersection_threshold(np.array([3.0])) == 3.0
    assert intersection_threshold(np.full(100, 2.5)) == 2.5
    with pytest.raises(ValueError):
        intersection_threshold(np.array([]))


def test_quantized_samples(rng):
    """Works on retry-step-quantized shifts (multiples of 2)."""
    low = np.zeros(500)
    high = np.full(200, 6.0)
    t = intersection_threshold(np.concatenate([low, high]))
    assert 0.0 < t < 6.0
