"""Worst-page prediction and the Monte-Carlo tunable block adapter."""

import pytest

from repro.core import MonteCarloTunableBlock, predict_worst_page, VpassTuner
from repro.flash import FlashBlock, FlashGeometry
from repro.rng import RngFactory
from repro.units import VPASS_NOMINAL

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=4096)


def test_predict_worst_page_in_range():
    block = FlashBlock(GEOMETRY, RngFactory(1))
    block.cycle_wear_to(8000)
    page = predict_worst_page(block)
    assert 0 <= page < GEOMETRY.pages_per_block


def test_worst_page_has_max_errors():
    block = FlashBlock(GEOMETRY, RngFactory(2))
    block.cycle_wear_to(12000)
    page = predict_worst_page(block)
    errors = [
        block.page_error_count(p, record_disturb=False)
        for p in range(GEOMETRY.pages_per_block)
    ]
    assert errors[page] == max(errors)


def test_mc_tunable_block_protocol():
    block = FlashBlock(GEOMETRY, RngFactory(3))
    block.cycle_wear_to(8000)
    tunable = MonteCarloTunableBlock(block)
    assert tunable.page_bits == GEOMETRY.bits_per_page
    assert tunable.measure_worst_page_errors() >= 0
    assert tunable.measure_extra_errors(VPASS_NOMINAL) == 0
    assert tunable.measure_extra_errors(455.0) > 0


def test_tuner_runs_on_mc_block():
    """End to end: the real tuner against the real simulated chip."""
    block = FlashBlock(GEOMETRY, RngFactory(4))
    block.cycle_wear_to(8000)
    tunable = MonteCarloTunableBlock(block)
    outcome = VpassTuner().tune_after_refresh(tunable)
    assert VPASS_NOMINAL * 0.90 <= outcome.vpass <= VPASS_NOMINAL
    if not outcome.fell_back:
        assert outcome.extra_errors <= outcome.margin
