"""Read Disturb Recovery on the Monte-Carlo block."""

import pytest

from repro.core import RdrConfig, ReadDisturbRecovery
from repro.flash import FlashBlock, FlashGeometry
from repro.rng import RngFactory

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=8192)


def _disturbed_block(reads: int, seed: int = 3, pe: int = 8000) -> FlashBlock:
    block = FlashBlock(GEOMETRY, RngFactory(seed))
    block.cycle_wear_to(pe)
    block.program_random()
    block.apply_read_disturb(reads, target_wordline=1)
    return block


def test_rdr_recovers_heavily_disturbed_wordline():
    block = _disturbed_block(1_000_000)
    outcome = ReadDisturbRecovery().recover_wordline(block, 0)
    assert outcome.bit_errors_after < outcome.bit_errors_before
    assert outcome.reduction_fraction > 0.2
    assert outcome.corrected_to_lower > 0


def test_rdr_harmless_without_disturb():
    block = _disturbed_block(0)
    outcome = ReadDisturbRecovery().recover_wordline(block, 0)
    # The separation guard must keep RDR from inventing corrections.
    assert outcome.bit_errors_after <= outcome.bit_errors_before + 1
    assert outcome.skipped_boundaries >= 1


def test_rdr_reduction_grows_with_disturb():
    low = ReadDisturbRecovery().recover_wordline(_disturbed_block(150_000), 0)
    high = ReadDisturbRecovery().recover_wordline(_disturbed_block(1_000_000), 0)
    assert high.reduction_fraction > low.reduction_fraction


def test_rdr_deterministic_for_identical_blocks():
    """Recovery is a pure function of the chip state (determinism check)."""
    a = ReadDisturbRecovery().recover_wordline(_disturbed_block(500_000, seed=9), 0)
    b = ReadDisturbRecovery().recover_wordline(_disturbed_block(500_000, seed=9), 0)
    assert a.bit_errors_before == b.bit_errors_before
    assert a.bit_errors_after == b.bit_errors_after
    assert a.corrected_to_lower == b.corrected_to_lower
    assert a.corrected_to_higher == b.corrected_to_higher


def test_upper_only_correction_mode():
    cfg = RdrConfig(correct_below_reference=False)
    block = _disturbed_block(1_000_000)
    outcome = ReadDisturbRecovery(cfg).recover_wordline(block, 0)
    assert outcome.reduction_fraction > 0.15


def test_outcome_accounting():
    block = _disturbed_block(800_000)
    outcome = ReadDisturbRecovery().recover_wordline(block, 0)
    assert outcome.bits_total == 2 * GEOMETRY.bitlines_per_block
    assert outcome.candidate_cells >= outcome.corrected_to_lower
    assert outcome.rber_before == outcome.bit_errors_before / outcome.bits_total


def test_batched_sweeps_bit_identical_to_per_step_loop():
    """RDR with batched retry sweeps (the default) recovers exactly what
    the historical per-step sweep loop recovered — same outcome fields,
    same post-recovery block state — including under heavy disturb where
    the sweeps run on a visibly shifted block."""
    for reads in (0, 150_000, 1_000_000):
        batched_blk = _disturbed_block(reads)
        reference_blk = _disturbed_block(reads)
        batched = ReadDisturbRecovery().recover_wordline(batched_blk, 0)
        reference = ReadDisturbRecovery(
            RdrConfig(batched_sweeps=False)
        ).recover_wordline(reference_blk, 0)
        # delta_vrefs legitimately holds NaN for skipped boundaries, so
        # compare it NaN-aware and every other field exactly.
        import dataclasses

        import numpy as np

        batched_fields = dataclasses.asdict(batched)
        reference_fields = dataclasses.asdict(reference)
        np.testing.assert_array_equal(
            batched_fields.pop("delta_vrefs"), reference_fields.pop("delta_vrefs")
        )
        assert batched_fields == reference_fields
        assert batched_blk._total_exposure == reference_blk._total_exposure
        assert (
            batched_blk._exposure_targeted.tolist()
            == reference_blk._exposure_targeted.tolist()
        )
        assert batched_blk.total_reads == reference_blk.total_reads


def test_batched_sweeps_faster_reads_accounting():
    """The batched path still charges every retry read of both sweeps."""
    block = _disturbed_block(200_000)
    import numpy as np

    cfg = RdrConfig()
    steps = np.arange(
        cfg.sweep_lo, cfg.sweep_hi + cfg.retry_step, cfg.retry_step
    ).size
    before = block.total_reads
    ReadDisturbRecovery(cfg).recover_wordline(block, 0)
    assert block.total_reads == before + 2 * steps + cfg.extra_reads


def test_invalid_configs():
    with pytest.raises(ValueError):
        RdrConfig(extra_reads=0)
    with pytest.raises(ValueError):
        RdrConfig(retry_step=-1.0)
    with pytest.raises(ValueError):
        RdrConfig(upper_window=0.0)
