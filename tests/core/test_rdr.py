"""Read Disturb Recovery on the Monte-Carlo block."""

import pytest

from repro.core import RdrConfig, ReadDisturbRecovery
from repro.flash import FlashBlock, FlashGeometry
from repro.rng import RngFactory

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=8192)


def _disturbed_block(reads: int, seed: int = 3, pe: int = 8000) -> FlashBlock:
    block = FlashBlock(GEOMETRY, RngFactory(seed))
    block.cycle_wear_to(pe)
    block.program_random()
    block.apply_read_disturb(reads, target_wordline=1)
    return block


def test_rdr_recovers_heavily_disturbed_wordline():
    block = _disturbed_block(1_000_000)
    outcome = ReadDisturbRecovery().recover_wordline(block, 0)
    assert outcome.bit_errors_after < outcome.bit_errors_before
    assert outcome.reduction_fraction > 0.2
    assert outcome.corrected_to_lower > 0


def test_rdr_harmless_without_disturb():
    block = _disturbed_block(0)
    outcome = ReadDisturbRecovery().recover_wordline(block, 0)
    # The separation guard must keep RDR from inventing corrections.
    assert outcome.bit_errors_after <= outcome.bit_errors_before + 1
    assert outcome.skipped_boundaries >= 1


def test_rdr_reduction_grows_with_disturb():
    low = ReadDisturbRecovery().recover_wordline(_disturbed_block(150_000), 0)
    high = ReadDisturbRecovery().recover_wordline(_disturbed_block(1_000_000), 0)
    assert high.reduction_fraction > low.reduction_fraction


def test_rdr_deterministic_for_identical_blocks():
    """Recovery is a pure function of the chip state (determinism check)."""
    a = ReadDisturbRecovery().recover_wordline(_disturbed_block(500_000, seed=9), 0)
    b = ReadDisturbRecovery().recover_wordline(_disturbed_block(500_000, seed=9), 0)
    assert a.bit_errors_before == b.bit_errors_before
    assert a.bit_errors_after == b.bit_errors_after
    assert a.corrected_to_lower == b.corrected_to_lower
    assert a.corrected_to_higher == b.corrected_to_higher


def test_upper_only_correction_mode():
    cfg = RdrConfig(correct_below_reference=False)
    block = _disturbed_block(1_000_000)
    outcome = ReadDisturbRecovery(cfg).recover_wordline(block, 0)
    assert outcome.reduction_fraction > 0.15


def test_outcome_accounting():
    block = _disturbed_block(800_000)
    outcome = ReadDisturbRecovery().recover_wordline(block, 0)
    assert outcome.bits_total == 2 * GEOMETRY.bitlines_per_block
    assert outcome.candidate_cells >= outcome.corrected_to_lower
    assert outcome.rber_before == outcome.bit_errors_before / outcome.bits_total


def test_invalid_configs():
    with pytest.raises(ValueError):
        RdrConfig(extra_reads=0)
    with pytest.raises(ValueError):
        RdrConfig(retry_step=-1.0)
    with pytest.raises(ValueError):
        RdrConfig(upper_window=0.0)
