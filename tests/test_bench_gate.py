"""The perf-trajectory gate (tools/check_bench.py) and the committed
``BENCH_physics.json`` it guards."""

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_bench", REPO / "tools" / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _committed():
    return json.loads((REPO / "BENCH_physics.json").read_text())


def test_committed_trajectory_holds_all_floors():
    assert check_bench.check(_committed()) == []


def test_gate_catches_a_regression():
    data = _committed()
    data["engine_throughput"]["flash_chip_ops_per_sec"] = 1.0
    problems = check_bench.check(data)
    assert any("flash_chip_ops_per_sec" in p and "regressed" in p for p in problems)


def test_gate_catches_missing_sections_and_keys():
    problems = check_bench.check({})
    assert any("intra_scenario" in p for p in problems)
    data = _committed()
    del data["intra_scenario"]["serial_ops_per_sec"]
    assert any(
        "serial_ops_per_sec" in p for p in check_bench.check(data)
    )


def test_core_gated_floor_arms_only_with_enough_cpus():
    data = _committed()
    # Not armed on a small machine, even with a "bad" speedup recorded.
    data["intra_scenario"]["cpu_count"] = 1
    data["intra_scenario"]["speedup_threaded_4"] = 0.5
    assert check_bench.check(data) == []
    # Armed (and failing) when the recording machine had the cores.
    data["intra_scenario"]["cpu_count"] = 8
    problems = check_bench.check(data)
    assert any("speedup_threaded_4" in p for p in problems)
    # And passing when the speedup holds.
    data["intra_scenario"]["speedup_threaded_4"] = 2.1
    assert check_bench.check(data) == []
