"""Property-based ECC bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import EccConfig


@settings(max_examples=25, deadline=None)
@given(
    st.integers(8, 80),
    st.floats(min_value=1e-5, max_value=5e-3),
)
def test_failure_probability_is_probability(t, rber):
    cfg = EccConfig(codeword_bits=9216, correctable_bits=t)
    p = cfg.codeword_failure_probability(rber)
    assert 0.0 <= p <= 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(8, 80))
def test_tolerable_rber_meets_target(t):
    cfg = EccConfig(codeword_bits=9216, correctable_bits=t)
    tolerable = cfg.tolerable_rber
    assert 0 < tolerable < cfg.raw_capability_rber
    assert cfg.codeword_failure_probability(tolerable) <= cfg.codeword_failure_target * 1.01
    assert cfg.codeword_failure_probability(tolerable * 2) > cfg.codeword_failure_target


@settings(max_examples=25, deadline=None)
@given(st.integers(1024, 1 << 18), st.floats(min_value=0.0, max_value=3e-3), st.integers(1, 1024))
def test_worst_page_errors_at_least_mean(page_bits, rber, pages):
    cfg = EccConfig()
    worst = cfg.expected_worst_page_errors(rber, page_bits, pages)
    assert worst >= int(rber * page_bits * 0.99)
