"""Property-based tests of the gray-code state mapping."""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.flash.state import (
    bit_errors_between,
    lsb_of_state,
    msb_of_state,
    states_from_bits,
)

states_arrays = arrays(np.int64, st.integers(1, 64), elements=st.integers(0, 3))


@given(states_arrays)
def test_bits_roundtrip(states):
    rebuilt = states_from_bits(lsb_of_state(states), msb_of_state(states))
    assert np.array_equal(rebuilt, states)


@given(states_arrays, states_arrays)
def test_bit_errors_bounded_by_two(a, b):
    n = min(a.size, b.size)
    errs = bit_errors_between(a[:n], b[:n])
    assert ((errs >= 0) & (errs <= 2)).all()


@given(states_arrays)
def test_identity_has_no_errors(states):
    assert bit_errors_between(states, states).sum() == 0


@given(st.integers(0, 3), st.integers(0, 3))
def test_triangle_inequality(a, b):
    """Bit distance is a metric on states."""
    for c in range(4):
        ab = bit_errors_between(np.array([a]), np.array([b]))[0]
        ac = bit_errors_between(np.array([a]), np.array([c]))[0]
        cb = bit_errors_between(np.array([c]), np.array([b]))[0]
        assert ab <= ac + cb
