"""Property-based monotonicity of every physics law.

The paper's qualitative findings are monotonicity statements (more reads,
more wear, higher Vpass, longer retention => predictable direction of
change); these must hold over the whole parameter space, not just at the
calibration points.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.physics.distributions import state_distribution
from repro.physics.pass_through import PassThroughModel
from repro.physics.read_disturb import DEFAULT_READ_DISTURB, vpass_exposure_weight
from repro.physics.retention import retained_voltage
from repro.physics.wear import read_disturb_damage, retention_damage
from repro.flash.state import MlcState

voltages = st.floats(min_value=0.0, max_value=500.0)
exposures = st.floats(min_value=0.0, max_value=1e8)
wears = st.integers(min_value=0, max_value=30000)
ages = st.floats(min_value=0.0, max_value=86400.0 * 60)
susceptibilities = st.floats(min_value=0.01, max_value=2e4)


@given(voltages, exposures, susceptibilities, wears)
def test_disturb_never_decreases_voltage(v0, exposure, a, pe):
    v = float(DEFAULT_READ_DISTURB.drifted_voltage(np.array([v0]), exposure, a, pe)[0])
    assert v >= v0 - 1e-9


@given(voltages, st.tuples(exposures, exposures), susceptibilities, wears)
def test_disturb_monotone_in_exposure(v0, pair, a, pe):
    e1, e2 = sorted(pair)
    m = DEFAULT_READ_DISTURB
    v1 = float(m.drifted_voltage(np.array([v0]), e1, a, pe)[0])
    v2 = float(m.drifted_voltage(np.array([v0]), e2, a, pe)[0])
    assert v2 >= v1 - 1e-9


@given(voltages, ages, wears, st.floats(min_value=0.05, max_value=20.0))
def test_retention_never_raises_voltage(v0, age, pe, leak):
    v = float(retained_voltage(np.array([v0]), age, pe, leak=leak)[0])
    assert v <= v0 + 1e-9


@given(st.tuples(ages, ages), wears)
def test_retention_monotone_in_time(pair, pe):
    t1, t2 = sorted(pair)
    v1 = float(retained_voltage(np.array([400.0]), t1, pe)[0])
    v2 = float(retained_voltage(np.array([400.0]), t2, pe)[0])
    assert v2 <= v1 + 1e-9


@given(st.tuples(wears, wears))
def test_damage_monotone_in_wear(pair):
    p1, p2 = sorted(pair)
    assert read_disturb_damage(p2) >= read_disturb_damage(p1)
    assert retention_damage(p2) >= retention_damage(p1)


@given(st.tuples(st.floats(300.0, 512.0), st.floats(300.0, 512.0)))
def test_exposure_weight_monotone_in_vpass(pair):
    v1, v2 = sorted(pair)
    assert vpass_exposure_weight(v2) >= vpass_exposure_weight(v1)


@settings(max_examples=30, deadline=None)
@given(st.tuples(st.floats(450.0, 510.0), st.floats(450.0, 510.0)), wears, ages)
def test_pass_through_monotone_in_vpass(pair, pe, age):
    v1, v2 = sorted(pair)
    model = PassThroughModel(wordlines_per_block=64, grid_points=120)
    assert model.additional_rber(v1, pe, age) >= model.additional_rber(v2, pe, age) - 1e-12


@settings(max_examples=20, deadline=None)
@given(wears)
def test_state_distributions_stay_ordered(pe):
    mus = [state_distribution(s, pe).mu for s in MlcState]
    assert mus == sorted(mus)
