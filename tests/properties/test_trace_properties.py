"""Property-based workload generation checks."""

from hypothesis import given, settings, strategies as st

from repro.workloads import SyntheticWorkload, WorkloadSpec

specs = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    description=st.just(""),
    iops=st.floats(min_value=0.5, max_value=5.0),
    read_fraction=st.floats(min_value=0.0, max_value=1.0),
    working_set_pages=st.integers(16, 8192),
    read_zipf_theta=st.floats(min_value=0.0, max_value=1.2),
    write_zipf_theta=st.floats(min_value=0.0, max_value=1.0),
    sequential_read_fraction=st.floats(min_value=0.0, max_value=0.5),
)


@settings(max_examples=25, deadline=None)
@given(specs, st.integers(0, 100))
def test_generated_traces_are_wellformed(spec, seed):
    trace = SyntheticWorkload(spec, seed=seed).generate(0.02)
    # IoTrace validates ordering/ranges in its constructor; check bounds.
    if len(trace):
        assert trace.lpns.max() < spec.working_set_pages
        assert trace.timestamps[-1] <= 0.02 * 86400.0
        if spec.read_fraction in (0.0, 1.0) and len(trace) > 10:
            assert trace.read_fraction == spec.read_fraction
