"""Deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import RngFactory, stream

names = st.text(alphabet="abcdefgh-", min_size=1, max_size=12)
seeds = st.integers(0, 2**31 - 1)


@given(names, seeds)
def test_same_name_seed_reproduces(name, seed):
    a = stream(name, seed).random(8)
    b = stream(name, seed).random(8)
    assert np.array_equal(a, b)


@given(names, seeds)
def test_different_seeds_differ(name, seed):
    a = stream(name, seed).random(8)
    b = stream(name, seed + 1).random(8)
    assert not np.array_equal(a, b)


def test_different_names_differ():
    a = stream("alpha", 0).random(8)
    b = stream("beta", 0).random(8)
    assert not np.array_equal(a, b)


def test_factory_children_independent():
    f = RngFactory(3)
    a = f.child("block-0").stream("cells").random(4)
    b = f.child("block-1").stream("cells").random(4)
    assert not np.array_equal(a, b)
    again = RngFactory(3).child("block-0").stream("cells").random(4)
    assert np.array_equal(a, again)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        stream("", 0)


def test_spawn_keys_are_order_and_process_free():
    """Spawn keys depend only on (seed, labels): the worker-safe property
    the sweep runner's determinism rests on."""
    from repro.rng import spawn_key

    direct = spawn_key(11, "scenario/a", "workload")
    assert direct == spawn_key(11, "scenario/a", "workload")
    assert direct == RngFactory(11).spawn("scenario/a", "workload").seed
    assert direct != spawn_key(11, "scenario/b", "workload")
    assert direct != spawn_key(11, "scenario/a", "backend")
    assert direct != spawn_key(12, "scenario/a", "workload")
    # Label order matters (paths, not sets).
    assert spawn_key(0, "a", "b") != spawn_key(0, "b", "a")
    a = RngFactory(11).spawn("s0").stream("cells").random(4)
    b = RngFactory(11).spawn("s1").stream("cells").random(4)
    assert not np.array_equal(a, b)
