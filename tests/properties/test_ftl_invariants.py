"""Property-based FTL invariants under random operation sequences."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.controller import SimulationEngine
from repro.controller.ftl import PageMappingFtl, SsdConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

CONFIG = SsdConfig(blocks=6, pages_per_block=8, overprovision=0.45, gc_threshold_blocks=1)

operations = st.lists(
    st.tuples(st.booleans(), st.integers(0, CONFIG.logical_pages - 1)),
    min_size=1,
    max_size=300,
)


@settings(max_examples=50, deadline=None)
@given(operations)
def test_mapping_invariants_hold(ops):
    ftl = PageMappingFtl(CONFIG)
    written = set()
    for is_write, lpn in ops:
        if is_write:
            ftl.write(lpn)
            written.add(lpn)
        else:
            loc = ftl.read(lpn)
            # Reads of written pages always resolve; never-written don't.
            assert (loc is not None) == (lpn in written)
    ftl.check_invariants()
    # Every written page remains mapped and unique.
    assert ftl.valid_count.sum() == len(written)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    read_fraction=st.floats(0.0, 1.0),
    reclaim=st.one_of(st.none(), st.integers(5, 200)),
)
def test_invariants_hold_after_every_maintenance_window(seed, read_fraction, reclaim):
    """Randomized mixed traces through the batched engine, with refresh
    and read reclaim enabled, keep the mapping consistent at every
    maintenance boundary — not just at the end of the run."""
    rng = np.random.default_rng(seed)
    n_ops = int(rng.integers(50, 600))
    timestamps = np.sort(rng.uniform(0, days(rng.uniform(0.5, 12.0)), n_ops))
    ops = np.where(rng.random(n_ops) < read_fraction, OP_READ, OP_WRITE).astype(
        np.int64
    )
    lpns = rng.integers(0, CONFIG.logical_pages, n_ops).astype(np.int64)
    trace = IoTrace(timestamps, ops, lpns, "random-mixed")
    engine = SimulationEngine(
        CONFIG,
        refresh_interval_days=3.0,
        read_reclaim_threshold=reclaim,
        batch=True,
    )
    windows = []

    def check(e):
        e.ftl.check_invariants()
        windows.append(e.now)

    stats = engine.run_trace(trace, on_window=check)
    assert len(windows) >= 1
    reads = int((ops == OP_READ).sum())
    assert stats.host_reads + stats.unmapped_reads == reads
    assert stats.host_writes == n_ops - reads


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, CONFIG.logical_pages - 1), min_size=50, max_size=400))
def test_write_amplification_bounded(lpns):
    ftl = PageMappingFtl(CONFIG)
    for lpn in lpns:
        ftl.write(lpn)
    assert ftl.write_amplification >= 1.0
    # With 30% overprovision WA stays moderate.
    assert ftl.write_amplification < 8.0
