"""Property-based FTL invariants under random operation sequences."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.controller.ftl import PageMappingFtl, SsdConfig

CONFIG = SsdConfig(blocks=6, pages_per_block=8, overprovision=0.45, gc_threshold_blocks=1)

operations = st.lists(
    st.tuples(st.booleans(), st.integers(0, CONFIG.logical_pages - 1)),
    min_size=1,
    max_size=300,
)


@settings(max_examples=50, deadline=None)
@given(operations)
def test_mapping_invariants_hold(ops):
    ftl = PageMappingFtl(CONFIG)
    written = set()
    for is_write, lpn in ops:
        if is_write:
            ftl.write(lpn)
            written.add(lpn)
        else:
            loc = ftl.read(lpn)
            # Reads of written pages always resolve; never-written don't.
            assert (loc is not None) == (lpn in written)
    ftl.check_invariants()
    # Every written page remains mapped and unique.
    assert ftl.valid_count.sum() == len(written)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, CONFIG.logical_pages - 1), min_size=50, max_size=400))
def test_write_amplification_bounded(lpns):
    ftl = PageMappingFtl(CONFIG)
    for lpn in lpns:
        ftl.write(lpn)
    assert ftl.write_amplification >= 1.0
    # With 30% overprovision WA stays moderate.
    assert ftl.write_amplification < 8.0
