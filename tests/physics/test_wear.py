"""Wear damage factors, including the Figure 3 slope-table power law."""

import numpy as np
import pytest

from repro.flash.state import MlcState
from repro.physics.wear import (
    mean_creep,
    read_disturb_damage,
    retention_damage,
    sigma_widening,
)


def test_slope_table_power_law():
    """(pe/2000)^1.46 reproduces the paper's slope ratios within 20%."""
    paper_slopes = {
        2000: 1.00e-9, 3000: 1.63e-9, 4000: 2.37e-9, 5000: 3.74e-9,
        8000: 7.50e-9, 10000: 9.10e-9, 15000: 1.90e-8,
    }
    for pe, slope in paper_slopes.items():
        predicted_ratio = read_disturb_damage(pe) / read_disturb_damage(2000)
        paper_ratio = slope / paper_slopes[2000]
        assert predicted_ratio == pytest.approx(paper_ratio, rel=0.20)


def test_damage_monotone_in_wear():
    pes = np.array([500, 1000, 3000, 8000, 15000])
    rd = np.array([read_disturb_damage(p) for p in pes])
    ret = np.array([retention_damage(p) for p in pes])
    assert (np.diff(rd) > 0).all()
    assert (np.diff(ret) > 0).all()


def test_wear_floor_applies():
    assert read_disturb_damage(0) == read_disturb_damage(100)
    assert retention_damage(10) == retention_damage(150)


def test_negative_pe_rejected():
    for fn in (read_disturb_damage, retention_damage, sigma_widening):
        with pytest.raises(ValueError):
            fn(-1)
    with pytest.raises(ValueError):
        mean_creep(MlcState.ER, -5)


def test_er_creeps_faster_than_programmed_states():
    assert mean_creep(MlcState.ER, 8000) > mean_creep(MlcState.P3, 8000)


def test_sigma_widening_starts_at_unity():
    assert sigma_widening(0) == pytest.approx(1.0)
    assert sigma_widening(20000) == pytest.approx(np.sqrt(2.0))
