"""Program error model."""

import numpy as np
import pytest

from repro.physics.program import (
    apply_program_errors,
    program_error_rate,
    program_error_rber,
)


def test_rate_grows_with_wear():
    assert program_error_rate(15000) > program_error_rate(2000) > 0


def test_rber_is_half_the_rate():
    assert program_error_rber(8000) == pytest.approx(program_error_rate(8000) / 2)


def test_negative_pe_rejected():
    with pytest.raises(ValueError):
        program_error_rate(-1)


def test_apply_moves_to_adjacent_states(rng):
    states = rng.integers(0, 4, 200_000).astype(np.int8)
    landed = apply_program_errors(states, 15000, rng)
    moved = landed != states
    assert moved.mean() == pytest.approx(program_error_rate(15000), rel=0.15)
    # Every mis-program is exactly one state away.
    assert (np.abs(landed[moved].astype(int) - states[moved].astype(int)) == 1).all()
    # Top state can only undershoot.
    assert (landed[(states == 3) & moved] == 2).all()


def test_ground_truth_untouched(rng):
    states = rng.integers(0, 4, 1000).astype(np.int8)
    original = states.copy()
    apply_program_errors(states, 8000, rng)
    assert np.array_equal(states, original)
