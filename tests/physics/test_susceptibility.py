"""Per-cell susceptibility mixture: sampling vs. analytic survival."""

import numpy as np
import pytest

from repro.physics.susceptibility import DEFAULT_SUSCEPTIBILITY, SusceptibilityModel


def test_samples_match_survival(rng):
    m = DEFAULT_SUSCEPTIBILITY
    a = m.sample(rng, 400_000)
    for x in [0.5, 1.0, 2.0, 15.0, 100.0, 1000.0]:
        empirical = (a > x).mean()
        assert empirical == pytest.approx(float(m.survival(x)), abs=3e-3)


def test_survival_limits_and_monotonicity():
    m = DEFAULT_SUSCEPTIBILITY
    xs = np.logspace(-2, 5, 200)
    s = m.survival(xs)
    assert (np.diff(s) <= 1e-12).all()
    assert m.survival(0.0) == pytest.approx(1.0)
    assert float(m.survival(np.inf)) == pytest.approx(0.0)
    assert m.survival(m.weak_a_max * 2) == pytest.approx(0.0, abs=1e-12)


def test_pareto_tail_is_inverse_linear():
    """S(a) ~ 1/a in the weak range: the linearity driver of Figure 3."""
    m = DEFAULT_SUSCEPTIBILITY
    s100 = float(m.survival(100.0))
    s200 = float(m.survival(200.0))
    assert s100 / s200 == pytest.approx(2.0, rel=0.05)


def test_weak_fraction_visible_in_samples(rng):
    m = DEFAULT_SUSCEPTIBILITY
    a = m.sample(rng, 300_000)
    weak = (a >= m.weak_a_min).mean()
    assert weak == pytest.approx(m.weak_fraction, rel=0.15)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        SusceptibilityModel(weak_fraction=1.5)
    with pytest.raises(ValueError):
        SusceptibilityModel(weak_a_min=10.0, weak_a_max=5.0)
    with pytest.raises(ValueError):
        SusceptibilityModel(lognormal_sigma=0.0)
