"""Pass-through (bitline cutoff) error model: Figure 5's physics."""

import pytest

from repro.physics import constants
from repro.physics.pass_through import PassThroughModel
from repro.units import VPASS_NOMINAL, days


@pytest.fixture(scope="module")
def model():
    return PassThroughModel(wordlines_per_block=128)


def test_no_errors_at_nominal_vpass(model):
    assert model.additional_rber(VPASS_NOMINAL, 8000) == pytest.approx(0.0, abs=1e-12)
    assert model.additional_rber(constants.PROGRAM_VERIFY_MAX, 8000) == 0.0


def test_errors_grow_as_vpass_relaxes(model):
    values = [model.additional_rber(v, 8000) for v in (500.0, 490.0, 480.0, 470.0)]
    assert values[0] < values[1] < values[2] < values[3]


def test_retention_reduces_cutoff_errors(model):
    """Older data tolerates deeper relaxation (Figure 5 age ordering)."""
    ages = [0.0, days(1), days(6), days(21)]
    series = [model.additional_rber(485.0, 8000, a) for a in ages]
    for young, old in zip(series, series[1:]):
        assert old < young
    # ... but slow-leaking cells keep the errors from vanishing outright.
    assert series[-1] > 0.0


def test_figure5_magnitudes(model):
    """0-day curve reaches ~1e-3 around Vpass=480 (paper Figure 5)."""
    addl = model.additional_rber(480.0, 8000, 0.0)
    assert 3e-4 < addl < 3e-3


def test_more_wordlines_more_cutoffs():
    few = PassThroughModel(wordlines_per_block=32).additional_rber(485.0, 8000)
    many = PassThroughModel(wordlines_per_block=256).additional_rber(485.0, 8000)
    assert many > few


def test_max_safe_reduction_monotone_in_budget(model):
    small = model.max_safe_vpass_reduction(1e-5, 8000)
    large = model.max_safe_vpass_reduction(1e-3, 8000)
    assert large >= small >= 0.0
    assert model.max_safe_vpass_reduction(-1.0, 8000) == 0.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        PassThroughModel(wordlines_per_block=1)
    with pytest.raises(ValueError):
        PassThroughModel(state_fractions=(0.5, 0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        PassThroughModel().cell_cutoff_probability(0.0, 8000)
