"""State distribution math: mixture CDF/PDF/sampling and truncation."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.flash.state import MlcState
from repro.physics import constants
from repro.physics.distributions import (
    AsymmetricLaplace,
    NormalLaplaceMixture,
    state_distribution,
)


def test_asymmetric_laplace_cdf_limits():
    lap = AsymmetricLaplace(mu=100.0, scale_low=10.0, scale_high=5.0)
    assert lap.cdf(-1e6) == pytest.approx(0.0, abs=1e-12)
    assert lap.cdf(1e6) == pytest.approx(1.0, abs=1e-12)
    # At the mode, CDF equals the low-side mass share.
    assert lap.cdf(100.0) == pytest.approx(10.0 / 15.0)


def test_asymmetric_laplace_pdf_integrates_to_one():
    lap = AsymmetricLaplace(mu=50.0, scale_low=8.0, scale_high=12.0)
    total, _ = quad(lap.pdf, -400, 500)
    assert total == pytest.approx(1.0, abs=1e-6)


def test_asymmetric_laplace_sample_statistics(rng):
    lap = AsymmetricLaplace(mu=0.0, scale_low=5.0, scale_high=15.0)
    x = lap.sample(rng, 200_000)
    # Mean of an asymmetric Laplace is mu + (s_hi - s_lo).
    assert x.mean() == pytest.approx(10.0, abs=0.3)


def test_mixture_cdf_monotone_and_bounded():
    mix = NormalLaplaceMixture(100.0, 10.0, 0.05, 8.0, 8.0, upper_bound=150.0)
    xs = np.linspace(-50, 200, 400)
    cdf = mix.cdf(xs)
    assert (np.diff(cdf) >= -1e-12).all()
    assert cdf[0] == pytest.approx(0.0, abs=1e-6)
    assert cdf[-1] == pytest.approx(1.0, abs=1e-12)


def test_truncation_removes_upper_mass(rng):
    mix = NormalLaplaceMixture(480.0, 10.0, 0.05, 8.0, 8.0, upper_bound=500.0)
    samples = mix.sample(rng, 50_000)
    assert samples.max() <= 500.0
    assert mix.sf(500.0) == pytest.approx(0.0, abs=1e-12)
    # Mass below the bound is renormalized upward.
    untruncated = NormalLaplaceMixture(480.0, 10.0, 0.05, 8.0, 8.0)
    assert mix.cdf(490.0) > untruncated.cdf(490.0)


def test_sample_distribution_matches_cdf(rng):
    mix = NormalLaplaceMixture(200.0, 12.0, 0.06, 10.0, 9.0, upper_bound=500.0)
    samples = mix.sample(rng, 100_000)
    for x in [170.0, 200.0, 230.0]:
        empirical = (samples <= x).mean()
        assert empirical == pytest.approx(float(mix.cdf(x)), abs=0.01)


def test_state_distribution_ordering():
    dists = [state_distribution(s, 1000) for s in MlcState]
    mus = [d.mu for d in dists]
    assert mus == sorted(mus)
    # States stay between the references appropriately.
    assert dists[0].mu < constants.VA < dists[1].mu < constants.VB
    assert dists[2].mu < constants.VC < dists[3].mu


def test_wear_widens_and_creeps():
    fresh = state_distribution(MlcState.ER, 200)
    worn = state_distribution(MlcState.ER, 15000)
    assert worn.sigma > fresh.sigma
    assert worn.mu > fresh.mu


def test_invalid_mixture_parameters():
    with pytest.raises(ValueError):
        NormalLaplaceMixture(0.0, -1.0, 0.05, 5.0, 5.0)
    with pytest.raises(ValueError):
        NormalLaplaceMixture(0.0, 1.0, 1.5, 5.0, 5.0)
    with pytest.raises(ValueError):
        AsymmetricLaplace(0.0, 0.0, 1.0)
