"""Read-disturb drift law: closed form, monotonicity, inversion."""

import numpy as np
import pytest

from repro.physics.read_disturb import (
    DEFAULT_READ_DISTURB,
    ReadDisturbModel,
    vpass_exposure_weight,
)


def test_drift_is_nonnegative_and_monotone_in_exposure():
    m = DEFAULT_READ_DISTURB
    v0 = np.array([40.0, 160.0, 290.0, 420.0])
    prev = v0
    for n in [0, 1e3, 1e4, 1e5, 1e6]:
        v = m.drifted_voltage(v0, n, 1.0, 8000)
        assert (v >= prev - 1e-12).all()
        prev = v


def test_lower_voltage_cells_shift_more():
    m = DEFAULT_READ_DISTURB
    drift = m.drift(np.array([40.0, 160.0, 290.0, 420.0]), 1e5, 1.0, 8000)
    assert drift[0] > drift[1] > drift[2] > drift[3]
    # The erased state dominates by a large factor (paper Section 2.1).
    assert drift[0] > 20 * drift[1]


def test_drift_scales_with_wear():
    m = DEFAULT_READ_DISTURB
    low = m.drift(40.0, 1e5, 1.0, 2000)
    high = m.drift(40.0, 1e5, 1.0, 15000)
    assert high > 2 * low


def test_drift_scales_with_susceptibility():
    m = DEFAULT_READ_DISTURB
    weak = m.drift(40.0, 1e4, 50.0, 8000)
    normal = m.drift(40.0, 1e4, 1.0, 8000)
    assert weak > normal


def test_drift_is_self_limiting():
    """Equal exposure increments produce shrinking voltage increments."""
    m = DEFAULT_READ_DISTURB
    v1 = float(m.drifted_voltage(40.0, 1e6, 10.0, 8000))
    v2 = float(m.drifted_voltage(40.0, 2e6, 10.0, 8000))
    v3 = float(m.drifted_voltage(40.0, 3e6, 10.0, 8000))
    assert (v2 - v1) > (v3 - v2) > 0


def test_vpass_weight_calibration():
    """1% Vpass relaxation divides the disturb rate by ~e^1.1 (Figure 4)."""
    w = vpass_exposure_weight(512.0 * 0.99) / vpass_exposure_weight(512.0)
    assert w == pytest.approx(np.exp(-1.1), rel=0.05)
    assert vpass_exposure_weight(512.0) == pytest.approx(1.0)


def test_required_susceptibility_inverts_drift():
    m = DEFAULT_READ_DISTURB
    v0 = np.array([50.0, 80.0])
    exposure = 2e5
    a_req = m.required_susceptibility(v0, 100.0, exposure, 8000)
    # A cell exactly at the required susceptibility lands exactly on target.
    landed = m.drifted_voltage(v0, exposure, a_req, 8000)
    assert np.allclose(landed, 100.0, atol=1e-6)
    # Slightly weaker cells fall short; stronger cells overshoot.
    assert (m.drifted_voltage(v0, exposure, a_req * 0.9, 8000) < 100.0).all()
    assert (m.drifted_voltage(v0, exposure, a_req * 1.1, 8000) > 100.0).all()


def test_required_susceptibility_edge_cases():
    m = DEFAULT_READ_DISTURB
    # Already above target: zero susceptibility suffices.
    assert m.required_susceptibility(np.array([150.0]), 100.0, 1e5, 8000)[0] == 0.0
    # No exposure: unreachable.
    assert np.isinf(m.required_susceptibility(np.array([50.0]), 100.0, 0.0, 8000)[0])


def test_invalid_arguments():
    m = DEFAULT_READ_DISTURB
    with pytest.raises(ValueError):
        m.drifted_voltage(40.0, -1.0, 1.0, 8000)
    with pytest.raises(ValueError):
        vpass_exposure_weight(0.0)
    with pytest.raises(ValueError):
        m.required_susceptibility(np.array([40.0]), 100.0, -5.0, 8000)
