"""Retention leakage: log-time law, charge proportionality, leak spread."""

import numpy as np
import pytest

from repro.physics import constants
from repro.physics.retention import (
    leak_cdf,
    leak_quadrature,
    retained_voltage,
    retention_shift,
    retention_threshold_inverse,
    sample_leak_factors,
)
from repro.units import days


def test_no_shift_at_time_zero():
    assert retention_shift(400.0, 0.0, 8000) == pytest.approx(0.0)


def test_shift_is_negative_and_grows_logarithmically():
    s1 = float(retention_shift(420.0, days(1), 8000))
    s7 = float(retention_shift(420.0, days(7), 8000))
    s21 = float(retention_shift(420.0, days(21), 8000))
    assert s21 < s7 < s1 < 0
    # Log-time: the 7->21 day increment is smaller than the 1->7 one.
    assert abs(s21 - s7) < abs(s7 - s1)


def test_higher_states_leak_more():
    shifts = retention_shift(np.array([40.0, 165.0, 290.0, 420.0]), days(7), 8000)
    assert shifts[0] == pytest.approx(0.0)  # at the charge floor
    assert shifts[1] > shifts[2] > shifts[3]  # more negative higher up


def test_wear_accelerates_retention():
    low = float(retention_shift(420.0, days(7), 2000))
    high = float(retention_shift(420.0, days(7), 15000))
    assert high < low < 0


def test_retained_voltage_floors():
    # A huge leak factor cannot drag a cell below the charge floor.
    v = retained_voltage(400.0, days(21), 15000, leak=50.0)
    assert v >= constants.RET_CHARGE_FLOOR - 1e-9
    # Erased cells do not move at all.
    assert retained_voltage(30.0, days(21), 15000) == pytest.approx(30.0)


def test_negative_age_rejected():
    with pytest.raises(ValueError):
        retention_shift(400.0, -1.0, 8000)


def test_leak_factors_unit_mean(rng):
    leaks = sample_leak_factors(rng, 200_000)
    assert leaks.mean() == pytest.approx(1.0, abs=0.02)
    assert (leaks > 0).all()


def test_leak_cdf_matches_samples(rng):
    leaks = sample_leak_factors(rng, 100_000)
    for x in [0.5, 1.0, 2.0]:
        assert (leaks <= x).mean() == pytest.approx(float(leak_cdf(x)), abs=0.01)
    assert leak_cdf(0.0) == 0.0


def test_leak_quadrature_integrates_mean():
    nodes, weights = leak_quadrature(9)
    assert weights.sum() == pytest.approx(1.0, abs=1e-9)
    assert float(nodes @ weights) == pytest.approx(1.0, abs=1e-6)


def test_threshold_inverse_roundtrip():
    for age, leak in [(days(1), 1.0), (days(21), 0.3), (days(7), 2.0)]:
        v0 = retention_threshold_inverse(480.0, age, 8000, leak=leak)
        assert float(retained_voltage(v0, age, 8000, leak=leak)) == pytest.approx(480.0, abs=1e-6)
