"""Slow pure-Python Reed-Solomon reference: tables-free, loop-per-symbol.

This is the executable specification the vectorized engine
(:mod:`repro.ecc.rs`) is pinned against: same field (0x11D, generator
alpha = 2), same convention (systematic, data-first, roots alpha^1 ..
alpha^2t), written as textbook scalar loops with a carry-less multiply —
no shared code, no shared tables, so a table-generation bug cannot hide.
"""

from __future__ import annotations

PRIMITIVE_POLY = 0x11D


def gf_mul(a: int, b: int) -> int:
    """Carry-less GF(256) product."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= PRIMITIVE_POLY
        b >>= 1
    return result


def gf_pow(base: int, exponent: int) -> int:
    result = 1
    for _ in range(exponent):
        result = gf_mul(result, base)
    return result


def alpha_pow(exponent: int) -> int:
    return gf_pow(2, exponent % 255)


def generator_poly(nparity: int) -> list[int]:
    """prod_{i=1..nparity} (x + alpha^i), ascending coefficients."""
    poly = [1]
    for i in range(1, nparity + 1):
        root = alpha_pow(i)
        nxt = [0] * (len(poly) + 1)
        for degree, coeff in enumerate(poly):
            nxt[degree] ^= gf_mul(coeff, root)
            nxt[degree + 1] ^= coeff
        poly = nxt
    return poly


def encode(data: list[int], n: int, k: int) -> list[int]:
    """Systematic RS encode of one codeword via polynomial long division."""
    assert len(data) == k
    nparity = n - k
    gen = generator_poly(nparity)[::-1]  # descending, monic lead first
    remainder = list(data) + [0] * nparity
    for i in range(k):
        factor = remainder[i]
        if factor:
            for j, coeff in enumerate(gen):
                remainder[i + j] ^= gf_mul(factor, coeff)
    return list(data) + remainder[k:]


def syndromes(word: list[int], nparity: int) -> list[int]:
    """S_i = word(alpha^i) for i = 1..nparity, word data-first."""
    n = len(word)
    out = []
    for i in range(1, nparity + 1):
        acc = 0
        for j, symbol in enumerate(word):
            acc ^= gf_mul(symbol, alpha_pow(i * (n - 1 - j)))
        out.append(acc)
    return out
