"""Threshold decoder behavior."""

import numpy as np
import pytest

from repro.ecc import DEFAULT_ECC, EccDecoder, UncorrectableError


@pytest.fixture
def decoder():
    return EccDecoder(DEFAULT_ECC)


def _page_with_errors(n_bits: int, n_errors: int):
    true = np.zeros(n_bits, dtype=np.uint8)
    read = true.copy()
    read[:n_errors] ^= 1
    return read, true


def test_decode_within_capability(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap)
    result = decoder.decode(read, true)
    assert result.success
    assert result.raw_errors == cap
    assert result.margin == 0


def test_decode_beyond_capability_fails(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap + 1)
    result = decoder.decode(read, true)
    assert not result.success
    assert result.margin == -1


def test_decode_or_raise(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap + 5)
    with pytest.raises(UncorrectableError) as exc:
        decoder.decode_or_raise(read, true)
    assert exc.value.errors == cap + 5
    assert exc.value.capability == cap


def test_clean_page_full_margin(decoder):
    read, true = _page_with_errors(65536, 0)
    result = decoder.decode_or_raise(read, true)
    assert result.margin == DEFAULT_ECC.page_capability_bits(65536)


def test_shape_mismatch_rejected(decoder):
    with pytest.raises(ValueError):
        decoder.decode(np.zeros(4), np.zeros(5))


# ----------------------------------------------------------------------
# Batched decoding
# ----------------------------------------------------------------------


def test_decode_pages_matches_scalar_decode(decoder):
    rng = np.random.default_rng(3)
    true = rng.integers(0, 2, (7, 4096), dtype=np.uint8)
    read = true.copy()
    cap = DEFAULT_ECC.page_capability_bits(4096)
    # Page error counts straddling the capability, including both edges.
    for i, n_errors in enumerate([0, 1, cap - 1, cap, cap + 1, 2 * cap, 4096]):
        read[i, :n_errors] ^= 1
    batch = decoder.decode_pages(read, true)
    assert len(batch) == 7
    assert batch.capability == cap
    for i in range(7):
        scalar = decoder.decode(read[i], true[i])
        assert batch.page(i) == scalar
        assert batch.raw_errors[i] == scalar.raw_errors
        assert bool(batch.success[i]) == scalar.success
        assert batch.margins[i] == scalar.margin


def test_decode_pages_rejects_bad_shapes(decoder):
    with pytest.raises(ValueError):
        decoder.decode_pages(np.zeros((2, 8)), np.zeros((2, 9)))
    with pytest.raises(ValueError):
        decoder.decode_pages(np.zeros(8), np.zeros(8))


def test_check_pages_matches_check_page_loop(decoder):
    from repro.flash import FlashBlock, FlashGeometry
    from repro.rng import RngFactory

    geometry = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=512)
    blk = FlashBlock(geometry, RngFactory(4))
    blk.cycle_wear_to(12000)
    blk.program_random()
    blk.apply_read_disturb(500_000, target_wordline=0)
    pages = np.arange(geometry.pages_per_block)
    for vpass in (512.0, 500.0):
        batch = decoder.check_pages(blk, pages, now=3600.0, vpass=vpass)
        for i, page in enumerate(pages):
            scalar = decoder.check_page(blk, int(page), now=3600.0, vpass=vpass)
            assert batch.page(i) == scalar


def test_page_capability_is_memoized():
    from repro.ecc.config import EccConfig, _page_capability_bits

    config = DEFAULT_ECC
    assert config.page_capability_bits(8192) == config.page_capability_bits(8192)
    assert _page_capability_bits.cache_info().hits > 0
    # Value-keyed: an equal-but-distinct config hits the same entry
    # instead of pinning a new instance in a per-object cache.
    hits = _page_capability_bits.cache_info().hits
    assert EccConfig().page_capability_bits(8192) == config.page_capability_bits(8192)
    assert _page_capability_bits.cache_info().hits > hits
