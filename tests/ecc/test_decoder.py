"""Threshold decoder behavior."""

import numpy as np
import pytest

from repro.ecc import DEFAULT_ECC, EccDecoder, UncorrectableError


@pytest.fixture
def decoder():
    return EccDecoder(DEFAULT_ECC)


def _page_with_errors(n_bits: int, n_errors: int):
    true = np.zeros(n_bits, dtype=np.uint8)
    read = true.copy()
    read[:n_errors] ^= 1
    return read, true


def test_decode_within_capability(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap)
    result = decoder.decode(read, true)
    assert result.success
    assert result.raw_errors == cap
    assert result.margin == 0


def test_decode_beyond_capability_fails(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap + 1)
    result = decoder.decode(read, true)
    assert not result.success
    assert result.margin == -1


def test_decode_or_raise(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap + 5)
    with pytest.raises(UncorrectableError) as exc:
        decoder.decode_or_raise(read, true)
    assert exc.value.errors == cap + 5
    assert exc.value.capability == cap


def test_clean_page_full_margin(decoder):
    read, true = _page_with_errors(65536, 0)
    result = decoder.decode_or_raise(read, true)
    assert result.margin == DEFAULT_ECC.page_capability_bits(65536)


def test_shape_mismatch_rejected(decoder):
    with pytest.raises(ValueError):
        decoder.decode(np.zeros(4), np.zeros(5))


# ----------------------------------------------------------------------
# Batched decoding
# ----------------------------------------------------------------------


def test_decode_pages_matches_scalar_decode(decoder):
    rng = np.random.default_rng(3)
    true = rng.integers(0, 2, (7, 4096), dtype=np.uint8)
    read = true.copy()
    cap = DEFAULT_ECC.page_capability_bits(4096)
    # Page error counts straddling the capability, including both edges.
    for i, n_errors in enumerate([0, 1, cap - 1, cap, cap + 1, 2 * cap, 4096]):
        read[i, :n_errors] ^= 1
    batch = decoder.decode_pages(read, true)
    assert len(batch) == 7
    assert batch.capability == cap
    for i in range(7):
        scalar = decoder.decode(read[i], true[i])
        assert batch.page(i) == scalar
        assert batch.raw_errors[i] == scalar.raw_errors
        assert bool(batch.success[i]) == scalar.success
        assert batch.margins[i] == scalar.margin


def test_decode_pages_rejects_bad_shapes(decoder):
    with pytest.raises(ValueError):
        decoder.decode_pages(np.zeros((2, 8)), np.zeros((2, 9)))
    with pytest.raises(ValueError):
        decoder.decode_pages(np.zeros(8), np.zeros(8))


def test_check_pages_matches_check_page_loop(decoder):
    from repro.flash import FlashBlock, FlashGeometry
    from repro.rng import RngFactory

    geometry = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=512)
    blk = FlashBlock(geometry, RngFactory(4))
    blk.cycle_wear_to(12000)
    blk.program_random()
    blk.apply_read_disturb(500_000, target_wordline=0)
    pages = np.arange(geometry.pages_per_block)
    for vpass in (512.0, 500.0):
        batch = decoder.check_pages(blk, pages, now=3600.0, vpass=vpass)
        for i, page in enumerate(pages):
            scalar = decoder.check_page(blk, int(page), now=3600.0, vpass=vpass)
            assert batch.page(i) == scalar


# ----------------------------------------------------------------------
# API-edge validation (regression: float/bool arrays used to slip through)
# ----------------------------------------------------------------------


def test_decode_rejects_float_bits(decoder):
    clean = np.zeros(64, dtype=np.uint8)
    with pytest.raises(
        ValueError,
        match=r"read bits must be an integer 0/1 bit array, got dtype float64",
    ):
        decoder.decode(np.zeros(64, dtype=np.float64), clean)
    with pytest.raises(
        ValueError,
        match=r"true bits must be an integer 0/1 bit array, got dtype float64",
    ):
        decoder.decode(clean, np.zeros(64, dtype=np.float64))


def test_decode_rejects_bool_bits(decoder):
    clean = np.zeros(64, dtype=np.uint8)
    with pytest.raises(ValueError, match=r"got dtype bool"):
        decoder.decode(np.zeros(64, dtype=bool), clean)


def test_decode_rejects_non_bit_values(decoder):
    clean = np.zeros(64, dtype=np.uint8)
    dirty = clean.copy()
    dirty[3] = 2
    with pytest.raises(ValueError, match=r"read bits must contain only 0/1"):
        decoder.decode(dirty, clean)
    with pytest.raises(ValueError, match=r"true bits must contain only 0/1"):
        decoder.decode(clean, dirty.astype(np.int64) * -1)


def test_decode_pages_rejects_float_and_bool(decoder):
    clean = np.zeros((3, 64), dtype=np.uint8)
    with pytest.raises(ValueError, match=r"got dtype float32"):
        decoder.decode_pages(np.zeros((3, 64), dtype=np.float32), clean)
    with pytest.raises(ValueError, match=r"got dtype bool"):
        decoder.decode_pages(clean, np.zeros((3, 64), dtype=bool))


def test_batch_page_index_out_of_range(decoder):
    clean = np.zeros((3, 64), dtype=np.uint8)
    batch = decoder.decode_pages(clean, clean)
    assert batch.page(-1) == batch.page(2)  # negatives index from the end
    with pytest.raises(
        IndexError, match=r"page index 3 out of range for batch of 3 pages"
    ):
        batch.page(3)
    with pytest.raises(
        IndexError, match=r"page index -4 out of range for batch of 3 pages"
    ):
        batch.page(-4)


# ----------------------------------------------------------------------
# RS engine dispatch through the shared contract
# ----------------------------------------------------------------------


@pytest.fixture
def rs_decoder():
    from repro.ecc import EccConfig

    return EccDecoder(EccConfig(decoder="rs", rs_n=255, rs_k=223))


def test_rs_decode_pages_matches_scalar_decode(rs_decoder):
    rng = np.random.default_rng(6)
    true = rng.integers(0, 2, (6, 512), dtype=np.uint8)
    read = true.copy()
    t = rs_decoder.config.rs_t
    for i, n_errors in enumerate([0, 1, 8 * t, 8 * t + 8, 256, 512]):
        read[i, :n_errors] ^= 1
    batch = rs_decoder.decode_pages(read, true)
    assert isinstance(batch.page(0).capability, int)
    for i in range(6):
        scalar = rs_decoder.decode(read[i], true[i])
        assert batch.page(i) == scalar
        assert batch.raw_errors[i] == int((read[i] != true[i]).sum())


def test_rs_batch_page_index_out_of_range(rs_decoder):
    clean = np.zeros((2, 512), dtype=np.uint8)
    batch = rs_decoder.decode_pages(clean, clean)
    with pytest.raises(IndexError, match=r"out of range for batch of 2 pages"):
        batch.page(2)


def test_rs_margins_are_symbol_denominated(rs_decoder):
    true = np.zeros((2, 512), dtype=np.uint8)
    read = true.copy()
    read[1, 0:16] ^= 1  # two full symbols in error
    batch = rs_decoder.decode_pages(read, true)
    assert batch.capability == rs_decoder.config.rs_t  # one codeword per page
    assert batch.symbol_errors.tolist() == [0, 2]
    assert batch.margins.tolist() == [batch.capability, batch.capability - 2]
    assert batch.raw_errors.tolist() == [0, 16]
    assert not batch.miscorrected.any()


def test_rs_check_pages_raw_errors_match_threshold(decoder, rs_decoder):
    from repro.flash import FlashBlock, FlashGeometry
    from repro.rng import RngFactory

    geometry = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=512)
    blk = FlashBlock(geometry, RngFactory(4))
    blk.cycle_wear_to(12000)
    blk.program_random()
    blk.apply_read_disturb(500_000, target_wordline=0)
    pages = np.arange(geometry.pages_per_block)
    threshold = decoder.check_pages(blk, pages, now=3600.0, vpass=500.0)
    rs = rs_decoder.check_pages(blk, pages, now=3600.0, vpass=500.0)
    # Same sensed cells, same raw bit errors — only the engine differs.
    assert np.array_equal(rs.raw_errors, threshold.raw_errors)


def test_page_capability_is_memoized():
    from repro.ecc.config import EccConfig, _page_capability_bits

    config = DEFAULT_ECC
    assert config.page_capability_bits(8192) == config.page_capability_bits(8192)
    assert _page_capability_bits.cache_info().hits > 0
    # Value-keyed: an equal-but-distinct config hits the same entry
    # instead of pinning a new instance in a per-object cache.
    hits = _page_capability_bits.cache_info().hits
    assert EccConfig().page_capability_bits(8192) == config.page_capability_bits(8192)
    assert _page_capability_bits.cache_info().hits > hits
