"""Threshold decoder behavior."""

import numpy as np
import pytest

from repro.ecc import DEFAULT_ECC, EccDecoder, UncorrectableError


@pytest.fixture
def decoder():
    return EccDecoder(DEFAULT_ECC)


def _page_with_errors(n_bits: int, n_errors: int):
    true = np.zeros(n_bits, dtype=np.uint8)
    read = true.copy()
    read[:n_errors] ^= 1
    return read, true


def test_decode_within_capability(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap)
    result = decoder.decode(read, true)
    assert result.success
    assert result.raw_errors == cap
    assert result.margin == 0


def test_decode_beyond_capability_fails(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap + 1)
    result = decoder.decode(read, true)
    assert not result.success
    assert result.margin == -1


def test_decode_or_raise(decoder):
    cap = DEFAULT_ECC.page_capability_bits(65536)
    read, true = _page_with_errors(65536, cap + 5)
    with pytest.raises(UncorrectableError) as exc:
        decoder.decode_or_raise(read, true)
    assert exc.value.errors == cap + 5
    assert exc.value.capability == cap


def test_clean_page_full_margin(decoder):
    read, true = _page_with_errors(65536, 0)
    result = decoder.decode_or_raise(read, true)
    assert result.margin == DEFAULT_ECC.page_capability_bits(65536)


def test_shape_mismatch_rejected(decoder):
    with pytest.raises(ValueError):
        decoder.decode(np.zeros(4), np.zeros(5))
