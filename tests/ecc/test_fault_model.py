"""Fault-spec grammar, deterministic injection, and the pattern taxonomy."""

import numpy as np
import pytest

from repro.ecc.fault_model import (
    PATTERN_BURST2,
    PATTERN_BURST4,
    PATTERN_CLEAN,
    PATTERN_NAMES,
    PATTERN_SCATTERED,
    PATTERN_SINGLE,
    FaultSpec,
    classify_symbol_errors,
    inject_faults,
    parse_fault_spec,
    pattern_counts,
)


def test_parse_roundtrips_through_label():
    for text in ("burst1:0.5", "burst2:0.001", "burst4:1e-3", "scatter6:0.25"):
        spec = parse_fault_spec(text)
        assert parse_fault_spec(spec.label) == spec


def test_parse_fields():
    spec = parse_fault_spec("burst2:0.125")
    assert (spec.kind, spec.size, spec.rate) == ("burst", 2, 0.125)
    spec = parse_fault_spec(" scatter4:1e-2 ")
    assert (spec.kind, spec.size, spec.rate) == ("scatter", 4, 0.01)


@pytest.mark.parametrize(
    "bad",
    ["", "burst2", "burst2:", "clump2:0.5", "burst3:0.5", "burst2:0", "burst2:1.5", "scatter0:0.5"],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_fault_spec(bad)


def test_spec_validation_messages():
    with pytest.raises(ValueError, match="burst width"):
        FaultSpec("burst", 3, 0.5)
    with pytest.raises(ValueError, match="scatter count"):
        FaultSpec("scatter", 0, 0.5)
    with pytest.raises(ValueError, match="rate"):
        FaultSpec("burst", 2, 0.0)
    with pytest.raises(ValueError, match="burst|scatter"):
        FaultSpec("clump", 2, 0.5)


def test_injection_is_deterministic_for_fixed_generator_state():
    spec = parse_fault_spec("burst4:0.4")
    runs = []
    for _ in range(2):
        masks = np.zeros((32, 256), dtype=bool)
        hit = inject_faults(masks, spec, np.random.default_rng(909))
        runs.append((masks.copy(), hit.copy()))
    assert np.array_equal(runs[0][0], runs[1][0])
    assert np.array_equal(runs[0][1], runs[1][1])
    assert runs[0][1].any()


def test_burst_injection_hits_one_aligned_window():
    spec = parse_fault_spec("burst2:1")
    masks = np.zeros((50, 256), dtype=bool)
    hit = inject_faults(masks, spec, np.random.default_rng(3))
    assert hit.all()
    symbols = np.packbits(masks, axis=1)
    for row in symbols:
        errors = np.flatnonzero(row)
        # Every error symbol lies in a single aligned 2-symbol window,
        # and every symbol of the window is corrupted (nonzero byte).
        assert 1 <= errors.size <= 2
        assert errors[0] // 2 == errors[-1] // 2
        width2 = errors[0] // 2
        window = row[width2 * 2 : width2 * 2 + 2]
        assert np.all(window != 0)


def test_scatter_injection_flips_one_bit_in_distinct_symbols():
    spec = parse_fault_spec("scatter4:1")
    masks = np.zeros((50, 256), dtype=bool)
    hit = inject_faults(masks, spec, np.random.default_rng(4))
    assert hit.all()
    assert np.all(masks.sum(axis=1) == 4)  # one bit per symbol
    symbols = np.packbits(masks, axis=1)
    assert np.all(np.count_nonzero(symbols, axis=1) == 4)  # distinct symbols


def test_injection_overlays_existing_masks_in_place():
    spec = parse_fault_spec("scatter2:1")
    masks = np.zeros((4, 64), dtype=bool)
    masks[:, 0] = True
    inject_faults(masks, spec, np.random.default_rng(5))
    assert np.all(masks.sum(axis=1) >= 1)


def test_injection_rejects_pages_too_small_for_the_fault():
    spec = parse_fault_spec("scatter4:1")
    with pytest.raises(ValueError, match="cannot host"):
        inject_faults(np.zeros((2, 16), dtype=bool), spec, np.random.default_rng(0))


def test_classification_taxonomy():
    symbols = np.zeros((7, 16), dtype=np.uint8)
    symbols[1, 5] = 9  # single
    symbols[2, 2:4] = 1  # aligned 2-burst
    symbols[3, 4:8] = 1  # aligned 4-burst
    symbols[4, 5:7] = 1  # spans windows [4,6) and [6,8) -> within 4-window [4,8)
    symbols[5, 3:5] = 1  # spans 4-windows [0,4) and [4,8) -> scattered
    symbols[6, [0, 15]] = 1  # far apart -> scattered
    codes = classify_symbol_errors(symbols)
    assert codes.tolist() == [
        PATTERN_CLEAN,
        PATTERN_SINGLE,
        PATTERN_BURST2,
        PATTERN_BURST4,
        PATTERN_BURST4,
        PATTERN_SCATTERED,
        PATTERN_SCATTERED,
    ]


def test_classification_accepts_single_page_vector():
    codes = classify_symbol_errors(np.array([0, 0, 7, 0], dtype=np.uint8))
    assert codes.tolist() == [PATTERN_SINGLE]


def test_injected_bursts_classify_as_their_own_width():
    for width in (1, 2, 4):
        spec = parse_fault_spec(f"burst{width}:1")
        masks = np.zeros((64, 256), dtype=bool)
        inject_faults(masks, spec, np.random.default_rng(width))
        codes = classify_symbol_errors(np.packbits(masks, axis=1))
        # A width-w aligned burst classifies as at most the w class
        # (narrower when the random bytes happen to cluster).
        ceiling = {1: PATTERN_SINGLE, 2: PATTERN_BURST2, 4: PATTERN_BURST4}[width]
        assert np.all(codes > PATTERN_CLEAN)
        assert np.all(codes <= ceiling)


def test_pattern_counts_histogram():
    codes = np.array(
        [PATTERN_CLEAN, PATTERN_SINGLE, PATTERN_SINGLE, PATTERN_SCATTERED], dtype=np.int8
    )
    assert pattern_counts(codes) == {
        "single": 2,
        "burst2": 0,
        "burst4": 0,
        "scattered": 1,
    }
    assert "clean" not in pattern_counts(codes)
    assert set(pattern_counts(codes)) == set(PATTERN_NAMES) - {"clean"}
