"""Golden-vector + roundtrip verification of the vectorized RS engine.

Golden codewords are pinned against the slow pure-Python reference in
``tests/ecc/reference_rs.py`` (separate implementation, no shared
tables); roundtrips corrupt within / beyond capability with burst and
scattered shapes and check exact recovery, detected failure, and the
miscorrection bookkeeping.  Everything is seeded — no flaky sampling.
"""

import numpy as np
import pytest

from repro.ecc.rs import RsCode, RsPageDecoder

from reference_rs import encode as reference_encode
from reference_rs import generator_poly, syndromes as reference_syndromes

#: RS(16, 12) golden vectors computed by the pure-Python reference.
GOLDEN_GENERATOR_16_12 = [116, 231, 216, 30, 1]
GOLDEN_DATA = [202, 129, 115, 56, 78, 197, 240, 247, 111, 41, 15, 33]
GOLDEN_CODEWORD = [202, 129, 115, 56, 78, 197, 240, 247, 111, 41, 15, 33, 74, 22, 126, 125]
GOLDEN_SEQ_CODEWORD = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 161, 216, 216, 251]


def test_generator_polynomial_matches_reference():
    code = RsCode(16, 12)
    assert code.generator.tolist() == GOLDEN_GENERATOR_16_12
    assert code.generator.tolist() == generator_poly(4)


def test_encode_matches_pinned_golden_vectors():
    code = RsCode(16, 12)
    encoded = code.encode(np.array([GOLDEN_DATA, list(range(1, 13)), [0] * 12]))
    assert encoded[0].tolist() == GOLDEN_CODEWORD
    assert encoded[1].tolist() == GOLDEN_SEQ_CODEWORD
    assert encoded[2].tolist() == [0] * 16


@pytest.mark.parametrize("n,k", [(16, 12), (32, 24), (255, 223)])
def test_encode_matches_reference_randomized(n, k):
    rng = np.random.default_rng(n * 1000 + k)
    data = rng.integers(0, 256, size=(8, k)).astype(np.uint8)
    encoded = RsCode(n, k).encode(data)
    for row, d in zip(encoded, data):
        assert row.tolist() == reference_encode([int(x) for x in d], n, k)


def test_syndromes_match_reference_and_vanish_on_codewords():
    code = RsCode(16, 12)
    rng = np.random.default_rng(8)
    data = rng.integers(0, 256, size=(6, 12)).astype(np.uint8)
    words = code.encode(data)
    assert np.all(code.syndromes(words) == 0)
    corrupted = words.copy()
    corrupted[:, 3] ^= 0x5A
    batched = code.syndromes(corrupted)
    for row, expected in zip(corrupted, batched):
        assert expected.tolist() == reference_syndromes(
            [int(x) for x in row], code.nparity
        )
    assert np.all(np.any(batched != 0, axis=1))


@pytest.mark.parametrize("n,k", [(16, 12), (255, 223)])
def test_roundtrip_scattered_errors_within_t(n, k):
    code = RsCode(n, k)
    rng = np.random.default_rng(41)
    data = rng.integers(0, 256, size=(40, k)).astype(np.uint8)
    words = code.encode(data)
    received = words.copy()
    for i in range(40):
        count = int(rng.integers(0, code.t + 1))
        positions = rng.choice(n, size=count, replace=False)
        received[i, positions] ^= rng.integers(1, 256, size=count).astype(np.uint8)
    result = code.decode(received)
    assert result.ok.all()
    assert np.array_equal(result.corrected, words)
    expected_errors = np.count_nonzero(received != words, axis=1)
    assert np.array_equal(result.corrected_symbols, expected_errors)


def test_roundtrip_burst_errors_within_t():
    code = RsCode(255, 223)
    rng = np.random.default_rng(42)
    data = rng.integers(0, 256, size=(20, 223)).astype(np.uint8)
    words = code.encode(data)
    received = words.copy()
    for i in range(20):
        start = int(rng.integers(0, 255 - code.t))
        received[i, start : start + code.t] ^= rng.integers(
            1, 256, size=code.t
        ).astype(np.uint8)
    result = code.decode(received)
    assert result.ok.all()
    assert np.array_equal(result.corrected, words)
    assert np.all(result.corrected_symbols == code.t)


def test_beyond_t_flags_uncorrectable_or_miscorrects():
    code = RsCode(255, 223)
    rng = np.random.default_rng(43)
    data = rng.integers(0, 256, size=(30, 223)).astype(np.uint8)
    words = code.encode(data)
    received = words.copy()
    for i in range(30):
        positions = rng.choice(255, size=code.t + 3, replace=False)
        received[i, positions] ^= rng.integers(1, 256, size=code.t + 3).astype(np.uint8)
    result = code.decode(received)
    # Every row either failed (returned unmodified) or silently decoded
    # to *some* codeword; none may claim success with a non-codeword.
    failed = ~result.ok
    assert np.array_equal(result.corrected[failed], received[failed])
    if result.ok.any():
        assert np.all(code.syndromes(result.corrected[result.ok]) == 0)


def test_weak_code_records_miscorrections_beyond_t():
    # t=1: three symbol errors regularly land within distance 1 of a
    # *different* codeword — the silent-data-corruption case.
    code = RsCode(32, 30)
    rng = np.random.default_rng(44)
    data = rng.integers(0, 256, size=(400, 30)).astype(np.uint8)
    words = code.encode(data)
    received = words.copy()
    for i in range(400):
        positions = rng.choice(32, size=3, replace=False)
        received[i, positions] ^= rng.integers(1, 256, size=3).astype(np.uint8)
    result = code.decode(received)
    miscorrected = result.ok & np.any(result.corrected != words, axis=1)
    assert miscorrected.sum() > 0
    # Miscorrections are still codewords — that is what makes them silent.
    assert np.all(code.syndromes(result.corrected[miscorrected]) == 0)


def test_all_zero_rows_early_exit():
    code = RsCode(255, 223)
    words = np.zeros((1000, 255), dtype=np.uint8)
    result = code.decode(words)
    assert result.ok.all()
    assert np.all(result.corrected == 0)
    assert np.all(result.corrected_symbols == 0)


def test_shortened_rows_decode_and_reject_virtual_corrections():
    code = RsCode(255, 223)
    rng = np.random.default_rng(45)
    # A shortened word: leading 127 symbols are virtual zeros.
    words = np.zeros((30, 255), dtype=np.uint8)
    lengths = np.full(30, 128, dtype=np.int64)
    for i in range(30):
        positions = 127 + rng.choice(128, size=code.t, replace=False)
        words[i, positions] ^= rng.integers(1, 256, size=code.t).astype(np.uint8)
    result = code.decode(words, lengths)
    assert result.ok.all()
    assert np.all(result.corrected == 0)

    # The same error patterns decoded un-shortened still succeed, but any
    # decode landing corrections in the virtual prefix must fail when the
    # length constraint is active.
    beyond = np.zeros((200, 255), dtype=np.uint8)
    for i in range(200):
        positions = 127 + rng.choice(128, size=code.t + 2, replace=False)
        beyond[i, positions] ^= rng.integers(1, 256, size=code.t + 2).astype(np.uint8)
    unconstrained = code.decode(beyond)
    constrained = code.decode(beyond, np.full(200, 128, dtype=np.int64))
    # Shortening can only remove claimed successes, never add them.
    assert np.all(constrained.ok <= unconstrained.ok)


def test_code_parameter_validation():
    with pytest.raises(ValueError, match=r"\[3, 255\]"):
        RsCode(256, 200)
    with pytest.raises(ValueError, match=r"\[1, n\)"):
        RsCode(16, 16)
    with pytest.raises(ValueError, match="even"):
        RsCode(16, 11)


def test_page_decoder_layout_and_shortening():
    pd = RsPageDecoder(RsCode(255, 223), page_bits=2048)
    assert pd.symbols_per_page == 256
    assert pd.codewords_per_page == 2
    assert pd.lengths.tolist() == [128, 128]
    with pytest.raises(ValueError, match="parity"):
        # 8 symbols cannot host 32 parity symbols.
        RsPageDecoder(RsCode(255, 223), page_bits=64)


def test_page_decoder_masks_clean_and_correctable():
    pd = RsPageDecoder(RsCode(255, 223), page_bits=512)
    masks = np.zeros((4, 512), dtype=bool)
    masks[1, 9] = True
    masks[2, 16:24] = True  # exactly symbol 2
    out = pd.decode_masks(masks)
    assert out.ok.all()
    assert not out.miscorrected.any()
    assert out.bit_errors.tolist() == [0, 1, 8, 0]
    assert out.symbol_errors.tolist() == [0, 1, 1, 0]


def test_page_decoder_detects_uncorrectable_and_miscorrection():
    strong = RsPageDecoder(RsCode(255, 223), page_bits=512)
    masks = np.zeros((1, 512), dtype=bool)
    masks[0, ::8] = True  # 64 scattered symbol errors >> t=16
    out = strong.decode_masks(masks)
    assert not out.ok[0]

    weak = RsPageDecoder(RsCode(32, 30), page_bits=256)
    rng = np.random.default_rng(46)
    many = np.zeros((2000, 256), dtype=bool)
    for i in range(2000):
        many[i, rng.choice(256, size=6, replace=False)] = True
    res = weak.decode_masks(many)
    assert res.miscorrected.sum() > 0
    assert np.all(res.miscorrected <= res.ok)
