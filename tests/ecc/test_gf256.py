"""Property-based verification of the GF(256) tables and field ops.

The RS engine's correctness rests entirely on these tables, so the field
axioms are checked directly: seeded randomized associativity /
distributivity / inverse properties over vector batches, the exhaustive
log/antilog roundtrip, and batched-vs-scalar table-lookup equivalence.
"""

import numpy as np
import pytest

from repro.ecc import gf256


def _mul_reference(a: int, b: int) -> int:
    """Carry-less (Russian peasant) GF(256) multiply — no tables."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= gf256.PRIMITIVE_POLY
        b >>= 1
    return result


def test_log_antilog_roundtrip_all_nonzero_elements():
    values = np.arange(1, 256)
    assert np.array_equal(gf256.EXP[gf256.LOG[values]], values)
    powers = np.arange(255)
    assert np.array_equal(gf256.LOG[gf256.EXP[powers]], powers)
    # The doubled table halves agree (the mod-free multiply trick).
    assert np.array_equal(gf256.EXP[:255], gf256.EXP[255:510])


def test_generator_has_full_multiplicative_order():
    seen = set(int(v) for v in gf256.EXP[:255])
    assert len(seen) == 255 and 0 not in seen


def test_mul_matches_carryless_reference_randomized():
    rng = np.random.default_rng(1234)
    a = rng.integers(0, 256, size=500)
    b = rng.integers(0, 256, size=500)
    batched = gf256.mul(a, b)
    for x, y, got in zip(a, b, batched):
        assert int(got) == _mul_reference(int(x), int(y))


def test_batched_equals_scalar_table_lookup():
    rng = np.random.default_rng(99)
    a = rng.integers(0, 256, size=300)
    b = rng.integers(0, 256, size=300)
    assert np.array_equal(
        gf256.mul(a, b), [int(gf256.mul(int(x), int(y))) for x, y in zip(a, b)]
    )
    nz = np.where(a == 0, 1, a)
    assert np.array_equal(gf256.inv(nz), [int(gf256.inv(int(x))) for x in nz])
    assert np.array_equal(
        gf256.div(b, nz), [int(gf256.div(int(y), int(x))) for x, y in zip(nz, b)]
    )


def test_field_axioms_randomized():
    rng = np.random.default_rng(77)
    a = rng.integers(0, 256, size=1000)
    b = rng.integers(0, 256, size=1000)
    c = rng.integers(0, 256, size=1000)
    # Commutativity and associativity of the product.
    assert np.array_equal(gf256.mul(a, b), gf256.mul(b, a))
    assert np.array_equal(
        gf256.mul(gf256.mul(a, b), c), gf256.mul(a, gf256.mul(b, c))
    )
    # Distributivity over the field addition (XOR).
    assert np.array_equal(
        gf256.mul(a, b ^ c), gf256.mul(a, b) ^ gf256.mul(a, c)
    )
    # Identities.
    assert np.array_equal(gf256.mul(a, np.ones_like(a)), a.astype(np.uint8))
    assert np.all(gf256.mul(a, np.zeros_like(a)) == 0)


def test_inverses_randomized():
    rng = np.random.default_rng(55)
    a = rng.integers(1, 256, size=1000)
    assert np.all(gf256.mul(a, gf256.inv(a)) == 1)
    b = rng.integers(1, 256, size=1000)
    # div is mul by the inverse.
    assert np.array_equal(gf256.div(a, b), gf256.mul(a, gf256.inv(b)))
    assert np.all(gf256.div(np.zeros_like(b), b) == 0)


def test_zero_has_no_inverse():
    with pytest.raises(ZeroDivisionError):
        gf256.inv(np.array([1, 0, 2]))
    with pytest.raises(ZeroDivisionError):
        gf256.div(np.array([5]), np.array([0]))


def test_power_matches_repeated_multiplication():
    rng = np.random.default_rng(3)
    bases = rng.integers(1, 256, size=50)
    acc = np.ones(50, dtype=np.uint8)
    for exponent in range(6):
        assert np.array_equal(gf256.power(bases, exponent), acc)
        acc = gf256.mul(acc, bases)
    assert np.all(gf256.power(np.zeros(3, dtype=np.int64), 0) == 1)
    assert np.all(gf256.power(np.zeros(3, dtype=np.int64), 4) == 0)


def test_alpha_power_wraps_negative_exponents():
    n = np.array([-1, -255, 254, 255, 509])
    expected = gf256.EXP[np.mod(n, 255)]
    assert np.array_equal(gf256.alpha_power(n), expected)


def test_poly_eval_and_mul_consistency():
    rng = np.random.default_rng(11)
    p = rng.integers(0, 256, size=5)
    q = rng.integers(0, 256, size=4)
    xs = rng.integers(0, 256, size=64)
    lhs = gf256.poly_eval(gf256.poly_mul(p, q), xs)
    rhs = gf256.mul(gf256.poly_eval(p, xs), gf256.poly_eval(q, xs))
    assert np.array_equal(lhs, rhs)


def test_elements_validated():
    with pytest.raises(ValueError, match="integers"):
        gf256.mul(np.array([0.5]), np.array([1]))
    with pytest.raises(ValueError, match="0, 255"):
        gf256.mul(np.array([256]), np.array([1]))
