"""ECC provisioning math."""

import pytest

from repro.ecc import DEFAULT_ECC, EccConfig


def test_default_tolerable_rber_near_paper_value():
    """The paper: ECC tolerates RBER up to ~1e-3 (Section 2.5)."""
    assert DEFAULT_ECC.tolerable_rber == pytest.approx(1e-3, rel=0.25)


def test_tolerable_below_raw_capability():
    assert DEFAULT_ECC.tolerable_rber < DEFAULT_ECC.raw_capability_rber


def test_failure_probability_monotone():
    cfg = DEFAULT_ECC
    assert cfg.codeword_failure_probability(1e-4) < cfg.codeword_failure_probability(5e-3)
    assert cfg.codeword_failure_probability(0.0) == 0.0


def test_failure_target_met_at_tolerable_rber():
    cfg = DEFAULT_ECC
    assert cfg.codeword_failure_probability(cfg.tolerable_rber) == pytest.approx(
        cfg.codeword_failure_target, rel=1e-3
    )


def test_page_capability_scales_with_page_size():
    cfg = DEFAULT_ECC
    assert cfg.page_capability_bits(65536) > cfg.page_capability_bits(16384) >= 1


def test_usable_capability_reserves_margin():
    """M uses (1 - 0.2) * C (the paper's 20% reserved margin)."""
    cfg = DEFAULT_ECC
    cap = cfg.page_capability_bits(65536)
    assert cfg.usable_capability_bits(65536) == int(0.8 * cap)


def test_worst_page_errors_above_mean():
    cfg = DEFAULT_ECC
    mee = cfg.expected_worst_page_errors(5e-4, 65536, pages=256)
    assert mee > 5e-4 * 65536  # worst page exceeds the mean
    assert cfg.expected_worst_page_errors(0.0, 65536, pages=256) == 0


def test_stronger_code_tolerates_more():
    weak = EccConfig(codeword_bits=9216, correctable_bits=20)
    strong = EccConfig(codeword_bits=9216, correctable_bits=60)
    assert strong.tolerable_rber > weak.tolerable_rber


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        EccConfig(correctable_bits=0)
    with pytest.raises(ValueError):
        EccConfig(codeword_bits=100, correctable_bits=100)
    with pytest.raises(ValueError):
        EccConfig(reserved_margin_fraction=1.0)
    with pytest.raises(ValueError):
        DEFAULT_ECC.codeword_failure_probability(1.5)
