"""Batched sensing primitives must match the scalar paths bit-for-bit.

The vectorized hot path (`read_pages`, `page_error_counts`,
`threshold_sweep_counts`, the fused materialization kernel, and the
epoch-keyed voltage cache) exists purely for speed: every test here pins
it to the per-page scalar reference, including the low-Vpass cutoff-mask
cases and cache invalidation across disturb recording, erase, and
reprogramming.
"""

import numpy as np
import pytest

from repro.flash import FlashBlock, FlashGeometry
from repro.flash.sensing import DEFAULT_REFERENCES, sense_page, sense_pages
from repro.rng import RngFactory
from repro.units import days

#: nominal and deeply relaxed pass-through voltage (the latter activates
#: the cutoff-mask path).
VPASS_CASES = (512.0, 430.0)


def make_block(seed=7, pe=8000, reads=200_000, wordlines=8, bitlines=512):
    geometry = FlashGeometry(blocks=2, wordlines_per_block=wordlines, bitlines_per_block=bitlines)
    blk = FlashBlock(geometry, RngFactory(seed))
    blk.cycle_wear_to(pe)
    blk.program_random()
    if reads:
        blk.apply_read_disturb(reads, target_wordline=1)
    return blk


def scalar_read_pages(blk, pages, now, vpass):
    return np.stack(
        [blk.read_page(int(p), now, vpass=vpass, record_disturb=False) for p in pages]
    )


def scalar_error_counts(blk, pages, now, vpass):
    return np.array(
        [
            blk.page_error_count(int(p), now, vpass=vpass, record_disturb=False)
            for p in pages
        ],
        dtype=np.int64,
    )


@pytest.mark.parametrize("vpass", VPASS_CASES)
def test_read_pages_matches_scalar_loop(vpass):
    blk = make_block()
    pages = np.array([0, 1, 2, 3, 7, 8, 15, 14, 3])  # unsorted + duplicate
    batched = blk.read_pages(pages, now=days(1), vpass=vpass)
    scalar = scalar_read_pages(blk, pages, days(1), vpass)
    assert np.array_equal(batched, scalar)


@pytest.mark.parametrize("vpass", VPASS_CASES)
def test_page_error_counts_match_scalar_loop(vpass):
    blk = make_block()
    pages = np.arange(blk.geometry.pages_per_block)
    batched = blk.page_error_counts(pages, now=days(2), vpass=vpass)
    scalar = scalar_error_counts(blk, pages, days(2), vpass)
    assert np.array_equal(batched, scalar)
    # Unsorted input with duplicates takes the np.unique fallback path.
    shuffled = np.array([9, 1, 1, 14, 0, 9, 5])
    assert np.array_equal(
        blk.page_error_counts(shuffled, now=days(2), vpass=vpass),
        scalar_error_counts(blk, shuffled, days(2), vpass),
    )
    if vpass < 512.0:
        # The relaxed-Vpass case must actually exercise cutoff errors,
        # otherwise this equivalence proves less than it claims.
        assert batched.sum() > scalar_error_counts(blk, pages, days(2), 512.0).sum()


def test_fused_materialization_matches_reference_composition():
    for seed, pe, reads, now in [(0, 0, 0, 0.0), (1, 8000, 500_000, 3600.0), (2, 15000, 2_000_000, days(10))]:
        blk = make_block(seed=seed, pe=max(pe, 1), reads=reads)
        reference = blk.current_voltages(now)
        fused = blk._materialize_rows(slice(None), now)
        assert np.array_equal(reference, fused)
        subset = np.array([0, 3, 5])
        assert np.array_equal(blk.current_voltages(now, subset), blk._materialize_rows(subset, now))


def test_measure_block_rber_matches_manual_loop():
    blk = make_block()
    manual_errors = 0
    manual_bits = 0
    for wordline in range(blk.geometry.wordlines_per_block):
        for page in (2 * wordline, 2 * wordline + 1):
            bits = blk.read_page(page, days(1), record_disturb=False)
            manual_errors += int((bits != blk.expected_page_bits(page)).sum())
            manual_bits += bits.size
    assert blk.measure_block_rber(now=days(1)) == manual_errors / manual_bits


def test_measure_block_rber_skips_unprogrammed_wordlines():
    geometry = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=256)
    blk = FlashBlock(geometry, RngFactory(3))
    blk.erase()
    rng = np.random.default_rng(0)
    for wordline in (1, 4):
        lsb = rng.integers(0, 2, 256, dtype=np.uint8)
        msb = rng.integers(0, 2, 256, dtype=np.uint8)
        blk.program_wordline_bits(wordline, lsb, msb)
    pages = np.array([2, 3, 8, 9])
    expected = blk.page_error_counts(pages, record_disturb=False).sum() / (4 * 256)
    assert blk.measure_block_rber() == expected


def test_threshold_sweep_counts_match_scalar_sweep():
    blk = make_block()
    thresholds = np.arange(-40.0, 524.0, 4.0)
    for wordline in (0, 3):
        batched = blk.threshold_sweep_counts(wordline, thresholds, now=days(1))
        scalar = np.zeros(blk.geometry.bitlines_per_block, dtype=np.int64)
        for t in thresholds:
            scalar += blk.threshold_read(wordline, float(t), days(1), record_disturb=False)
        assert np.array_equal(batched, scalar)


def test_expected_pages_bits_matches_scalar():
    blk = make_block(reads=0)
    pages = np.arange(blk.geometry.pages_per_block)
    batched = blk.expected_pages_bits(pages)
    for i, page in enumerate(pages):
        assert np.array_equal(batched[i], blk.expected_page_bits(int(page)))


def test_sense_pages_matches_sense_page():
    rng = np.random.default_rng(5)
    voltages = rng.uniform(-40.0, 520.0, (6, 128))
    is_msb = np.array([False, True, True, False, True, False])
    cutoff = rng.random((6, 128)) < 0.1
    batched = sense_pages(voltages, is_msb, DEFAULT_REFERENCES, cutoff)
    for i in range(6):
        assert np.array_equal(
            batched[i], sense_page(voltages[i], bool(is_msb[i]), DEFAULT_REFERENCES, cutoff[i])
        )


# ----------------------------------------------------------------------
# Voltage-cache epoch contract
# ----------------------------------------------------------------------


def test_cache_invalidated_by_record_reads():
    blk = make_block()
    pages = np.arange(8)
    before = blk.page_error_counts(pages, now=days(1))
    blk.record_reads(np.array([0, 1]), np.array([400_000, 400_000]))
    after = blk.page_error_counts(pages, now=days(1))
    # The heavy extra disturb must be visible (stale cache would hide it),
    # and both answers must still match the scalar path.
    assert not np.array_equal(before, after)
    assert np.array_equal(after, scalar_error_counts(blk, pages, days(1), 512.0))


def test_cache_invalidated_by_record_read_and_apply():
    blk = make_block()
    epoch = blk.voltage_epoch
    blk.record_read(0)
    assert blk.voltage_epoch > epoch
    epoch = blk.voltage_epoch
    blk.apply_read_disturb(1000)
    assert blk.voltage_epoch > epoch


def test_cache_invalidated_by_erase_and_reprogram():
    blk = make_block()
    pages = np.arange(4)
    blk.read_pages(pages, now=0.0)  # warm the cache
    blk.erase()
    erased = blk.read_pages(pages, now=0.0)
    assert np.array_equal(erased, scalar_read_pages(blk, pages, 0.0, 512.0))
    # Erased cells sense as ER: LSB pages read all-ones.
    assert (erased[0] == 1).all() and (erased[2] == 1).all()
    blk.program_random()
    reprogrammed = blk.read_pages(pages, now=0.0)
    assert not np.array_equal(erased, reprogrammed)
    assert np.array_equal(reprogrammed, scalar_read_pages(blk, pages, 0.0, 512.0))


def test_cache_keyed_on_time():
    blk = make_block(pe=15000, reads=1_000_000)
    pages = np.arange(blk.geometry.pages_per_block)
    fresh = blk.page_error_counts(pages, now=0.0)
    aged = blk.page_error_counts(pages, now=days(90))
    # A different `now` must re-materialize (a stale cache would return
    # the fresh counts again) ...
    assert not np.array_equal(fresh, aged)
    # ... and both answers must match the scalar path at their own time.
    assert np.array_equal(fresh, scalar_error_counts(blk, pages, 0.0, 512.0))
    assert np.array_equal(aged, scalar_error_counts(blk, pages, days(90), 512.0))


def test_block_voltages_reuses_materialization_within_epoch():
    blk = make_block()
    first = blk.block_voltages(0.0)
    assert blk.block_voltages(0.0) is first
    blk.record_read(0)
    assert blk.block_voltages(0.0) is not first


def test_invalidate_voltage_cache_covers_out_of_band_mutation():
    blk = make_block()
    pages = np.arange(4)
    blk.page_error_counts(pages, now=0.0)
    blk.cells.v0[:] += 50.0  # out-of-band edit, as the contract describes
    blk.invalidate_voltage_cache()
    assert np.array_equal(
        blk.page_error_counts(pages, now=0.0),
        scalar_error_counts(blk, pages, 0.0, 512.0),
    )


# ----------------------------------------------------------------------
# Vectorized programming
# ----------------------------------------------------------------------


def test_program_block_bits_programs_every_wordline():
    geometry = FlashGeometry(blocks=1, wordlines_per_block=4, bitlines_per_block=256)
    blk = FlashBlock(geometry, RngFactory(1))
    rng = np.random.default_rng(9)
    lsb = rng.integers(0, 2, (4, 256), dtype=np.uint8)
    msb = rng.integers(0, 2, (4, 256), dtype=np.uint8)
    blk.erase()
    blk.program_block_bits(lsb, msb, now=5.0)
    assert blk.programmed.all()
    assert (blk.program_time == 5.0).all()
    for wordline in range(4):
        read_lsb = blk.read_page(2 * wordline, now=5.0, record_disturb=False)
        read_msb = blk.read_page(2 * wordline + 1, now=5.0, record_disturb=False)
        assert (read_lsb != lsb[wordline]).sum() <= 2
        assert (read_msb != msb[wordline]).sum() <= 2


def test_program_block_bits_rejects_programmed_block():
    blk = make_block(reads=0)
    lsb = np.zeros((blk.geometry.wordlines_per_block, blk.geometry.bitlines_per_block), dtype=np.uint8)
    with pytest.raises(RuntimeError):
        blk.program_block_bits(lsb, lsb)


def test_program_random_statistics_match_per_wordline_reference():
    """The one-pass program keeps the same per-state voltage distributions
    as a per-wordline loop (different draws, same physics)."""
    geometry = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=2048)
    batched = FlashBlock(geometry, RngFactory(2))
    batched.cycle_wear_to(8000)
    batched.program_random()
    loop = FlashBlock(geometry, RngFactory(2))
    loop.cycle_wear_to(8000)
    rng = loop._rng
    for wordline in range(geometry.wordlines_per_block):
        lsb = rng.integers(0, 2, 2048, dtype=np.uint8)
        msb = rng.integers(0, 2, 2048, dtype=np.uint8)
        loop.program_wordline_bits(wordline, lsb, msb)
    for state in range(4):
        v_batched = batched.cells.v0[batched.cells.true_states == state]
        v_loop = loop.cells.v0[loop.cells.true_states == state]
        assert abs(v_batched.mean() - v_loop.mean()) < 2.0
        assert abs(v_batched.std() - v_loop.std()) < 2.0
