"""MLC state gray coding."""

import numpy as np
import pytest

from repro.flash.state import (
    MlcState,
    STATE_ORDER,
    bit_errors_between,
    bits_to_state,
    lsb_of_state,
    msb_of_state,
    state_to_bits,
    states_from_bits,
)


def test_paper_figure1_gray_code():
    assert state_to_bits(MlcState.ER) == (1, 1)
    assert state_to_bits(MlcState.P1) == (1, 0)
    assert state_to_bits(MlcState.P2) == (0, 0)
    assert state_to_bits(MlcState.P3) == (0, 1)


def test_state_order_is_by_voltage():
    assert [int(s) for s in STATE_ORDER] == [0, 1, 2, 3]


def test_bits_roundtrip_all_states():
    for state in MlcState:
        lsb, msb = state_to_bits(state)
        assert bits_to_state(lsb, msb) is state


def test_bits_to_state_rejects_non_bits():
    with pytest.raises(ValueError):
        bits_to_state(2, 0)
    with pytest.raises(ValueError):
        bits_to_state(0, -1)


def test_vectorized_tables_match_scalar():
    states = np.array([0, 1, 2, 3])
    assert list(lsb_of_state(states)) == [state_to_bits(MlcState(s))[0] for s in states]
    assert list(msb_of_state(states)) == [state_to_bits(MlcState(s))[1] for s in states]


def test_states_from_bits_roundtrip_array():
    states = np.array([0, 1, 2, 3, 3, 0])
    rebuilt = states_from_bits(lsb_of_state(states), msb_of_state(states))
    assert np.array_equal(rebuilt, states)


def test_states_from_bits_validates_input():
    with pytest.raises(ValueError):
        states_from_bits(np.array([0, 2]), np.array([0, 0]))
    with pytest.raises(ValueError):
        states_from_bits(np.array([0]), np.array([0, 1]))


def test_adjacent_states_differ_by_one_bit():
    """The defining gray-code property: adjacent misreads cost one bit."""
    for a, b in zip(STATE_ORDER[:-1], STATE_ORDER[1:]):
        errs = bit_errors_between(np.array([int(a)]), np.array([int(b)]))
        assert errs[0] == 1


def test_skip_misreads_can_cost_two_bits():
    errs = bit_errors_between(np.array([int(MlcState.ER)]), np.array([int(MlcState.P2)]))
    assert errs[0] == 2


def test_bit_errors_symmetric_and_zero_on_diagonal():
    for a in range(4):
        for b in range(4):
            ab = bit_errors_between(np.array([a]), np.array([b]))[0]
            ba = bit_errors_between(np.array([b]), np.array([a]))[0]
            assert ab == ba
            if a == b:
                assert ab == 0
