"""Chip-level command surface."""

import numpy as np
import pytest

from repro.flash import FlashChip, FlashGeometry


def test_chip_builds_blocks(chip):
    assert len(chip.blocks) == chip.geometry.blocks
    assert chip.block(0) is chip.blocks[0]


def test_clock_advances_and_rejects_reversal(chip):
    chip.advance_time(100.0)
    assert chip.now == 100.0
    with pytest.raises(ValueError):
        chip.advance_time(-1.0)


def test_read_records_disturb(chip):
    chip.erase_block(0)
    chip.program_block_random(0)
    chip.read(0, 0)
    assert chip.blocks[0].total_reads == 1
    assert chip.blocks[1].total_reads == 0


def test_read_retry_shifts_references(chip):
    chip.erase_block(0)
    chip.program_block_random(0)
    base = chip.read_retry(0, 0, (0.0, 0.0, 0.0))
    shifted = chip.read_retry(0, 0, (-60.0, -60.0, -60.0))
    # Lower references push sensed states upward on average.
    assert shifted.mean() >= base.mean()


def test_chips_with_same_seed_identical():
    g = FlashGeometry(blocks=1, wordlines_per_block=4, bitlines_per_block=256)
    a, b = FlashChip(g, seed=5), FlashChip(g, seed=5)
    a.erase_block(0); b.erase_block(0)
    a.program_block_random(0); b.program_block_random(0)
    assert np.array_equal(a.blocks[0].cells.v0, b.blocks[0].cells.v0)
    assert np.array_equal(a.blocks[0].cells.true_states, b.blocks[0].cells.true_states)


def test_chips_with_different_seeds_differ():
    g = FlashGeometry(blocks=1, wordlines_per_block=4, bitlines_per_block=256)
    a, b = FlashChip(g, seed=5), FlashChip(g, seed=6)
    assert not np.array_equal(a.blocks[0].cells.susceptibility, b.blocks[0].cells.susceptibility)


def test_chip_record_reads_matches_per_read_accounting(chip):
    chip.erase_block(0)
    chip.record_reads(0, np.array([1, 3]), np.array([40, 2]))
    block = chip.block(0)
    assert block.total_reads == 42
    assert block.reads_targeted[1] == 40 and block.reads_targeted[3] == 2
    # A read targeting wordline 1 disturbs every other wordline.
    assert block.disturb_exposure(0) == 42.0
    assert block.disturb_exposure(1) == 2.0
