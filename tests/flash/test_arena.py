"""The block arena: slab layout, bit-identity, attach, and spilling.

Contract under test (docs/architecture.md, "The process executor and the
block arena"): a :class:`BlockStore` slab carries every piece of mutable
per-block state at deterministic offsets, an arena-backed
:class:`FlashBlock` is bit-identical to a heap-backed one, a second
process (or a plain second handle) can attach to a block without
consuming RNG or touching state, and the mmap backing's LRU eviction is
a pure residency hint — data survives any spill schedule.
"""

import os

import numpy as np
import pytest

from repro.flash.arena import (
    ARENA_BACKINGS,
    BlockStore,
    META_I_SLOTS,
    SlabLayout,
)
from repro.flash.block import FlashBlock
from repro.flash.cell_array import CellArray
from repro.flash.geometry import FlashGeometry
from repro.rng import RngFactory

GEOMETRY = FlashGeometry(blocks=6, wordlines_per_block=8, bitlines_per_block=64)


def _block_state(fb):
    return (
        fb.pe_cycles,
        fb.total_reads,
        fb.voltage_epoch,
        float(fb._total_exposure),
        fb.program_time.tolist(),
        fb.programmed.tolist(),
        fb.reads_targeted.tolist(),
        fb._exposure_targeted.tolist(),
        fb.cells.true_states.tolist(),
        fb.cells.v0.tolist(),
        fb.cells.susceptibility.tolist(),
        fb.cells.leak.tolist(),
    )


def _exercise(fb, seed=0):
    """Drive a block through program/read/erase/program history."""
    rng = np.random.default_rng(seed)
    bits = fb.geometry.bitlines_per_block
    for wordline in (0, 3, 5):
        lsb = rng.integers(0, 2, bits, dtype=np.uint8)
        msb = rng.integers(0, 2, bits, dtype=np.uint8)
        fb.program_wordline_bits(wordline, lsb, msb, now=10.0)
    fb.record_reads(np.array([0, 3]), np.array([40, 7]), vpass=6.0)
    fb.erase(now=20.0)
    lsb = rng.integers(0, 2, bits, dtype=np.uint8)
    msb = rng.integers(0, 2, bits, dtype=np.uint8)
    fb.program_wordline_bits(1, lsb, msb, now=30.0)
    fb.record_reads(np.array([1]), np.array([11]), vpass=6.0)


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------


def test_slab_layout_is_aligned_and_page_rounded():
    layout = SlabLayout(GEOMETRY)
    for spec in layout.fields.values():
        assert spec.offset % 8 == 0, spec.name
    end = max(s.offset + s.nbytes for s in layout.fields.values())
    assert layout.slab_bytes % 4096 == 0
    assert layout.slab_bytes >= end
    # meta_i really holds all the scalar slots the block needs.
    assert layout.fields["meta_i"].shape == (META_I_SLOTS,)


@pytest.mark.parametrize("backing", ARENA_BACKINGS)
def test_slab_views_do_not_alias_across_fields_or_blocks(backing):
    store = BlockStore(GEOMETRY, backing=backing)
    try:
        a, b = store.slab(0), store.slab(1)
        a.v0.fill(1.0)
        a.leak.fill(2.0)
        a.meta_i[:] = 7
        assert (b.v0 == 0).all() and (b.meta_i == 0).all()
        assert (a.v0 == 1.0).all() and (a.leak == 2.0).all()
        with pytest.raises(IndexError):
            store.slab(GEOMETRY.blocks)
    finally:
        store.close()


# ----------------------------------------------------------------------
# Bit-identity and attach
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backing", ARENA_BACKINGS)
def test_arena_backed_block_bit_identical_to_heap(backing):
    heap = FlashBlock(GEOMETRY, RngFactory(9), block_id=2)
    _exercise(heap, seed=1)
    store = BlockStore(GEOMETRY, backing=backing)
    try:
        arena = FlashBlock(GEOMETRY, RngFactory(9), block_id=2, store=store)
        _exercise(arena, seed=1)
        assert _block_state(arena) == _block_state(heap)
        # And the physics downstream of the state agrees too.
        assert arena.measure_block_rber(40.0) == heap.measure_block_rber(40.0)
    finally:
        store.close()


def test_attach_sees_state_without_consuming_rng():
    store = BlockStore(GEOMETRY, backing="shm")
    try:
        owner = FlashBlock(GEOMETRY, RngFactory(3), block_id=1, store=store)
        _exercise(owner, seed=2)
        attached = FlashBlock.attach(GEOMETRY, store, 1)
        assert attached.cells.true_states.tolist() == owner.cells.true_states.tolist()
        assert attached.pe_cycles == owner.pe_cycles
        assert attached.voltage_epoch == owner.voltage_epoch
        # Mutations through either handle are visible through the other.
        attached.record_reads(np.array([1]), np.array([5]), vpass=6.0)
        assert owner.total_reads == attached.total_reads
        assert owner.voltage_epoch == attached.voltage_epoch
        # CellArray.attach is the no-init path: same buffers, no writes.
        view = CellArray.attach(GEOMETRY, store.slab(1))
        assert view.v0 is store.slab(1).v0 or (view.v0 == owner.cells.v0).all()
    finally:
        store.close()


# ----------------------------------------------------------------------
# Out-of-core spilling (mmap backing)
# ----------------------------------------------------------------------


def test_mmap_lru_evicts_and_data_survives():
    evicted = []
    store = BlockStore(
        GEOMETRY, backing="mmap", resident_limit=2, on_evict=evicted.append
    )
    try:
        blocks = [
            FlashBlock(GEOMETRY, RngFactory(4), block_id=i, store=store)
            for i in range(4)
        ]
        states = []
        for i, fb in enumerate(blocks):
            _exercise(fb, seed=i)
            states.append(_block_state(fb))
        assert store.evictions > 0
        assert evicted, "eviction callback must fire"
        assert len(store.resident_blocks) <= 2
        # Spilled state refaults intact: every block still reads back
        # exactly what it held before any eviction.
        for fb, state in zip(blocks, states):
            assert _block_state(fb) == state
    finally:
        store.close()


def test_shm_backing_rejects_resident_limit():
    with pytest.raises(ValueError, match="mmap"):
        BlockStore(GEOMETRY, backing="shm", resident_limit=2)
    with pytest.raises(ValueError, match="backing"):
        BlockStore(GEOMETRY, backing="tape")


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_shm_close_unlinks_segment_immediately():
    before = set(os.listdir("/dev/shm"))
    store = BlockStore(GEOMETRY, backing="shm")
    fb = FlashBlock(GEOMETRY, RngFactory(0), block_id=0, store=store)
    created = set(os.listdir("/dev/shm")) - before
    assert created, "shm arena should appear in /dev/shm"
    # Views are still alive (fb) — close must swallow the BufferError
    # and unlink the name anyway.
    store.close()
    assert set(os.listdir("/dev/shm")) == before
    store.close()  # idempotent
    assert fb.cells.v0.shape  # views stay usable until they die


def test_mmap_close_deletes_backing_file():
    store = BlockStore(GEOMETRY, backing="mmap")
    path = store.path
    assert os.path.exists(path)
    FlashBlock(GEOMETRY, RngFactory(0), block_id=0, store=store)
    store.close()
    assert not os.path.exists(path)
    store.close()  # idempotent


def test_finalizer_cleans_up_unclosed_store():
    before = set(os.listdir("/dev/shm"))
    store = BlockStore(GEOMETRY, backing="shm")
    assert set(os.listdir("/dev/shm")) != before
    del store  # never closed: the weakref.finalize backstop unlinks
    assert set(os.listdir("/dev/shm")) == before
