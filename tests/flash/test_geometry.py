"""Chip geometry arithmetic."""

import pytest

from repro.flash.geometry import FlashGeometry


def test_derived_quantities():
    g = FlashGeometry(blocks=4, wordlines_per_block=16, bitlines_per_block=128)
    assert g.cells_per_block == 2048
    assert g.pages_per_block == 32
    assert g.bits_per_page == 128
    assert g.bits_per_block == 4096
    assert g.total_cells == 8192


def test_page_wordline_mapping_roundtrip():
    g = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=16)
    for wordline in range(g.wordlines_per_block):
        lsb_page, msb_page = g.wordline_to_pages(wordline)
        assert g.page_to_wordline(lsb_page) == (wordline, False)
        assert g.page_to_wordline(msb_page) == (wordline, True)


def test_page_bounds_checked():
    g = FlashGeometry(blocks=1, wordlines_per_block=4, bitlines_per_block=16)
    with pytest.raises(IndexError):
        g.page_to_wordline(8)
    with pytest.raises(IndexError):
        g.wordline_to_pages(4)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"blocks": 0},
        {"wordlines_per_block": 1},
        {"bitlines_per_block": 0},
    ],
)
def test_invalid_geometry_rejected(kwargs):
    with pytest.raises(ValueError):
        FlashGeometry(**kwargs)
