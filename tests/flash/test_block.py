"""Flash block lifecycle, disturb accounting, and measurement."""

import numpy as np
import pytest

from repro.rng import RngFactory
from repro.flash import FlashBlock, FlashGeometry
from repro.units import days


def test_program_then_read_returns_data(block):
    bits = block.geometry.bitlines_per_block
    rng = np.random.default_rng(0)
    lsb = rng.integers(0, 2, bits, dtype=np.uint8)
    msb = rng.integers(0, 2, bits, dtype=np.uint8)
    block.erase()
    block.program_wordline_bits(0, lsb, msb)
    read_lsb = block.read_page(0)
    read_msb = block.read_page(1)
    # Fresh block: error rate must be tiny (a few cells at most).
    assert (read_lsb != lsb).sum() <= 2
    assert (read_msb != msb).sum() <= 2


def test_double_program_without_erase_rejected(block):
    bits = np.zeros(block.geometry.bitlines_per_block, dtype=np.uint8)
    block.erase()
    block.program_wordline_bits(0, bits, bits)
    with pytest.raises(RuntimeError):
        block.program_wordline_bits(0, bits, bits)


def test_erase_counts_pe_cycle_and_clears_reads(programmed_block):
    blk = programmed_block
    blk.apply_read_disturb(1000)
    pe_before = blk.pe_cycles
    blk.erase()
    assert blk.pe_cycles == pe_before + 1
    assert blk.total_reads == 0
    assert blk.disturb_exposure(0) == 0.0


def test_cycle_wear_cannot_decrease(programmed_block):
    with pytest.raises(ValueError):
        programmed_block.cycle_wear_to(10)


def test_read_disturbs_other_wordlines_only(block):
    block.erase()
    block.program_random()
    block.record_read(wordline=3, count=100)
    assert block.disturb_exposure(3) == 0.0
    for w in [0, 1, 2, 4]:
        assert block.disturb_exposure(w) == pytest.approx(100.0)


def test_uniform_disturb_spreads_exposure(block):
    block.erase()
    block.apply_read_disturb(800)
    w = block.geometry.wordlines_per_block
    expected = 800.0 * (w - 1) / w
    for wordline in range(w):
        assert block.disturb_exposure(wordline) == pytest.approx(expected)


def test_uniform_disturb_preserves_total_read_count(block):
    """The integer spread must not drop the remainder: reads_targeted
    always sums to total_reads, and the split is deterministic."""
    block.erase()
    w = block.geometry.wordlines_per_block
    reads = 7 * w + 3  # deliberately not a multiple of the wordline count
    block.apply_read_disturb(reads)
    assert int(block.reads_targeted.sum()) == block.total_reads == reads
    assert block.reads_targeted.max() - block.reads_targeted.min() == 1
    # The remainder lands on the lowest wordlines, deterministically.
    assert (block.reads_targeted[:3] == 8).all()
    assert (block.reads_targeted[3:] == 7).all()


def test_record_reads_batch_matches_loop(block):
    import copy

    block.erase()
    other = copy.deepcopy(block)
    wordlines = np.array([0, 2, 2, 4])
    counts = np.array([5, 1, 3, 7])
    block.record_reads(wordlines, counts, vpass=505.0)
    for wl, c in zip(wordlines, counts):
        other.record_read(int(wl), vpass=505.0, count=int(c))
    assert block.total_reads == other.total_reads == 16
    assert np.array_equal(block.reads_targeted, other.reads_targeted)
    assert np.allclose(block.disturb_exposure(), other.disturb_exposure())


def test_relaxed_vpass_reads_accumulate_less_exposure(block):
    block.erase()
    block.record_read(0, vpass=512.0, count=100)
    nominal = block.disturb_exposure(1)
    block2 = FlashBlock(block.geometry, RngFactory(9))
    block2.erase()
    block2.record_read(0, vpass=512.0 * 0.98, count=100)
    relaxed = block2.disturb_exposure(1)
    assert relaxed < 0.2 * nominal


def test_disturb_shifts_voltages_upward(programmed_block):
    blk = programmed_block
    before = blk.current_voltages(now=0.0).copy()
    blk.apply_read_disturb(500_000, target_wordline=0)
    after = blk.current_voltages(now=0.0)
    # Wordline 0 absorbed no disturb (reads targeted it).
    assert np.allclose(after[0], before[0])
    assert (after[1:] >= before[1:] - 1e-9).all()
    assert after[1:].mean() > before[1:].mean() + 0.5


def test_retention_lowers_programmed_voltages(programmed_block):
    blk = programmed_block
    fresh = blk.current_voltages(now=0.0)
    aged = blk.current_voltages(now=days(21))
    assert aged.mean() < fresh.mean() - 1.0
    assert (aged <= fresh + 1e-9).all()


def test_rber_grows_with_disturb(programmed_block):
    blk = programmed_block
    rber0 = blk.measure_block_rber(now=0.0)
    blk.apply_read_disturb(1_000_000)
    rber1 = blk.measure_block_rber(now=0.0)
    assert rber1 > rber0 + 1e-3


def test_relaxed_vpass_read_causes_cutoff_errors(programmed_block):
    blk = programmed_block
    errors_nominal = blk.page_error_count(0, record_disturb=False)
    # Deep relaxation so even this small block shows clear cutoffs.
    errors_relaxed = blk.page_error_count(0, vpass=430.0, record_disturb=False)
    assert errors_relaxed > errors_nominal + 10


def test_threshold_read_matches_voltages(programmed_block):
    blk = programmed_block
    voltages = blk.current_voltages(0.0, np.array([2]))[0]
    conducting = blk.threshold_read(2, threshold=200.0, record_disturb=False)
    assert np.array_equal(conducting, voltages <= 200.0)


def test_measure_rber_requires_programmed_pages(block):
    block.erase()
    with pytest.raises(RuntimeError):
        block.measure_block_rber()
