"""Error accounting helpers."""

import numpy as np
import pytest

from repro.flash.errors import (
    count_bit_errors,
    measure_rber,
    page_bits_from_states,
    state_error_breakdown,
    state_transition_matrix,
)


def test_count_and_rber():
    a = np.array([1, 0, 1, 1], dtype=np.uint8)
    b = np.array([1, 1, 1, 0], dtype=np.uint8)
    assert count_bit_errors(a, b) == 2
    assert measure_rber(a, b) == pytest.approx(0.5)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        count_bit_errors(np.zeros(3), np.zeros(4))


def test_empty_rber_rejected():
    with pytest.raises(ValueError):
        measure_rber(np.array([]), np.array([]))


def test_transition_matrix_counts():
    true = np.array([0, 0, 1, 2, 3])
    sensed = np.array([0, 1, 1, 2, 2])
    t = state_transition_matrix(true, sensed)
    assert t[0, 0] == 1 and t[0, 1] == 1 and t[1, 1] == 1
    assert t[2, 2] == 1 and t[3, 2] == 1
    assert t.sum() == 5


def test_breakdown_directions():
    true = np.array([0, 1, 3])
    sensed = np.array([1, 1, 2])
    b = state_error_breakdown(true, sensed)
    assert b.total_bits == 6
    assert b.upward_state_errors == 1
    assert b.downward_state_errors == 1
    assert b.bit_errors == 2  # adjacent misreads cost one bit each
    assert b.rber == pytest.approx(2 / 6)


def test_page_bits_from_states():
    states = np.array([0, 1, 2, 3])
    assert list(page_bits_from_states(states, is_msb=False)) == [1, 1, 0, 0]
    assert list(page_bits_from_states(states, is_msb=True)) == [1, 0, 0, 1]
