"""Read sensing logic, including bitline cutoff behavior."""

import numpy as np
import pytest

from repro.flash.sensing import DEFAULT_REFERENCES, ReadReferences, sense_page, sense_states


def test_sense_states_partitions_by_references():
    refs = DEFAULT_REFERENCES
    voltages = np.array(
        [refs.va - 1, refs.va + 1, refs.vb + 1, refs.vc + 1, refs.va, refs.vb]
    )
    states = sense_states(voltages, refs)
    # side="left": a voltage exactly at a reference conducts (<=).
    assert list(states) == [0, 1, 2, 3, 0, 1]


def test_sense_lsb_page_thresholds_at_vb():
    refs = DEFAULT_REFERENCES
    voltages = np.array([refs.vb - 5, refs.vb + 5])
    bits = sense_page(voltages, is_msb=False, references=refs)
    assert list(bits) == [1, 0]


def test_sense_msb_page_uses_va_and_vc():
    refs = DEFAULT_REFERENCES
    voltages = np.array([refs.va - 5, refs.va + 5, refs.vc - 5, refs.vc + 5])
    bits = sense_page(voltages, is_msb=True, references=refs)
    assert list(bits) == [1, 0, 0, 1]


def test_cutoff_forces_highest_category():
    refs = DEFAULT_REFERENCES
    voltages = np.array([10.0, 10.0])
    cutoff = np.array([False, True])
    assert list(sense_states(voltages, refs, cutoff)) == [0, 3]
    assert list(sense_page(voltages, False, refs, cutoff)) == [1, 0]
    assert list(sense_page(voltages, True, refs, cutoff)) == [1, 1]


def test_page_sense_consistent_with_state_sense():
    """Page bit = gray bit of the fully sensed state, for any voltage."""
    from repro.flash.state import lsb_of_state, msb_of_state

    rng = np.random.default_rng(3)
    voltages = rng.uniform(-20, 520, 2000)
    states = sense_states(voltages)
    assert np.array_equal(sense_page(voltages, False), lsb_of_state(states))
    assert np.array_equal(sense_page(voltages, True), msb_of_state(states))


def test_reference_shift_helper():
    refs = DEFAULT_REFERENCES.shifted(dva=-8, dvc=4)
    assert refs.va == DEFAULT_REFERENCES.va - 8
    assert refs.vb == DEFAULT_REFERENCES.vb
    assert refs.vc == DEFAULT_REFERENCES.vc + 4


def test_references_must_be_ordered():
    with pytest.raises(ValueError):
        ReadReferences(va=200, vb=100, vc=300)
