"""Cell array: persistent process variation and programming."""

import numpy as np
import pytest

from repro.flash.cell_array import CellArray
from repro.flash.geometry import FlashGeometry
from repro.flash.state import MlcState


@pytest.fixture
def cells(rng):
    return CellArray(FlashGeometry(blocks=1, wordlines_per_block=4, bitlines_per_block=1024), rng)


def test_initial_state_is_erased(cells):
    assert (cells.true_states == int(MlcState.ER)).all()


def test_susceptibility_and_leak_are_positive(cells):
    assert (cells.susceptibility > 0).all()
    assert (cells.leak > 0).all()


def test_susceptibility_persists_across_erase(cells, rng):
    before = cells.susceptibility.copy()
    cells.erase(pe_cycles=1000, rng=rng)
    assert np.array_equal(cells.susceptibility, before)


def test_program_wordline_orders_state_voltages(cells, rng):
    states = np.repeat(np.array([0, 1, 2, 3], dtype=np.int8), 256)
    cells.program_wordline(0, states, pe_cycles=200, rng=rng)
    v = cells.v0[0]
    means = [v[states == s].mean() for s in range(4)]
    assert means[0] < means[1] < means[2] < means[3]


def test_program_validates_shape_and_values(cells, rng):
    with pytest.raises(ValueError):
        cells.program_wordline(0, np.zeros(3, dtype=np.int8), 0, rng)
    bad = np.full(1024, 7, dtype=np.int8)
    with pytest.raises(ValueError):
        cells.program_wordline(0, bad, 0, rng)


def test_wear_widens_distributions(rng):
    g = FlashGeometry(blocks=1, wordlines_per_block=2, bitlines_per_block=8192)
    fresh = CellArray(g, np.random.default_rng(1))
    worn = CellArray(g, np.random.default_rng(1))
    states = np.full(8192, 2, dtype=np.int8)
    fresh.program_wordline(0, states, pe_cycles=200, rng=np.random.default_rng(2))
    worn.program_wordline(0, states, pe_cycles=15000, rng=np.random.default_rng(2))
    assert worn.v0[0].std() > fresh.v0[0].std()
