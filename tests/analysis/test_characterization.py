"""Characterization experiment drivers (small configurations)."""

import numpy as np
import pytest

from repro.analysis.characterization import (
    rber_vs_read_disturb,
    rdr_experiment,
    relaxed_vpass_errors,
    vpass_sweep,
    vth_shift_experiment,
)
from repro.flash import FlashGeometry

TINY = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=4096)


def test_vth_shift_experiment_shapes():
    snaps = vth_shift_experiment(
        read_counts=(0, 200_000), geometry=TINY, seed=1
    )
    assert [s.reads for s in snaps] == [0, 200_000]
    # Disturb shifts the measured population upward.
    assert snaps[1].voltages.mean() > snaps[0].voltages.mean()
    hists = snaps[0].histograms()
    assert len(hists) == 4


def test_rber_vs_read_disturb_slopes_ordered(fast_model):
    series = rber_vs_read_disturb(
        pe_values=(2000, 8000), reads=np.arange(0, 100_001, 50_000), model=fast_model
    )
    assert series[0].slope < series[1].slope
    assert series[1].slope == pytest.approx(7.5e-9, rel=1.0)


def test_vpass_sweep_ordering(fast_model):
    out = vpass_sweep(
        vpass_percents=(96, 100), reads=np.array([1e5, 1e6]), model=fast_model
    )
    assert (out[96] <= out[100] + 1e-12).all()


def test_relaxed_vpass_errors_age_ordering(fast_model):
    out = relaxed_vpass_errors(
        retention_ages_days=(0, 21), vpass_values=np.array([485.0]), model=fast_model
    )
    assert out[21][0] < out[0][0]


def test_rdr_experiment_recovers():
    points = rdr_experiment(
        read_counts=(0, 1_000_000), geometry=TINY, wordlines=(0,), seed=2
    )
    assert points[0].reduction_percent <= 5.0
    assert points[1].reduction_percent > 15.0
    assert points[1].rber_no_recovery > points[0].rber_no_recovery
