"""Fitting helpers."""

import numpy as np
import pytest

from repro.analysis.fitting import linear_slope, relative_change


def test_linear_slope_exact():
    x = np.array([0.0, 1.0, 2.0, 3.0])
    slope, intercept = linear_slope(x, 2.0 * x + 5.0)
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(5.0)


def test_linear_slope_validation():
    with pytest.raises(ValueError):
        linear_slope(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        linear_slope(np.zeros(3), np.zeros(4))


def test_relative_change():
    assert relative_change(10.0, 6.4) == pytest.approx(-0.36)
    with pytest.raises(ValueError):
        relative_change(0.0, 1.0)
