"""Read-retry Vth measurement."""

import numpy as np
import pytest

from repro.analysis.histograms import (
    per_state_histograms,
    quantized_voltages,
    sweep_conducting_counts,
    vth_histogram,
)
from repro.flash import FlashBlock
from repro.flash.state import MlcState
from repro.rng import RngFactory


def test_quantized_voltages_close_to_truth(programmed_block):
    blk = programmed_block
    measured = quantized_voltages(blk, 0, step=4.0, record_disturb=False)
    actual = blk.current_voltages(0.0, np.array([0]))[0]
    assert np.abs(measured - actual).max() <= 4.0  # within one retry step


def test_sweep_disturb_accounting(programmed_block):
    blk = programmed_block
    before = blk.total_reads
    quantized_voltages(blk, 0, step=16.0, record_disturb=True)
    assert blk.total_reads > before
    quantized_voltages(blk, 0, step=16.0, record_disturb=False)


def test_histogram_normalized():
    rng = np.random.default_rng(0)
    v = rng.normal(200, 20, 20000)
    centers, density = vth_histogram(v, bins=100)
    width = centers[1] - centers[0]
    assert (density * width).sum() == pytest.approx(1.0, abs=1e-6)


def test_per_state_histograms_partition(programmed_block):
    blk = programmed_block
    v = blk.current_voltages(0.0, np.array([0]))[0]
    states = blk.true_states_of_wordline(0)
    hists = per_state_histograms(v, states)
    assert set(hists) == set(MlcState)
    # Histogram peaks appear in state order.
    peaks = [hists[s][0][np.argmax(hists[s][1])] for s in MlcState]
    assert peaks == sorted(peaks)


def _clone_block(small_geometry, disturb=250_000, vpass_mix=False):
    """Two identically prepared blocks (batched vs. reference runs)."""
    blocks = []
    for _ in range(2):
        blk = FlashBlock(small_geometry, RngFactory(7))
        blk.cycle_wear_to(8000)
        blk.program_random()
        blk.apply_read_disturb(disturb, target_wordline=1)
        if vpass_mix:
            # Fractional Vpass weights make the exposure scalars
            # non-integer floats — the accumulation-rounding regime the
            # batched update must replay exactly.
            blk.apply_read_disturb(5_000, vpass=500.0, target_wordline=2)
        blocks.append(blk)
    return blocks


@pytest.mark.parametrize("vpass_mix", [False, True], ids=["integer", "fractional"])
def test_batched_recording_sweep_matches_per_step_loop(small_geometry, vpass_mix):
    """The batched disturb-exposure update (one materialization + one
    exposure charge) is bit-identical to the historical per-step retry
    loop: same conducting counts *and* the same block end state."""
    batched_blk, reference_blk = _clone_block(small_geometry, vpass_mix=vpass_mix)
    thresholds = np.arange(-40.0, 522.0, 2.0)
    batched = sweep_conducting_counts(batched_blk, 0, thresholds, batched=True)
    reference = sweep_conducting_counts(reference_blk, 0, thresholds, batched=False)
    assert np.array_equal(batched, reference)
    assert batched_blk._total_exposure == reference_blk._total_exposure
    assert np.array_equal(
        batched_blk._exposure_targeted, reference_blk._exposure_targeted
    )
    assert batched_blk.total_reads == reference_blk.total_reads
    assert np.array_equal(batched_blk.reads_targeted, reference_blk.reads_targeted)
    # And the next measurement (which sees the sweep's disturb) agrees.
    assert np.array_equal(
        quantized_voltages(batched_blk, 2, record_disturb=False),
        quantized_voltages(reference_blk, 2, record_disturb=False),
    )


def test_batched_sweep_charges_full_disturb(programmed_block):
    blk = programmed_block
    thresholds = np.arange(0.0, 100.0, 10.0)
    before_total = blk.total_reads
    before_exposure = blk.disturb_exposure(3)
    sweep_conducting_counts(blk, 0, thresholds, batched=True)
    assert blk.total_reads == before_total + thresholds.size
    # The measured wordline's own exposure is invariant under its own
    # reads; other wordlines absorb the sweep's disturb.
    assert blk.disturb_exposure(0) == 0.0
    assert blk.disturb_exposure(3) == before_exposure + thresholds.size


def test_validation(programmed_block):
    with pytest.raises(ValueError):
        vth_histogram(np.array([]))
    with pytest.raises(ValueError):
        programmed_block.record_retry_sweep(0, -1)
    with pytest.raises(ValueError):
        quantized_voltages(programmed_block, 0, step=0.0)
    with pytest.raises(ValueError):
        quantized_voltages(programmed_block, 0, lo=100.0, hi=50.0)
    with pytest.raises(ValueError):
        per_state_histograms(np.zeros(4), np.zeros(5))
