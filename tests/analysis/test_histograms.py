"""Read-retry Vth measurement."""

import numpy as np
import pytest

from repro.analysis.histograms import (
    per_state_histograms,
    quantized_voltages,
    vth_histogram,
)
from repro.flash.state import MlcState


def test_quantized_voltages_close_to_truth(programmed_block):
    blk = programmed_block
    measured = quantized_voltages(blk, 0, step=4.0, record_disturb=False)
    actual = blk.current_voltages(0.0, np.array([0]))[0]
    assert np.abs(measured - actual).max() <= 4.0  # within one retry step


def test_sweep_disturb_accounting(programmed_block):
    blk = programmed_block
    before = blk.total_reads
    quantized_voltages(blk, 0, step=16.0, record_disturb=True)
    assert blk.total_reads > before
    quantized_voltages(blk, 0, step=16.0, record_disturb=False)


def test_histogram_normalized():
    rng = np.random.default_rng(0)
    v = rng.normal(200, 20, 20000)
    centers, density = vth_histogram(v, bins=100)
    width = centers[1] - centers[0]
    assert (density * width).sum() == pytest.approx(1.0, abs=1e-6)


def test_per_state_histograms_partition(programmed_block):
    blk = programmed_block
    v = blk.current_voltages(0.0, np.array([0]))[0]
    states = blk.true_states_of_wordline(0)
    hists = per_state_histograms(v, states)
    assert set(hists) == set(MlcState)
    # Histogram peaks appear in state order.
    peaks = [hists[s][0][np.argmax(hists[s][1])] for s in MlcState]
    assert peaks == sorted(peaks)


def test_validation(programmed_block):
    with pytest.raises(ValueError):
        vth_histogram(np.array([]))
    with pytest.raises(ValueError):
        quantized_voltages(programmed_block, 0, step=0.0)
    with pytest.raises(ValueError):
        quantized_voltages(programmed_block, 0, lo=100.0, hi=50.0)
    with pytest.raises(ValueError):
        per_state_histograms(np.zeros(4), np.zeros(5))
