"""Report formatting."""

import pytest

from repro.analysis.reporting import format_series, format_table, write_csv


def test_table_alignment():
    table = format_table(["a", "long_header"], [[1, 2.5], [300, 1e-6]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_row_width_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_series_format():
    out = format_series("rber", [1, 2], [0.5, 0.25])
    assert "rber" in out
    assert "0.5" in out


def test_write_csv(tmp_path):
    path = write_csv(tmp_path / "sub" / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
    text = path.read_text().strip().splitlines()
    assert text[0] == "a,b"
    assert text[2] == "3,4"
