"""Row-level RowHammer behavior."""

import numpy as np
import pytest

from repro.dram import DramModuleSpec, Manufacturer
from repro.dram.rowhammer import (
    MIN_HAMMER_COUNT,
    STANDARD_HAMMER_COUNT,
    DramModule,
    hammer_test_error_rate,
    victim_histogram,
)

VULNERABLE = DramModuleSpec(Manufacturer.A, 2013, 30, 1)
SAFE = DramModuleSpec(Manufacturer.A, 2008, 30, 2)


def _module(spec, seed=0):
    return DramModule(spec, rows=2048, cells_per_row=4096, seed=seed)


def test_no_flips_below_threshold():
    m = _module(VULNERABLE)
    assert m.hammer(5, MIN_HAMMER_COUNT - 1) == 0


def test_flips_scale_with_activations():
    m = _module(VULNERABLE)
    rows = np.argsort(m.victims_per_row())[::-1]
    row = int(rows[0])  # most vulnerable row
    partial = m.hammer(row, (MIN_HAMMER_COUNT + STANDARD_HAMMER_COUNT) // 2)
    full = m.hammer(row, STANDARD_HAMMER_COUNT)
    assert 0 <= partial <= full
    assert full == m.victims_per_row()[row]


def test_safe_module_has_no_victims():
    m = _module(SAFE)
    assert m.total_victims() == 0
    assert hammer_test_error_rate(SAFE, rows=512) == 0.0


def test_vulnerable_module_rate_scales():
    measured = hammer_test_error_rate(VULNERABLE, rows=4096, seed=3)
    assert measured > 0


def test_victim_histogram_shape():
    m = _module(VULNERABLE)
    victims, counts = victim_histogram(m, max_victims=50)
    assert victims.shape == counts.shape == (51,)
    assert counts.sum() == m.rows
    # Heavy tail: some rows flip many more cells than the median row.
    per_row = m.victims_per_row()
    assert per_row.max() > 4 * max(np.median(per_row), 1)


def test_validation():
    with pytest.raises(IndexError):
        _module(VULNERABLE).hammer(999999, STANDARD_HAMMER_COUNT)
    with pytest.raises(ValueError):
        _module(VULNERABLE).hammer(0, -1)
    with pytest.raises(ValueError):
        DramModule(VULNERABLE, rows=2, cells_per_row=8)
