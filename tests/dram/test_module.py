"""DRAM module vulnerability model."""

import pytest

from repro.dram import DramModuleSpec, Manufacturer, module_fleet


def test_pre2010_modules_invulnerable():
    spec = DramModuleSpec(Manufacturer.A, 2009, 10, 0)
    assert spec.median_error_rate() == 0.0
    assert spec.sampled_error_rate() == 0.0


def test_rates_grow_with_date():
    early = DramModuleSpec(Manufacturer.A, 2011, 10, 0).median_error_rate()
    late = DramModuleSpec(Manufacturer.A, 2014, 10, 0).median_error_rate()
    assert 0 < early < late
    assert late / early > 100  # multiple decades over three years


def test_label_format():
    spec = DramModuleSpec(Manufacturer.B, 2012, 3, 17)
    assert spec.label == "B1203#17"


def test_sampled_rate_reproducible():
    spec = DramModuleSpec(Manufacturer.C, 2013, 20, 5)
    assert spec.sampled_error_rate(seed=1) == spec.sampled_error_rate(seed=1)
    assert spec.sampled_error_rate(seed=1) != spec.sampled_error_rate(seed=2)


def test_fleet_composition():
    fleet = module_fleet(129, seed=0)
    assert len(fleet) == 129
    years = {m.year for m in fleet}
    assert min(years) <= 2009 and max(years) >= 2013
    manufacturers = {m.manufacturer for m in fleet}
    assert manufacturers == {Manufacturer.A, Manufacturer.B, Manufacturer.C}


def test_fleet_mostly_vulnerable():
    """The paper: 110 of 129 modules exhibit RowHammer errors."""
    fleet = module_fleet(129, seed=0)
    vulnerable = sum(1 for m in fleet if m.sampled_error_rate() > 0)
    assert vulnerable >= 0.6 * len(fleet)


def test_spec_validation():
    with pytest.raises(ValueError):
        DramModuleSpec(Manufacturer.A, 2007, 1, 0)
    with pytest.raises(ValueError):
        DramModuleSpec(Manufacturer.A, 2012, 53, 0)
    with pytest.raises(ValueError):
        module_fleet(0)
