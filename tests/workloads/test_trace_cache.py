"""The per-sweep trace cache is transparent: one generation per key,
frozen arrays, bounded memory, bit-identical results."""

import numpy as np
import pytest

from repro.workloads import trace_cache
from repro.workloads.grid import GeometrySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.trace_cache import (
    cached_trace_count,
    clear_trace_cache,
    generated_trace,
    scenario_trace,
    warm_trace_cache,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _spec(name="web_0"):
    return WORKLOAD_SUITE[name]


def _scenarios(seeds=2):
    return ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"], WORKLOAD_SUITE["prxy_0"]),
        geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
        seeds=seeds,
        duration_days=0.02,
    ).scenarios()


def test_cache_returns_one_instance_per_key():
    first = generated_trace(_spec(), 0.02, 7)
    again = generated_trace(_spec(), 0.02, 7)
    assert again is first
    assert cached_trace_count() == 1
    # A different component of the key is a different trace.
    other_seed = generated_trace(_spec(), 0.02, 8)
    other_duration = generated_trace(_spec(), 0.03, 7)
    assert other_seed is not first and other_duration is not first
    assert cached_trace_count() == 3


def test_cached_trace_is_bit_identical_to_direct_generation():
    cached = generated_trace(_spec(), 0.02, 7)
    direct = SyntheticWorkload(_spec(), seed=7).generate(0.02)
    assert np.array_equal(cached.timestamps, direct.timestamps)
    assert np.array_equal(cached.ops, direct.ops)
    assert np.array_equal(cached.lpns, direct.lpns)
    assert cached.name == direct.name


def test_cached_arrays_are_frozen():
    trace = generated_trace(_spec(), 0.02, 7)
    for array in (trace.timestamps, trace.ops, trace.lpns):
        with pytest.raises(ValueError):
            array[0] = 0


def test_scenario_trace_keys_on_scenario_seed_derivation():
    scenarios = _scenarios(seeds=2)
    traces = [scenario_trace(s) for s in scenarios]
    assert scenario_trace(scenarios[0]) is traces[0]
    # Seed replicas of one cell get genuinely different traces.
    assert traces[0] is not traces[1]
    assert not np.array_equal(traces[0].lpns, traces[1].lpns)


def test_warm_trace_cache_prefills_for_workers():
    scenarios = _scenarios()
    assert warm_trace_cache(scenarios) == len(scenarios)
    warmed = [scenario_trace(s) for s in scenarios]
    assert warm_trace_cache(scenarios) == len(scenarios)
    assert [scenario_trace(s) for s in scenarios] == warmed


def test_cache_is_bounded_lru(monkeypatch):
    monkeypatch.setattr(trace_cache, "MAX_CACHED_TRACES", 3)
    traces = [generated_trace(_spec(), 0.01, seed) for seed in range(5)]
    assert cached_trace_count() == 3
    # Oldest entries were evicted: regenerating yields a fresh instance,
    # newest entries still hit.
    assert generated_trace(_spec(), 0.01, 0) is not traces[0]
    assert generated_trace(_spec(), 0.01, 4) is traces[4]


def test_engine_run_is_identical_with_and_without_cache():
    from repro.controller.factory import run_scenario

    scenario = _scenarios(seeds=1)[0]
    cold = run_scenario(scenario)
    assert cached_trace_count() >= 1
    warm = run_scenario(scenario)  # second run hits the cached trace
    assert warm == cold


# ----------------------------------------------------------------------
# Disk tier: evicted traces spill and reload bit-exact
# ----------------------------------------------------------------------


@pytest.fixture
def disk_tier(tmp_path, monkeypatch):
    monkeypatch.setattr(trace_cache, "MAX_CACHED_TRACES", 2)
    tier = trace_cache.enable_disk_tier(tmp_path / "tier")
    yield tier
    trace_cache.disable_disk_tier()


def test_evicted_traces_spill_to_disk(disk_tier):
    specs = [_spec("web_0"), _spec("prxy_0"), _spec("webmail")]
    for spec in specs:
        generated_trace(spec, 0.01, 0)
    assert cached_trace_count() == 2
    spilled = sorted(disk_tier.glob("trace-*.npz"))
    assert len(spilled) == 1  # exactly the one evicted trace


def test_spilled_trace_reloads_bit_exact_instead_of_regenerating(
    disk_tier, monkeypatch
):
    original = generated_trace(_spec("web_0"), 0.01, 3)
    kept = (
        original.timestamps.copy(),
        original.ops.copy(),
        original.lpns.copy(),
        original.name,
    )
    # Push web_0 out of the in-memory LRU...
    generated_trace(_spec("prxy_0"), 0.01, 3)
    generated_trace(_spec("webmail"), 0.01, 3)
    assert cached_trace_count() == 2
    # ...then make regeneration impossible: a hit must come from disk.
    def _no_generate(self, duration_days):
        raise AssertionError("spilled trace must reload, not regenerate")

    monkeypatch.setattr(
        trace_cache.SyntheticWorkload, "generate", _no_generate
    )
    reloaded = generated_trace(_spec("web_0"), 0.01, 3)
    assert np.array_equal(reloaded.timestamps, kept[0])
    assert np.array_equal(reloaded.ops, kept[1])
    assert np.array_equal(reloaded.lpns, kept[2])
    assert reloaded.name == kept[3]
    # Reloaded traces re-enter the shared cache frozen, like any other.
    assert not reloaded.timestamps.flags.writeable
    with pytest.raises(ValueError):
        reloaded.lpns[0] = 99


def test_truncated_spill_file_regenerates_instead_of_crashing(disk_tier):
    """A spill file torn by a killed process (or bit rot) must never
    poison later runs: the bad file is dropped and the trace
    regenerated — bit-identical, since generation is deterministic."""
    original = generated_trace(_spec("web_0"), 0.01, 3)
    kept = original.lpns.copy()
    # Evict web_0 so its only copy is the spill file, then tear every
    # spill mid-write.
    generated_trace(_spec("prxy_0"), 0.01, 3)
    generated_trace(_spec("webmail"), 0.01, 3)
    spilled = sorted(disk_tier.glob("trace-*.npz"))
    assert spilled
    for path in spilled:
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
    reloaded = generated_trace(_spec("web_0"), 0.01, 3)
    assert np.array_equal(reloaded.lpns, kept)


def test_unreadable_spill_is_deleted_on_probe(disk_tier):
    generated_trace(_spec("web_0"), 0.01, 3)
    generated_trace(_spec("prxy_0"), 0.01, 3)
    generated_trace(_spec("webmail"), 0.01, 3)
    # Exactly one spill exists: the LRU-evicted web_0 trace.
    [spill] = list(disk_tier.glob("trace-*.npz"))
    spill.write_bytes(b"not an npz at all")
    generated_trace(_spec("web_0"), 0.01, 3)  # must not raise
    assert not spill.exists()  # the garbage file is gone, not retried


def test_disk_tier_disabled_means_no_spill(tmp_path, monkeypatch):
    monkeypatch.setattr(trace_cache, "MAX_CACHED_TRACES", 1)
    generated_trace(_spec("web_0"), 0.01, 0)
    generated_trace(_spec("prxy_0"), 0.01, 0)
    assert cached_trace_count() == 1
    assert trace_cache._disk_tier is None
    assert not list(tmp_path.glob("trace-*.npz"))


def test_enable_disk_tier_defaults_and_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "from-env"))
    try:
        tier = trace_cache.enable_disk_tier()
        assert tier == tmp_path / "from-env"
        assert tier.is_dir()
    finally:
        trace_cache.disable_disk_tier()
