"""Synthetic workload generation matches its spec."""

import numpy as np
import pytest

from repro.units import SECONDS_PER_DAY
from repro.workloads import SyntheticWorkload, WorkloadSpec

SPEC = WorkloadSpec(
    name="unit",
    description="test workload",
    iops=2.0,
    read_fraction=0.7,
    working_set_pages=4096,
    read_zipf_theta=0.9,
    sequential_read_fraction=0.1,
)


def test_operation_rate_and_mix():
    trace = SyntheticWorkload(SPEC, seed=1).generate(1.0)
    expected_ops = SPEC.iops * SECONDS_PER_DAY
    assert len(trace) == pytest.approx(expected_ops, rel=0.05)
    assert trace.read_fraction == pytest.approx(SPEC.read_fraction, abs=0.02)
    assert trace.duration_seconds <= SECONDS_PER_DAY


def test_addresses_within_working_set():
    trace = SyntheticWorkload(SPEC, seed=1).generate(0.5)
    assert trace.lpns.max() < SPEC.working_set_pages
    assert trace.lpns.min() >= 0


def test_zipf_skew_concentrates_reads():
    skewed = SyntheticWorkload(SPEC, seed=2).generate(1.0)
    uniform_spec = WorkloadSpec(
        name="uniform", description="", iops=2.0, read_fraction=0.7,
        working_set_pages=4096, read_zipf_theta=0.0, sequential_read_fraction=0.0,
    )
    uniform = SyntheticWorkload(uniform_spec, seed=2).generate(1.0)

    def top_page_share(trace):
        reads = trace.lpns[trace.ops == 0]
        counts = np.bincount(reads, minlength=4096)
        return counts.max() / counts.sum()

    assert top_page_share(skewed) > 5 * top_page_share(uniform)


def test_reproducible_by_seed():
    a = SyntheticWorkload(SPEC, seed=5).generate(0.2)
    b = SyntheticWorkload(SPEC, seed=5).generate(0.2)
    assert np.array_equal(a.lpns, b.lpns)
    assert np.allclose(a.timestamps, b.timestamps)
    c = SyntheticWorkload(SPEC, seed=6).generate(0.2)
    assert not np.array_equal(a.lpns, c.lpns)


def test_duration_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload(SPEC).generate(0.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec("x", "", iops=0.0, read_fraction=0.5, working_set_pages=10, read_zipf_theta=0.5)
    with pytest.raises(ValueError):
        WorkloadSpec("x", "", iops=1.0, read_fraction=1.5, working_set_pages=10, read_zipf_theta=0.5)
    with pytest.raises(ValueError):
        WorkloadSpec("x", "", iops=1.0, read_fraction=0.5, working_set_pages=0, read_zipf_theta=0.5)
