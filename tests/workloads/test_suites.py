"""The 14-workload evaluation suite."""

import pytest

from repro.workloads import WORKLOAD_SUITE, get_workload, workload_names


def test_suite_has_fourteen_workloads():
    assert len(WORKLOAD_SUITE) == 14
    assert len(workload_names()) == 14


def test_all_specs_valid_and_described():
    for name, spec in WORKLOAD_SUITE.items():
        assert spec.name == name
        assert spec.description
        assert 0.0 < spec.read_fraction < 1.0
        assert spec.iops > 0


def test_suite_spans_read_intensities():
    """The paper's suite mixes read-hot and write-heavy workloads."""
    fractions = [s.read_fraction for s in WORKLOAD_SUITE.values()]
    assert min(fractions) < 0.3
    assert max(fractions) > 0.7


def test_get_workload_generates(tmp_path):
    trace = get_workload("postmark", seed=3).generate(0.05)
    assert len(trace) > 0
    assert trace.name == "postmark"


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        get_workload("nope")
