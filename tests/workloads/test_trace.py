"""Trace container semantics and CSV round-trip."""

import numpy as np
import pytest

from repro.workloads import IoTrace, OP_READ, OP_WRITE


def _trace():
    ts = np.array([0.0, 1.0, 2.0, 3.0])
    ops = np.array([OP_READ, OP_WRITE, OP_READ, OP_READ], dtype=np.int64)
    lpns = np.array([10, 20, 30, 40], dtype=np.int64)
    return IoTrace(ts, ops, lpns, "unit")


def test_basic_properties():
    t = _trace()
    assert len(t) == 4
    assert t.duration_seconds == 3.0
    assert t.read_fraction == pytest.approx(0.75)


def test_read_write_views():
    t = _trace()
    assert len(t.reads) == 3
    assert len(t.writes) == 1
    assert list(t.writes.lpns) == [20]


def test_time_slice():
    t = _trace()
    s = t.slice_time(1.0, 3.0)
    assert list(s.lpns) == [20, 30]
    with pytest.raises(ValueError):
        t.slice_time(2.0, 1.0)


def test_validation():
    with pytest.raises(ValueError):
        IoTrace(np.array([1.0, 0.0]), np.zeros(2, np.int64), np.zeros(2, np.int64))
    with pytest.raises(ValueError):
        IoTrace(np.array([0.0]), np.array([5]), np.array([0]))
    with pytest.raises(ValueError):
        IoTrace(np.array([0.0]), np.array([0]), np.array([-1]))
    with pytest.raises(ValueError):
        IoTrace(np.zeros(2), np.zeros(3, np.int64), np.zeros(2, np.int64))


def test_csv_roundtrip(tmp_path):
    t = _trace()
    path = t.to_csv(tmp_path / "trace.csv")
    back = IoTrace.from_csv(path)
    assert np.allclose(back.timestamps, t.timestamps)
    assert np.array_equal(back.ops, t.ops)
    assert np.array_equal(back.lpns, t.lpns)


def test_empty_trace():
    empty = IoTrace(np.empty(0), np.empty(0, np.int64), np.empty(0, np.int64))
    assert len(empty) == 0
    assert empty.duration_seconds == 0.0
    with pytest.raises(ValueError):
        empty.read_fraction
