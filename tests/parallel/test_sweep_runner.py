"""Determinism suite for the sharded sweep runner.

The contract under test: for the same scenario list, the merged report
is bit-identical for ``workers=1`` (serial in-process reference),
``workers=N`` (multi-process), and any shuffle of the scenario order —
and a failing scenario surfaces its scenario id, not a bare worker
traceback.
"""

import os
import pickle
import random
import signal

import pytest

from repro.controller.factory import run_scenario
from repro.parallel import (
    ScenarioFailure,
    SweepRunner,
    SweepWorkerLost,
    default_workers,
    run_sweep,
)
from repro.parallel.results import ScenarioResult, SweepReport
from repro.workloads.grid import BackendSpec, GeometrySpec, PolicySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE

SMALL_GEOMETRY = GeometrySpec(blocks=64, pages_per_block=64)
PHYSICS_GEOMETRY = GeometrySpec(blocks=16, pages_per_block=32, overprovision=0.2)


def counter_grid(seeds=2, **kwargs):
    return ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"], WORKLOAD_SUITE["prxy_0"]),
        geometries=(SMALL_GEOMETRY,),
        seeds=seeds,
        duration_days=0.03,
        **kwargs,
    )


def physics_grid():
    return ScenarioGrid(
        workloads=(WORKLOAD_SUITE["webmail"],),
        geometries=(PHYSICS_GEOMETRY,),
        policies=(PolicySpec(name="reclaim", read_reclaim_threshold=5_000),),
        backends=(
            BackendSpec(
                kind="flash_chip", bitlines_per_block=256, initial_pe_cycles=8000
            ),
        ),
        seeds=2,
        duration_days=0.03,
        record_trajectory=True,
    )


def test_counter_sweep_workers_equivalence():
    grid = counter_grid()
    serial = SweepRunner(workers=1).run(grid)
    parallel = SweepRunner(workers=4).run(grid)
    assert serial.results == parallel.results
    assert len(serial) == len(grid)


def test_counter_sweep_shuffled_order_equivalence():
    grid = counter_grid()
    scenarios = grid.scenarios()
    shuffled = scenarios.copy()
    random.Random(13).shuffle(shuffled)
    assert shuffled != scenarios
    assert SweepRunner(workers=1).run(scenarios).results == (
        SweepRunner(workers=2).run(shuffled).results
    )


def test_physics_sweep_workers_equivalence():
    """Flash-chip scenarios (Monte-Carlo cells, ECC, RDR, trajectory)
    are bit-identical across worker counts: every RNG stream is derived
    from the scenario, never from the process running it."""
    grid = physics_grid()
    serial = SweepRunner(workers=1).run(grid)
    parallel = SweepRunner(workers=2).run(grid)
    assert serial.results == parallel.results
    result = serial.results[0]
    assert result.backend["backend"] == "flash_chip"
    assert result.trajectory, "record_trajectory should produce windows"
    assert "worst_block_rber" in result.trajectory[-1]


def test_seed_replicas_differ():
    """The seed axis produces genuinely different runs (not clones)."""
    report = SweepRunner(workers=1).run(counter_grid(seeds=2))
    by_seed = {}
    for result in report:
        workload, *_, seed = result.scenario_id.split("/")
        by_seed.setdefault(workload, []).append(result.stats["host_reads"])
    for workload, reads in by_seed.items():
        assert reads[0] != reads[1], f"{workload} replicas should differ"


def test_result_records_are_picklable_and_plain():
    result = run_scenario(counter_grid(seeds=1).scenarios()[0])
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    as_dict = result.as_dict()
    assert as_dict["scenario_id"] == result.scenario_id
    assert isinstance(as_dict["per_block"]["pe_cycles"], list)


def test_failure_surfaces_scenario_id_serial_and_parallel():
    # 32x32 at 7% overprovision fails SsdConfig validation inside the run.
    bad = ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=32, pages_per_block=32), SMALL_GEOMETRY),
        duration_days=0.01,
    )
    expected_id = "web_0/d0.01/32x32/baseline/counter/s0"
    for workers in (1, 2):
        with pytest.raises(ScenarioFailure) as excinfo:
            SweepRunner(workers=workers).run(bad)
        assert excinfo.value.scenario_id == expected_id
        assert expected_id in str(excinfo.value)


def test_scenario_failure_pickles_across_process_boundary():
    failure = ScenarioFailure("grid/cell/s0", "ValueError: boom")
    clone = pickle.loads(pickle.dumps(failure))
    assert clone.scenario_id == "grid/cell/s0"
    assert "boom" in str(clone)


def test_duplicate_scenario_ids_rejected():
    scenario = counter_grid(seeds=1).scenarios()[0]
    with pytest.raises(ValueError, match="unique"):
        SweepRunner(workers=1).run([scenario, scenario])


def test_report_lookup_and_json():
    report = run_sweep(counter_grid(seeds=1), workers=1)
    first = report.results[0]
    assert report[first.scenario_id] == first
    with pytest.raises(KeyError):
        report["missing"]
    payload = report.to_json()
    assert first.scenario_id in payload
    assert report.scenario_ids == sorted(report.scenario_ids)


def test_report_requires_sorted_unique_ids():
    a = ScenarioResult(scenario_id="b", stats={}, backend={})
    b = ScenarioResult(scenario_id="a", stats={}, backend={})
    with pytest.raises(ValueError):
        SweepReport(results=(a, b), workers=1)
    with pytest.raises(ValueError):
        SweepReport(results=(a, a), workers=1)


# ----------------------------------------------------------------------
# The generic map substrate (used by the migrated ablation benches)
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _explode(x):
    raise RuntimeError(f"boom {x}")


def test_map_preserves_item_order_across_workers():
    items = list(range(20))
    assert SweepRunner(workers=1).map(_square, items) == [x * x for x in items]
    assert SweepRunner(workers=3).map(_square, items) == [x * x for x in items]


def test_map_failure_carries_label():
    # Serial: deterministically the first failing item by input order.
    with pytest.raises(ScenarioFailure) as excinfo:
        SweepRunner(workers=1).map(_explode, [1, 2], labels=["one", "two"])
    assert excinfo.value.scenario_id == "one"
    # Parallel: the first *observed* failure stops the pool early; with
    # several failing items, which one reports depends on scheduling.
    with pytest.raises(ScenarioFailure) as excinfo:
        SweepRunner(workers=2).map(_explode, [1, 2], labels=["one", "two"])
    assert excinfo.value.scenario_id in ("one", "two")


def test_map_rejects_mismatched_labels():
    with pytest.raises(ValueError):
        SweepRunner(workers=1).map(_square, [1, 2], labels=["only-one"])


def test_runner_validation():
    with pytest.raises(ValueError):
        SweepRunner(workers=0)
    with pytest.raises(ValueError):
        SweepRunner(chunksize=0)
    assert SweepRunner(workers=None).workers >= 1


# ----------------------------------------------------------------------
# Nested-parallelism budget guard (process executor inside a sweep)
# ----------------------------------------------------------------------

PROCESS_GEOMETRY = GeometrySpec(blocks=12, pages_per_block=16, overprovision=0.25)


def process_grid(workloads=("webmail", "web_0"), executor="process:2"):
    return ScenarioGrid(
        workloads=tuple(WORKLOAD_SUITE[name] for name in workloads),
        geometries=(PROCESS_GEOMETRY,),
        backends=(
            BackendSpec(
                kind="flash_chip", bitlines_per_block=128, executor=executor
            ),
        ),
        duration_days=0.01,
    )


def test_multi_worker_sweep_rejects_process_executor():
    """Sweep workers are daemonic — they cannot host a nested process
    pool, so the runner refuses the combination up front by name."""
    with pytest.raises(ValueError, match="daemonic") as excinfo:
        SweepRunner(workers=2).run(process_grid())
    message = str(excinfo.value)
    assert "process:2" in message
    assert "2 x 2" in message
    assert "workers=1" in message  # the error names the fix


def test_bare_process_spec_counts_default_executor_workers(monkeypatch):
    """A bare ``process`` spec resolves its worker count the same way
    the executor itself would, so the guard sees the real budget."""
    import repro.controller.executor as executor_module
    import repro.parallel.runner as runner_module

    monkeypatch.setattr(
        executor_module, "default_executor_workers", lambda: 8
    )
    monkeypatch.setattr(runner_module, "_available_cpus", lambda: 8)
    with pytest.raises(ValueError, match=r"4 x 8 .*8 CPU"):
        SweepRunner(workers=4).run(process_grid(executor="process"))


def test_single_process_scenario_allowed_under_multi_worker_sweep():
    """One scenario runs in-process regardless of the worker count, so
    its executor is free to fork — no nesting, nothing to reject."""
    grid = process_grid(workloads=("webmail",))
    report = SweepRunner(workers=4).run(grid)
    assert len(report.results) == 1


def test_serial_sweep_runs_process_executor_scenarios():
    """``workers=1`` is the sanctioned shape for process-executor
    grids: every scenario forks its own pool from the parent."""
    grid = process_grid()
    report = SweepRunner(workers=1).run(grid)
    assert len(report.results) == 2
    assert all(r.stats["host_reads"] > 0 for r in report.results)


def test_guard_ignores_serial_threaded_and_single_process_executors():
    for executor in ("serial", "threaded:2", "process:1"):
        grid = process_grid(executor=executor)
        # The guard runs before any scenario executes; reaching the
        # pool proves acceptance, and the report proves execution.
        report = SweepRunner(workers=2).run(grid)
        assert len(report.results) == 2


# ----------------------------------------------------------------------
# Worker loss, env parsing, and the spawn start method
# ----------------------------------------------------------------------


def _die_or_square(x):
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def test_sigkilled_map_worker_raises_worker_lost_not_hang():
    """A SIGKILL'd pool worker used to stall the sweep forever (a plain
    multiprocessing.Pool never detects the death); now it raises a
    SweepWorkerLost naming every label still unaccounted for."""
    with pytest.raises(SweepWorkerLost) as excinfo:
        SweepRunner(workers=2).map(
            _die_or_square, [1, "die", 2, 3], labels=["a", "die", "b", "c"]
        )
    lost = excinfo.value
    assert "die" in lost.scenario_ids
    assert set(lost.scenario_ids) <= {"a", "die", "b", "c"}
    assert lost.scenario_id in lost.scenario_ids  # base-class anchor
    assert "died without reporting" in str(lost)
    # It is a ScenarioFailure subclass: existing handlers keep working.
    assert isinstance(lost, ScenarioFailure)


def test_crashed_scenario_worker_names_unfinished_scenarios():
    """End-to-end through run(): a worker hard-crashing mid-scenario
    (os._exit — what an OOM kill looks like) surfaces the in-flight
    scenario ids instead of hanging the sweep."""
    from repro.testing.faults import FaultSpec, injected_faults

    grid = counter_grid()
    target = grid.scenarios()[0].scenario_id
    with injected_faults(FaultSpec("crash", None, target)):
        with pytest.raises(SweepWorkerLost) as excinfo:
            SweepRunner(workers=2).run(grid)
    assert target in excinfo.value.scenario_ids


def test_worker_lost_pickles_across_process_boundary():
    lost = SweepWorkerLost(("grid/a", "grid/b"), "exit code -9")
    clone = pickle.loads(pickle.dumps(lost))
    assert clone.scenario_ids == ("grid/a", "grid/b")
    assert clone.scenario_id == "grid/a"
    assert "exit code -9" in str(clone)


def test_sweep_workers_env_rejects_non_integers(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "many")
    with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
        default_workers()
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
    assert default_workers() == 3


def test_executor_workers_env_rejects_non_integers(monkeypatch):
    from repro.controller.executor import default_executor_workers

    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "4.5")
    with pytest.raises(ValueError, match="REPRO_EXECUTOR_WORKERS"):
        default_executor_workers()
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
    assert default_executor_workers() == 2


def test_scenario_failure_round_trips_under_spawn(monkeypatch):
    """Under the spawn start method every boundary crossing pickles —
    the scenario out, the ScenarioFailure back.  The failure must
    arrive intact, still naming its scenario id."""
    import multiprocessing

    import repro.parallel.runner as runner_module

    monkeypatch.setattr(
        runner_module,
        "_pool_context",
        lambda: multiprocessing.get_context("spawn"),
    )
    bad = ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=32, pages_per_block=32), SMALL_GEOMETRY),
        duration_days=0.01,
    )
    expected_id = "web_0/d0.01/32x32/baseline/counter/s0"
    with pytest.raises(ScenarioFailure) as excinfo:
        SweepRunner(workers=2).run(bad)
    assert excinfo.value.scenario_id == expected_id


def test_spawn_sweep_matches_fork_report(monkeypatch):
    """Start method is an implementation detail: spawn workers rebuild
    everything from the pickled scenario and report identical bits."""
    import multiprocessing

    import repro.parallel.runner as runner_module

    grid = counter_grid(seeds=1)
    fork_report = SweepRunner(workers=2).run(grid)
    monkeypatch.setattr(
        runner_module,
        "_pool_context",
        lambda: multiprocessing.get_context("spawn"),
    )
    spawn_report = SweepRunner(workers=2).run(grid)
    assert spawn_report.results == fork_report.results
