"""Lease-ledger protocol suite: claim, renew, expire, fence, race.

Everything here drives :class:`~repro.parallel.leases.LeaseLedger`
directly (no campaign, no subprocesses): the claim-file replay rules —
last-writer-wins, sticky ``done``, fencing tokens, torn-line tolerance
— are pure functions of the file contents, so they pin exactly.
"""

import json

import pytest

from repro.parallel.leases import (
    DEFAULT_MAX_BATCHES,
    LeaseLedger,
    default_batch_size,
    sanitize_owner,
)
from repro.testing.faults import expire_leases, steal_lease

IDS = [f"s/{i:02d}" for i in range(10)]


def ledger(tmp_path, owner="worker-a", ttl=30.0):
    return LeaseLedger(tmp_path, owner=owner, ttl=ttl)


# ----------------------------------------------------------------------
# The batch plan
# ----------------------------------------------------------------------


def test_plan_partitions_sorted_ids_consecutively(tmp_path):
    batches = ledger(tmp_path).plan(IDS, batch_size=4)
    assert [b for b, _ in batches] == ["b00000", "b00001", "b00002"]
    assert [ids for _, ids in batches] == [IDS[0:4], IDS[4:8], IDS[8:10]]


def test_first_writers_plan_wins(tmp_path):
    first = ledger(tmp_path, "worker-a").plan(IDS, batch_size=4)
    # A later worker asking for a different batch size adopts the plan's.
    second = ledger(tmp_path, "worker-b").plan(IDS, batch_size=2)
    assert second == first


def test_plan_rejects_a_different_scenario_set(tmp_path):
    ledger(tmp_path).plan(IDS)
    with pytest.raises(ValueError, match="different scenario set"):
        ledger(tmp_path).plan(IDS + ["s/99"])


def test_default_batch_size_caps_batch_count():
    assert default_batch_size(3) == 1
    assert default_batch_size(DEFAULT_MAX_BATCHES) == 1
    count = 10 * DEFAULT_MAX_BATCHES + 1
    size = default_batch_size(count)
    assert -(-count // size) <= DEFAULT_MAX_BATCHES


def test_sanitize_owner():
    assert sanitize_owner("w-host.example-42") == "w-host.example-42"
    assert sanitize_owner("a b/c:d") == "a-b-c-d"
    with pytest.raises(ValueError):
        sanitize_owner("...")  # nothing survives the leading-dot strip


# ----------------------------------------------------------------------
# Claim / renew / done
# ----------------------------------------------------------------------


def test_claim_renew_done_lifecycle(tmp_path):
    a = ledger(tmp_path, "worker-a")
    a.plan(IDS, batch_size=5)
    lease = a.claim("b00000")
    assert lease is not None and lease.token == 1
    assert a.renew(lease)
    state = a.state("b00000")
    assert (state.owner, state.token, state.done) == ("worker-a", 1, False)
    a.mark_done(lease)
    assert a.state("b00000").done
    assert a.claim("b00000") is None  # retired batches stay retired


def test_fresh_lease_blocks_other_workers(tmp_path):
    a, b = ledger(tmp_path, "worker-a"), ledger(tmp_path, "worker-b")
    a.plan(IDS, batch_size=5)
    assert a.claim("b00000") is not None
    assert b.claim("b00000") is None  # heartbeat is fresh
    assert b.claim("b00001") is not None  # but other batches are free


def test_expired_lease_is_reclaimed_with_a_higher_token(tmp_path):
    a = ledger(tmp_path, "worker-a", ttl=30.0)
    b = ledger(tmp_path, "worker-b", ttl=30.0)
    a.plan(IDS, batch_size=5)
    stale = a.claim("b00000")
    expire_leases(tmp_path, rewind_seconds=60.0, batch_id="b00000")
    lease = b.claim("b00000")
    assert lease is not None
    assert lease.token == stale.token + 1  # the fencing token advanced


def test_fenced_zombie_cannot_renew_or_mark_done(tmp_path):
    a, b = ledger(tmp_path, "worker-a"), ledger(tmp_path, "worker-b")
    a.plan(IDS, batch_size=5)
    zombie = a.claim("b00000")
    expire_leases(tmp_path, rewind_seconds=60.0)
    assert b.claim("b00000") is not None
    # The zombie resumes: its renew is refused...
    assert not a.renew(zombie)
    # ...and its stale done mark does not retire the batch.
    a.mark_done(zombie)
    state = a.state("b00000")
    assert not state.done
    assert state.owner == "worker-b"


def test_claim_race_has_exactly_one_winner(tmp_path):
    """Two workers racing one expired lease: last-writer-wins hands the
    lease to exactly one of them (the post-append re-read decides)."""
    a, b = ledger(tmp_path, "worker-a"), ledger(tmp_path, "worker-b")
    a.plan(IDS, batch_size=5)
    # Both see the batch unowned and append claims with the same token.
    lease_a = a.claim("b00000")
    # Simulate b having read the pre-claim state: force-claim appends a
    # same-or-higher token line after a's.
    lease_b = b.claim("b00000", force=True)
    winners = [lease for lease in (lease_a, lease_b) if lease is not None]
    assert len(winners) >= 1
    # Whatever the interleaving, the replayed state names one holder,
    # and only that holder's renew succeeds.
    state = a.state("b00000")
    assert state.owner in ("worker-a", "worker-b")
    holder, other = (a, b) if state.owner == "worker-a" else (b, a)
    held = [lease for lease in winners if lease.owner == state.owner]
    assert held and holder.renew(held[-1])
    stale = [lease for lease in (lease_a, lease_b) if lease is not None
             and lease.owner != state.owner]
    for lease in stale:
        assert not other.renew(lease)


def test_steal_lease_fences_the_holder(tmp_path):
    a = ledger(tmp_path, "worker-a")
    a.plan(IDS, batch_size=5)
    held = a.claim("b00000")
    stolen = steal_lease(tmp_path, "b00000", owner="thief")
    assert stolen.token == held.token + 1
    assert not a.renew(held)


# ----------------------------------------------------------------------
# Torn appends and health reporting
# ----------------------------------------------------------------------


def test_torn_claim_line_is_skipped(tmp_path):
    a = ledger(tmp_path, "worker-a")
    a.plan(IDS, batch_size=5)
    lease = a.claim("b00000")
    # A worker killed mid-append leaves a torn (unparsable) final line.
    with open(a._claims_path("b00000"), "a") as handle:
        handle.write('{"op": "claim", "owner": "worker-b", "tok')
    state = a.state("b00000")
    assert (state.owner, state.token) == ("worker-a", lease.token)
    # And the file keeps working after the torn line: the next renew
    # lands on its own line and still replays correctly.
    assert a.renew(lease)
    assert a.state("b00000").owner == "worker-a"


def test_states_and_active_leases(tmp_path):
    a = ledger(tmp_path, "worker-a", ttl=30.0)
    a.plan(IDS, batch_size=4)  # 3 batches
    lease = a.claim("b00000")
    a.mark_done(lease)
    a.claim("b00001")
    states = {state.batch_id: state for state in a.states()}
    assert len(states) == 3
    assert states["b00000"].done
    assert states["b00001"].owner == "worker-a"
    assert states["b00002"].owner is None
    active = a.active_leases()
    assert [state.batch_id for state in active] == ["b00001"]
    expire_leases(tmp_path, rewind_seconds=60.0, batch_id="b00001")
    assert a.active_leases() == []


def test_claim_entries_are_canonical_json_lines(tmp_path):
    a = ledger(tmp_path, "worker-a")
    a.plan(IDS, batch_size=5)
    lease = a.claim("b00000")
    a.renew(lease)
    lines = a._claims_path("b00000").read_text().splitlines()
    assert [json.loads(line)["op"] for line in lines] == ["claim", "renew"]
