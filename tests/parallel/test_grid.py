"""Scenario grids: expansion, ids, and seed derivation."""

import pickle

import pytest

from repro.rng import spawn_key
from repro.workloads.grid import (
    BackendSpec,
    GeometrySpec,
    PolicySpec,
    Scenario,
    ScenarioGrid,
)
from repro.workloads.suites import WORKLOAD_SUITE, suite_grid

WEB = WORKLOAD_SUITE["web_0"]
PRXY = WORKLOAD_SUITE["prxy_0"]


def test_grid_expands_full_cartesian_product():
    grid = ScenarioGrid(
        workloads=(WEB, PRXY),
        geometries=(GeometrySpec(), GeometrySpec(blocks=64, pages_per_block=64)),
        policies=(PolicySpec(), PolicySpec(name="reclaim", read_reclaim_threshold=1000)),
        backends=(BackendSpec(), BackendSpec(kind="flash_chip")),
        seeds=3,
    )
    scenarios = grid.scenarios()
    assert len(grid) == 2 * 2 * 2 * 2 * 3 == len(scenarios)
    ids = [s.scenario_id for s in scenarios]
    assert len(set(ids)) == len(ids), "scenario ids must be unique"


def test_scenario_id_is_stable_and_readable():
    scenario = Scenario(workload=WEB, duration_days=2.0, seed_index=4)
    assert scenario.scenario_id == "web_0/d2/256x256/baseline/counter/s4"


def test_scenario_is_picklable_pure_data():
    scenario = Scenario(workload=WEB, backend=BackendSpec(kind="flash_chip"))
    clone = pickle.loads(pickle.dumps(scenario))
    assert clone == scenario
    assert clone.scenario_id == scenario.scenario_id


def test_derived_seeds_are_stable_and_component_independent():
    scenario = Scenario(workload=WEB)
    assert scenario.workload_seed == spawn_key(0, scenario.scenario_id, "workload")
    assert scenario.backend_seed == spawn_key(0, scenario.scenario_id, "backend")
    assert scenario.workload_seed != scenario.backend_seed
    # Different seed_index / root_seed shift every derived stream.
    other = Scenario(workload=WEB, seed_index=1)
    assert other.workload_seed != scenario.workload_seed
    rooted = Scenario(workload=WEB, root_seed=99)
    assert rooted.workload_seed != scenario.workload_seed


def test_spawn_key_matches_child_chain():
    from repro.rng import RngFactory

    assert spawn_key(5, "a") == RngFactory(5).child("a").seed
    assert spawn_key(5, "a", "b") == RngFactory(5).child("a").child("b").seed
    assert RngFactory(5).spawn("a", "b").seed == spawn_key(5, "a", "b")


def test_grid_validation():
    with pytest.raises(ValueError):
        ScenarioGrid(workloads=())
    with pytest.raises(ValueError):
        ScenarioGrid(workloads=(WEB,), seeds=0)
    with pytest.raises(ValueError):
        BackendSpec(kind="quantum")
    with pytest.raises(ValueError):
        Scenario(workload=WEB, duration_days=0.0)


def test_unlabeled_axis_fields_still_distinguish_ids():
    """Sweeping any spec knob — Vpass, overprovision, reclaim threshold,
    wear — yields distinct scenario ids (the knobs surface as label
    suffixes), so the paper's own ablation axes key cleanly."""
    grid = ScenarioGrid(
        workloads=(WEB,),
        geometries=(GeometrySpec(), GeometrySpec(overprovision=0.2)),
        policies=(
            PolicySpec(name="reclaim", read_reclaim_threshold=1_000),
            PolicySpec(name="reclaim", read_reclaim_threshold=2_000),
        ),
        backends=(
            BackendSpec(kind="flash_chip", vpass=4.5),
            BackendSpec(kind="flash_chip", vpass=5.0),
            BackendSpec(kind="flash_chip", initial_pe_cycles=8000),
        ),
        seeds=1,
    )
    ids = [s.scenario_id for s in grid]
    assert len(set(ids)) == len(ids) == 12
    assert any("op0.2" in i for i in ids)
    assert any("rc1000" in i for i in ids)
    assert any("vp4.5" in i for i in ids)
    assert any("pe8000" in i for i in ids)
    # Default-knob scenarios keep the clean historical labels.
    assert Scenario(workload=WEB).scenario_id == "web_0/d1/256x256/baseline/counter/s0"


def test_grid_rejects_same_label_axis_entries():
    """Two axis entries the labels cannot distinguish fail at grid
    construction (counter backends ignore the flash-chip knobs, so such
    'different' specs would be behaviorally identical anyway)."""
    with pytest.raises(ValueError, match="distinct labels"):
        ScenarioGrid(
            workloads=(WEB,),
            backends=(
                BackendSpec(kind="counter", bitlines_per_block=512),
                BackendSpec(kind="counter", bitlines_per_block=1024),
            ),
        )
    with pytest.raises(ValueError, match="distinct labels"):
        ScenarioGrid(workloads=(WEB, WEB))


def test_suite_grid_adapter():
    grid = suite_grid(["web_0", "postmark"], seeds=2, duration_days=0.5)
    assert len(grid) == 4
    names = {s.workload.name for s in grid}
    assert names == {"web_0", "postmark"}
    full = suite_grid()
    assert len(full) == len(WORKLOAD_SUITE)
    with pytest.raises(KeyError):
        suite_grid(["nope"])
