"""Crash-safety suite for store compaction and fencing-token accounting.

The compaction contract under test: a crash at *any* byte of
:meth:`ResultStore.compact` — before, during, or after the segment
files are written, at the manifest commit, or mid-cleanup — loses
nothing; ``load()`` always returns exactly the pre-compaction record
set.  Crashes are injected deterministically at every commit boundary
via the ``compact/<step>`` pseudo-ids of :mod:`repro.testing.faults`,
and torn artifacts by truncating committed files at byte boundaries
from the outside.
"""

import json

import pytest

from repro.parallel.leases import Lease, LeaseLedger
from repro.parallel.results import ScenarioResult
from repro.parallel.store import ResultStore
from repro.testing.faults import FaultSpec, InjectedFault, injected_faults

#: every fsync'd commit boundary of the compaction protocol, in order.
COMPACT_STEPS = ("tmp", "data", "index", "manifest", "cleanup")


def fake_result(scenario_id, value=1.5):
    return ScenarioResult(
        scenario_id=scenario_id,
        stats={"host_reads": 10, "write_amplification": value},
        backend={"backend": "counter"},
        per_block={"pe_cycles": [1, 2, 3]},
        trajectory=[{"window": 0, "worst_block_rber": value / 100}],
    )


def populated_store(root, n=4, writers=("w1", "w2")):
    """A store holding *n* records spread across several writer files."""
    results = [fake_result(f"s/{i:02d}", value=1.0 / (i + 3)) for i in range(n)]
    for w, writer in enumerate(writers):
        with ResultStore(root, writer=writer) as store:
            for result in results[w::len(writers)]:
                store.append(result)
    return {result.scenario_id: result for result in results}


# ----------------------------------------------------------------------
# The happy path: fold, reload, repeat
# ----------------------------------------------------------------------


def test_compact_folds_live_records_into_one_segment(tmp_path):
    expected = populated_store(tmp_path)
    store = ResultStore(tmp_path)
    summary = store.compact()
    assert summary == {
        "segment": "segment-00000", "records": 4, "folded_files": 2,
    }
    assert store.describe() == {
        "segments": 1, "segment_records": 4, "live_files": 0,
    }
    assert ResultStore(tmp_path).load() == expected
    assert ResultStore(tmp_path).scenario_ids() == set(expected)


def test_compact_is_incremental_across_generations(tmp_path):
    expected = populated_store(tmp_path)
    store = ResultStore(tmp_path)
    store.compact()
    # New results land in the live tail after the first fold...
    late = fake_result("s/99", value=0.25)
    with ResultStore(tmp_path, writer="late") as writer:
        writer.append(late)
    expected[late.scenario_id] = late
    assert ResultStore(tmp_path).load() == expected
    # ...and a second fold stacks a second segment beside the first.
    summary = ResultStore(tmp_path).compact()
    assert summary["segment"] == "segment-00001"
    assert ResultStore(tmp_path).describe()["segments"] == 2
    assert ResultStore(tmp_path).load() == expected


def test_compact_with_nothing_to_fold_is_a_no_op(tmp_path):
    populated_store(tmp_path)
    store = ResultStore(tmp_path)
    store.compact()
    assert ResultStore(tmp_path).compact() is None


def test_compact_refuses_disagreeing_duplicates(tmp_path):
    with ResultStore(tmp_path, writer="w1") as a:
        a.append(fake_result("s/00", value=0.5))
    with ResultStore(tmp_path, writer="w2") as b:
        b.append(fake_result("s/00", value=0.75))  # different payload!
    with pytest.raises(ValueError, match="two different results"):
        ResultStore(tmp_path).compact()


# ----------------------------------------------------------------------
# Crash at every commit boundary
# ----------------------------------------------------------------------


@pytest.mark.parametrize("step", COMPACT_STEPS)
def test_crash_at_every_compaction_step_loses_nothing(tmp_path, step):
    """Kill the compaction at each fsync'd boundary: ``load()`` must
    return exactly the pre-compaction record set, and a later
    fault-free compact must succeed from the wreckage."""
    expected = populated_store(tmp_path)
    with injected_faults(FaultSpec("raise", None, f"compact/{step}")):
        with pytest.raises(InjectedFault):
            ResultStore(tmp_path).compact()
    reread = ResultStore(tmp_path)
    assert reread.load() == expected
    assert reread.scenario_ids() == set(expected)
    # Recovery: compaction after the crash completes and stays exact.
    survivor = ResultStore(tmp_path)
    survivor.compact()
    assert ResultStore(tmp_path).load() == expected
    assert ResultStore(tmp_path).describe()["live_files"] == 0


def test_crashed_compaction_never_reuses_orphan_segment_names(tmp_path):
    """Orphan files of a crashed fold (data written, manifest not) must
    not be overwritten by the next fold — it picks a fresh name."""
    expected = populated_store(tmp_path)
    with injected_faults(FaultSpec("raise", None, "compact/index")):
        with pytest.raises(InjectedFault):
            ResultStore(tmp_path).compact()
    assert (tmp_path / "segments" / "segment-00000.data.json").exists()
    summary = ResultStore(tmp_path).compact()
    assert summary["segment"] == "segment-00001"
    assert ResultStore(tmp_path).load() == expected


# ----------------------------------------------------------------------
# Torn committed artifacts (the satellite property test)
# ----------------------------------------------------------------------


def _truncation_points(size, max_points=160):
    """Byte boundaries to test: exhaustive for small files, an evenly
    strided cover (always including both edges and their neighbours)
    for large ones."""
    if size + 1 <= max_points:
        return list(range(size + 1))
    stride = max(1, size // (max_points - 8))
    points = set(range(0, size + 1, stride))
    points.update({0, 1, 2, size - 2, size - 1, size})
    return sorted(points)


@pytest.mark.parametrize("artifact", ["data", "index"])
def test_truncating_compaction_artifacts_loses_nothing(tmp_path, artifact):
    """Truncate the committed segment (or its index) at every byte
    boundary while the live tail still exists — the crashed-before-
    cleanup state — and ``load()`` must return exactly the
    pre-compaction record set at every single cut."""
    expected = populated_store(tmp_path, n=3, writers=("w1",))
    # Commit the segment but crash before the live files are deleted.
    with injected_faults(FaultSpec("raise", None, "compact/manifest")):
        with pytest.raises(InjectedFault):
            ResultStore(tmp_path).compact()
    victim = tmp_path / "segments" / f"segment-00000.{artifact}.json"
    pristine = victim.read_bytes()
    for cut in _truncation_points(len(pristine)):
        victim.write_bytes(pristine[:cut])
        store = ResultStore(tmp_path)
        assert store.load() == expected, f"diverged at byte {cut}"
        assert store.scenario_ids() == set(expected), f"ids diverged at {cut}"
    victim.write_bytes(pristine)
    assert ResultStore(tmp_path).load() == expected


def test_truncating_a_fully_folded_segment_is_detected(tmp_path):
    """After cleanup the segment is the only copy: truncating it is
    genuine loss — the store must *detect* it (corrupt_records), drop
    the records, and let resume re-run them, never serve a torn row."""
    expected = populated_store(tmp_path)
    ResultStore(tmp_path).compact()
    victim = tmp_path / "segments" / "segment-00000.data.json"
    pristine = victim.read_bytes()
    victim.write_bytes(pristine[: len(pristine) // 2])
    store = ResultStore(tmp_path)
    assert store.load() == {}
    assert store.corrupt_records == len(expected)
    assert store.scenario_ids() == set()  # resume re-runs everything


# ----------------------------------------------------------------------
# Lease guard and fencing-token accounting
# ----------------------------------------------------------------------


def test_compact_refuses_while_another_worker_holds_a_lease(tmp_path):
    from repro.testing.faults import expire_leases

    populated_store(tmp_path)
    ledger = LeaseLedger(tmp_path, owner="other-worker", ttl=30.0)
    ledger.plan(["s/00", "s/01"], batch_size=1)
    ledger.claim("b00000")
    with pytest.raises(ValueError, match="active lease"):
        ResultStore(tmp_path).compact()
    # Once the holder's heartbeat lapses, compaction may proceed.
    expire_leases(tmp_path, rewind_seconds=60.0)
    assert ResultStore(tmp_path).compact() is not None


def test_agreeing_duplicates_under_two_tokens_count_as_zombie_writes(tmp_path):
    result = fake_result("s/00")
    with ResultStore(tmp_path, writer="w1") as a:
        a.append(result, lease=Lease("b00000", 1, "w1"))
    with ResultStore(tmp_path, writer="w2") as b:
        b.append(result, lease=Lease("b00000", 2, "w2"))
    store = ResultStore(tmp_path)
    assert store.load() == {"s/00": result}  # payloads agree -> merged
    assert store.zombie_writes == 1
    # The token survives compaction: fold everything and re-check.
    store.compact()
    with ResultStore(tmp_path, writer="w3") as c:
        c.append(result, lease=Lease("b00000", 3, "w3"))
    reread = ResultStore(tmp_path)
    assert reread.load() == {"s/00": result}
    assert reread.zombie_writes == 1


def test_disagreeing_duplicates_still_raise_regardless_of_tokens(tmp_path):
    with ResultStore(tmp_path, writer="w1") as a:
        a.append(fake_result("s/00", value=0.5), lease=Lease("b0", 1, "w1"))
    with ResultStore(tmp_path, writer="w2") as b:
        b.append(fake_result("s/00", value=0.9), lease=Lease("b0", 2, "w2"))
    with pytest.raises(ValueError, match="two different results"):
        ResultStore(tmp_path).load()


def test_segment_files_are_checksummed_canonical_json(tmp_path):
    """Pin the on-disk segment format: canonical JSON, index checksums
    that actually cover the data bytes."""
    populated_store(tmp_path, n=2, writers=("w1",))
    ResultStore(tmp_path).compact()
    index = json.loads(
        (tmp_path / "segments" / "segment-00000.index.json").read_text()
    )
    data_bytes = (tmp_path / "segments" / "segment-00000.data.json").read_bytes()
    import hashlib

    assert index["data_bytes"] == len(data_bytes)
    assert index["data_sha256"] == hashlib.sha256(data_bytes).hexdigest()
    assert index["scenario_ids"] == ["s/00", "s/01"]
    manifest = json.loads(
        (tmp_path / "segments" / "MANIFEST.json").read_text()
    )
    assert [s["name"] for s in manifest["segments"]] == ["segment-00000"]
