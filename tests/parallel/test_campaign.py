"""Equivalence suite for fault-tolerant campaigns.

The acceptance bar: a campaign that crashed, was killed, resumed,
retried, timed out, and ran as shards must produce a report
bit-identical to one uninterrupted serial ``SweepRunner(workers=1)``
run.  Every failure mode here is injected deterministically via
:mod:`repro.testing.faults` — crash/hang/raise on named scenario ids,
torn and bit-rotted store records — never by timing luck.

Scenarios use the counter backend throughout: a SIGKILL'd campaign
parent cannot run finalizers, so kill tests must not involve
/dev/shm arenas (the process-executor suite owns arena lifecycle).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.parallel import (
    Campaign,
    FailurePolicy,
    ScenarioFailure,
    StreamingAggregate,
    SweepRunner,
    parse_shard,
    run_campaign,
    shard_of,
)
from repro.parallel.store import ResultStore
from repro.testing.faults import (
    CRASH_EXIT_CODE,
    ENV_FAULTS,
    ENV_STATE,
    FaultSpec,
    injected_faults,
    truncate_store_tail,
)
from repro.workloads.grid import GeometrySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE


def counter_grid(seeds=3):
    return ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
        seeds=seeds,
        duration_days=0.02,
    )


@pytest.fixture(scope="module")
def grid():
    return counter_grid()


@pytest.fixture(scope="module")
def serial_report(grid):
    return SweepRunner(workers=1).run(grid)


def ids_of(grid):
    return [s.scenario_id for s in grid]


# ----------------------------------------------------------------------
# The happy path: campaign ≡ serial, resume skips stored work
# ----------------------------------------------------------------------


def test_campaign_report_equals_serial(grid, serial_report, tmp_path):
    campaign = Campaign(grid, tmp_path / "store", workers=2)
    report = campaign.run()
    assert report.results == serial_report.results
    assert campaign.resumed == 0 and not campaign.failed
    assert campaign.aggregate.snapshot()["completed"] == len(grid)


def test_resume_skips_stored_scenarios(grid, serial_report, tmp_path):
    run_campaign(grid, tmp_path / "store", workers=2)
    resumed = Campaign(grid, tmp_path / "store", workers=2)
    report = resumed.run()
    assert resumed.resumed == len(grid)  # nothing re-ran
    assert report.results == serial_report.results
    # The streaming aggregate still reflects the whole campaign.
    assert resumed.aggregate.snapshot()["completed"] == len(grid)


def test_partial_store_resumes_only_the_missing(grid, serial_report, tmp_path):
    scenarios = list(grid)
    store = ResultStore(tmp_path / "store")
    store.bind(scenarios)
    with store:  # pre-store one result, as a killed run would have
        store.append(serial_report.results[0])
    campaign = Campaign(grid, tmp_path / "store", workers=2)
    report = campaign.run()
    assert campaign.resumed == 1
    assert report.results == serial_report.results


def test_campaign_rejects_wrong_grid_store(grid, tmp_path):
    ResultStore(tmp_path / "store").bind(list(grid))
    with pytest.raises(ValueError, match="different.*grid"):
        Campaign(counter_grid(seeds=5), tmp_path / "store").run()


# ----------------------------------------------------------------------
# Failure policies: crash, hang, raise
# ----------------------------------------------------------------------


def test_crashed_worker_is_retried_bit_identically(
    grid, serial_report, tmp_path
):
    target = ids_of(grid)[0]
    with injected_faults(
        FaultSpec("crash", 1, target), state_dir=tmp_path / "faults"
    ):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2, on_failure="retry:2"
        )
        report = campaign.run()
    assert report.results == serial_report.results
    assert [f["kind"] for f in campaign.ledger] == ["worker-death"]
    assert str(CRASH_EXIT_CODE) in campaign.ledger[0]["detail"]
    assert not campaign.failed
    # The ledger is durable, not just in-memory.
    assert ResultStore(tmp_path / "store").failures() == campaign.ledger


def test_hung_worker_is_killed_retried_with_backoff(
    grid, serial_report, tmp_path
):
    target = ids_of(grid)[1]
    policy = FailurePolicy(kind="retry", retries=1, backoff=0.3)
    started = time.monotonic()
    with injected_faults(
        FaultSpec("hang", 1, target), state_dir=tmp_path / "faults"
    ):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2,
            on_failure=policy, timeout=0.5,
        )
        report = campaign.run()
    elapsed = time.monotonic() - started
    assert report.results == serial_report.results
    assert [f["kind"] for f in campaign.ledger] == ["timeout"]
    assert campaign.ledger[0]["scenario_id"] == target
    assert not campaign.failed
    # timeout (0.5s) + backoff (0.3s) both actually elapsed.
    assert elapsed >= 0.8


def test_exhausted_retries_become_permanent_failure(grid, tmp_path):
    target = ids_of(grid)[2]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2,
            on_failure=FailurePolicy(kind="retry", retries=2, backoff=0.01),
        )
        report = campaign.run()
    assert len(campaign.ledger) == 3  # 1 attempt + 2 retries
    assert [f["scenario_id"] for f in campaign.failed] == [target]
    assert report.scenario_ids == sorted(set(ids_of(grid)) - {target})


def test_continue_policy_completes_the_rest(grid, serial_report, tmp_path):
    target = ids_of(grid)[0]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2, on_failure="continue"
        )
        report = campaign.run()
    assert [f["kind"] for f in campaign.failed] == ["exception"]
    assert "InjectedFault" in campaign.failed[0]["detail"]
    expected = [r for r in serial_report.results if r.scenario_id != target]
    assert list(report.results) == expected
    # A later fault-free resume completes the failed scenario too.
    report = run_campaign(grid, tmp_path / "store", workers=2)
    assert report.results == serial_report.results


def test_fail_fast_aborts_but_keeps_stored_results(grid, tmp_path):
    target = ids_of(grid)[-1]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(grid, tmp_path / "store", workers=1)
        with pytest.raises(ScenarioFailure) as excinfo:
            campaign.run()
    assert excinfo.value.scenario_id == target
    # workers=1 runs in grid order, so everything before the bomb landed.
    stored = ResultStore(tmp_path / "store").scenario_ids()
    assert stored == set(ids_of(grid)[:-1])


# ----------------------------------------------------------------------
# Kill-and-resume: the campaign parent itself dies
# ----------------------------------------------------------------------


def _campaign_argv(grid_seeds, store, extra=()):
    return [
        sys.executable, "-m", "repro.sweep",
        "--workloads", "web_0", "--seeds", str(grid_seeds),
        "--days", "0.02", "--blocks", "64", "--pages-per-block", "64",
        # Two slots: the deliberately hung scenario pins one, the other
        # keeps draining the queue (including the crash retry).
        "--campaign", str(store), "--resume", "--workers", "2",
        *extra,
    ]


def test_sigkilled_campaign_resumes_bit_identically(
    grid, serial_report, tmp_path
):
    """The acceptance scenario: a worker crash (injected) *and* a
    SIGKILL of the whole campaign process group mid-run, then a resume —
    the final report must match the uninterrupted serial run exactly."""
    ids = ids_of(grid)
    store = tmp_path / "store"
    env = dict(
        os.environ,
        PYTHONPATH=str(os.path.dirname(os.path.dirname(repro.__file__))),
        # Crash the second scenario's first attempt (a worker death the
        # campaign retries), then hang the last scenario forever so the
        # parent is deterministically mid-campaign when we shoot it.
        **{
            ENV_FAULTS: f"crash:1:{ids[1]};hang:*:{ids[-1]}",
            ENV_STATE: str(tmp_path / "faults"),
        },
    )
    process = subprocess.Popen(
        _campaign_argv(len(ids), store, extra=("--on-failure", "retry:2")),
        env=env,
        start_new_session=True,  # so killpg reaps campaign workers too
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        expected = set(ids[:-1])
        while ResultStore(store).scenario_ids() != expected:
            assert process.poll() is None, "campaign exited prematurely"
            assert time.monotonic() < deadline, "campaign made no progress"
            time.sleep(0.05)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait()
    # Every stored result survived the kill; the hung scenario did not
    # land.  Resume in-process with no faults armed.
    campaign = Campaign(grid, store, workers=2, on_failure="retry:2")
    report = campaign.run()
    assert campaign.resumed == len(ids) - 1
    assert report.results == serial_report.results


def test_torn_append_reruns_on_resume(grid, serial_report, tmp_path):
    """A parent killed mid-append leaves a torn record; resume re-runs
    exactly that scenario and the report still matches serial."""
    store = tmp_path / "store"
    run_campaign(grid, store, workers=1)
    truncate_store_tail(store)
    campaign = Campaign(grid, store, workers=1)
    report = campaign.run()
    assert campaign.resumed == len(grid) - 1  # one scenario re-ran
    assert report.results == serial_report.results


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------


def test_shard_partition_is_stable_and_total(grid):
    ids = ids_of(counter_grid(seeds=8))
    owners = {scenario_id: shard_of(scenario_id, 3) for scenario_id in ids}
    assert owners == {s: shard_of(s, 3) for s in ids}  # stable
    assert set(owners.values()) <= {0, 1, 2}
    counts = [list(owners.values()).count(k) for k in range(3)]
    assert all(count > 0 for count in counts)  # 8 ids spread over 3 shards


def test_sharded_stores_merge_to_the_serial_report(tmp_path):
    grid = counter_grid(seeds=6)
    serial = SweepRunner(workers=1).run(grid)
    host_a, host_b = tmp_path / "host-a", tmp_path / "host-b"
    shard_a = Campaign(grid, host_a, workers=2, shard="0/2")
    shard_b = Campaign(grid, host_b, workers=2, shard=(1, 2))
    report_a = shard_a.run()
    report_b = shard_b.run()
    assert len(report_a.results) + len(report_b.results) == len(grid)
    assert not set(report_a.scenario_ids) & set(report_b.scenario_ids)
    # Merge host B into host A's store; the merged report is serial.
    merged_store = ResultStore(host_a)
    merged_store.bind(list(grid))
    merged_store.ingest(host_b)
    merged = Campaign(grid, host_a, workers=1).report()
    assert merged.results == serial.results


def test_parse_shard_accepts_and_rejects():
    assert parse_shard("0/2") == (0, 2)
    assert parse_shard("3/4") == (3, 4)
    for bad in ("2/2", "-1/2", "0", "a/b", "1/0", ""):
        with pytest.raises(ValueError, match="shard"):
            parse_shard(bad)


# ----------------------------------------------------------------------
# Policy parsing and the streaming aggregate
# ----------------------------------------------------------------------


def test_failure_policy_parsing():
    assert FailurePolicy.parse("fail_fast").kind == "fail_fast"
    assert FailurePolicy.parse("continue").kind == "continue"
    policy = FailurePolicy.parse("retry:3")
    assert (policy.kind, policy.retries) == ("retry", 3)
    for bad in ("retry", "retry:", "retry:0", "retry:x", "panic", "continue:2"):
        with pytest.raises(ValueError):
            FailurePolicy.parse(bad)


def test_failure_policy_backoff_schedule():
    policy = FailurePolicy(kind="retry", retries=3, backoff=0.5, backoff_factor=2.0)
    assert [policy.delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
    assert policy.retry_allowed(3) and not policy.retry_allowed(4)


def test_streaming_aggregate_percentiles(serial_report):
    from repro.parallel.results import ScenarioResult

    aggregate = StreamingAggregate()
    for i in range(10):
        aggregate.observe(
            ScenarioResult(
                scenario_id=f"s/{i}",
                stats={"peak_block_reads_per_interval": 10 * (i + 1),
                       "max_pe_cycles": 100},
                backend={"uncorrectable_pages": i, "data_loss_events": 0},
                trajectory=[{"worst_block_rber": (i + 1) / 1000}],
            )
        )
    aggregate.observe_failure()
    snapshot = aggregate.snapshot()
    assert snapshot["completed"] == 10
    assert snapshot["failed_attempts"] == 1
    assert snapshot["uncorrectable_pages"] == sum(range(10))
    rber = snapshot["worst_block_rber"]
    assert rber["n"] == 10
    assert rber["p50"] == pytest.approx(0.005)
    assert rber["max"] == pytest.approx(0.010)
    peak = snapshot["peak_block_reads_per_interval"]
    assert (peak["p90"], peak["max"]) == (90, 100)
    # Real counter results carry no trajectory RBER: percentile is None.
    empty = StreamingAggregate()
    empty.observe(serial_report.results[0])
    assert empty.snapshot()["worst_block_rber"] is None


def test_progress_callback_streams_snapshots(grid, tmp_path):
    snapshots = []
    Campaign(grid, tmp_path / "store", workers=2).run(
        progress=snapshots.append
    )
    assert len(snapshots) == len(grid)
    assert [s["completed"] for s in sorted(snapshots, key=lambda s: s["completed"])] == [1, 2, 3]
