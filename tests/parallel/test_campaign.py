"""Equivalence suite for fault-tolerant campaigns.

The acceptance bar: a campaign that crashed, was killed, resumed,
retried, timed out, and ran as shards must produce a report
bit-identical to one uninterrupted serial ``SweepRunner(workers=1)``
run.  Every failure mode here is injected deterministically via
:mod:`repro.testing.faults` — crash/hang/raise on named scenario ids,
torn and bit-rotted store records — never by timing luck.

Scenarios use the counter backend throughout: a SIGKILL'd campaign
parent cannot run finalizers, so kill tests must not involve
/dev/shm arenas (the process-executor suite owns arena lifecycle).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.parallel import (
    Campaign,
    FailurePolicy,
    ScenarioFailure,
    StreamingAggregate,
    SweepRunner,
    parse_shard,
    run_campaign,
    shard_of,
)
from repro.parallel.store import ResultStore
from repro.testing.faults import (
    CRASH_EXIT_CODE,
    ENV_FAULTS,
    ENV_STATE,
    FaultSpec,
    injected_faults,
    truncate_store_tail,
)
from repro.workloads.grid import GeometrySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE


def counter_grid(seeds=3):
    return ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
        seeds=seeds,
        duration_days=0.02,
    )


@pytest.fixture(scope="module")
def grid():
    return counter_grid()


@pytest.fixture(scope="module")
def serial_report(grid):
    return SweepRunner(workers=1).run(grid)


def ids_of(grid):
    return [s.scenario_id for s in grid]


# ----------------------------------------------------------------------
# The happy path: campaign ≡ serial, resume skips stored work
# ----------------------------------------------------------------------


def test_campaign_report_equals_serial(grid, serial_report, tmp_path):
    campaign = Campaign(grid, tmp_path / "store", workers=2)
    report = campaign.run()
    assert report.results == serial_report.results
    assert campaign.resumed == 0 and not campaign.failed
    assert campaign.aggregate.snapshot()["completed"] == len(grid)


def test_resume_skips_stored_scenarios(grid, serial_report, tmp_path):
    run_campaign(grid, tmp_path / "store", workers=2)
    resumed = Campaign(grid, tmp_path / "store", workers=2)
    report = resumed.run()
    assert resumed.resumed == len(grid)  # nothing re-ran
    assert report.results == serial_report.results
    # The streaming aggregate still reflects the whole campaign.
    assert resumed.aggregate.snapshot()["completed"] == len(grid)


def test_partial_store_resumes_only_the_missing(grid, serial_report, tmp_path):
    scenarios = list(grid)
    store = ResultStore(tmp_path / "store")
    store.bind(scenarios)
    with store:  # pre-store one result, as a killed run would have
        store.append(serial_report.results[0])
    campaign = Campaign(grid, tmp_path / "store", workers=2)
    report = campaign.run()
    assert campaign.resumed == 1
    assert report.results == serial_report.results


def test_campaign_rejects_wrong_grid_store(grid, tmp_path):
    ResultStore(tmp_path / "store").bind(list(grid))
    with pytest.raises(ValueError, match="different.*grid"):
        Campaign(counter_grid(seeds=5), tmp_path / "store").run()


# ----------------------------------------------------------------------
# Failure policies: crash, hang, raise
# ----------------------------------------------------------------------


def test_crashed_worker_is_retried_bit_identically(
    grid, serial_report, tmp_path
):
    target = ids_of(grid)[0]
    with injected_faults(
        FaultSpec("crash", 1, target), state_dir=tmp_path / "faults"
    ):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2, on_failure="retry:2"
        )
        report = campaign.run()
    assert report.results == serial_report.results
    assert [f["kind"] for f in campaign.ledger] == ["worker-death"]
    assert str(CRASH_EXIT_CODE) in campaign.ledger[0]["detail"]
    assert not campaign.failed
    # The ledger is durable, not just in-memory.
    assert ResultStore(tmp_path / "store").failures() == campaign.ledger


def test_hung_worker_is_killed_retried_with_backoff(
    grid, serial_report, tmp_path
):
    target = ids_of(grid)[1]
    policy = FailurePolicy(kind="retry", retries=1, backoff=0.3)
    started = time.monotonic()
    with injected_faults(
        FaultSpec("hang", 1, target), state_dir=tmp_path / "faults"
    ):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2,
            on_failure=policy, timeout=0.5,
        )
        report = campaign.run()
    elapsed = time.monotonic() - started
    assert report.results == serial_report.results
    assert [f["kind"] for f in campaign.ledger] == ["timeout"]
    assert campaign.ledger[0]["scenario_id"] == target
    assert not campaign.failed
    # timeout (0.5s) + backoff (0.3s) both actually elapsed.
    assert elapsed >= 0.8


def test_exhausted_retries_become_permanent_failure(grid, tmp_path):
    target = ids_of(grid)[2]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2,
            on_failure=FailurePolicy(kind="retry", retries=2, backoff=0.01),
        )
        report = campaign.run()
    assert len(campaign.ledger) == 3  # 1 attempt + 2 retries
    assert [f["scenario_id"] for f in campaign.failed] == [target]
    assert report.scenario_ids == sorted(set(ids_of(grid)) - {target})


def test_continue_policy_completes_the_rest(grid, serial_report, tmp_path):
    target = ids_of(grid)[0]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(
            grid, tmp_path / "store", workers=2, on_failure="continue"
        )
        report = campaign.run()
    assert [f["kind"] for f in campaign.failed] == ["exception"]
    assert "InjectedFault" in campaign.failed[0]["detail"]
    expected = [r for r in serial_report.results if r.scenario_id != target]
    assert list(report.results) == expected
    # A later fault-free resume completes the failed scenario too.
    report = run_campaign(grid, tmp_path / "store", workers=2)
    assert report.results == serial_report.results


def test_fail_fast_aborts_but_keeps_stored_results(grid, tmp_path):
    target = ids_of(grid)[-1]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(grid, tmp_path / "store", workers=1)
        with pytest.raises(ScenarioFailure) as excinfo:
            campaign.run()
    assert excinfo.value.scenario_id == target
    # workers=1 runs in grid order, so everything before the bomb landed.
    stored = ResultStore(tmp_path / "store").scenario_ids()
    assert stored == set(ids_of(grid)[:-1])


# ----------------------------------------------------------------------
# Kill-and-resume: the campaign parent itself dies
# ----------------------------------------------------------------------


def _campaign_argv(grid_seeds, store, extra=()):
    return [
        sys.executable, "-m", "repro.sweep",
        "--workloads", "web_0", "--seeds", str(grid_seeds),
        "--days", "0.02", "--blocks", "64", "--pages-per-block", "64",
        # Two slots: the deliberately hung scenario pins one, the other
        # keeps draining the queue (including the crash retry).
        "--campaign", str(store), "--resume", "--workers", "2",
        *extra,
    ]


def test_sigkilled_campaign_resumes_bit_identically(
    grid, serial_report, tmp_path
):
    """The acceptance scenario: a worker crash (injected) *and* a
    SIGKILL of the whole campaign process group mid-run, then a resume —
    the final report must match the uninterrupted serial run exactly."""
    ids = ids_of(grid)
    store = tmp_path / "store"
    env = dict(
        os.environ,
        PYTHONPATH=str(os.path.dirname(os.path.dirname(repro.__file__))),
        # Crash the second scenario's first attempt (a worker death the
        # campaign retries), then hang the last scenario forever so the
        # parent is deterministically mid-campaign when we shoot it.
        **{
            ENV_FAULTS: f"crash:1:{ids[1]};hang:*:{ids[-1]}",
            ENV_STATE: str(tmp_path / "faults"),
        },
    )
    process = subprocess.Popen(
        _campaign_argv(len(ids), store, extra=("--on-failure", "retry:2")),
        env=env,
        start_new_session=True,  # so killpg reaps campaign workers too
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        expected = set(ids[:-1])
        while ResultStore(store).scenario_ids() != expected:
            assert process.poll() is None, "campaign exited prematurely"
            assert time.monotonic() < deadline, "campaign made no progress"
            time.sleep(0.05)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait()
    # Every stored result survived the kill; the hung scenario did not
    # land.  Resume in-process with no faults armed.
    campaign = Campaign(grid, store, workers=2, on_failure="retry:2")
    report = campaign.run()
    assert campaign.resumed == len(ids) - 1
    assert report.results == serial_report.results


def test_torn_append_reruns_on_resume(grid, serial_report, tmp_path):
    """A parent killed mid-append leaves a torn record; resume re-runs
    exactly that scenario and the report still matches serial."""
    store = tmp_path / "store"
    run_campaign(grid, store, workers=1)
    truncate_store_tail(store)
    campaign = Campaign(grid, store, workers=1)
    report = campaign.run()
    assert campaign.resumed == len(grid) - 1  # one scenario re-ran
    assert report.results == serial_report.results


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------


def test_shard_partition_is_stable_and_total(grid):
    ids = ids_of(counter_grid(seeds=8))
    owners = {scenario_id: shard_of(scenario_id, 3) for scenario_id in ids}
    assert owners == {s: shard_of(s, 3) for s in ids}  # stable
    assert set(owners.values()) <= {0, 1, 2}
    counts = [list(owners.values()).count(k) for k in range(3)]
    assert all(count > 0 for count in counts)  # 8 ids spread over 3 shards


def test_sharded_stores_merge_to_the_serial_report(tmp_path):
    grid = counter_grid(seeds=6)
    serial = SweepRunner(workers=1).run(grid)
    host_a, host_b = tmp_path / "host-a", tmp_path / "host-b"
    shard_a = Campaign(grid, host_a, workers=2, shard="0/2")
    shard_b = Campaign(grid, host_b, workers=2, shard=(1, 2))
    report_a = shard_a.run()
    report_b = shard_b.run()
    assert len(report_a.results) + len(report_b.results) == len(grid)
    assert not set(report_a.scenario_ids) & set(report_b.scenario_ids)
    # Merge host B into host A's store; the merged report is serial.
    merged_store = ResultStore(host_a)
    merged_store.bind(list(grid))
    merged_store.ingest(host_b)
    merged = Campaign(grid, host_a, workers=1).report()
    assert merged.results == serial.results


def test_parse_shard_accepts_and_rejects():
    assert parse_shard("0/2") == (0, 2)
    assert parse_shard("3/4") == (3, 4)
    for bad in ("2/2", "-1/2", "0", "a/b", "1/0", ""):
        with pytest.raises(ValueError, match="shard"):
            parse_shard(bad)


# ----------------------------------------------------------------------
# Policy parsing and the streaming aggregate
# ----------------------------------------------------------------------


def test_failure_policy_parsing():
    assert FailurePolicy.parse("fail_fast").kind == "fail_fast"
    assert FailurePolicy.parse("continue").kind == "continue"
    policy = FailurePolicy.parse("retry:3")
    assert (policy.kind, policy.retries) == ("retry", 3)
    for bad in ("retry", "retry:", "retry:0", "retry:x", "panic", "continue:2"):
        with pytest.raises(ValueError):
            FailurePolicy.parse(bad)


def test_failure_policy_backoff_schedule():
    policy = FailurePolicy(kind="retry", retries=3, backoff=0.5, backoff_factor=2.0)
    assert [policy.delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
    assert policy.retry_allowed(3) and not policy.retry_allowed(4)


def test_streaming_aggregate_percentiles(serial_report):
    from repro.parallel.results import ScenarioResult

    aggregate = StreamingAggregate()
    for i in range(10):
        aggregate.observe(
            ScenarioResult(
                scenario_id=f"s/{i}",
                stats={"peak_block_reads_per_interval": 10 * (i + 1),
                       "max_pe_cycles": 100},
                backend={"uncorrectable_pages": i, "data_loss_events": 0},
                trajectory=[{"worst_block_rber": (i + 1) / 1000}],
            )
        )
    aggregate.observe_failure()
    snapshot = aggregate.snapshot()
    assert snapshot["completed"] == 10
    assert snapshot["failed_attempts"] == 1
    assert snapshot["uncorrectable_pages"] == sum(range(10))
    rber = snapshot["worst_block_rber"]
    assert rber["n"] == 10
    assert rber["p50"] == pytest.approx(0.005)
    assert rber["max"] == pytest.approx(0.010)
    peak = snapshot["peak_block_reads_per_interval"]
    assert (peak["p90"], peak["max"]) == (90, 100)
    # Real counter results carry no trajectory RBER: percentile is None.
    empty = StreamingAggregate()
    empty.observe(serial_report.results[0])
    assert empty.snapshot()["worst_block_rber"] is None


def test_progress_callback_streams_snapshots(grid, tmp_path):
    snapshots = []
    Campaign(grid, tmp_path / "store", workers=2).run(
        progress=snapshots.append
    )
    assert len(snapshots) == len(grid)
    assert [s["completed"] for s in sorted(snapshots, key=lambda s: s["completed"])] == [1, 2, 3]


def test_failure_ledger_schema_is_pinned(grid, tmp_path):
    """The durable failure record carries exactly these fields — in
    particular both clocks: wall time (humans, cross-host ordering) and
    a monotonic duration (retry/backoff analysis that survives NTP
    steps).  Anything depending on the ledger pins against this."""
    target = ids_of(grid)[0]
    with injected_faults(FaultSpec("raise", None, target)):
        campaign = Campaign(
            grid, tmp_path / "store", workers=1, on_failure="continue"
        )
        campaign.run()
    entries = ResultStore(tmp_path / "store").failures()
    assert entries == campaign.ledger  # durable ≡ in-memory, field-exact
    (entry,) = entries
    assert set(entry) == {
        "scenario_id", "attempt", "kind", "detail",
        "wall_time", "duration_seconds",
    }
    assert entry["scenario_id"] == target and entry["attempt"] == 1
    assert isinstance(entry["wall_time"], float) and entry["wall_time"] > 0
    assert isinstance(entry["duration_seconds"], float)
    assert entry["duration_seconds"] >= 0


# ----------------------------------------------------------------------
# Elastic scheduling: leases instead of shard arithmetic
# ----------------------------------------------------------------------


def test_elastic_campaign_equals_serial(grid, serial_report, tmp_path):
    campaign = Campaign(
        grid, tmp_path / "store", workers=2,
        elastic=True, lease_ttl=30.0, lease_batch=1, worker_name="wA",
    )
    report = campaign.run()
    assert report.results == serial_report.results
    assert campaign.fenced_batches == 0
    # One claim file per single-scenario batch, every batch retired.
    from repro.parallel import LeaseLedger

    states = LeaseLedger(tmp_path / "store", owner="check").states()
    assert len(states) == len(grid)
    assert all(state.done for state in states)
    # Results landed under this worker's own writer file, not "all".
    assert (tmp_path / "store" / "records" / "wA.jsonl").exists()


def test_second_elastic_worker_finds_nothing_left(grid, serial_report, tmp_path):
    Campaign(
        grid, tmp_path / "store", elastic=True, worker_name="wA",
    ).run()
    late = Campaign(
        grid, tmp_path / "store", elastic=True, worker_name="wB",
    )
    report = late.run()
    assert report.results == serial_report.results
    assert late.resumed == len(grid)  # every scenario was already stored


def test_elastic_rejects_shard(grid, tmp_path):
    with pytest.raises(ValueError, match="mutually exclusive"):
        Campaign(grid, tmp_path / "store", elastic=True, shard="0/2")


def test_dead_workers_lease_is_reclaimed(grid, serial_report, tmp_path):
    """A worker that claimed a batch and died renews nothing; once the
    TTL lapses a new elastic worker reclaims the batch with a higher
    fencing token and completes the campaign."""
    from repro.parallel import LeaseLedger
    from repro.testing.faults import expire_leases

    store = tmp_path / "store"
    ResultStore(store).bind(list(grid))
    dead = LeaseLedger(store, owner="dead-worker", ttl=1000.0)
    dead.plan(sorted(ids_of(grid)), batch_size=1)
    stranded = dead.claim("b00000")
    assert stranded is not None
    expire_leases(store, rewind_seconds=2000.0)  # the worker "died"
    survivor = Campaign(
        grid, store, elastic=True, lease_ttl=1000.0, worker_name="wB",
    )
    report = survivor.run()
    assert report.results == serial_report.results
    reclaimed = LeaseLedger(store, owner="check").state("b00000")
    assert reclaimed.done
    assert reclaimed.token > stranded.token  # fenced, not reused


def test_fenced_worker_drops_the_batch_and_reports_it(
    grid, serial_report, tmp_path, monkeypatch
):
    """Steal the worker's lease after its first result lands: the next
    renewal fails, the worker abandons the batch, and (after the
    thief's lease expires) finishes the campaign under a fresh claim —
    report still bit-identical to serial.  The last scenario is stalled
    so the batch outlives the renewal interval deterministically."""
    from repro.testing.faults import steal_lease

    store = tmp_path / "store"
    stolen = []

    def progress(snapshot):
        if not stolen and snapshot["completed"] >= 1:
            stolen.append(steal_lease(store, "b00000", owner="thief"))

    monkeypatch.setenv("REPRO_FAULTS_STALL", "1.0")
    campaign = Campaign(
        grid, store, workers=1, elastic=True,
        # One batch holding the whole grid, tiny TTL: the theft fences
        # us off mid-batch (a renewal is due every ttl/3 seconds, and
        # the stalled last scenario keeps the batch alive well past
        # that), and the thief (who never renews) expires almost
        # immediately so the re-claim path runs fast.
        lease_ttl=0.4, lease_batch=len(grid), worker_name="wA",
    )
    with injected_faults(FaultSpec("stall", None, sorted(ids_of(grid))[-1])):
        report = campaign.run(progress=progress)
    assert stolen, "the test never stole the lease"
    assert campaign.fenced_batches >= 1
    assert report.results == serial_report.results


def test_elastic_continue_policy_leaves_failed_batch_unretired(grid, tmp_path):
    """Elastic ≡ plain resume semantics for permanent failures: the
    batch holding a continue-policy casualty is NOT marked done, so a
    later (fault-free) elastic resume re-runs exactly that scenario."""
    from repro.parallel import LeaseLedger

    target = ids_of(grid)[0]
    store = tmp_path / "store"
    with injected_faults(FaultSpec("raise", None, target)):
        first = Campaign(
            grid, store, workers=1, elastic=True, on_failure="continue",
            lease_ttl=0.2, lease_batch=1, worker_name="wA",
        )
        first.run()
    assert [f["scenario_id"] for f in first.failed] == [target]
    states = {
        state.batch_id: state
        for state in LeaseLedger(store, owner="check").states()
    }
    batch_of_target = "b{:05d}".format(sorted(ids_of(grid)).index(target))
    assert not states[batch_of_target].done
    assert all(
        state.done for bid, state in states.items() if bid != batch_of_target
    )
    # Faults cleared: a later elastic worker reclaims and completes it.
    time.sleep(0.25)  # let the un-done batch's lease expire
    second = Campaign(
        grid, store, workers=1, elastic=True,
        lease_ttl=0.2, worker_name="wB",
    )
    report = second.run()
    assert report.results == SweepRunner(workers=1).run(grid).results


def test_zombie_worker_resumes_after_lease_expiry(grid, serial_report, tmp_path):
    """The acceptance zombie: elastic worker A claims the batch, then
    freezes (SIGSTOP) mid-scenario past the TTL; worker B reclaims with
    a higher fencing token and finishes the grid; A thaws, lands its
    stale-token duplicate, fails its renewal, and exits cleanly.  The
    report is bit-identical to serial and the store surfaces the
    zombie write instead of silently folding it away."""
    ids = sorted(ids_of(grid))
    store = tmp_path / "store"
    stall_seconds = 8.0
    env = dict(
        os.environ,
        PYTHONPATH=str(os.path.dirname(os.path.dirname(repro.__file__))),
        **{
            ENV_FAULTS: f"stall:*:{ids[0]}",
            "REPRO_FAULTS_STALL": str(stall_seconds),
        },
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.sweep",
            "--workloads", "web_0", "--seeds", str(len(ids)),
            "--days", "0.02", "--blocks", "64", "--pages-per-block", "64",
            "--campaign", str(store), "--elastic", "--workers", "2",
            "--lease-ttl", "1.0", "--lease-batch", str(len(ids)),
            "--worker-name", "zombie",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    frozen = False
    try:
        # Wait until A holds the lease and its stalled child is in
        # flight (the non-stalled scenarios land while ids[0] stalls).
        deadline = time.monotonic() + 120
        claims = store / "leases" / "b00000.jsonl"
        while not claims.exists():
            assert process.poll() is None, "worker A exited prematurely"
            assert time.monotonic() < deadline
            time.sleep(0.05)
        time.sleep(0.3)  # the stalled scenario is now inside its sleep
        os.kill(process.pid, signal.SIGSTOP)  # parent only: child lives
        frozen = True
        time.sleep(1.5)  # > TTL: A's heartbeat is now stale
        survivor = Campaign(
            grid, store, workers=2, elastic=True,
            lease_ttl=1.0, worker_name="wB",
        )
        report = survivor.run()
        assert report.results == serial_report.results
        # Thaw the zombie: its stalled scenario completes and lands
        # under the stale token; its renewal fails; it exits cleanly.
        os.kill(process.pid, signal.SIGCONT)
        frozen = False
        assert process.wait(timeout=120) == 0
    finally:
        if frozen:
            os.kill(process.pid, signal.SIGCONT)
        if process.poll() is None:
            process.kill()
            process.wait()
    final = ResultStore(store)
    assert {r.scenario_id for r in final.load().values()} == set(ids)
    assert final.load() == {
        r.scenario_id: r for r in serial_report.results
    }
    # The duplicate landed under two different fencing tokens.
    assert final.zombie_writes >= 1
