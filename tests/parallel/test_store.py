"""Crash-safety suite for the campaign result store.

The store's contract: an append either lands completely or not at all,
anything torn or bit-rotted is detected and skipped (the scenario just
re-runs on resume), stores of one grid merge by file copy, and stores
of *different* grids refuse to mix.  Corruption is injected from the
outside via :mod:`repro.testing.faults` — the store gets no say.
"""

import json

import pytest

from repro.parallel.results import ScenarioResult
from repro.parallel.store import ResultStore, grid_fingerprint
from repro.testing.faults import corrupt_store_record, truncate_store_tail
from repro.workloads.grid import GeometrySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE


def small_grid(seeds=2, root_seed=0):
    return ScenarioGrid(
        workloads=(WORKLOAD_SUITE["web_0"],),
        geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
        seeds=seeds,
        duration_days=0.02,
        root_seed=root_seed,
    )


def fake_result(scenario_id="s/1", value=1.5):
    return ScenarioResult(
        scenario_id=scenario_id,
        stats={"host_reads": 10, "write_amplification": value},
        backend={"backend": "counter"},
        per_block={"pe_cycles": [1, 2, 3]},
        trajectory=[{"window": 0, "worst_block_rber": value / 100}],
    )


# ----------------------------------------------------------------------
# Round-trip exactness
# ----------------------------------------------------------------------


def test_append_load_round_trip_is_exact(tmp_path):
    results = [fake_result(f"s/{i}", value=1.0 / (i + 3)) for i in range(4)]
    with ResultStore(tmp_path) as store:
        for result in results:
            store.append(result)
    loaded = ResultStore(tmp_path).load()
    assert len(loaded) == 4
    for result in results:
        # Dataclass equality covers every field; floats round-trip
        # bit-for-bit through JSON (shortest-repr), so this is exact.
        assert loaded[result.scenario_id] == result


def test_real_scenario_result_round_trips_exactly(tmp_path):
    """The full result of a real run — numpy-derived floats and all —
    survives the store bit-for-bit (the resume ≡ serial keystone)."""
    from repro.controller.factory import run_scenario

    scenario = small_grid(seeds=1).scenarios()[0]
    result = run_scenario(scenario)
    with ResultStore(tmp_path) as store:
        store.append(result)
    assert ResultStore(tmp_path).load()[scenario.scenario_id] == result


def test_duplicate_identical_records_merge(tmp_path):
    result = fake_result()
    with ResultStore(tmp_path, writer="a") as store:
        store.append(result)
        store.append(result)  # a retry that raced its own completion
    with ResultStore(tmp_path, writer="b") as store:
        store.append(result)  # an overlapping shard
    assert ResultStore(tmp_path).load() == {result.scenario_id: result}


def test_conflicting_duplicate_records_raise(tmp_path):
    with ResultStore(tmp_path, writer="a") as store:
        store.append(fake_result(value=1.5))
    with ResultStore(tmp_path, writer="b") as store:
        store.append(fake_result(value=2.5))
    with pytest.raises(ValueError, match="two different results"):
        ResultStore(tmp_path).load()


# ----------------------------------------------------------------------
# Torn and corrupted records
# ----------------------------------------------------------------------


def test_torn_final_line_is_skipped_not_fatal(tmp_path):
    with ResultStore(tmp_path) as store:
        store.append(fake_result("s/0"))
        store.append(fake_result("s/1"))
    truncate_store_tail(tmp_path, nbytes=20)  # parent died mid-append
    store = ResultStore(tmp_path)
    loaded = store.load()
    assert set(loaded) == {"s/0"}
    assert store.corrupt_records == 1
    assert store.scenario_ids() == {"s/0"}


def test_checksum_catches_bit_rot(tmp_path):
    with ResultStore(tmp_path) as store:
        store.append(fake_result("s/0"))
        store.append(fake_result("s/1"))
    assert corrupt_store_record(tmp_path, "s/1") == 1
    store = ResultStore(tmp_path)
    assert set(store.load()) == {"s/0"}
    assert store.corrupt_records == 1


def test_rerun_after_torn_record_restores_it(tmp_path):
    result = fake_result("s/0")
    with ResultStore(tmp_path) as store:
        store.append(result)
    truncate_store_tail(tmp_path)
    assert ResultStore(tmp_path).scenario_ids() == set()
    with ResultStore(tmp_path) as store:  # what resume does: re-run, append
        store.append(result)
    assert ResultStore(tmp_path).load() == {"s/0": result}


# ----------------------------------------------------------------------
# Manifest binding
# ----------------------------------------------------------------------


def test_bind_writes_then_verifies_manifest(tmp_path):
    grid = small_grid()
    store = ResultStore(tmp_path)
    assert not ResultStore.is_initialized(tmp_path)
    manifest = store.bind(list(grid))
    assert ResultStore.is_initialized(tmp_path)
    assert manifest["grid_fingerprint"] == grid_fingerprint(list(grid))
    # Re-binding the same grid (a resume) is a no-op verification.
    assert ResultStore(tmp_path).bind(list(grid)) == manifest


def test_bind_rejects_a_different_grid(tmp_path):
    store = ResultStore(tmp_path)
    store.bind(list(small_grid()))
    with pytest.raises(ValueError, match="different.*grid"):
        ResultStore(tmp_path).bind(list(small_grid(seeds=3)))
    with pytest.raises(ValueError, match="different.*grid"):
        ResultStore(tmp_path).bind(list(small_grid(root_seed=1)))


def test_fingerprint_is_order_free_and_shard_free():
    scenarios = small_grid(seeds=3).scenarios()
    assert grid_fingerprint(scenarios) == grid_fingerprint(scenarios[::-1])
    assert grid_fingerprint(scenarios) != grid_fingerprint(scenarios[:-1])


def test_unrecognized_manifest_is_rejected(tmp_path):
    (tmp_path / "manifest.json").write_text(json.dumps({"format": "other"}))
    with pytest.raises(ValueError, match="manifest"):
        ResultStore(tmp_path).read_manifest()


def test_writer_names_are_validated(tmp_path):
    for bad in ("", "a/b", ".hidden"):
        with pytest.raises(ValueError, match="writer"):
            ResultStore(tmp_path, writer=bad)


# ----------------------------------------------------------------------
# Cross-store merge (the shard workflow)
# ----------------------------------------------------------------------


def test_ingest_merges_shard_stores(tmp_path):
    grid = list(small_grid(seeds=2))
    a, b = tmp_path / "host-a", tmp_path / "host-b"
    store_a = ResultStore(a, writer="shard0of2")
    store_b = ResultStore(b, writer="shard1of2")
    store_a.bind(grid)
    store_b.bind(grid)
    result_0, result_1 = fake_result("s/0"), fake_result("s/1")
    with store_a:
        store_a.append(result_0)
    with store_b:
        store_b.append(result_1)
    assert store_a.ingest(store_b) == 1
    assert ResultStore(a).load() == {"s/0": result_0, "s/1": result_1}


def test_ingest_keeps_failure_ledgers(tmp_path):
    grid = list(small_grid())
    a, b = tmp_path / "a", tmp_path / "b"
    store_a, store_b = ResultStore(a, writer="w1"), ResultStore(b, writer="w2")
    store_a.bind(grid)
    store_b.bind(grid)
    with store_b:
        entry = store_b.record_failure(
            "s/9", 1, "timeout", "hung for 600s", duration=600.25
        )
    store_a.ingest(store_b)
    assert ResultStore(a).failures() == [entry]
    assert entry["duration_seconds"] == 600.25
    assert entry["wall_time"] > 0


def test_ingest_renames_colliding_writer_files(tmp_path):
    grid = list(small_grid())
    a, b = tmp_path / "a", tmp_path / "b"
    store_a, store_b = ResultStore(a), ResultStore(b)  # both writer="all"
    store_a.bind(grid)
    store_b.bind(grid)
    result = fake_result()
    with store_a:
        store_a.append(result)
    with store_b:
        store_b.append(result)
    assert store_a.ingest(store_b) == 1
    names = {p.name for p in (a / "records").glob("*.jsonl")}
    assert "all.jsonl" in names and len(names) == 2  # nothing clobbered
    assert ResultStore(a).load() == {result.scenario_id: result}


def test_ingest_rejects_stores_of_different_grids(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    store_a, store_b = ResultStore(a), ResultStore(b)
    store_a.bind(list(small_grid()))
    store_b.bind(list(small_grid(seeds=3)))
    with pytest.raises(ValueError, match="different scenario grids"):
        store_a.ingest(store_b)
