"""``python -m repro.sweep`` grid construction: multi-valued axes,
executor plumbing, and a tiny end-to-end run."""

import json
import re

import pytest

from repro.sweep import build_grid, build_parser, main


def _args(*argv):
    return build_parser().parse_args(list(argv))


def test_default_grid_is_single_cell():
    grid = build_grid(_args())
    assert len(grid) == 1
    scenario = grid.scenarios()[0]
    assert scenario.policy.name == "baseline"
    assert scenario.backend.executor == "serial"


def test_multi_valued_reclaim_builds_ablation_axis():
    grid = build_grid(_args("--reclaim", "0", "50000", "100000"))
    labels = [p.label for p in grid.policies]
    assert labels == ["baseline", "reclaim-rc50000", "reclaim-rc100000"]
    assert len(grid) == 3
    thresholds = [p.read_reclaim_threshold for p in grid.policies]
    assert thresholds == [None, 50000, 100000]


def test_refresh_and_reclaim_axes_combine():
    grid = build_grid(
        _args("--refresh-days", "3", "7", "--reclaim", "0", "20000")
    )
    assert len(grid.policies) == 4
    assert len(grid) == 4
    assert len({p.label for p in grid.policies}) == 4


def test_flash_chip_backend_axes_combine():
    grid = build_grid(
        _args(
            "--backend", "flash_chip",
            "--pe-cycles", "0", "8000",
            "--vpass", "512", "500",
        )
    )
    assert len(grid.backends) == 4
    assert len({b.label for b in grid.backends}) == 4


def test_counter_backend_rejects_physics_axes():
    with pytest.raises(SystemExit, match="counter backend"):
        build_grid(_args("--pe-cycles", "0", "8000"))


def test_duplicate_axis_values_fail_cleanly():
    with pytest.raises(SystemExit, match="distinct labels"):
        build_grid(_args("--reclaim", "0", "0"))


def test_executor_flags():
    grid = build_grid(_args("--backend", "flash_chip", "--executor", "threaded"))
    assert grid.backends[0].executor == "threaded"
    grid = build_grid(
        _args(
            "--backend", "flash_chip",
            "--executor", "threaded", "--executor-workers", "3",
        )
    )
    assert grid.backends[0].executor == "threaded:3"
    with pytest.raises(SystemExit, match="--executor threaded"):
        build_grid(_args("--executor-workers", "3"))


def test_decoder_axis_expands_with_rs_codes():
    grid = build_grid(
        _args(
            "--backend", "flash_chip",
            "--decoder", "threshold", "rs",
            "--rs-code", "255,223", "32,30",
        )
    )
    labels = [b.label for b in grid.backends]
    # Threshold cells ignore --rs-code (no code rate); rs cells multiply.
    assert len(grid.backends) == 3
    assert len({b.label for b in grid.backends}) == 3
    assert sum("rs255.223" in label for label in labels) == 1
    assert sum("rs32.30" in label for label in labels) == 1
    threshold = [b for b in grid.backends if b.decoder == "threshold"]
    assert len(threshold) == 1 and "rs" not in threshold[0].label


def test_fault_pattern_axis():
    grid = build_grid(
        _args(
            "--backend", "flash_chip",
            "--fault-pattern", "none", "burst2:0.01", "scatter4:0.01",
        )
    )
    assert len(grid.backends) == 3
    labels = [b.label for b in grid.backends]
    assert sum("fburst2:0.01" in label for label in labels) == 1
    assert sum("fscatter4:0.01" in label for label in labels) == 1


def test_counter_backend_rejects_decoder_and_fault_axes():
    with pytest.raises(SystemExit, match="no ECC path"):
        build_grid(_args("--decoder", "rs"))
    with pytest.raises(SystemExit, match="no ECC path"):
        build_grid(_args("--fault-pattern", "burst2:0.01"))


def test_bad_rs_code_and_fault_spec_fail_cleanly():
    with pytest.raises(SystemExit, match="bad --rs-code"):
        build_grid(
            _args("--backend", "flash_chip", "--decoder", "rs", "--rs-code", "255")
        )
    with pytest.raises(SystemExit, match="even"):
        build_grid(
            _args("--backend", "flash_chip", "--decoder", "rs", "--rs-code", "16,11")
        )
    with pytest.raises(SystemExit, match="bad fault spec"):
        build_grid(
            _args("--backend", "flash_chip", "--fault-pattern", "burst3:oops")
        )


def test_cli_rs_campaign_runs_and_resumes(capsys, tmp_path):
    """End-to-end acceptance: an RS-decoder sweep through the campaign
    store, resumed, with --serial-check pinning bit-identity."""
    store = tmp_path / "store"
    argv = [
        "--workloads", "web_0",
        "--days", "0.01",
        "--backend", "flash_chip",
        "--blocks", "12", "--pages-per-block", "16",
        "--overprovision", "0.25",
        "--bitlines", "512",
        "--decoder", "rs",
        "--fault-pattern", "burst4:0.05",
        "--campaign", str(store),
        "--serial-check",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign over 1 scenario(s)" in out
    assert "serial check" in out
    assert main(argv + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "resumed: 1 scenario(s)" in out


def test_cli_campaign_runs_and_resumes(capsys, tmp_path):
    """End-to-end: --campaign lands results durably, a rerun with
    --resume skips them, and --serial-check pins bit-identity."""
    store = tmp_path / "store"
    argv = [
        "--workloads", "web_0",
        "--days", "0.01",
        "--blocks", "64", "--pages-per-block", "64",
        "--seeds", "2",
        "--campaign", str(store),
        "--on-failure", "retry:1",
        "--serial-check",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign over 2 scenario(s)" in out
    assert "serial check" in out
    # Rerunning without --resume refuses to touch the existing store.
    with pytest.raises(SystemExit, match="--resume"):
        main(argv)
    assert main(argv + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "resumed: 2 scenario(s)" in out


def test_cli_campaign_flag_dependencies(tmp_path):
    with pytest.raises(SystemExit, match="--campaign"):
        main(["--resume"])
    with pytest.raises(SystemExit, match="--campaign"):
        main(["--shard", "0/2"])
    with pytest.raises(SystemExit, match="--campaign"):
        main(["--elastic"])
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["--campaign", str(tmp_path / "s"), "--elastic",
              "--shard", "0/2"])
    with pytest.raises(SystemExit, match="failure policy"):
        main(["--campaign", str(tmp_path / "s"), "--on-failure", "panic"])


# ("-1/2" looks like an option to argparse and dies with its own
# "expected one argument" error; parse_shard's unit test covers it.)
@pytest.mark.parametrize("spec", ["2/2", "0/0", "3/2", "a/b", "1"])
def test_cli_shard_is_validated_at_parse_time(capsys, spec):
    """Malformed --shard specs die in argparse with an error naming the
    flag, not later as a raw exception from the campaign layer."""
    with pytest.raises(SystemExit) as excinfo:
        main(["--campaign", "unused", "--shard", spec])
    assert excinfo.value.code == 2  # argparse usage error
    err = capsys.readouterr().err
    assert "--shard" in err
    assert "bad shard spec" in err


def test_cli_elastic_campaign_status_and_compact(capsys, tmp_path):
    """End-to-end elastic flow: no --shard arithmetic, two workers over
    one store (the second finds everything leased and done), then
    --status renders the health surface, --compact folds the records,
    and --serial-check still passes on the compacted store."""
    store = tmp_path / "store"
    argv = [
        "--workloads", "web_0",
        "--days", "0.01",
        "--blocks", "64", "--pages-per-block", "64",
        "--seeds", "2",
        "--campaign", str(store),
        "--elastic", "--lease-batch", "1",
    ]
    assert main(argv + ["--worker-name", "wA", "--serial-check"]) == 0
    out = capsys.readouterr().out
    assert "elastic worker wA" in out
    assert "serial check" in out
    # A second elastic worker needs no --resume: sharing is the design.
    assert main(argv + ["--worker-name", "wB"]) == 0
    out = capsys.readouterr().out
    assert "resumed: 2 scenario(s)" in out
    # --status from store state alone: progress, leases, failures.
    assert main(["--status", str(store)]) == 0
    out = capsys.readouterr().out
    assert "progress: 2/2 scenario(s)" in out
    assert "b00000: done" in out and "b00001: done" in out
    assert "failed attempts: 0" in out
    # --compact folds the live tail; the report must survive unchanged.
    assert main(["--compact", str(store)]) == 0
    out = capsys.readouterr().out
    assert "compacted 2 record(s)" in out
    assert main(argv + ["--worker-name", "wC", "--serial-check"]) == 0
    out = capsys.readouterr().out
    assert "serial check" in out
    # Post-compaction status reads segments + live tail only.
    assert main(["--status", str(store)]) == 0
    out = capsys.readouterr().out
    assert "1 segment(s) holding 2 record(s)" in out


def test_cli_status_json_document(capsys, tmp_path):
    """--status --json prints the full status as one stable JSON doc
    whose counts come straight from the store."""
    store = tmp_path / "store"
    assert main([
        "--workloads", "web_0",
        "--days", "0.01",
        "--blocks", "64", "--pages-per-block", "64",
        "--seeds", "2",
        "--campaign", str(store),
    ]) == 0
    capsys.readouterr()
    assert main(["--status", str(store), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["format"] == "repro-campaign-status"
    assert doc["version"] == 1
    assert doc["completed"] == 2
    assert doc["scenario_count"] == 2
    assert doc["failures"]["total"] == 0
    # --json FILE writes the same document to disk instead.
    out_path = tmp_path / "status.json"
    assert main(["--status", str(store), "--json", str(out_path)]) == 0
    assert json.loads(out_path.read_text()) == doc


def test_cli_status_rejects_uninitialized_directory(tmp_path):
    with pytest.raises(SystemExit, match="not an initialized"):
        main(["--status", str(tmp_path / "nope")])
    with pytest.raises(SystemExit, match="not an initialized"):
        main(["--compact", str(tmp_path / "nope")])


def test_cli_campaign_progress_lines(capsys, tmp_path):
    """--progress N prints periodic progress lines from the running
    campaign (at least one, since the interval also flushes per poll)."""
    store = tmp_path / "store"
    assert main([
        "--workloads", "web_0",
        "--days", "0.01",
        "--blocks", "64", "--pages-per-block", "64",
        "--campaign", str(store),
        "--progress", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    # Lines carry a monotonic elapsed-time stamp: "progress +1.2s: ...".
    assert re.search(r"progress \+\d+(\.\d+)?s:", out)
    assert "completed" in out


def test_cli_runs_a_multi_cell_ablation(capsys, tmp_path):
    """End-to-end: a reclaim ablation grid through the runner and out as
    JSON, with --serial-check asserting parallel ≡ serial."""
    json_path = tmp_path / "sweep.json"
    code = main(
        [
            "--workloads", "web_0",
            "--days", "0.01",
            "--blocks", "64", "--pages-per-block", "64",
            "--reclaim", "0", "5000",
            "--workers", "2",
            "--serial-check",
            "--json", str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 scenarios" in out
    assert "baseline" in out and "reclaim-rc5000" in out
    assert json_path.exists()
