"""``python -m repro.sweep`` grid construction: multi-valued axes,
executor plumbing, and a tiny end-to-end run."""

import pytest

from repro.sweep import build_grid, build_parser, main


def _args(*argv):
    return build_parser().parse_args(list(argv))


def test_default_grid_is_single_cell():
    grid = build_grid(_args())
    assert len(grid) == 1
    scenario = grid.scenarios()[0]
    assert scenario.policy.name == "baseline"
    assert scenario.backend.executor == "serial"


def test_multi_valued_reclaim_builds_ablation_axis():
    grid = build_grid(_args("--reclaim", "0", "50000", "100000"))
    labels = [p.label for p in grid.policies]
    assert labels == ["baseline", "reclaim-rc50000", "reclaim-rc100000"]
    assert len(grid) == 3
    thresholds = [p.read_reclaim_threshold for p in grid.policies]
    assert thresholds == [None, 50000, 100000]


def test_refresh_and_reclaim_axes_combine():
    grid = build_grid(
        _args("--refresh-days", "3", "7", "--reclaim", "0", "20000")
    )
    assert len(grid.policies) == 4
    assert len(grid) == 4
    assert len({p.label for p in grid.policies}) == 4


def test_flash_chip_backend_axes_combine():
    grid = build_grid(
        _args(
            "--backend", "flash_chip",
            "--pe-cycles", "0", "8000",
            "--vpass", "512", "500",
        )
    )
    assert len(grid.backends) == 4
    assert len({b.label for b in grid.backends}) == 4


def test_counter_backend_rejects_physics_axes():
    with pytest.raises(SystemExit, match="counter backend"):
        build_grid(_args("--pe-cycles", "0", "8000"))


def test_duplicate_axis_values_fail_cleanly():
    with pytest.raises(SystemExit, match="distinct labels"):
        build_grid(_args("--reclaim", "0", "0"))


def test_executor_flags():
    grid = build_grid(_args("--backend", "flash_chip", "--executor", "threaded"))
    assert grid.backends[0].executor == "threaded"
    grid = build_grid(
        _args(
            "--backend", "flash_chip",
            "--executor", "threaded", "--executor-workers", "3",
        )
    )
    assert grid.backends[0].executor == "threaded:3"
    with pytest.raises(SystemExit, match="--executor threaded"):
        build_grid(_args("--executor-workers", "3"))


def test_cli_campaign_runs_and_resumes(capsys, tmp_path):
    """End-to-end: --campaign lands results durably, a rerun with
    --resume skips them, and --serial-check pins bit-identity."""
    store = tmp_path / "store"
    argv = [
        "--workloads", "web_0",
        "--days", "0.01",
        "--blocks", "64", "--pages-per-block", "64",
        "--seeds", "2",
        "--campaign", str(store),
        "--on-failure", "retry:1",
        "--serial-check",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign over 2 scenario(s)" in out
    assert "serial check" in out
    # Rerunning without --resume refuses to touch the existing store.
    with pytest.raises(SystemExit, match="--resume"):
        main(argv)
    assert main(argv + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "resumed: 2 scenario(s)" in out


def test_cli_campaign_flag_dependencies(tmp_path):
    with pytest.raises(SystemExit, match="--campaign"):
        main(["--resume"])
    with pytest.raises(SystemExit, match="--campaign"):
        main(["--shard", "0/2"])
    with pytest.raises(SystemExit, match="shard"):
        main(["--campaign", str(tmp_path / "s"), "--shard", "2/2"])
    with pytest.raises(SystemExit, match="failure policy"):
        main(["--campaign", str(tmp_path / "s"), "--on-failure", "panic"])


def test_cli_runs_a_multi_cell_ablation(capsys, tmp_path):
    """End-to-end: a reclaim ablation grid through the runner and out as
    JSON, with --serial-check asserting parallel ≡ serial."""
    json_path = tmp_path / "sweep.json"
    code = main(
        [
            "--workloads", "web_0",
            "--days", "0.01",
            "--blocks", "64", "--pages-per-block", "64",
            "--reclaim", "0", "5000",
            "--workers", "2",
            "--serial-check",
            "--json", str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 scenarios" in out
    assert "baseline" in out and "reclaim-rc5000" in out
    assert json_path.exists()
