"""Workload trace -> read pressure -> endurance, the Figure 8 pipeline."""

import pytest

from repro.controller.stats import hottest_block_reads_per_day
from repro.model import BaselinePolicy, TunedVpassPolicy, endurance
from repro.workloads import get_workload


@pytest.mark.parametrize("name,expect_gain", [("web_0", True), ("wdev_0", False)])
def test_workload_to_endurance(fast_model, name, expect_gain):
    trace = get_workload(name, seed=7).generate(0.5)
    pressure = hottest_block_reads_per_day(trace, pages_per_block=256)
    base = endurance(fast_model, pressure, BaselinePolicy, pe_resolution=200)
    tuned = endurance(fast_model, pressure, lambda: TunedVpassPolicy(), pe_resolution=200)
    assert base > 0
    gain = tuned / base - 1
    if expect_gain:
        # Read-hot workload: tuning buys a clearly visible extension.
        assert gain > 0.15
    else:
        # Write-heavy workload: little disturb, little to gain.
        assert gain < 0.10


def test_read_hot_workloads_have_lower_baseline(fast_model):
    hot = get_workload("prxy_0", seed=7).generate(0.5)
    cold = get_workload("stg_0", seed=7).generate(0.5)
    hot_pressure = hottest_block_reads_per_day(hot, 256)
    cold_pressure = hottest_block_reads_per_day(cold, 256)
    assert hot_pressure > 3 * cold_pressure
    hot_end = endurance(fast_model, hot_pressure, BaselinePolicy, pe_resolution=200)
    cold_end = endurance(fast_model, cold_pressure, BaselinePolicy, pe_resolution=200)
    assert hot_end < cold_end
