"""The Monte-Carlo chip and the analytic channel model must agree.

This is the load-bearing integration test: the characterization figures
come from the chip, the lifetime studies from the model, and the paper's
claims only transfer if both layers express the same physics.
"""

import numpy as np
import pytest

from repro.flash import FlashBlock, FlashGeometry
from repro.model import FlashChannelModel
from repro.rng import RngFactory
from repro.units import days

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=16384)


def _mc_rber(pe: int, reads: int, age: float, seeds=(0, 1)) -> float:
    values = []
    for seed in seeds:
        block = FlashBlock(GEOMETRY, RngFactory(seed))
        block.cycle_wear_to(pe)
        block.program_random()
        block.apply_read_disturb(reads)
        values.append(block.measure_block_rber(now=age))
    return float(np.mean(values))


@pytest.fixture(scope="module")
def model():
    return FlashChannelModel(wordlines_per_block=16, grid_points=900, leak_nodes=7)


@pytest.mark.parametrize(
    "pe,reads,age_days",
    [
        (8000, 0, 0.05),
        (8000, 100_000, 1.0),
        (15000, 50_000, 3.0),
        (3000, 200_000, 7.0),
    ],
)
def test_rber_agreement(model, pe, reads, age_days):
    mc = _mc_rber(pe, reads, days(age_days))
    # Uniform disturb: every wordline absorbs (W-1)/W of the reads.
    w = GEOMETRY.wordlines_per_block
    analytic = model.rber_at_exposure(pe, days(age_days), reads * (w - 1) / w)
    assert mc == pytest.approx(analytic, rel=0.25)


def test_pass_through_agreement(model):
    """Extra errors from a relaxed-Vpass read: chip vs. analytic.

    A relaxed Vpass cuts off a bitline whenever *any* cell on it sits above
    the threshold; with only a handful of such cells per block the outcome
    is strongly correlated across pages, so the estimate averages several
    independent blocks and reads every page.
    """
    vpass = 475.0
    extra_bits = 0
    total_bits = 0
    for seed in range(8):
        block = FlashBlock(GEOMETRY, RngFactory(100 + seed))
        block.cycle_wear_to(8000)
        block.program_random()
        for page in range(GEOMETRY.pages_per_block):
            nominal = block.page_error_count(page, record_disturb=False)
            relaxed = block.page_error_count(page, vpass=vpass, record_disturb=False)
            extra_bits += max(relaxed - nominal, 0)
            total_bits += GEOMETRY.bits_per_page
    mc = extra_bits / total_bits
    analytic = model.additional_pass_through_rber(vpass, 8000, 0.0)
    assert mc == pytest.approx(analytic, rel=0.6)
