"""RBER-in-the-loop acceptance: the engine + FlashChipBackend reproduce
the paper's full mitigation/recovery story on one hot-read workload.

Without read reclaim, a block hammered by reads accumulates enough
disturb that ECC declares pages uncorrectable; the engine escalates
through Read Disturb Recovery and remaps the block, losing no data.
With read reclaim enabled, the block is remapped before the errors ever
reach the ECC limit, so no uncorrectable page occurs at all.
"""

import numpy as np
import pytest

from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.ecc import EccConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

#: Small drive whose hot data fits in exactly one block.
CONFIG = SsdConfig(
    blocks=8, pages_per_block=32, overprovision=0.4, gc_threshold_blocks=1
)
HOT_PAGES = 32
N_READS = 1_200_000
#: ECC sized so the RDR regime exists: the disturbed wordline's raw
#: errors cross the capability, and post-RDR errors fit back inside it.
ECC = EccConfig(codeword_bits=9216, correctable_bits=105)


def _hot_read_trace(seed: int = 5) -> IoTrace:
    rng = np.random.default_rng(seed)
    write_ts = np.linspace(0.0, days(0.01), HOT_PAGES)
    read_ts = np.sort(rng.uniform(days(0.02), days(6.0), N_READS))
    ops = np.concatenate(
        [np.full(HOT_PAGES, OP_WRITE), np.full(N_READS, OP_READ)]
    ).astype(np.int64)
    lpns = np.concatenate(
        [np.arange(HOT_PAGES), rng.integers(0, HOT_PAGES, N_READS)]
    ).astype(np.int64)
    return IoTrace(np.concatenate([write_ts, read_ts]), ops, lpns, "hot-read")


def _run(read_reclaim_threshold):
    backend = FlashChipBackend(
        bitlines_per_block=8192, initial_pe_cycles=8000, ecc=ECC, seed=11
    )
    engine = SimulationEngine(
        CONFIG,
        read_reclaim_threshold=read_reclaim_threshold,
        maintenance_period_days=0.25,
        backend=backend,
        batch=True,
    )
    stats = engine.run_trace(_hot_read_trace())
    return backend, engine, stats


@pytest.fixture(scope="module")
def without_reclaim():
    return _run(None)


@pytest.fixture(scope="module")
def with_reclaim():
    return _run(50_000)


def test_hot_reads_without_reclaim_become_uncorrectable(without_reclaim):
    backend, _, _ = without_reclaim
    assert backend.uncorrectable_pages > 0


def test_engine_recovers_uncorrectable_pages_via_rdr(without_reclaim):
    backend, engine, _ = without_reclaim
    assert backend.rdr_attempts == backend.uncorrectable_pages
    assert backend.rdr_recovered == backend.rdr_attempts
    assert backend.data_loss_events == 0
    # Every recovery ends with the damaged block remapped to fresh cells.
    assert engine.recovery_relocations == backend.uncorrectable_pages


def test_read_reclaim_prevents_uncorrectable_pages(with_reclaim):
    backend, engine, stats = with_reclaim
    assert stats.reclaimed_blocks > 0
    assert backend.uncorrectable_pages == 0
    assert backend.rdr_attempts == 0
    assert engine.recovery_relocations == 0


def test_ecc_still_observed_corrections_under_reclaim(with_reclaim):
    """Reclaim bounds errors but does not eliminate them: ECC still
    corrects a healthy stream of raw bit errors along the way."""
    backend, _, _ = with_reclaim
    assert backend.pages_checked > 0
    assert backend.corrected_bits > 0
