"""The paper's headline quantitative claims, end to end.

Each test pins one number the abstract or evaluation reports:
- Figure 3's slope table (seven wear levels, slopes 1.0e-9 .. 1.9e-8);
- "lowering Vpass by 2% can reduce the RBER by as much as 50%" at 100K;
- Vpass can be safely reduced by ~4% at low retention age (Figure 6);
- Vpass Tuning extends endurance by ~21% on average (Figure 8);
- RDR reduces RBER by ~36% at 1M reads (Figure 10).

Absolute tolerances are generous (the authors' chips are proprietary);
orderings and rough magnitudes are the reproduction targets.
"""

import numpy as np
import pytest

from repro.analysis.characterization import rber_vs_read_disturb, rdr_experiment
from repro.core import VpassTuner
from repro.flash import FlashGeometry
from repro.model import BaselinePolicy, TunedVpassPolicy, endurance
from repro.model.lifetime import AnalyticTunableBlock
from repro.units import VPASS_NOMINAL, days, hours

PAPER_SLOPES = {
    2000: 1.00e-9,
    3000: 1.63e-9,
    4000: 2.37e-9,
    5000: 3.74e-9,
    8000: 7.50e-9,
    10000: 9.10e-9,
    15000: 1.90e-8,
}


def test_figure3_slope_table(fast_model):
    series = rber_vs_read_disturb(
        pe_values=tuple(PAPER_SLOPES), reads=np.arange(0, 100_001, 25_000),
        model=fast_model,
    )
    slopes = {s.pe_cycles: s.slope for s in series}
    for pe, paper in PAPER_SLOPES.items():
        assert slopes[pe] == pytest.approx(paper, rel=0.6), f"slope at {pe} P/E"
    ordered = [slopes[pe] for pe in sorted(slopes)]
    assert ordered == sorted(ordered)


def test_two_percent_vpass_cut_halves_rber(fast_model):
    full = fast_model.rber(8000, hours(1), 1e5, vpass_emulated_via_vref=True)
    cut = fast_model.rber(
        8000, hours(1), 1e5, vpass=0.98 * VPASS_NOMINAL, vpass_emulated_via_vref=True
    )
    assert 1 - cut / full >= 0.45


def test_safe_vpass_reduction_schedule(fast_model):
    """~4% reduction at low ages, falling to fallback by three weeks."""
    tuner = VpassTuner()
    young = tuner.tune_after_refresh(
        AnalyticTunableBlock(model=fast_model, pe_cycles=8000, age_seconds=days(0))
    )
    old = tuner.tune_after_refresh(
        AnalyticTunableBlock(model=fast_model, pe_cycles=8000, age_seconds=days(21))
    )
    assert 3.0 <= young.reduction_percent <= 7.0
    assert old.fell_back or old.reduction_percent <= 1.0


def test_endurance_improvement_on_read_hot_block(fast_model):
    base = endurance(fast_model, 20_000, BaselinePolicy)
    tuned = endurance(fast_model, 20_000, lambda: TunedVpassPolicy())
    gain = tuned / base - 1
    assert 0.10 <= gain <= 0.80


def test_rdr_reduction_at_one_million_reads():
    points = rdr_experiment(
        read_counts=(1_000_000,),
        geometry=FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=8192),
        wordlines=(0, 4),
        seed=5,
    )
    # Paper: 36% at 1M reads; accept a broad band around it.
    assert 20.0 <= points[0].reduction_percent <= 60.0
