"""RDR rescues a page that ECC declared uncorrectable (Section 4's story)."""

import pytest

from repro.core import ReadDisturbRecovery
from repro.ecc import EccConfig, EccDecoder, UncorrectableError
from repro.flash import FlashBlock, FlashGeometry
from repro.rng import RngFactory


def test_rdr_brings_page_back_within_ecc_reach():
    geometry = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=8192)
    # A deliberately weak code so the disturbed page is uncorrectable.
    ecc = EccConfig(codeword_bits=9216, correctable_bits=24)
    decoder = EccDecoder(ecc)

    block = FlashBlock(geometry, RngFactory(21))
    block.cycle_wear_to(8000)
    block.program_random()
    block.apply_read_disturb(1_000_000, target_wordline=1)

    # Read disturb flips ER into P1, which under gray coding corrupts the
    # MSB page of the wordline.
    wordline = 0
    msb_page = 2 * wordline + 1
    read_bits = block.read_page(msb_page)
    true_bits = block.expected_page_bits(msb_page)
    with pytest.raises(UncorrectableError):
        decoder.decode_or_raise(read_bits, true_bits)

    outcome = ReadDisturbRecovery().recover_wordline(block, wordline)
    errors_before = outcome.bit_errors_before
    errors_after = outcome.bit_errors_after
    assert errors_after < 0.7 * errors_before
