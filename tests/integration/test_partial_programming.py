"""Read disturb on unprogrammed and partially-programmed wordlines.

The paper's related work (Section 5.1, citing the authors' HPCA 2017 and
Papandreou et al. IMW 2016) observes that unprogrammed wordlines — whose
cells all sit in the low-Vth erased state — are *more* sensitive to read
disturb than fully-programmed ones, which is the root of the programming
vulnerabilities in partially-written blocks.  The simulator reproduces
this directly from the physics (the disturb rate decays exponentially in
cell voltage), so a partially-programmed block shows it end to end.
"""

import numpy as np

from repro.flash import FlashBlock, FlashGeometry, MlcState
from repro.rng import RngFactory

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=8192)


def _partially_programmed_block(seed: int = 2) -> FlashBlock:
    block = FlashBlock(GEOMETRY, RngFactory(seed))
    block.cycle_wear_to(8000)
    bits = GEOMETRY.bitlines_per_block
    rng = np.random.default_rng(seed)
    for wordline in range(4):  # program only the first half of the block
        block.program_wordline_bits(
            wordline,
            rng.integers(0, 2, bits, dtype=np.uint8),
            rng.integers(0, 2, bits, dtype=np.uint8),
        )
    return block


def test_unprogrammed_wordlines_disturb_faster():
    block = _partially_programmed_block()
    before = block.current_voltages(0.0)
    block.apply_read_disturb(500_000, target_wordline=0)
    after = block.current_voltages(0.0)
    shift_programmed = (after[1:4] - before[1:4]).mean()
    shift_erased = (after[4:] - before[4:]).mean()
    # Erased wordlines (all cells low-Vth) absorb much larger shifts than
    # programmed ones (3/4 of whose cells sit at high, disturb-resistant
    # voltages).
    assert shift_erased > 2.5 * shift_programmed


def test_erased_cells_cross_into_programmed_states():
    block = _partially_programmed_block()
    block.apply_read_disturb(1_000_000, target_wordline=0)
    states = block.read_wordline_states(6, record_disturb=False)
    misread = (states != int(MlcState.ER)).mean()
    assert misread > 0.01, "heavily disturbed erased wordline reads as programmed"


def test_programming_after_disturb_inherits_errors():
    """Programming a disturbed-but-unprogrammed wordline bakes nothing in:
    programming resamples the voltages, clearing the accumulated shift.
    (Real chips program *incrementally* from the disturbed state — the
    HPCA 2017 vulnerability; our program model re-verifies every cell, so
    this documents the simulator's defined behavior.)"""
    block = _partially_programmed_block()
    block.apply_read_disturb(1_000_000, target_wordline=0)
    bits = np.ones(GEOMETRY.bitlines_per_block, dtype=np.uint8)
    block.program_wordline_bits(6, bits, bits)  # ER pattern (1,1)
    errors = block.page_error_count(12, record_disturb=False)
    assert errors < 50
