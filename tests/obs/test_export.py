"""Snapshot export suite: a campaign directory in, ``metrics.json`` +
Prometheus textfile out — built from store/lease/trace state alone.

The campaign here is real (driven through the sweep CLI with
``--trace``), so the snapshot is exercised against exactly the
artifacts a crashed or finished campaign would leave behind.
"""

import json

import pytest

from repro.obs.export import (
    EXPORT_FORMAT,
    EXPORT_VERSION,
    build_snapshot,
    export_snapshot,
    main as export_main,
    trace_summary,
)
from repro.parallel.store import ResultStore
from repro.sweep import main as sweep_main

CAMPAIGN_ARGV = [
    "--workloads", "web_0",
    "--days", "0.01",
    "--blocks", "64", "--pages-per-block", "64",
]


@pytest.fixture(scope="module")
def traced_store(tmp_path_factory):
    """One finished single-scenario campaign with tracing armed."""
    store = tmp_path_factory.mktemp("campaign") / "store"
    assert sweep_main(CAMPAIGN_ARGV + ["--campaign", str(store), "--trace"]) == 0
    from repro import obs

    obs.reset()  # the CLI armed this process's global telemetry
    return store


def test_snapshot_document_shape(traced_store):
    snapshot = build_snapshot(traced_store)
    assert snapshot["format"] == EXPORT_FORMAT
    assert snapshot["version"] == EXPORT_VERSION
    assert snapshot["status"]["completed"] == 1
    assert snapshot["status"]["scenario_count"] == 1
    # The trace digest saw the campaign's own spans.
    spans = snapshot["trace"]["spans"]
    for name in ("campaign.run", "campaign.attempt", "scenario.run",
                 "store.append"):
        assert spans[name]["count"] >= 1
        assert spans[name]["seconds"] >= 0.0
    assert snapshot["trace"]["files"] >= 2  # coordinator + worker


def test_flat_metrics_agree_with_status(traced_store):
    snapshot = build_snapshot(traced_store)
    metrics = snapshot["metrics"]
    assert metrics["counters"]["campaign.completed"] == 1
    assert metrics["counters"]["campaign.failures"] == 0
    assert metrics["counters"]["trace.span_files"] == (
        snapshot["trace"]["files"]
    )
    assert metrics["gauges"]["campaign.scenario_count"] == 1
    assert metrics["histograms"]["trace.scenario.run"]["count"] >= 1


def test_export_writes_json_and_prom(traced_store):
    written = export_snapshot(traced_store)
    assert written["json"] == traced_store / "obs" / "metrics.json"
    on_disk = json.loads(written["json"].read_text())
    assert on_disk == json.loads(
        json.dumps(written["snapshot"])
    )
    prom = written["prom"].read_text()
    assert "# TYPE repro_campaign_completed_total counter" in prom
    assert "repro_campaign_completed_total 1" in prom
    assert "repro_campaign_scenario_count 1" in prom


def test_export_cli_entrypoint(traced_store, tmp_path, capsys):
    out = tmp_path / "obs-out"
    assert export_main([str(traced_store), "--out", str(out)]) == 0
    assert (out / "metrics.json").exists()
    assert (out / "metrics.prom").exists()
    assert "metrics.json" in capsys.readouterr().out


def test_snapshot_tolerates_missing_trace_dir(tmp_path):
    store = tmp_path / "store"
    assert sweep_main(CAMPAIGN_ARGV + ["--campaign", str(store)]) == 0
    snapshot = build_snapshot(store)
    assert snapshot["trace"] == {
        "files": 0, "skipped_lines": 0, "spans": {},
    }
    assert snapshot["status"]["completed"] == len(
        ResultStore(store).scenario_ids()
    )


def test_trace_summary_skips_open_spans_durations(tmp_path):
    from repro.obs.tracing import Tracer

    tracer = Tracer(tmp_path, "w0")
    with tracer.span("closed"):
        pass
    tracer.begin("abandoned")
    tracer.close()
    summary = trace_summary(tmp_path)
    assert summary["spans"]["abandoned"]["count"] == 1
    assert summary["spans"]["abandoned"]["seconds"] == 0.0
    assert summary["spans"]["closed"]["seconds"] >= 0.0
