"""Trace writer/loader suite: nesting, crash tolerance, merge identity.

The trace format's promises are all file-level, so every test here
round-trips real ``Tracer`` output through the same loader the CLI and
``tools/trace_validate.py`` use: begin/end pairing, deterministic ids,
implicit parenting, torn-tail and SIGKILL tolerance, and the
cross-file merge that stitches worker traces to the coordinator's.
"""

import json

import pytest

from repro.obs.tracing import (
    DETAIL_LEVELS,
    TRACE_FORMAT,
    TRACE_VERSION,
    Tracer,
    load_trace_file,
    merge_spans,
    trace_file_paths,
)


def spans_by_name(loaded):
    return {span["name"]: span for span in loaded["spans"]}


# ----------------------------------------------------------------------
# Writing and round-tripping
# ----------------------------------------------------------------------


def test_header_is_first_line_and_schema_versioned(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with tracer.span("outer"):
        pass
    tracer.close()
    first = json.loads(tracer.path.read_text().splitlines()[0])
    assert first["k"] == "header"
    assert first["format"] == TRACE_FORMAT
    assert first["version"] == TRACE_VERSION
    assert first["label"] == "w0"


def test_nested_spans_parent_implicitly_and_order_by_time(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with tracer.span("outer", depth=0):
        with tracer.span("inner", depth=1):
            with tracer.span("leaf"):
                pass
    tracer.close()
    loaded = load_trace_file(tracer.path)
    assert loaded["skipped"] == 0
    named = spans_by_name(loaded)
    assert named["outer"]["parent"] is None
    assert named["inner"]["parent"] == named["outer"]["id"]
    assert named["leaf"]["parent"] == named["inner"]["id"]
    # Temporal nesting: children start after and end before the parent.
    assert named["outer"]["t0"] <= named["inner"]["t0"] <= named["leaf"]["t0"]
    assert named["leaf"]["t1"] <= named["inner"]["t1"] <= named["outer"]["t1"]
    # Ids are label-prefixed and sequential in begin order.
    assert [span["id"] for span in loaded["spans"]] == [
        "w0:000000", "w0:000001", "w0:000002",
    ]


def test_sibling_spans_share_the_parent(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with tracer.span("outer"):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
    tracer.close()
    named = spans_by_name(load_trace_file(tracer.path))
    assert named["first"]["parent"] == named["outer"]["id"]
    assert named["second"]["parent"] == named["outer"]["id"]
    assert named["first"]["t1"] <= named["second"]["t0"]


def test_end_attrs_merge_over_begin_attrs(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    span = tracer.begin("campaign.attempt", scenario="s/0", attempt=1)
    tracer.end(span, outcome="ok")
    tracer.close()
    named = spans_by_name(load_trace_file(tracer.path))
    assert named["campaign.attempt"]["attrs"] == {
        "scenario": "s/0", "attempt": 1, "outcome": "ok",
    }


def test_exception_inside_span_records_error_attr(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with pytest.raises(RuntimeError):
        with tracer.span("scenario.run"):
            raise RuntimeError("boom")
    tracer.close()
    named = spans_by_name(load_trace_file(tracer.path))
    assert named["scenario.run"]["open"] is False
    assert named["scenario.run"]["attrs"]["error"] == "RuntimeError"


def test_record_writes_complete_spans_with_derived_ids(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with tracer.span("physics.execute") as execute:
        for block in (3, 7):
            tracer.record(
                "physics.block", 1.0, 2.0,
                span_id=tracer.child_id(execute.id, f"b{block}"),
                parent=execute.id, block=block,
            )
    tracer.close()
    loaded = load_trace_file(tracer.path)
    blocks = [s for s in loaded["spans"] if s["name"] == "physics.block"]
    assert [s["id"] for s in blocks] == ["w0:000000/b3", "w0:000000/b7"]
    assert all(s["parent"] == "w0:000000" for s in blocks)
    assert all(s["open"] is False for s in blocks)


def test_detached_spans_do_not_become_implicit_parents(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    root = tracer.begin("campaign.run")
    attempt = tracer.begin(
        "campaign.attempt", parent=root.id, detached=True
    )
    with tracer.span("store.append"):
        pass
    tracer.end(attempt, outcome="ok")
    tracer.end(root)
    tracer.close()
    named = spans_by_name(load_trace_file(tracer.path))
    # The detached attempt never joined the stack: the append's parent
    # is the root, not the attempt held open by the scheduler.
    assert named["store.append"]["parent"] == root.id
    assert named["campaign.attempt"]["parent"] == root.id


def test_detail_level_gates(tmp_path):
    assert DETAIL_LEVELS == ("coarse", "flush", "block")
    coarse = Tracer(tmp_path, "c", detail="coarse")
    assert not coarse.detail_flush and not coarse.detail_block
    flush = Tracer(tmp_path, "f", detail="flush")
    assert flush.detail_flush and not flush.detail_block
    block = Tracer(tmp_path, "b", detail="block")
    assert block.detail_flush and block.detail_block


# ----------------------------------------------------------------------
# Crash tolerance
# ----------------------------------------------------------------------


def test_torn_tail_is_skipped_not_fatal(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tracer.close()
    with open(tracer.path, "a") as handle:
        handle.write('{"k":"b","id":"w0:0000')  # the SIGKILL'd last line
    loaded = load_trace_file(tracer.path)
    assert loaded["skipped"] == 1
    assert sorted(spans_by_name(loaded)) == ["inner", "outer"]


def test_killed_writer_leaves_open_spans(tmp_path):
    """A begin with no end — the writer died mid-span — loads as an
    open span (t1 None), preserving its identity and parent link."""
    tracer = Tracer(tmp_path, "w0")
    outer = tracer.begin("campaign.run")
    tracer.begin("campaign.attempt", parent=outer.id, scenario="s/9")
    del tracer  # never ended, never closed: the SIGKILL shape
    path = trace_file_paths(tmp_path)[0]
    loaded = load_trace_file(path)
    assert loaded["skipped"] == 0
    named = spans_by_name(loaded)
    assert named["campaign.run"]["open"] is True
    assert named["campaign.run"]["t1"] is None
    assert named["campaign.attempt"]["parent"] == named["campaign.run"]["id"]
    assert named["campaign.attempt"]["attrs"] == {"scenario": "s/9"}


def test_orphan_end_is_skipped(tmp_path):
    tracer = Tracer(tmp_path, "w0")
    with tracer.span("real"):
        pass
    tracer.close()
    with open(tracer.path, "a") as handle:
        handle.write('{"k":"e","id":"other:000042","t1":1.0}\n')
    loaded = load_trace_file(tracer.path)
    assert loaded["skipped"] == 1
    assert list(spans_by_name(loaded)) == ["real"]


def test_unreadable_header_yields_empty_source(tmp_path):
    path = tmp_path / "trace-junk.jsonl"
    path.write_text('{"k":"header","format":"other","version":9}\n')
    loaded = load_trace_file(path)
    assert loaded["header"] is None
    assert loaded["spans"] == []
    assert loaded["skipped"] == 1


# ----------------------------------------------------------------------
# Multi-writer merge
# ----------------------------------------------------------------------


def write_worker_pair(directory):
    """A coordinator file plus a worker file whose root span parents
    across files to the coordinator's attempt span (the campaign
    shape).  Returns the attempt span's id."""
    coordinator = Tracer(directory, "wA")
    root = coordinator.begin("campaign.run")
    attempt = coordinator.begin(
        "campaign.attempt", parent=root.id, detached=True
    )
    worker = Tracer(directory, "wA.s0.a1")
    with worker.span("scenario.run", parent=attempt.id):
        pass
    worker.close()
    coordinator.end(attempt, outcome="ok")
    coordinator.end(root)
    coordinator.close()
    return attempt.id


def test_merge_is_deterministic_across_runs(tmp_path):
    """Same logical run, same labels -> byte-for-byte identical merged
    span identities, regardless of which run produced them."""
    first = tmp_path / "run1"
    second = tmp_path / "run2"
    write_worker_pair(first)
    write_worker_pair(second)
    strip = lambda spans: [  # noqa: E731 - timing fields differ by run
        {k: s[k] for k in ("id", "parent", "name", "open", "file")}
        for s in spans
    ]
    assert strip(merge_spans(first)) == strip(merge_spans(second))


def test_merge_links_worker_spans_to_coordinator(tmp_path):
    attempt_id = write_worker_pair(tmp_path)
    merged = {span["id"]: span for span in merge_spans(tmp_path)}
    scenario = next(
        span for span in merged.values() if span["name"] == "scenario.run"
    )
    assert scenario["parent"] == attempt_id
    assert merged[attempt_id]["file"] != scenario["file"]
    # Merged order is id-sorted, so it is stable under file arrival order.
    assert list(merged) == sorted(merged)


def test_merge_rejects_colliding_labels(tmp_path):
    for _ in range(2):
        tracer = Tracer(tmp_path, "same-label")
        with tracer.span("x"):
            pass
        tracer.close()
        # Two writers, one label: the second appends to the same file —
        # simulate the collision by renaming the first out of the way.
        if not (tmp_path / "trace-other.jsonl").exists():
            tracer.path.rename(tmp_path / "trace-other.jsonl")
    with pytest.raises(ValueError, match="appears in both"):
        merge_spans(tmp_path)
