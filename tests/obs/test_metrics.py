"""Metrics registry suite: handles, no-op path, snapshot, Prometheus.

Everything drives :class:`~repro.obs.metrics.MetricsRegistry` directly
— the registry is pure in-process state, so the contracts (create-or-
fetch identity, kind exclusivity, shared no-op singletons, rendering)
pin without any I/O.
"""

import pytest

from repro.obs.metrics import (
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    MetricsRegistry,
    prometheus_name,
    render_prometheus,
)


def test_counter_create_or_fetch_returns_same_handle():
    registry = MetricsRegistry()
    first = registry.counter("engine.windows")
    first.inc()
    first.inc(3)
    assert registry.counter("engine.windows") is first
    assert first.value == 4


def test_gauge_holds_latest_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("arena.resident_blocks")
    gauge.set(5)
    gauge.set(2)
    assert registry.gauge("arena.resident_blocks").value == 2


def test_histogram_summary_tracks_count_total_min_max_mean():
    registry = MetricsRegistry()
    histogram = registry.histogram("physics.decode_pages.seconds")
    for value in (0.5, 1.5, 1.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 3
    assert summary["total"] == pytest.approx(3.0)
    assert summary["min"] == 0.5
    assert summary["max"] == 1.5
    assert summary["mean"] == pytest.approx(1.0)


def test_empty_histogram_summary_has_no_stats():
    summary = MetricsRegistry().histogram("h.empty").summary()
    assert summary == {
        "count": 0, "total": 0.0, "min": None, "max": None, "mean": None,
    }


def test_disabled_registry_hands_out_shared_noop_singletons():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a.b") is NOOP_COUNTER
    assert registry.gauge("c.d") is NOOP_GAUGE
    assert registry.histogram("e.f") is NOOP_HISTOGRAM
    # The no-ops accept the full recording API and register nothing.
    registry.counter("a.b").inc(10)
    registry.gauge("c.d").set(1)
    registry.histogram("e.f").observe(2.0)
    snapshot = registry.snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


def test_name_bound_to_one_kind_forever():
    registry = MetricsRegistry()
    registry.counter("engine.windows")
    with pytest.raises(ValueError, match="different kind"):
        registry.gauge("engine.windows")
    with pytest.raises(ValueError, match="different kind"):
        registry.histogram("engine.windows")


@pytest.mark.parametrize("bad", ["", "Engine.windows", "a..b", "9x", "a-b"])
def test_bad_metric_names_rejected(bad):
    with pytest.raises(ValueError, match="bad metric name"):
        MetricsRegistry().counter(bad)


def test_snapshot_is_sorted_and_json_ready():
    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first").inc(2)
    registry.gauge("m.middle").set(7)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a.first", "z.last"]
    assert snapshot["counters"]["a.first"] == 2
    assert snapshot["gauges"] == {"m.middle": 7}


def test_prometheus_name_mangling():
    assert prometheus_name("ecc.rs.miscorrections") == (
        "repro_ecc_rs_miscorrections"
    )


def test_render_prometheus_series_shapes():
    registry = MetricsRegistry()
    registry.counter("campaign.completed").inc(3)
    registry.gauge("campaign.leases.total").set(4)
    registry.histogram("store.append.seconds").observe(0.25)
    text = registry.render_prometheus()
    assert "# TYPE repro_campaign_completed_total counter" in text
    assert "repro_campaign_completed_total 3" in text
    assert "repro_campaign_leases_total 4" in text
    # Histograms render as a summary pair.
    assert "repro_store_append_seconds_count 1" in text
    assert "repro_store_append_seconds_sum 0.25" in text


def test_render_prometheus_standalone_matches_registry():
    registry = MetricsRegistry()
    registry.counter("a.b").inc()
    assert render_prometheus(registry.snapshot()) == (
        registry.render_prometheus()
    )
