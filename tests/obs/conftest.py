"""Telemetry state is process-global: always disarm after each test so
an armed tracer (pointed at a deleted tmp_path) cannot leak into the
rest of the suite."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _disarm_telemetry():
    yield
    obs.reset()
