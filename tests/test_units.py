"""Normalized units and voltage-scale helpers."""

import pytest

from repro import units


def test_time_conversions_roundtrip():
    assert units.days(2) == 2 * 86400.0
    assert units.hours(3) == 3 * 3600.0
    assert units.as_days(units.days(5.5)) == pytest.approx(5.5)


def test_refresh_interval_is_seven_days():
    assert units.REFRESH_INTERVAL_DAYS == 7.0
    assert units.REFRESH_INTERVAL_SECONDS == 7 * 86400.0


def test_vpass_scale():
    assert units.VPASS_NOMINAL == 512.0
    assert units.vpass_fraction(512.0) == 1.0
    assert units.vpass_from_fraction(0.94) == pytest.approx(481.28)
    assert units.vpass_reduction_percent(512.0 * 0.96) == pytest.approx(4.0)


def test_gnd_is_zero():
    assert units.GND == 0.0
