"""Figure 10: RBER with and without Read Disturb Recovery vs. read count.

Reproduction targets: the no-recovery curve grows roughly linearly to
~1e-2 at 1M reads; RDR's relative reduction grows with the read disturb
count, reaching the ~36% the paper reports at 1M.
"""

from repro.analysis.characterization import rdr_experiment
from repro.analysis.reporting import format_table
from repro.flash import FlashGeometry

READS = (0, 200_000, 400_000, 600_000, 800_000, 1_000_000)


def bench_fig10_rdr(benchmark, emit):
    points = benchmark.pedantic(
        lambda: rdr_experiment(
            read_counts=READS,
            geometry=FlashGeometry(blocks=1, wordlines_per_block=24, bitlines_per_block=8192),
            wordlines=(0, 5, 10, 15, 20),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"{p.reads/1e6:.1f}M", f"{p.rber_no_recovery:.2e}", f"{p.rber_rdr:.2e}",
         f"{p.reduction_percent:.1f}%"]
        for p in points
    ]
    table = format_table(
        ["reads", "no recovery", "RDR", "reduction"],
        rows,
        title="Figure 10: RBER vs. read disturb count with/without RDR (8K P/E)",
    )
    table += "\npaper: reduction grows from a few percent to 36% at 1M reads"
    emit("fig10_rdr", table)

    no_rec = [p.rber_no_recovery for p in points]
    assert no_rec == sorted(no_rec)
    assert points[0].reduction_percent <= 5.0
    assert 20.0 <= points[-1].reduction_percent <= 60.0
    assert points[-1].rber_rdr < points[-1].rber_no_recovery
