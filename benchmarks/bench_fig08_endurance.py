"""Figure 8: P/E cycle endurance, baseline vs. Vpass Tuning, for the
fourteen-workload suite.

The full pipeline: generate each workload's trace, extract the hottest
block's read pressure, and bisect the endurance under both policies (the
tuned policy runs the real VpassTuner day by day).  Reproduction target:
an average endurance improvement around the paper's 21.0%, with
read-hot workloads gaining the most.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.controller.stats import hottest_block_reads_per_day
from repro.model import BaselinePolicy, TunedVpassPolicy, endurance
from repro.workloads import get_workload, workload_names

PAGES_PER_BLOCK = 256
TRACE_DAYS = 1.0
SEED = 7


def _figure8(model):
    rows = []
    gains = []
    for name in workload_names():
        trace = get_workload(name, seed=SEED).generate(TRACE_DAYS)
        pressure = hottest_block_reads_per_day(trace, PAGES_PER_BLOCK)
        base = endurance(model, pressure, BaselinePolicy)
        tuned = endurance(model, pressure, lambda: TunedVpassPolicy())
        gain = 100.0 * (tuned / base - 1.0) if base else float("nan")
        gains.append(gain)
        rows.append([name, f"{pressure:.0f}", base, tuned, f"{gain:.1f}%"])
    return rows, float(np.mean(gains))


def bench_fig08_endurance(benchmark, emit, lifetime_model):
    rows, mean_gain = benchmark.pedantic(
        lambda: _figure8(lifetime_model), rounds=1, iterations=1
    )
    table = format_table(
        ["workload", "hot-block reads/day", "baseline P/E", "Vpass Tuning P/E", "gain"],
        rows,
        title="Figure 8: endurance improvement with Vpass Tuning",
    )
    table += f"\nmean endurance gain: {mean_gain:.1f}%  (paper: 21.0%)"
    emit("fig08_endurance", table)

    assert 12.0 <= mean_gain <= 32.0, "average gain near the paper's 21%"
    for row in rows:
        assert row[3] >= row[2], "tuning never hurts endurance"
