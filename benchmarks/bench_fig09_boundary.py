"""Figure 9: the ER/P1 boundary before and after read disturb.

The conceptual figure behind RDR: before disturb the two distributions
are separated by a margin around Va; after disturb the (disturb-prone)
ER cells have shifted up and overlap the (disturb-resistant) P1 cells.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.flash import FlashBlock, FlashGeometry, MlcState
from repro.physics.constants import VA
from repro.rng import RngFactory


def _boundary_stats():
    geometry = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=16384)
    block = FlashBlock(geometry, RngFactory(4))
    block.cycle_wear_to(8000)
    block.program_random()
    states = block.cells.true_states[0]
    rows = []
    for label, reads in (("before", 0), ("after 1M reads", 1_000_000)):
        if reads:
            block.apply_read_disturb(reads, target_wordline=1)
        v = block.current_voltages(0.0, np.array([0]))[0]
        er = v[states == int(MlcState.ER)]
        p1 = v[states == int(MlcState.P1)]
        overlap = float((er > VA).mean() + (p1 <= VA).mean())
        rows.append(
            [label, float(er.mean()), float(np.percentile(er, 99.9)),
             float(p1.mean()), overlap]
        )
    return rows


def bench_fig09_er_p1_boundary(benchmark, emit):
    rows = benchmark.pedantic(_boundary_stats, rounds=1, iterations=1)
    table = format_table(
        ["condition", "ER mean", "ER p99.9", "P1 mean", "overlap mass at Va"],
        rows,
        title=f"Figure 9: ER/P1 boundary (Va={VA:.0f}) before/after read disturb",
    )
    emit("fig09_boundary", table)
    before, after = rows
    assert after[2] > before[2], "the ER tail crosses toward P1 after disturb"
    assert after[4] > before[4] * 3, "distribution overlap grows strongly"
    assert abs(after[3] - before[3]) < 2.0, "P1 (disturb-resistant) barely moves"
