"""Batched RS decode throughput: vectorized engine vs. per-page loop.

The RS engine (:mod:`repro.ecc.rs`) exists to make symbol-level decoding
affordable inside the simulator's flush loop: syndromes, Berlekamp-
Massey, Chien search, and Forney all run as ``(pages, ...)`` ndarray
passes over the whole batch at once.  This bench decodes one full batch
of pages (realistic error mix: mostly clean, a correctable band, a thin
uncorrectable tail) two ways —

- **batched** — one ``EccDecoder.decode_error_masks`` call, and
- **looped** — the same decoder fed one page at a time, the shape a
  naive per-page controller loop would have —

asserts the results are bit-identical, and records the speedup into
``BENCH_physics.json`` (floor gated by ``tools/check_bench.py``; the
ISSUE-8 acceptance bar is >= 10x at 512 pages).
"""

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.ecc import EccConfig, EccDecoder

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
CPUS = os.cpu_count() or 1

PAGES = 64 if SMOKE else 512
PAGE_BITS = 1024 if SMOKE else 4096
LOOP_PAGES = 16 if SMOKE else 64  # the loop is the slow side; sample it


def _masks() -> np.ndarray:
    """A realistic flush batch: mostly clean pages, a correctable band,
    and a thin uncorrectable tail (every branch of the decoder hot)."""
    rng = np.random.default_rng(2015)
    masks = np.zeros((PAGES, PAGE_BITS), dtype=bool)
    kinds = rng.random(PAGES)
    for i in range(PAGES):
        if kinds[i] < 0.70:
            continue  # clean — the early-exit path
        if kinds[i] < 0.95:
            flips = int(rng.integers(1, 40))  # correctable scatter
        else:
            flips = int(rng.integers(300, 600))  # beyond capability
        masks[i, rng.choice(PAGE_BITS, size=flips, replace=False)] = True
    return masks


def _time_batched(decoder, masks):
    start = time.perf_counter()
    batch = decoder.decode_error_masks(masks)
    return time.perf_counter() - start, batch


def _time_looped(decoder, masks):
    """Per-page decode loop over a sample of the batch, extrapolated."""
    start = time.perf_counter()
    results = [
        decoder.decode_error_masks(masks[i : i + 1]) for i in range(LOOP_PAGES)
    ]
    elapsed = (time.perf_counter() - start) * (PAGES / LOOP_PAGES)
    return elapsed, results


def _sweep():
    decoder = EccDecoder(EccConfig(decoder="rs", rs_n=255, rs_k=223))
    masks = _masks()
    decoder.decode_error_masks(masks)  # warm the page-codec tables
    batched_s, batch = _time_batched(decoder, masks)
    looped_s, pages = _time_looped(decoder, masks)
    for i, single in enumerate(pages):
        assert batch.page(i) == single.page(0), f"page {i} diverged from the loop"
    speedup = looped_s / batched_s
    rows = [
        ["batched", f"{PAGES}", f"{batched_s * 1e3:.1f}", f"{PAGES / batched_s:,.0f}", "1.00x"],
        [
            "looped",
            f"{PAGES}",
            f"{looped_s * 1e3:.1f}",
            f"{PAGES / looped_s:,.0f}",
            f"{1 / speedup:.2f}x",
        ],
    ]
    payload = {
        "smoke": SMOKE,
        "cpu_count": CPUS,
        "pages": PAGES,
        "page_bits": PAGE_BITS,
        "uncorrectable_pages": int((~batch.success).sum()),
        "seconds_batched": round(batched_s, 4),
        "seconds_looped": round(looped_s, 4),
        "pages_per_sec_batched": round(PAGES / batched_s, 1),
        "speedup_batched": round(speedup, 2),
    }
    return rows, payload


def bench_rs_decode(benchmark, emit, emit_json):
    rows, payload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["path", "pages", "ms", "pages/sec", "relative"],
        rows,
        title=(
            f"Batched RS(255,223) mask decode vs. per-page loop "
            f"({PAGES} pages x {PAGE_BITS} bits{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("rs_decode", table)
    emit_json("rs_decode", payload)
    if not SMOKE:
        assert payload["speedup_batched"] >= 10.0, (
            f"batched RS decode speedup regressed to "
            f"{payload['speedup_batched']:.2f}x"
        )
