"""Ablation: Vpass Tuning composed with read reclaim.

Read reclaim (the industry baseline) caps the reads a block absorbs per
program cycle by remapping hot blocks; Vpass Tuning shrinks the damage of
each read.  The paper's related work (Ha et al.) reports the two compose;
this bench shows the composition on the endurance model: reclaim clips
the per-interval read pressure, tuning stretches what remains.
"""

from repro.analysis.reporting import format_table
from repro.model import BaselinePolicy, TunedVpassPolicy, endurance

READS_PER_DAY = 40_000
RECLAIM_THRESHOLD = 100_000  # reads per refresh interval before remap


def _compose(model):
    capped = min(READS_PER_DAY * 7, RECLAIM_THRESHOLD) / 7.0
    rows = []
    for label, reads, policy in (
        ("no mitigation", READS_PER_DAY, BaselinePolicy),
        ("read reclaim", capped, BaselinePolicy),
        ("Vpass Tuning", READS_PER_DAY, lambda: TunedVpassPolicy()),
        ("reclaim + tuning", capped, lambda: TunedVpassPolicy()),
    ):
        rows.append([label, endurance(model, reads, policy)])
    return rows


def bench_ablation_read_reclaim_composition(benchmark, emit, lifetime_model):
    rows = benchmark.pedantic(lambda: _compose(lifetime_model), rounds=1, iterations=1)
    table = format_table(
        ["mitigation", "P/E endurance"],
        rows,
        title=(
            "Ablation: composing Vpass Tuning with read reclaim "
            f"({READS_PER_DAY} reads/day, reclaim at {RECLAIM_THRESHOLD} reads/interval)"
        ),
    )
    emit("ablation_read_reclaim", table)
    endurances = {r[0]: r[1] for r in rows}
    assert endurances["read reclaim"] >= endurances["no mitigation"]
    assert endurances["Vpass Tuning"] > endurances["no mitigation"]
    assert endurances["reclaim + tuning"] >= max(
        endurances["read reclaim"], endurances["Vpass Tuning"]
    )
