"""Ablation: Vpass Tuning composed with read reclaim.

Read reclaim (the industry baseline) caps the reads a block absorbs per
program cycle by remapping hot blocks; Vpass Tuning shrinks the damage of
each read.  The paper's related work (Ha et al.) reports the two compose;
this bench shows the composition on the endurance model: reclaim clips
the per-interval read pressure, tuning stretches what remains.

Runs through the parallel sweep runner (one endurance evaluation per
mitigation row); ``BENCH_WORKERS=N`` shards the rows across N processes
with bit-identical results (the analytic model is picklable pure data).
"""

import os

from repro.analysis.reporting import format_table
from repro.model import BaselinePolicy, TunedVpassPolicy, endurance
from repro.parallel import SweepRunner

READS_PER_DAY = 40_000
RECLAIM_THRESHOLD = 100_000  # reads per refresh interval before remap
_CAPPED = min(READS_PER_DAY * 7, RECLAIM_THRESHOLD) / 7.0

#: mitigation rows: (label, reads/day after reclaim, policy factory name).
ROWS = (
    ("no mitigation", READS_PER_DAY, "baseline"),
    ("read reclaim", _CAPPED, "baseline"),
    ("Vpass Tuning", READS_PER_DAY, "tuned"),
    ("reclaim + tuning", _CAPPED, "tuned"),
)

_POLICIES = {"baseline": BaselinePolicy, "tuned": TunedVpassPolicy}


def _endurance_row(args):
    """One mitigation row (module-level and lambda-free so it pickles)."""
    model, label, reads, policy_name = args
    return [label, endurance(model, reads, _POLICIES[policy_name])]


def _compose(model):
    runner = SweepRunner(workers=int(os.environ.get("BENCH_WORKERS", "1")))
    items = [(model, label, reads, policy) for label, reads, policy in ROWS]
    return runner.map(_endurance_row, items, labels=[row[0] for row in ROWS])


def bench_ablation_read_reclaim_composition(benchmark, emit, lifetime_model):
    rows = benchmark.pedantic(lambda: _compose(lifetime_model), rounds=1, iterations=1)
    table = format_table(
        ["mitigation", "P/E endurance"],
        rows,
        title=(
            "Ablation: composing Vpass Tuning with read reclaim "
            f"({READS_PER_DAY} reads/day, reclaim at {RECLAIM_THRESHOLD} reads/interval)"
        ),
    )
    emit("ablation_read_reclaim", table)
    endurances = {r[0]: r[1] for r in rows}
    assert endurances["read reclaim"] >= endurances["no mitigation"]
    assert endurances["Vpass Tuning"] > endurances["no mitigation"]
    assert endurances["reclaim + tuning"] >= max(
        endurances["read reclaim"], endurances["Vpass Tuning"]
    )
