"""Ablation: the Vpass tuning resolution Δ.

Step 1 of the mechanism reduces Vpass by "the smallest resolution by which
Vpass can change".  A finer Δ finds a deeper safe Vpass but needs more
measurement reads per tuning pass (each of which costs latency and its own
read disturb); this bench quantifies the trade-off behind the paper's
24.34 s/day overhead figure.
"""

from repro.analysis.reporting import format_table
from repro.core import TunerConfig, VpassTuner
from repro.model.lifetime import AnalyticTunableBlock
from repro.units import days

STEPS = (1.0, 2.0, 4.0, 8.0, 16.0)


def _sweep(model):
    rows = []
    for step in STEPS:
        tuner = VpassTuner(config=TunerConfig(step=step))
        block = AnalyticTunableBlock(model=model, pe_cycles=8000, age_seconds=days(1))
        outcome = tuner.tune_after_refresh(block)
        rows.append(
            [step, f"{outcome.reduction_percent:.2f}%", outcome.measurements,
             outcome.extra_errors, outcome.margin]
        )
    return rows


def bench_ablation_tuning_step(benchmark, emit, lifetime_model):
    rows = benchmark.pedantic(lambda: _sweep(lifetime_model), rounds=1, iterations=1)
    table = format_table(
        ["step Δ", "Vpass reduction", "measurements", "extra errors N", "margin M"],
        rows,
        title="Ablation: tuning resolution Δ vs. depth and measurement cost",
    )
    emit("ablation_tuning_step", table)
    measurements = [r[2] for r in rows]
    assert measurements[0] >= measurements[-1], "finer steps measure more"
    for row in rows:
        assert row[3] <= row[4], "the found Vpass always respects the margin"
