"""Figure 12 (related work, Kim et al. ISCA 2014): distribution of victim
cells per aggressor row for three representative modules.

Reproduction targets: heavy-tailed distributions (log-scale row counts
falling off with victim count), different shapes per module, tails past
dozens of victims for vulnerable modules.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.dram import DramModuleSpec, DramModule, Manufacturer, victim_histogram

#: The paper's three representative modules with their (selected, highly
#: vulnerable) measured error rates pinned explicitly.
MODULES = (
    (DramModuleSpec(Manufacturer.A, 2012, 40, 23), 3.0e5),
    (DramModuleSpec(Manufacturer.B, 2011, 46, 11), 8.0e4),
    (DramModuleSpec(Manufacturer.C, 2012, 23, 19), 1.5e5),
)
BUCKETS = ((0, 0), (1, 5), (6, 20), (21, 60), (61, 120))


def _histograms():
    out = {}
    for spec, rate in MODULES:
        module = DramModule(
            spec, rows=16384, cells_per_row=8192, seed=3, error_rate_override=rate
        )
        victims, counts = victim_histogram(module, max_victims=120)
        out[spec.label] = (victims, counts, module.victims_per_row().max())
    return out


def bench_fig12_victims_per_row(benchmark, emit):
    hists = benchmark.pedantic(_histograms, rounds=1, iterations=1)
    rows = []
    for lo, hi in BUCKETS:
        row = [f"{lo}-{hi} victims"]
        for label, (victims, counts, _max) in hists.items():
            mask = (victims >= lo) & (victims <= hi)
            row.append(int(counts[mask].sum()))
        rows.append(row)
    table = format_table(
        ["victims/row"] + list(hists),
        rows,
        title="Figure 12: rows by victim-cell count, three representative modules",
    )
    table += "\nmax victims in one row: " + ", ".join(
        f"{label}={mx}" for label, (_, _, mx) in hists.items()
    )
    emit("fig12_victim_cells", table)

    for label, (victims, counts, mx) in hists.items():
        total = counts.sum()
        assert counts[0] > 0.3 * total, "most rows flip few or no cells"
        assert mx > 20, f"{label}: heavy tail reaches past 20 victims"
