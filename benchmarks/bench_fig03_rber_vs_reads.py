"""Figure 3 (and its embedded slope table): RBER vs. read disturb count
under seven P/E wear levels.

The paper reports linear growth with slopes 1.00e-9 (2K P/E) through
1.90e-8 (15K P/E).  The bench fits our slopes and prints them next to the
paper's values.
"""

import numpy as np

from repro.analysis.characterization import rber_vs_read_disturb
from repro.analysis.reporting import format_table
from repro.units import hours

PAPER_SLOPES = {
    2000: 1.00e-9,
    3000: 1.63e-9,
    4000: 2.37e-9,
    5000: 3.74e-9,
    8000: 7.50e-9,
    10000: 9.10e-9,
    15000: 1.90e-8,
}


def bench_fig03_slope_table(benchmark, emit, model):
    series = benchmark.pedantic(
        lambda: rber_vs_read_disturb(
            pe_values=tuple(PAPER_SLOPES),
            reads=np.arange(0, 100_001, 10_000),
            retention_age_seconds=hours(1),
            model=model,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for s in series:
        paper = PAPER_SLOPES[s.pe_cycles]
        rows.append(
            [
                s.pe_cycles,
                f"{s.slope:.2e}",
                f"{paper:.2e}",
                f"{s.slope / paper:.2f}x",
                f"{s.intercept:.2e}",
                f"{s.rber[-1]:.2e}",
            ]
        )
    table = format_table(
        ["P/E cycles", "slope (ours)", "slope (paper)", "ratio", "intercept", "RBER@100K"],
        rows,
        title="Figure 3: RBER vs. read disturb count -- fitted slopes per wear level",
    )
    emit("fig03_slope_table", table)
    slopes = [s.slope for s in series]
    assert slopes == sorted(slopes), "slopes must grow with wear"
    for s in series:
        assert 0.4 < s.slope / PAPER_SLOPES[s.pe_cycles] < 2.5
