"""Figure 6: overall RBER and tolerable Vpass reduction vs. retention age.

The actual VpassTuner runs against the analytic block at each retention
age: it measures the worst-page error count (MEE), computes the margin
M = 0.8*C - MEE, and searches for the deepest safe Vpass.  Reproduction
targets: reductions of roughly 4-6% at low ages, declining to fallback
(no reduction) by three weeks, with the no-reduction RBER staying under
the ECC capability line.
"""

from repro.analysis.reporting import format_table
from repro.core import VpassTuner
from repro.ecc import DEFAULT_ECC
from repro.model.lifetime import AnalyticTunableBlock
from repro.units import days

AGES = (0, 1, 2, 4, 7, 11, 14, 18, 21)


def _schedule(model):
    tuner = VpassTuner()
    rows = []
    for age in AGES:
        block = AnalyticTunableBlock(model=model, pe_cycles=8000, age_seconds=days(age))
        outcome = tuner.tune_after_refresh(block)
        rber = model.rber(8000, days(age), 0, include_pass_through=False)
        rows.append(
            [
                age,
                f"{rber:.2e}",
                outcome.mee,
                outcome.margin,
                f"{outcome.reduction_percent:.1f}%" if not outcome.fell_back else "none",
            ]
        )
    return rows


def bench_fig06_safe_vpass_reduction(benchmark, emit, model):
    rows = benchmark.pedantic(lambda: _schedule(model), rounds=1, iterations=1)
    cap = DEFAULT_ECC.tolerable_rber
    table = format_table(
        ["retention day", "RBER (no reduction)", "MEE", "margin M", "safe reduction"],
        rows,
        title=(
            "Figure 6: tolerable Vpass reduction vs. retention age "
            f"(ECC capability {cap:.2e}, 20% reserved)"
        ),
    )
    emit("fig06_safe_reduction", table)

    reductions = [r[4] for r in rows]
    assert reductions[0] != "none" and float(reductions[0].rstrip("%")) >= 3.0
    assert reductions[-1] == "none", "three-week-old data leaves no margin"
    rbers = [float(r[1]) for r in rows]
    assert rbers == sorted(rbers)
    assert rbers[-1] < cap, "no-reduction RBER stays under the capability line"
