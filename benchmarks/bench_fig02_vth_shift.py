"""Figure 2: threshold-voltage distributions vs. read disturb count.

Reproduces both panels: (a) the whole-range distribution after 0 / 250K /
500K / 1M reads, and (b) the ER/P1 zoom, reported as the ER-state shift
and the ER-tail mass that crossed Va — the paper's key observations that
the shift grows with read count and hits low-Vth cells hardest.
"""

import numpy as np

from repro.analysis.characterization import vth_shift_experiment
from repro.analysis.reporting import format_table
from repro.flash import MlcState
from repro.physics.constants import VA


def bench_fig02_vth_distributions(benchmark, emit):
    snapshots = benchmark.pedantic(
        lambda: vth_shift_experiment(read_counts=(0, 250_000, 500_000, 1_000_000), seed=3),
        rounds=1,
        iterations=1,
    )
    rows = []
    baseline_means = {}
    for snap in snapshots:
        per_state = {}
        for state in MlcState:
            mask = snap.true_states == int(state)
            per_state[state] = snap.voltages[mask]
        if snap.reads == 0:
            baseline_means = {s: v.mean() for s, v in per_state.items()}
        er = per_state[MlcState.ER]
        rows.append(
            [
                f"{snap.reads/1000:.0f}K",
                float(er.mean() - baseline_means[MlcState.ER]),
                float(per_state[MlcState.P3].mean() - baseline_means[MlcState.P3]),
                float((er > VA).mean()),
                float(np.percentile(er, 99.9)),
            ]
        )
    table = format_table(
        ["reads", "ER mean shift", "P3 mean shift", "ER mass past Va", "ER p99.9"],
        rows,
        title="Figure 2: read disturb shifts the ER state toward Va "
        "(P3 barely moves)",
    )
    emit("fig02_vth_shift", table)
    er_shifts = [r[1] for r in rows]
    assert er_shifts == sorted(er_shifts), "ER shift must grow with reads"
    assert rows[-1][1] > 5.0, "1M reads must visibly shift ER"
    assert abs(rows[-1][2]) < rows[-1][1] / 5, "P3 must shift far less than ER"
