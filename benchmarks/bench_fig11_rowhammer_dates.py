"""Figure 11 (related work, Kim et al. ISCA 2014): RowHammer error rate
vs. DRAM module manufacture date, for a 129-module fleet from three
manufacturers.

Reproduction targets: no errors before 2010, error rates climbing by
orders of magnitude through 2014, and every post-2012 module vulnerable.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.dram import Manufacturer, hammer_test_error_rate, module_fleet


def _fleet_summary():
    fleet = module_fleet(129, seed=1)
    rates = {spec: hammer_test_error_rate(spec, rows=2048, seed=2) for spec in fleet}
    rows = []
    for year in range(2008, 2015):
        year_specs = [s for s in fleet if s.year == year]
        if not year_specs:
            continue
        row = [year, len(year_specs)]
        for mfr in Manufacturer:
            r = [rates[s] for s in year_specs if s.manufacturer is mfr]
            row.append(f"{np.median(r):.1e}" if r else "-")
        vulnerable = sum(1 for s in year_specs if rates[s] > 0)
        row.append(f"{vulnerable}/{len(year_specs)}")
        rows.append(row)
    total_vulnerable = sum(1 for s in fleet if rates[s] > 0)
    return rows, total_vulnerable, rates


def bench_fig11_rowhammer_error_rates(benchmark, emit):
    rows, total_vulnerable, rates = benchmark.pedantic(_fleet_summary, rounds=1, iterations=1)
    table = format_table(
        ["year", "modules", "A median err/1e9", "B median", "C median", "vulnerable"],
        rows,
        title="Figure 11: RowHammer errors per 1e9 cells vs. manufacture date "
        "(129 modules)",
    )
    table += f"\nvulnerable modules: {total_vulnerable}/129 (paper: 110/129)"
    emit("fig11_rowhammer_dates", table)

    by_year = {row[0]: row for row in rows}
    assert all(row[-1].startswith("0/") for year, row in by_year.items() if year < 2010)
    late = [r for s, r in rates.items() if s.year >= 2013 and r > 0]
    early = [r for s, r in rates.items() if s.year == 2011 and r > 0]
    assert np.median(late) > 30 * np.median(early), "orders-of-magnitude growth"
    assert total_vulnerable >= 0.6 * 129
