"""Figure 1: the 2-bit MLC threshold-voltage layout.

Regenerates the conceptual figure's data: the four state distributions of
a fresh block, the read references between them, and the nominal Vpass
above everything.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.flash import FlashBlock, FlashGeometry, MlcState
from repro.flash.state import state_to_bits
from repro.physics.constants import READ_REFERENCES
from repro.rng import RngFactory
from repro.units import VPASS_NOMINAL


def _measure_states():
    geometry = FlashGeometry(blocks=1, wordlines_per_block=4, bitlines_per_block=16384)
    block = FlashBlock(geometry, RngFactory(0))
    block.erase()
    block.program_random()
    voltages = block.current_voltages(0.0)
    states = block.cells.true_states
    rows = []
    for state in MlcState:
        v = voltages[states == int(state)]
        lsb, msb = state_to_bits(state)
        rows.append(
            [state.name, f"{lsb}{msb}", float(v.mean()), float(v.std()),
             float(np.percentile(v, 0.1)), float(np.percentile(v, 99.9))]
        )
    return rows


def bench_fig01_state_layout(benchmark, emit):
    rows = benchmark(_measure_states)
    table = format_table(
        ["state", "(LSB,MSB)", "mean Vth", "sigma", "p0.1", "p99.9"],
        rows,
        title="Figure 1: fresh MLC state distributions (normalized scale)",
    )
    refs = "  ".join(
        f"{name}={v:.0f}" for name, v in zip(("Va", "Vb", "Vc"), READ_REFERENCES)
    )
    emit("fig01_states", table + f"\nread references: {refs}  Vpass={VPASS_NOMINAL:.0f}")
    means = [row[2] for row in rows]
    assert means == sorted(means)
    assert means[-1] < VPASS_NOMINAL
