"""Engine throughput: batched vs. per-op execution, both backends.

The unified engine's acceptance target is a >=10x speedup of the batched
windowed path over the per-op reference loop on a 1M-operation synthetic
hot-read trace with the counter backend, with bit-identical run stats.
This bench tracks that number (and the full-fidelity flash-chip
backend's throughput, vectorized in PR 2) from PR to PR; the flash-chip
row's ops/sec also lands in the machine-readable ``BENCH_physics.json``
at the repo root.

Set ``BENCH_SMOKE=1`` to run a seconds-scale smoke of every row — the
perf-path APIs still execute end to end, but the counter-path speedup
ratio is not asserted (window batching cannot amortize at toy scale).
"""

import os
import statistics
import tempfile
import time

import numpy as np

from repro import obs
from repro.analysis.reporting import format_table
from repro.controller import (
    FlashChipBackend,
    SimulationEngine,
    SsdConfig,
)
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

N_OPS = 30_000 if SMOKE else 1_000_000
FOOTPRINT = 5_000 if SMOKE else 100_000
READ_FRACTION = 0.99
CONFIG = (
    SsdConfig(blocks=64, pages_per_block=64)
    if SMOKE
    else SsdConfig(blocks=512, pages_per_block=256)
)
#: much smaller drive/trace for the flash-chip row: every read there
#: drives Monte-Carlo physics, which targets fidelity, not sweeps.
PHYSICS_OPS = 5_000 if SMOKE else 200_000
PHYSICS_FOOTPRINT = 500 if SMOKE else 2_000
PHYSICS_CONFIG = SsdConfig(blocks=16, pages_per_block=32, overprovision=0.2)
PHYSICS_BITLINES = 512 if SMOKE else 2048
#: the telemetry-overhead comparison reruns the flash-chip row twice per
#: round; half-length traces keep the paired rounds affordable.
OVERHEAD_OPS = 2_000 if SMOKE else 100_000
OVERHEAD_ROUNDS = 1 if SMOKE else 5


def _traces(footprint, n_ops):
    rng = np.random.default_rng(7)
    precondition = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.1), days(6.0), n_ops)),
        np.where(rng.random(n_ops) < READ_FRACTION, OP_READ, OP_WRITE).astype(
            np.int64
        ),
        rng.integers(0, footprint, n_ops).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _timed_run(config, backend_factory, batch, footprint, n_ops, repeats=1):
    """Best-of-*repeats* timing (fresh engine per repeat, identical stats).

    The batched counter row finishes in ~0.1s, where one-shot timing on a
    shared machine is mostly scheduler noise; best-of keeps the recorded
    trajectory meaningful without changing what is measured.
    """
    best_elapsed = None
    stats = None
    for _ in range(repeats):
        precondition, trace = _traces(footprint, n_ops)
        engine = SimulationEngine(
            config,
            read_reclaim_threshold=50_000,
            backend=backend_factory(),
            batch=batch,
        )
        engine.run_trace(precondition)
        start = time.perf_counter()
        run_stats = engine.run_trace(trace)
        elapsed = time.perf_counter() - start
        assert stats is None or run_stats == stats, "repeat runs must be identical"
        stats = run_stats
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return stats, best_elapsed, n_ops / best_elapsed


def _physics_cpu_run(trace_dir):
    """One flash-chip run timed in CPU seconds; traced iff *trace_dir*.

    ``time.process_time`` instead of wall-clock: the overhead gate
    compares two runs whose difference is pure in-process work (handle
    lookups, span writes), and CPU time is blind to the scheduler noise
    of a shared machine that dwarfs a 2% wall-clock margin.
    """
    if trace_dir is not None:
        obs.configure(trace_dir, label="bench", detail="coarse")
    try:
        precondition, trace = _traces(PHYSICS_FOOTPRINT, OVERHEAD_OPS)
        engine = SimulationEngine(
            PHYSICS_CONFIG,
            read_reclaim_threshold=50_000,
            backend=FlashChipBackend(
                bitlines_per_block=PHYSICS_BITLINES, seed=3
            ),
            batch=True,
        )
        engine.run_trace(precondition)
        start = time.process_time()
        stats = engine.run_trace(trace)
        return stats, time.process_time() - start
    finally:
        if trace_dir is not None:
            obs.reset()


def _telemetry_overhead():
    """Median of paired traced/untraced CPU-time ratios.

    Pairing each traced run with an immediately preceding untraced run
    cancels slow machine drift; the median over rounds shrugs off the
    odd preempted round that best-of timing cannot.  The runs are
    asserted bit-identical either way — telemetry is out-of-band.
    """
    ratios = []
    with tempfile.TemporaryDirectory() as tmp:
        for index in range(OVERHEAD_ROUNDS):
            stats_off, t_off = _physics_cpu_run(None)
            stats_on, t_on = _physics_cpu_run(os.path.join(tmp, f"r{index}"))
            assert stats_on == stats_off, "telemetry must not perturb results"
            ratios.append(t_on / t_off)
    return statistics.median(ratios)


def _sweep():
    rows = []
    stats_serial, t_serial, ops_serial = _timed_run(
        CONFIG, lambda: None, False, FOOTPRINT, N_OPS
    )
    rows.append(["counter / per-op", N_OPS, f"{t_serial:.2f}", f"{ops_serial:,.0f}", "1.0x"])
    stats_batched, t_batched, ops_batched = _timed_run(
        CONFIG, lambda: None, True, FOOTPRINT, N_OPS, repeats=1 if SMOKE else 3
    )
    rows.append(
        [
            "counter / batched",
            N_OPS,
            f"{t_batched:.2f}",
            f"{ops_batched:,.0f}",
            f"{t_serial / t_batched:.1f}x",
        ]
    )
    assert stats_batched == stats_serial, "batched run must be bit-identical"
    _, t_physics, ops_physics = _timed_run(
        PHYSICS_CONFIG,
        lambda: FlashChipBackend(bitlines_per_block=PHYSICS_BITLINES, seed=3),
        True,
        PHYSICS_FOOTPRINT,
        PHYSICS_OPS,
        repeats=1 if SMOKE else 2,
    )
    rows.append(
        ["flash-chip / batched", PHYSICS_OPS, f"{t_physics:.2f}", f"{ops_physics:,.0f}", "-"]
    )
    # Telemetry overhead: the same flash-chip row with metrics + coarse
    # tracing armed (the production campaign configuration), gated
    # <= 1.02x by check_bench.py — observability must stay out of the
    # hot path's way.
    overhead = _telemetry_overhead()
    rows.append(
        [
            "flash-chip / traced",
            OVERHEAD_OPS,
            "-",
            "-",
            f"{overhead:.3f}x",
        ]
    )
    payload = {
        "smoke": SMOKE,
        "counter_per_op_ops_per_sec": round(ops_serial, 1),
        "counter_batched_ops_per_sec": round(ops_batched, 1),
        "counter_batched_speedup": round(t_serial / t_batched, 2),
        "flash_chip_ops_per_sec": round(ops_physics, 1),
        "flash_chip_trace_ops": PHYSICS_OPS,
        "flash_chip_seconds": round(t_physics, 3),
        "telemetry_overhead_ratio": round(overhead, 4),
        "telemetry_overhead_rounds": OVERHEAD_ROUNDS,
    }
    return rows, t_serial / t_batched, payload


def bench_engine_throughput(benchmark, emit, emit_json):
    (rows, speedup, payload) = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["engine", "trace ops", "seconds", "ops/sec", "speedup"],
        rows,
        title=(
            f"Engine throughput ({READ_FRACTION:.0%} reads, preconditioned "
            f"{FOOTPRINT:,}-page footprint, daily maintenance + read reclaim"
            f"{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("engine_throughput", table)
    emit_json("engine_throughput", payload)
    if not SMOKE:
        assert speedup >= 10.0, f"batched speedup regressed to {speedup:.1f}x"
