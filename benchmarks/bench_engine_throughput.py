"""Engine throughput: batched vs. per-op execution, both backends.

The unified engine's acceptance target is a >=10x speedup of the batched
windowed path over the per-op reference loop on a 1M-operation synthetic
hot-read trace with the counter backend, with bit-identical run stats.
This bench tracks that number (and the full-fidelity flash-chip
backend's throughput) from PR to PR.
"""

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.controller import (
    FlashChipBackend,
    SimulationEngine,
    SsdConfig,
)
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

N_OPS = 1_000_000
FOOTPRINT = 100_000
READ_FRACTION = 0.99
CONFIG = SsdConfig(blocks=512, pages_per_block=256)
#: much smaller drive/trace for the flash-chip row: every read there
#: drives Monte-Carlo physics, which targets fidelity, not sweeps.
PHYSICS_OPS = 200_000
PHYSICS_CONFIG = SsdConfig(blocks=16, pages_per_block=32, overprovision=0.2)


def _traces(footprint, n_ops):
    rng = np.random.default_rng(7)
    precondition = IoTrace(
        np.zeros(footprint),
        np.full(footprint, OP_WRITE, dtype=np.int64),
        rng.permutation(footprint).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.1), days(6.0), n_ops)),
        np.where(rng.random(n_ops) < READ_FRACTION, OP_READ, OP_WRITE).astype(
            np.int64
        ),
        rng.integers(0, footprint, n_ops).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _timed_run(config, backend, batch, footprint, n_ops):
    precondition, trace = _traces(footprint, n_ops)
    engine = SimulationEngine(
        config, read_reclaim_threshold=50_000, backend=backend, batch=batch
    )
    engine.run_trace(precondition)
    start = time.perf_counter()
    stats = engine.run_trace(trace)
    elapsed = time.perf_counter() - start
    return stats, elapsed, n_ops / elapsed


def _sweep():
    rows = []
    stats_serial, t_serial, ops_serial = _timed_run(
        CONFIG, None, False, FOOTPRINT, N_OPS
    )
    rows.append(["counter / per-op", N_OPS, f"{t_serial:.2f}", f"{ops_serial:,.0f}", "1.0x"])
    stats_batched, t_batched, ops_batched = _timed_run(
        CONFIG, None, True, FOOTPRINT, N_OPS
    )
    rows.append(
        [
            "counter / batched",
            N_OPS,
            f"{t_batched:.2f}",
            f"{ops_batched:,.0f}",
            f"{t_serial / t_batched:.1f}x",
        ]
    )
    assert stats_batched == stats_serial, "batched run must be bit-identical"
    _, t_physics, ops_physics = _timed_run(
        PHYSICS_CONFIG,
        FlashChipBackend(bitlines_per_block=2048, seed=3),
        True,
        2_000,
        PHYSICS_OPS,
    )
    rows.append(
        ["flash-chip / batched", PHYSICS_OPS, f"{t_physics:.2f}", f"{ops_physics:,.0f}", "-"]
    )
    return rows, t_serial / t_batched


def bench_engine_throughput(benchmark, emit):
    (rows, speedup) = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["engine", "trace ops", "seconds", "ops/sec", "speedup"],
        rows,
        title=(
            f"Engine throughput ({READ_FRACTION:.0%} reads, preconditioned "
            f"{FOOTPRINT:,}-page footprint, daily maintenance + read reclaim)"
        ),
    )
    emit("engine_throughput", table)
    assert speedup >= 10.0, f"batched speedup regressed to {speedup:.1f}x"
