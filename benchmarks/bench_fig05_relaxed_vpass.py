"""Figure 5: additional RBER induced by relaxing Vpass, across retention
ages 0..21 days.

Reproduction targets: no extra errors for shallow relaxations (the
program-verify gap), errors growing as Vpass drops, and older data
tolerating deeper relaxation (retention loss lowers every Vth).
"""

import numpy as np

from repro.analysis.characterization import relaxed_vpass_errors
from repro.analysis.reporting import format_table

AGES = (0, 1, 2, 6, 9, 17, 21)
VPASS = np.arange(480.0, 513.0, 4.0)


def bench_fig05_additional_rber(benchmark, emit, model):
    curves = benchmark.pedantic(
        lambda: relaxed_vpass_errors(
            retention_ages_days=AGES, vpass_values=VPASS, pe_cycles=8000, model=model
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for i, v in enumerate(VPASS):
        rows.append([f"{v:.0f}"] + [f"{curves[a][i]:.2e}" for a in AGES])
    table = format_table(
        ["Vpass"] + [f"{a}-day" for a in AGES],
        rows,
        title="Figure 5: additional RBER from relaxed Vpass by retention age (8K P/E)",
    )
    emit("fig05_relaxed_vpass", table)

    # Age ordering at a deep relaxation; flat region near nominal.
    deep = [curves[a][0] for a in AGES]
    assert all(b <= a + 1e-12 for a, b in zip(deep, deep[1:]))
    assert deep[0] > 1e-4, "0-day curve reaches ~1e-3 at Vpass 480"
    assert deep[-1] > 0, "errors shrink with age but never fully vanish"
    assert curves[0][-1] == 0.0, "nominal Vpass induces no extra errors"
