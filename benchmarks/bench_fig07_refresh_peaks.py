"""Figure 7: error-rate peaks per refresh interval, with and without
mitigation.

The conceptual figure's quantitative content: within each 7-day refresh
interval errors climb and peak at the end; Vpass Tuning lowers the peaks
(the figure's dashed line) because every read disturbs less.  The series
excludes the Vpass-induced read errors, as the figure's caption specifies.
"""

from repro.analysis.reporting import format_table
from repro.model.lifetime import refresh_interval_series


def bench_fig07_interval_peaks(benchmark, emit, lifetime_model):
    series = benchmark.pedantic(
        lambda: refresh_interval_series(lifetime_model, 8000, 30_000, intervals=3),
        rounds=1,
        iterations=1,
    )
    rows = [
        [int(d), f"{u:.2e}", f"{m:.2e}"]
        for d, u, m in zip(series["day"], series["unmitigated"], series["mitigated"])
    ]
    table = format_table(
        ["day", "unmitigated RBER", "mitigated RBER"],
        rows,
        title="Figure 7: refresh-interval error peaks, 30K reads/day on the block",
    )
    emit("fig07_refresh_peaks", table)

    days_per_interval = 7
    for interval in range(3):
        end = (interval + 1) * days_per_interval - 1
        start = interval * days_per_interval
        # Peaks at interval end; mitigation lowers them.
        assert series["unmitigated"][end] > series["unmitigated"][start]
        assert series["mitigated"][end] < series["unmitigated"][end]
    # Sawtooth: the first day of each interval resets low.
    assert series["unmitigated"][7] < series["unmitigated"][6]
