"""Ablation: RDR's boundary window and correction direction.

The window decides which cells are candidates for probabilistic
correction.  Too narrow misses disturbed cells sitting higher above the
reference; too wide sweeps in unambiguous cells whose "correction" is a
coin flip.  Also compares the paper's symmetric correction (both sides of
the reference) against an upper-side-only variant.

Runs through the parallel sweep runner (each grid cell is an independent
experiment); ``BENCH_WORKERS=N`` shards the sweep across N processes
with bit-identical rows.
"""

import os

from repro.analysis.characterization import rdr_experiment
from repro.analysis.reporting import format_table
from repro.core import RdrConfig
from repro.flash import FlashGeometry
from repro.parallel import SweepRunner

GEOMETRY = FlashGeometry(blocks=1, wordlines_per_block=16, bitlines_per_block=8192)
WINDOWS = (4.0, 8.0, 12.0, 24.0, 48.0)
PARAMS = tuple((window, below) for window in WINDOWS for below in (True, False))


def _rdr_row(param):
    """One grid cell: picklable module-level function for the worker pool."""
    window, below = param
    config = RdrConfig(upper_window=window, correct_below_reference=below)
    points = rdr_experiment(
        read_counts=(1_000_000,), geometry=GEOMETRY, wordlines=(0,),
        seed=13, config=config,
    )
    return [window, "both sides" if below else "upper only",
            f"{points[0].reduction_percent:.1f}%"]


def _sweep():
    runner = SweepRunner(workers=int(os.environ.get("BENCH_WORKERS", "1")))
    labels = [f"window={w}/below={b}" for w, b in PARAMS]
    return runner.map(_rdr_row, PARAMS, labels=labels)


def bench_ablation_rdr_window(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["upper window", "correction sides", "RBER reduction at 1M reads"],
        rows,
        title="Ablation: RDR boundary window and correction direction",
    )
    emit("ablation_rdr_window", table)
    reductions = {(r[0], r[1]): float(r[2].rstrip("%")) for r in rows}
    # Wider windows capture more of the disturbed pile than the narrowest.
    assert reductions[(24.0, "both sides")] > reductions[(4.0, "both sides")]
