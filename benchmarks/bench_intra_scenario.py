"""Intra-scenario parallelism: block-group executor wall clocks.

The sweep runner shards at scenario granularity; this bench measures the
*next* parallelism level — one long flash-chip scenario whose per-flush
block groups run on the threaded block-group executor
(:mod:`repro.controller.executor`).  It runs the identical scenario at
``executor="serial"`` and ``executor="threaded:N"``, asserts every run
is bit-identical (same engine stats, same backend summary — the
executor contract), and records the wall-clock trajectory into
``BENCH_physics.json``.

The >=1.5x speedup assertion at four threads only fires on a machine
with >= 4 CPUs (and not under ``BENCH_SMOKE``): the per-block numpy
kernels release the GIL, so threads need real cores to overlap.  A
1-CPU box still exercises the whole plan/execute/merge pipeline and the
bit-identity assertions, and the recorded payload carries ``cpu_count``
so trajectory numbers are read in context.
"""

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
CPUS = os.cpu_count() or 1

N_OPS = 4_000 if SMOKE else 120_000
FOOTPRINT = 400 if SMOKE else 2_000
BITLINES = 256 if SMOKE else 4_096
CONFIG = SsdConfig(blocks=16, pages_per_block=32, overprovision=0.2)
EXECUTORS = ("serial", "threaded:2") if SMOKE else (
    "serial", "threaded:2", "threaded:4",
)


def _traces():
    rng = np.random.default_rng(23)
    precondition = IoTrace(
        np.zeros(FOOTPRINT),
        np.full(FOOTPRINT, OP_WRITE, dtype=np.int64),
        rng.permutation(FOOTPRINT).astype(np.int64),
        "precondition",
    )
    trace = IoTrace(
        np.sort(rng.uniform(days(0.1), days(6.0), N_OPS)),
        np.where(rng.random(N_OPS) < 0.99, OP_READ, OP_WRITE).astype(np.int64),
        rng.integers(0, FOOTPRINT, N_OPS).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _run(executor):
    backend = FlashChipBackend(
        bitlines_per_block=BITLINES, initial_pe_cycles=8000, seed=3,
        executor=executor,
    )
    engine = SimulationEngine(
        CONFIG, read_reclaim_threshold=50_000, backend=backend
    )
    precondition, trace = _traces()
    engine.run_trace(precondition)
    start = time.perf_counter()
    stats = engine.run_trace(trace)
    elapsed = time.perf_counter() - start
    return elapsed, stats, backend.summary()


def _sweep():
    rows = []
    timings = {}
    reference = None
    for executor in EXECUTORS:
        elapsed, stats, summary = _run(executor)
        timings[executor] = elapsed
        if reference is None:
            reference = (stats, summary)
        else:
            assert (stats, summary) == reference, (
                f"executor={executor} diverged from the serial reference"
            )
        rows.append(
            [
                executor,
                f"{N_OPS:,}",
                f"{elapsed:.2f}",
                f"{N_OPS / elapsed:,.0f}",
                f"{timings['serial'] / elapsed:.2f}x",
            ]
        )
    payload = {
        "smoke": SMOKE,
        "cpu_count": CPUS,
        "trace_ops": N_OPS,
        "bitlines_per_block": BITLINES,
        "seconds_serial": round(timings["serial"], 3),
        "serial_ops_per_sec": round(N_OPS / timings["serial"], 1),
        **{
            f"seconds_threaded_{executor.split(':')[1]}": round(elapsed, 3)
            for executor, elapsed in timings.items()
            if executor != "serial"
        },
        **{
            f"speedup_threaded_{executor.split(':')[1]}": round(
                timings["serial"] / elapsed, 2
            )
            for executor, elapsed in timings.items()
            if executor != "serial"
        },
    }
    return rows, timings, payload


def bench_intra_scenario(benchmark, emit, emit_json):
    rows, timings, payload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["executor", "trace ops", "seconds", "ops/sec", "speedup"],
        rows,
        title=(
            f"Intra-scenario block-group executor (flash-chip, "
            f"{BITLINES} bitlines, {CPUS} CPUs{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("intra_scenario", table)
    emit_json("intra_scenario", payload)
    if not SMOKE and CPUS >= 4 and "threaded:4" in timings:
        speedup = timings["serial"] / timings["threaded:4"]
        assert speedup >= 1.5, (
            f"threaded:4 intra-scenario speedup regressed to {speedup:.2f}x "
            f"on {CPUS} CPUs"
        )
