"""Benchmark harness support.

Every bench regenerates one of the paper's figures (or an ablation),
prints the series/table the paper plots, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can record paper-vs-measured.
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to watch the
tables stream by).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.model import FlashChannelModel

RESULTS_DIR = Path(__file__).parent / "results"

#: machine-readable perf trajectory, tracked at the repo root from PR 2 on.
PHYSICS_JSON = Path(__file__).parent.parent / "BENCH_physics.json"


@pytest.fixture(scope="session")
def model() -> FlashChannelModel:
    """Full-resolution analytic model shared by the rate benches."""
    return FlashChannelModel()


@pytest.fixture(scope="session")
def lifetime_model() -> FlashChannelModel:
    """Coarser model for the endurance sweeps (hundreds of evaluations)."""
    return FlashChannelModel(grid_points=700, leak_nodes=7)


@pytest.fixture
def emit():
    """Print a figure's data and archive it to benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture
def emit_json():
    """Merge a section into the repo-root ``BENCH_physics.json``.

    Each perf bench owns one top-level key; merging (rather than
    overwriting the file) lets the engine-throughput and physics-hotpath
    benches compose one perf-trajectory record however they are run.
    Smoke-scale payloads (``payload["smoke"]`` truthy) are printed but
    never written — they would clobber the committed full-scale
    trajectory with toy numbers.
    """

    def _emit_json(section: str, payload: dict) -> None:
        if payload.get("smoke"):
            print(f"[{section}] smoke payload (not recorded): {json.dumps(payload)}")
            return
        data = {}
        if PHYSICS_JSON.exists():
            try:
                data = json.loads(PHYSICS_JSON.read_text())
            except json.JSONDecodeError:
                data = {}
        data[section] = payload
        PHYSICS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return _emit_json
