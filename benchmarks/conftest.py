"""Benchmark harness support.

Every bench regenerates one of the paper's figures (or an ablation),
prints the series/table the paper plots, and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can record paper-vs-measured.
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to watch the
tables stream by).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.model import FlashChannelModel

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def model() -> FlashChannelModel:
    """Full-resolution analytic model shared by the rate benches."""
    return FlashChannelModel()


@pytest.fixture(scope="session")
def lifetime_model() -> FlashChannelModel:
    """Coarser model for the endurance sweeps (hundreds of evaluations)."""
    return FlashChannelModel(grid_points=700, leak_nodes=7)


@pytest.fixture
def emit():
    """Print a figure's data and archive it to benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
