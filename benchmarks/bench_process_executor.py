"""Process-executor parallelism: multi-core wall clocks for one scenario.

The threaded block-group executor (``bench_intra_scenario``) is bounded
by how much of the per-block kernel releases the GIL; the process
executor (:class:`~repro.controller.executor.ProcessExecutor`) sidesteps
the GIL entirely — blocks live in a shared-memory arena
(:class:`~repro.flash.arena.BlockStore`) and forked workers run
``_sense_and_decode`` / the deferred program tasks in place, so nothing
but page ids and decode results crosses the process boundary.

This bench runs the identical scenario at ``executor="serial"`` and
``executor="process:N"``, asserts every run is bit-identical (engine
stats + backend summary — the executor contract, pinned down to the
bit by the equivalence suite in ``tests/controller/``), and records the
wall-clock trajectory into ``BENCH_physics.json``.

The >=1.5x speedup assertion at four processes only fires on a machine
with >= 4 CPUs (and not under ``BENCH_SMOKE``): forked workers need
real cores to overlap.  A 1-CPU box still exercises the full
fork/arena/merge pipeline and the bit-identity assertions, and the
recorded payload carries ``cpu_count`` so trajectory numbers are read
in context (``tools/check_bench.py`` arms the floor only when the
recorded ``cpu_count`` is >= 4; see ``tools/record_bench.sh``).
"""

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.controller import FlashChipBackend, SimulationEngine, SsdConfig
from repro.units import days
from repro.workloads import IoTrace, OP_READ, OP_WRITE

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
CPUS = os.cpu_count() or 1

N_OPS = 4_000 if SMOKE else 120_000
FOOTPRINT = 400 if SMOKE else 2_000
BITLINES = 256 if SMOKE else 4_096
CONFIG = SsdConfig(blocks=16, pages_per_block=32, overprovision=0.2)
EXECUTORS = ("serial", "process:2") if SMOKE else (
    "serial", "process:2", "process:4",
)


def _traces():
    rng = np.random.default_rng(23)
    precondition = IoTrace(
        np.zeros(FOOTPRINT),
        np.full(FOOTPRINT, OP_WRITE, dtype=np.int64),
        rng.permutation(FOOTPRINT).astype(np.int64),
        "precondition",
    )
    # 95% reads: enough writes to keep the deferred/parallel program
    # path (and GC relocations) in the measured loop, read-dominated
    # enough that sensing stays the bulk of the work, as in the paper's
    # read-disturb workloads.
    trace = IoTrace(
        np.sort(rng.uniform(days(0.1), days(6.0), N_OPS)),
        np.where(rng.random(N_OPS) < 0.95, OP_READ, OP_WRITE).astype(np.int64),
        rng.integers(0, FOOTPRINT, N_OPS).astype(np.int64),
        "hot-read",
    )
    return precondition, trace


def _run(executor):
    backend = FlashChipBackend(
        bitlines_per_block=BITLINES, initial_pe_cycles=8000, seed=3,
        executor=executor,
    )
    engine = SimulationEngine(
        CONFIG, read_reclaim_threshold=50_000, backend=backend
    )
    precondition, trace = _traces()
    engine.run_trace(precondition)
    start = time.perf_counter()
    stats = engine.run_trace(trace)
    elapsed = time.perf_counter() - start
    summary = backend.summary()
    engine.close()
    return elapsed, stats, summary


def _sweep():
    rows = []
    timings = {}
    reference = None
    for executor in EXECUTORS:
        elapsed, stats, summary = _run(executor)
        timings[executor] = elapsed
        if reference is None:
            reference = (stats, summary)
        else:
            assert (stats, summary) == reference, (
                f"executor={executor} diverged from the serial reference"
            )
        rows.append(
            [
                executor,
                f"{N_OPS:,}",
                f"{elapsed:.2f}",
                f"{N_OPS / elapsed:,.0f}",
                f"{timings['serial'] / elapsed:.2f}x",
            ]
        )
    payload = {
        "smoke": SMOKE,
        "cpu_count": CPUS,
        "trace_ops": N_OPS,
        "bitlines_per_block": BITLINES,
        "seconds_serial": round(timings["serial"], 3),
        "serial_ops_per_sec": round(N_OPS / timings["serial"], 1),
        **{
            f"seconds_process_{executor.split(':')[1]}": round(elapsed, 3)
            for executor, elapsed in timings.items()
            if executor != "serial"
        },
        **{
            f"speedup_process_{executor.split(':')[1]}": round(
                timings["serial"] / elapsed, 2
            )
            for executor, elapsed in timings.items()
            if executor != "serial"
        },
    }
    return rows, timings, payload


def bench_process_executor(benchmark, emit, emit_json):
    rows, timings, payload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["executor", "trace ops", "seconds", "ops/sec", "speedup"],
        rows,
        title=(
            f"Process executor over the shared-memory block arena "
            f"(flash-chip, {BITLINES} bitlines, {CPUS} CPUs"
            f"{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("process_executor", table)
    emit_json("process_executor", payload)
    if not SMOKE and CPUS >= 4 and "process:4" in timings:
        speedup = timings["serial"] / timings["process:4"]
        assert speedup >= 1.5, (
            f"process:4 executor speedup regressed to {speedup:.2f}x "
            f"on {CPUS} CPUs"
        )
