"""Campaign overhead: the crash-safe store vs. the in-process runner.

The result store buys durability with an fsync per appended record and
an atomic manifest rewrite per bind — a price paid once per scenario,
so it must stay negligible against even the cheapest (counter-backend)
scenario.  This bench measures the store's raw append/load throughput
on synthetic records, then runs one small counter-backend grid twice —
through ``SweepRunner`` and through a ``Campaign`` over a fresh store —
asserts the reports are bit-identical, and records the relative
overhead in ``BENCH_physics.json``.

Absolute fsync latency is filesystem-dependent (CI containers often
mount tmpfs-backed tmp dirs), so the trajectory records the overhead
ratio rather than asserting a floor on append rate.
"""

import os
import tempfile
import time
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.parallel import Campaign, ResultStore, SweepRunner
from repro.parallel.results import ScenarioResult
from repro.workloads.grid import GeometrySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
CPUS = os.cpu_count() or 1

APPEND_RECORDS = 50 if SMOKE else 500
DURATION_DAYS = 0.01 if SMOKE else 0.05
SEEDS = 2 if SMOKE else 4

GRID = ScenarioGrid(
    workloads=(WORKLOAD_SUITE["web_0"],),
    geometries=(GeometrySpec(blocks=64, pages_per_block=64),),
    seeds=SEEDS,
    duration_days=DURATION_DAYS,
)


def _fake_result(index: int) -> ScenarioResult:
    return ScenarioResult(
        scenario_id=f"bench/scenario/s{index:04d}",
        stats={"host_reads": index * 11, "host_writes": index * 7,
               "write_amplification": 1.0 + index / 1000.0},
        backend={"worst_block_rber": index * 1e-6},
        per_block={"pe_cycles": [index, index + 1]},
    )


def _append_load(tmp: Path) -> dict:
    results = [_fake_result(i) for i in range(APPEND_RECORDS)]
    start = time.perf_counter()
    with ResultStore(tmp / "append") as store:
        for result in results:
            store.append(result)
    append_seconds = time.perf_counter() - start
    store = ResultStore(tmp / "append")
    start = time.perf_counter()
    loaded = store.load()
    load_seconds = time.perf_counter() - start
    assert [loaded[r.scenario_id] for r in results] == results
    return {
        "records": APPEND_RECORDS,
        "append_seconds": append_seconds,
        "load_seconds": load_seconds,
        "appends_per_second": APPEND_RECORDS / append_seconds,
    }


def _compaction(tmp: Path) -> dict:
    """Fold the append-bench store into a segment and reload it.

    Also asserts the structural claim behind the O(segments)+tail load:
    after a fold, the records dir holds no live files at all — every
    read is served from the checksummed segment.
    """
    results = [_fake_result(i) for i in range(APPEND_RECORDS)]
    store = ResultStore(tmp / "append")
    start = time.perf_counter()
    summary = store.compact()
    compact_seconds = time.perf_counter() - start
    assert summary is not None and summary["records"] == APPEND_RECORDS
    compacted = ResultStore(tmp / "append")
    start = time.perf_counter()
    loaded = compacted.load()
    load_seconds = time.perf_counter() - start
    assert [loaded[r.scenario_id] for r in results] == results
    shape = compacted.describe()
    assert shape["live_files"] == 0, "fold left live files behind"
    assert not list(compacted.records_dir.glob("*.jsonl"))
    return {
        "records": APPEND_RECORDS,
        "segments": shape["segments"],
        "compact_seconds": compact_seconds,
        "load_seconds": load_seconds,
        "compact_records_per_second": APPEND_RECORDS / compact_seconds,
    }


def _campaign_overhead(tmp: Path) -> dict:
    start = time.perf_counter()
    runner_report = SweepRunner(workers=1).run(GRID)
    runner_seconds = time.perf_counter() - start
    start = time.perf_counter()
    campaign = Campaign(GRID, ResultStore(tmp / "campaign"), workers=1)
    campaign_report = campaign.run()
    campaign_seconds = time.perf_counter() - start
    assert campaign_report.results == runner_report.results, (
        "campaign report diverged from the in-process runner"
    )
    return {
        "scenarios": len(GRID),
        "runner_seconds": runner_seconds,
        "campaign_seconds": campaign_seconds,
        "overhead_ratio": campaign_seconds / runner_seconds,
    }


def bench_campaign_store(benchmark, emit, emit_json):
    def _run():
        with tempfile.TemporaryDirectory() as tmp:
            return (
                _append_load(Path(tmp)),
                _compaction(Path(tmp)),
                _campaign_overhead(Path(tmp)),
            )

    append, fold, overhead = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["path", "work", "seconds", "rate"],
        [
            [
                "store append (fsync each)",
                f"{append['records']} records",
                f"{append['append_seconds']:.3f}",
                f"{append['appends_per_second']:,.0f}/s",
            ],
            [
                "store load (checksum each)",
                f"{append['records']} records",
                f"{append['load_seconds']:.3f}",
                f"{append['records'] / append['load_seconds']:,.0f}/s",
            ],
            [
                "store compact (fold to segment)",
                f"{fold['records']} records",
                f"{fold['compact_seconds']:.3f}",
                f"{fold['compact_records_per_second']:,.0f}/s",
            ],
            [
                "store load (segments + tail)",
                f"{fold['records']} records",
                f"{fold['load_seconds']:.3f}",
                f"{fold['records'] / fold['load_seconds']:,.0f}/s",
            ],
            [
                "SweepRunner (in-process)",
                f"{overhead['scenarios']} scenarios",
                f"{overhead['runner_seconds']:.2f}",
                "1.00x",
            ],
            [
                "Campaign (store + process/scenario)",
                f"{overhead['scenarios']} scenarios",
                f"{overhead['campaign_seconds']:.2f}",
                f"{overhead['overhead_ratio']:.2f}x",
            ],
        ],
        title=(
            f"Campaign durability overhead ({CPUS} CPUs"
            f"{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("campaign_store", table)
    emit_json(
        "campaign_store",
        {
            "smoke": SMOKE,
            "cpu_count": CPUS,
            "records": append["records"],
            "appends_per_second": round(append["appends_per_second"], 1),
            "loads_per_second": round(
                append["records"] / append["load_seconds"], 1
            ),
            "compact_records_per_second": round(
                fold["compact_records_per_second"], 1
            ),
            "compacted_loads_per_second": round(
                fold["records"] / fold["load_seconds"], 1
            ),
            "compacted_segments": fold["segments"],
            "scenarios": overhead["scenarios"],
            "runner_seconds": round(overhead["runner_seconds"], 3),
            "campaign_seconds": round(overhead["campaign_seconds"], 3),
            "campaign_overhead_ratio": round(overhead["overhead_ratio"], 2),
        },
    )
