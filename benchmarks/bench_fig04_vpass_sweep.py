"""Figure 4: RBER vs. read disturb count for Vpass 94%..100%.

Uses the paper's methodology (Vpass emulated via the read-retry Vref, so
only the disturb-rate effect appears).  The reproduction targets: curves
shift right by roughly a decade per 2% relaxation, and a 2% relaxation
halves the RBER at 100K reads.
"""

import numpy as np

from repro.analysis.characterization import vpass_sweep
from repro.analysis.reporting import format_table
from repro.units import hours

READS = np.logspace(4, 9, 11)
PERCENTS = (94, 95, 96, 97, 98, 99, 100)


def bench_fig04_vpass_relaxation(benchmark, emit, model):
    curves = benchmark.pedantic(
        lambda: vpass_sweep(
            vpass_percents=PERCENTS,
            reads=READS,
            pe_cycles=8000,
            retention_age_seconds=hours(1),
            model=model,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for i, n in enumerate(READS):
        rows.append([f"{n:.1e}"] + [f"{curves[p][i]:.2e}" for p in PERCENTS])
    table = format_table(
        ["reads"] + [f"{p}% Vpass" for p in PERCENTS],
        rows,
        title="Figure 4: RBER vs. read count under relaxed Vpass (8K P/E)",
    )
    cut = 1 - curves[98][np.searchsorted(READS, 1e5)] / curves[100][np.searchsorted(READS, 1e5)]
    table += f"\n2% Vpass relaxation at 100K reads cuts RBER by {100*cut:.0f}% (paper: ~50%)"
    emit("fig04_vpass_sweep", table)

    # Curves must be ordered by Vpass at every read count.
    for i in range(len(READS)):
        column = [curves[p][i] for p in PERCENTS]
        assert all(a <= b + 1e-12 for a, b in zip(column, column[1:]))
    assert cut > 0.45
