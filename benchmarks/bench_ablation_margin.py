"""Ablation: the 20% reserved ECC margin.

The paper conservatively reserves 20% of the correction capability when
computing the tuning margin M.  This bench sweeps the reservation: a
smaller reserve lets the tuner relax Vpass deeper (more endurance), at
the cost of headroom for error-count fluctuations between daily tunings.
"""

from repro.analysis.reporting import format_table
from repro.core import VpassTuner
from repro.ecc import EccConfig
from repro.model import TunedVpassPolicy, endurance
from repro.model.lifetime import AnalyticTunableBlock
from repro.units import days

RESERVES = (0.0, 0.1, 0.2, 0.3, 0.4)
READS_PER_DAY = 20_000


def _sweep(model):
    rows = []
    for reserve in RESERVES:
        ecc = EccConfig(reserved_margin_fraction=reserve)
        tuner = VpassTuner(ecc=ecc)
        block = AnalyticTunableBlock(model=model, ecc=ecc, pe_cycles=8000, age_seconds=days(1))
        outcome = tuner.tune_after_refresh(block)
        tuned = endurance(
            model, READS_PER_DAY, lambda: TunedVpassPolicy(VpassTuner(ecc=ecc)), ecc=ecc
        )
        rows.append(
            [f"{reserve:.0%}", f"{outcome.reduction_percent:.1f}%", outcome.margin, tuned]
        )
    return rows


def bench_ablation_reserved_margin(benchmark, emit, lifetime_model):
    rows = benchmark.pedantic(lambda: _sweep(lifetime_model), rounds=1, iterations=1)
    table = format_table(
        ["reserved margin", "day-1 Vpass reduction", "margin M (bits)", "tuned endurance"],
        rows,
        title="Ablation: reserved ECC margin fraction (paper uses 20%)",
    )
    emit("ablation_margin", table)
    reductions = [float(r[1].rstrip("%")) for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(reductions, reductions[1:])), (
        "larger reserves force shallower tuning"
    )
