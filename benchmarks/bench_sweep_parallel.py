"""Sweep-runner throughput: sharded workers vs. serial execution.

The flash-chip engine sits ~2s from its single-core floor (see
ROADMAP/BENCH_physics.json), so the lever for the paper's sweep-shaped
campaigns is scenario-level parallelism.  This bench runs one
flash-chip ablation grid (workload x reclaim-policy x seed) through
``SweepRunner`` at increasing worker counts, asserts every report is
bit-identical to the serial reference, and records the wall-clock
trajectory in ``BENCH_physics.json``.

The >=1.5x speedup assertion at ``workers=4`` only fires on a machine
with >= 4 CPUs (and not under ``BENCH_SMOKE``); single-core CI boxes
still exercise the full sharded path and the bit-identity assertions,
and the recorded payload carries ``cpu_count`` so trajectory numbers
are read in context.
"""

import os
import time

from repro.analysis.reporting import format_table
from repro.parallel import SweepRunner
from repro.workloads.grid import BackendSpec, GeometrySpec, PolicySpec, ScenarioGrid
from repro.workloads.suites import WORKLOAD_SUITE

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))
CPUS = os.cpu_count() or 1

DURATION_DAYS = 0.01 if SMOKE else 0.05
SEEDS = 1
BITLINES = 128 if SMOKE else 512
WORKER_LEVELS = (1, 2) if SMOKE else (1, 2, 4)

#: the ablation grid: hot-read suite workloads, with and without reclaim.
GRID = ScenarioGrid(
    workloads=(WORKLOAD_SUITE["webmail"],) if SMOKE else (
        WORKLOAD_SUITE["webmail"], WORKLOAD_SUITE["web_0"],
    ),
    geometries=(GeometrySpec(blocks=16, pages_per_block=32, overprovision=0.2),),
    policies=(
        PolicySpec(name="baseline"),
        PolicySpec(name="reclaim", read_reclaim_threshold=20_000),
    ),
    backends=(
        BackendSpec(kind="flash_chip", bitlines_per_block=BITLINES,
                    initial_pe_cycles=8000),
    ),
    seeds=SEEDS,
    duration_days=DURATION_DAYS,
)


def _total_ops(report) -> int:
    return sum(
        r.stats["host_reads"] + r.stats["host_writes"] + r.stats["unmapped_reads"]
        for r in report
    )


def _sweep():
    rows = []
    timings = {}
    reference = None
    for workers in WORKER_LEVELS:
        start = time.perf_counter()
        report = SweepRunner(workers=workers).run(GRID)
        elapsed = time.perf_counter() - start
        timings[workers] = elapsed
        if reference is None:
            reference = report
        else:
            assert report.results == reference.results, (
                f"workers={workers} sweep diverged from serial execution"
            )
        rows.append(
            [
                f"workers={workers}",
                len(report),
                f"{_total_ops(report):,}",
                f"{elapsed:.2f}",
                f"{timings[1] / elapsed:.2f}x",
            ]
        )
    payload = {
        "smoke": SMOKE,
        "cpu_count": CPUS,
        "scenarios": len(reference),
        "trace_ops_total": _total_ops(reference),
        "backend": "flash_chip",
        **{f"seconds_workers_{w}": round(t, 3) for w, t in timings.items()},
        **{
            f"speedup_workers_{w}": round(timings[1] / t, 2)
            for w, t in timings.items()
            if w != 1
        },
    }
    return rows, timings, payload


def bench_sweep_parallel(benchmark, emit, emit_json):
    rows, timings, payload = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["sweep", "scenarios", "trace ops", "seconds", "speedup"],
        rows,
        title=(
            f"Sharded sweep wall clock (flash-chip ablation grid, "
            f"{CPUS} CPUs{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("sweep_parallel", table)
    emit_json("sweep_parallel", payload)
    if not SMOKE and CPUS >= 4 and 4 in timings:
        speedup = timings[1] / timings[4]
        assert speedup >= 1.5, (
            f"workers=4 speedup regressed to {speedup:.2f}x on {CPUS} CPUs"
        )
