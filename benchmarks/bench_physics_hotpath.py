"""Physics hot-path throughput: batched vs. per-page scalar primitives.

PR 2 vectorized the flash-physics hot path — block-level batched sensing
and decode behind an epoch-keyed voltage cache, plus one-pass block
programming.  This bench tracks the primitive-level numbers the engine
rides on:

- pages ECC-decoded per second (``EccDecoder.check_pages`` vs. a
  ``check_page`` loop), at nominal Vpass and at a relaxed Vpass where the
  scalar path pays one full-block cutoff scan *per page* while the
  batched path shares a single mask;
- block-RBER measurements per second (``measure_block_rber``, one
  materialization per call) vs. the per-page scalar loop it replaced;
- blocks programmed per second (``program_random`` one-pass sampling vs.
  the per-wordline loop).

Results print as a table, archive to ``benchmarks/results/``, and merge
into the machine-readable ``BENCH_physics.json`` at the repo root so the
perf trajectory is tracked from PR to PR.  Set ``BENCH_SMOKE=1`` for a
seconds-scale CI smoke that exercises every code path at toy sizes.
"""

import os
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.ecc import EccDecoder
from repro.flash import FlashBlock, FlashGeometry
from repro.rng import RngFactory
from repro.units import hours

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

#: characterization-class block (paper-scale wordlines x bitlines).
GEOMETRY = (
    FlashGeometry(blocks=1, wordlines_per_block=8, bitlines_per_block=512)
    if SMOKE
    else FlashGeometry(blocks=1, wordlines_per_block=64, bitlines_per_block=8192)
)
PE_CYCLES = 8000
READS = 500_000
# Smoke rounds are sized so every timed window stays >= ~50ms — small
# enough for CI, large enough that one scheduler preemption cannot flip
# the asserted speedup ratio.
DECODE_ROUNDS = 60 if SMOKE else 20
SCALAR_DECODE_ROUNDS = 20 if SMOKE else 3
RBER_ROUNDS = 20 if SMOKE else 30
PROGRAM_ROUNDS = 10 if SMOKE else 5
RELAXED_VPASS = 500.0


def _prepared_block(seed: int = 0) -> FlashBlock:
    block = FlashBlock(GEOMETRY, RngFactory(seed))
    block.cycle_wear_to(PE_CYCLES)
    block.program_random()
    block.apply_read_disturb(READS, target_wordline=0)
    return block


def _decode_rates(vpass: float) -> tuple[float, float]:
    """(scalar, batched) pages-decoded/sec at *vpass*.

    Each round bumps the disturb state first, as a controller flush
    would, so the batched path pays a real materialization per round
    rather than replaying a warm cache.
    """
    decoder = EccDecoder()
    pages = np.arange(GEOMETRY.pages_per_block)
    block = _prepared_block()
    start = time.perf_counter()
    for _ in range(SCALAR_DECODE_ROUNDS):
        block.record_read(0, vpass)
        for page in pages:
            decoder.check_page(block, int(page), hours(1), vpass)
    scalar = SCALAR_DECODE_ROUNDS * pages.size / (time.perf_counter() - start)
    block = _prepared_block()
    start = time.perf_counter()
    for _ in range(DECODE_ROUNDS):
        block.record_read(0, vpass)
        decoder.check_pages(block, pages, hours(1), vpass)
    batched = DECODE_ROUNDS * pages.size / (time.perf_counter() - start)
    return scalar, batched


def _rber_rates() -> tuple[float, float]:
    """(scalar, batched) block-RBER measurements/sec."""
    block = _prepared_block()
    start = time.perf_counter()
    for _ in range(max(RBER_ROUNDS // 10, 1)):
        block.record_read(0)
        errors = 0
        for page in range(GEOMETRY.pages_per_block):
            errors += block.page_error_count(page, hours(1), record_disturb=False)
    scalar = max(RBER_ROUNDS // 10, 1) / (time.perf_counter() - start)
    block = _prepared_block()
    start = time.perf_counter()
    for _ in range(RBER_ROUNDS):
        block.record_read(0)
        block.measure_block_rber(hours(1))
    batched = RBER_ROUNDS / (time.perf_counter() - start)
    return scalar, batched


def _program_rates() -> tuple[float, float]:
    """(per-wordline, one-pass) blocks programmed/sec."""
    block = FlashBlock(GEOMETRY, RngFactory(1))
    block.cycle_wear_to(PE_CYCLES)
    bits = GEOMETRY.bitlines_per_block
    start = time.perf_counter()
    for _ in range(PROGRAM_ROUNDS):
        block.erase()
        rng = block._rng
        for wordline in range(GEOMETRY.wordlines_per_block):
            lsb = rng.integers(0, 2, bits, dtype=np.uint8)
            msb = rng.integers(0, 2, bits, dtype=np.uint8)
            block.program_wordline_bits(wordline, lsb, msb)
    scalar = PROGRAM_ROUNDS / (time.perf_counter() - start)
    start = time.perf_counter()
    for _ in range(PROGRAM_ROUNDS):
        block.erase()
        block.program_random()
    batched = PROGRAM_ROUNDS / (time.perf_counter() - start)
    return scalar, batched


def _sweep():
    rows = []
    payload = {
        "smoke": SMOKE,
        "wordlines_per_block": GEOMETRY.wordlines_per_block,
        "bitlines_per_block": GEOMETRY.bitlines_per_block,
        "pe_cycles": PE_CYCLES,
    }
    speedups = {}
    for label, key, vpass in [
        ("decode pages/sec @ nominal Vpass", "decode_nominal", None),
        ("decode pages/sec @ relaxed Vpass", "decode_relaxed", RELAXED_VPASS),
    ]:
        scalar, batched = _decode_rates(512.0 if vpass is None else vpass)
        speedups[key] = batched / scalar
        rows.append([label, f"{scalar:,.0f}", f"{batched:,.0f}", f"{batched / scalar:.1f}x"])
        payload[f"{key}_pages_per_sec_scalar"] = round(scalar, 1)
        payload[f"{key}_pages_per_sec_batched"] = round(batched, 1)
        payload[f"{key}_speedup"] = round(batched / scalar, 2)
    scalar, batched = _rber_rates()
    speedups["rber"] = batched / scalar
    rows.append(
        ["block-RBER measurements/sec", f"{scalar:,.1f}", f"{batched:,.1f}", f"{batched / scalar:.1f}x"]
    )
    payload["block_rber_per_sec_scalar"] = round(scalar, 2)
    payload["block_rber_per_sec_batched"] = round(batched, 2)
    payload["block_rber_speedup"] = round(batched / scalar, 2)
    scalar, batched = _program_rates()
    speedups["program"] = batched / scalar
    rows.append(
        ["blocks programmed/sec", f"{scalar:,.1f}", f"{batched:,.1f}", f"{batched / scalar:.1f}x"]
    )
    payload["blocks_programmed_per_sec_scalar"] = round(scalar, 2)
    payload["blocks_programmed_per_sec_batched"] = round(batched, 2)
    payload["program_speedup"] = round(batched / scalar, 2)
    return rows, payload, speedups


def bench_physics_hotpath(benchmark, emit, emit_json):
    rows, payload, speedups = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["primitive", "scalar", "batched", "speedup"],
        rows,
        title=(
            f"Physics hot path ({GEOMETRY.wordlines_per_block}x"
            f"{GEOMETRY.bitlines_per_block} block, {PE_CYCLES} P/E, "
            f"{READS:,} prior reads{', SMOKE' if SMOKE else ''})"
        ),
    )
    emit("physics_hotpath", table)
    emit_json("physics_hotpath", payload)
    # The structural win — one shared cutoff mask instead of a full-block
    # scan per page — must stay an order of magnitude.  The pure-FLOPs
    # primitives (nominal-Vpass decode, RBER, programming) gain less at
    # characterization width, where numpy work dominates call overhead;
    # they are tracked in the JSON rather than gated.
    assert speedups["decode_relaxed"] >= (3.0 if SMOKE else 10.0), speedups
