"""A simulated MLC NAND flash chip: an array of blocks plus a clock.

The chip is the stand-in for the paper's device-under-test; the
:mod:`repro.analysis.characterization` drivers play the role of the FPGA
test platform, and :mod:`repro.controller` plays the role of the SSD
controller that would sit in front of a real chip.
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngFactory
from repro.units import VPASS_NOMINAL
from repro.flash.arena import BlockStore
from repro.flash.block import FlashBlock
from repro.flash.geometry import FlashGeometry
from repro.flash.sensing import DEFAULT_REFERENCES, ReadReferences


class FlashChip:
    """Array of flash blocks sharing a simulation clock.

    With *arena* (``"shm"`` or ``"mmap"``) the blocks' mutable state
    lives in one :class:`~repro.flash.arena.BlockStore` instead of
    per-block heap arrays — bit-identical physics, shareable across
    forked processes; call :meth:`close` when done to release it.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        seed: int = 0,
        arena: str | None = None,
    ):
        self.geometry = geometry if geometry is not None else FlashGeometry()
        self.rng_factory = RngFactory(seed)
        self.store = (
            BlockStore(self.geometry, backing=arena) if arena is not None else None
        )
        self.blocks = [
            FlashBlock(self.geometry, self.rng_factory, block_id=i, store=self.store)
            for i in range(self.geometry.blocks)
        ]
        #: simulation time in seconds.
        self.now = 0.0

    def close(self) -> None:
        """Release the block arena, if any (idempotent)."""
        if self.store is not None:
            self.store.close()

    def advance_time(self, seconds: float) -> None:
        """Advance the simulation clock (retention accrues implicitly)."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self.now += float(seconds)

    def block(self, index: int) -> FlashBlock:
        """Return block *index* (bounds-checked)."""
        return self.blocks[index]

    # Convenience wrappers mirroring a real chip's command set -----------

    def erase_block(self, index: int) -> None:
        self.blocks[index].erase(self.now)

    def program_block_random(self, index: int) -> None:
        self.blocks[index].program_random(self.now)

    def record_reads(
        self,
        block: int,
        wordlines: np.ndarray,
        counts: np.ndarray,
        vpass: float = VPASS_NOMINAL,
    ) -> None:
        """Account a batch of reads against *block* (no data returned).

        Chip-level mirror of :meth:`FlashBlock.record_reads` for bulk
        experiments: a whole campaign of reads is charged as disturb in
        one call instead of one :meth:`read` per operation.
        """
        self.blocks[block].record_reads(wordlines, counts, vpass)

    def read(
        self,
        block: int,
        page: int,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
    ) -> np.ndarray:
        """Read a page; disturbs the rest of the block as a side effect."""
        return self.blocks[block].read_page(page, self.now, references, vpass)

    def read_retry(
        self,
        block: int,
        wordline: int,
        reference_offsets: tuple[float, float, float],
        vpass: float = VPASS_NOMINAL,
    ) -> np.ndarray:
        """Full-state read with shifted references (the read-retry command
        the paper uses to measure threshold voltages)."""
        refs = DEFAULT_REFERENCES.shifted(*reference_offsets)
        return self.blocks[block].read_wordline_states(wordline, self.now, refs, vpass)

    def __repr__(self) -> str:
        return f"FlashChip(blocks={len(self.blocks)}, now={self.now:.0f}s)"
