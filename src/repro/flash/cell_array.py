"""Per-cell persistent state for one flash block.

A cell owns two kinds of state: *programmed* state (its true MLC state and
the threshold voltage it was programmed to) and *process* state (its
read-disturb susceptibility, fixed at manufacturing by process variation).
The susceptibility persists across erases — this persistence is what the
paper's RDR mechanism exploits.
"""

from __future__ import annotations

import numpy as np

from repro.flash.geometry import FlashGeometry
from repro.flash.state import MlcState, STATE_ORDER
from repro.physics.distributions import state_distribution
from repro.physics.program import apply_program_errors
from repro.physics.retention import sample_leak_factors
from repro.physics.susceptibility import SusceptibilityModel, DEFAULT_SUSCEPTIBILITY


class CellArray:
    """Dense per-cell arrays for a block of ``wordlines x bitlines`` cells.

    By default the four arrays live on the heap.  With *storage* — a
    :class:`~repro.flash.arena.BlockSlab` (or anything exposing
    ``true_states`` / ``v0`` / ``susceptibility`` / ``leak`` views of
    the right shape) — they are *views into a shared arena* instead:
    same dtypes, same values, same RNG draw order (susceptibility before
    leak), so an arena-backed array is bit-identical to a heap one.
    """

    def __init__(
        self,
        geometry: FlashGeometry,
        rng: np.random.Generator,
        susceptibility_model: SusceptibilityModel = DEFAULT_SUSCEPTIBILITY,
        storage=None,
    ):
        self.geometry = geometry
        shape = (geometry.wordlines_per_block, geometry.bitlines_per_block)
        if storage is None:
            #: true programmed MLC state of each cell.
            self.true_states = np.full(shape, int(MlcState.ER), dtype=np.int8)
            #: programmed threshold voltage of each cell (before retention and
            #: disturb, which are applied lazily by the block).
            self.v0 = np.zeros(shape, dtype=np.float32)
            #: per-cell disturb susceptibility; persists across erases.
            self.susceptibility = susceptibility_model.sample(
                rng, geometry.cells_per_block
            ).reshape(shape).astype(np.float32)
            #: per-cell retention leak factor (fast/slow leakers); persists too.
            self.leak = sample_leak_factors(rng, geometry.cells_per_block).reshape(
                shape
            ).astype(np.float32)
        else:
            self.true_states = storage.true_states
            self.true_states.fill(int(MlcState.ER))
            self.v0 = storage.v0
            self.v0.fill(0.0)
            self.susceptibility = storage.susceptibility
            self.susceptibility[...] = susceptibility_model.sample(
                rng, geometry.cells_per_block
            ).reshape(shape).astype(np.float32)
            self.leak = storage.leak
            self.leak[...] = sample_leak_factors(
                rng, geometry.cells_per_block
            ).reshape(shape).astype(np.float32)

    @classmethod
    def attach(cls, geometry: FlashGeometry, storage) -> "CellArray":
        """Wrap existing slab *storage* without initializing (or consuming
        any RNG) — the reconstruction path of a forked worker process
        attaching to a block another process already materialized."""
        self = cls.__new__(cls)
        self.geometry = geometry
        self.true_states = storage.true_states
        self.v0 = storage.v0
        self.susceptibility = storage.susceptibility
        self.leak = storage.leak
        return self

    def sample_voltages(
        self,
        states: np.ndarray,
        pe_cycles: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample programmed voltages for *states* at the given wear level."""
        states = np.asarray(states)
        out = np.empty(states.shape, dtype=np.float64)
        flat_states = states.reshape(-1)
        flat_out = out.reshape(-1)
        for state in STATE_ORDER:
            mask = flat_states == int(state)
            count = int(mask.sum())
            if count:
                dist = state_distribution(state, pe_cycles)
                flat_out[mask] = dist.sample(rng, count)
        return out

    def erase(self, pe_cycles: float, rng: np.random.Generator) -> None:
        """Reset every cell to the erased state (fresh ER voltages)."""
        self.true_states.fill(int(MlcState.ER))
        er = state_distribution(MlcState.ER, pe_cycles)
        self.v0[:] = er.sample(rng, self.true_states.size).reshape(self.v0.shape)

    def program_wordline(
        self,
        wordline: int,
        states: np.ndarray,
        pe_cycles: float,
        rng: np.random.Generator,
    ) -> None:
        """Program one wordline to *states* (ints in 0..3)."""
        states = np.asarray(states, dtype=np.int8)
        if states.shape != (self.geometry.bitlines_per_block,):
            raise ValueError(
                f"expected {self.geometry.bitlines_per_block} states, got {states.shape}"
            )
        if ((states < 0) | (states > 3)).any():
            raise ValueError("states must be in 0..3")
        self.true_states[wordline] = states
        # A small wear-dependent fraction mis-programs into an adjacent
        # state; ground truth stays the *intended* data.
        landed = apply_program_errors(states, pe_cycles, rng)
        self.v0[wordline] = self.sample_voltages(landed, pe_cycles, rng)

    def program_block(
        self,
        states: np.ndarray,
        pe_cycles: float,
        rng: np.random.Generator,
    ) -> None:
        """Program the whole block to *states* (``wordlines x bitlines``).

        One program-error draw and one voltage-sampling pass per state
        group cover every wordline, instead of a per-wordline loop.
        """
        states = np.asarray(states, dtype=np.int8)
        shape = (self.geometry.wordlines_per_block, self.geometry.bitlines_per_block)
        if states.shape != shape:
            raise ValueError(f"expected states of shape {shape}, got {states.shape}")
        if ((states < 0) | (states > 3)).any():
            raise ValueError("states must be in 0..3")
        self.true_states[:] = states
        landed = apply_program_errors(states, pe_cycles, rng)
        self.v0[:] = self.sample_voltages(landed, pe_cycles, rng)
