"""Shared-memory block arenas: cell state that worker processes can share.

The block-group executor's *process* tier
(:class:`repro.controller.executor.ProcessExecutor`) only pays off if a
worker can sense and decode a block without the cell arrays crossing the
process boundary.  This module provides that substrate: a
:class:`BlockStore` is one contiguous arena — a POSIX shared-memory
segment (``backing="shm"``) or a ``MAP_SHARED`` temporary file
(``backing="mmap"``) — holding one fixed-size *slab* per block.  A slab
carries every piece of mutable per-block device state:

- the :class:`~repro.flash.cell_array.CellArray` buffers (``v0``,
  ``susceptibility``, ``leak``, ``true_states``),
- the :class:`~repro.flash.block.FlashBlock` per-wordline bookkeeping
  (``program_time``, ``programmed``, ``exposure_targeted``,
  ``reads_targeted``),
- and the block's scalar meta slots (``meta_i``: P/E cycles, total
  reads, voltage epoch; ``meta_f``: total disturb exposure).

Every field is addressed by ``block_id`` alone (fixed
:class:`SlabLayout`), so a forked worker reconstructs views over any
block deterministically — no coordination, no pickling of cell state.
Python-level caches (the ``(now, voltage_epoch)`` voltage cache, RNG
generator objects) deliberately stay *outside* the slab: they are
per-process derivatives of slab state, coherent through the shared
voltage epoch.

The ``mmap`` backing adds the out-of-core tier: with a
``resident_limit``, least-recently-touched slabs are flushed to the
backing file and dropped from the resident set
(``msync`` + ``MADV_DONTNEED``), so a drive with thousands of blocks
runs under a bounded resident-set size.  Eviction is purely a residency
hint — views stay valid and the next access refaults the pages from the
file — so it cannot change a bit of any result.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import weakref
from collections import OrderedDict

from repro import obs
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import FlashGeometry

#: arena backings accepted by :class:`BlockStore` (and the backend's
#: ``arena=`` knob): a POSIX shared-memory segment or a MAP_SHARED
#: temporary file (the spillable, out-of-core tier).
ARENA_BACKINGS = ("shm", "mmap")

#: slab sizes are rounded up to this, so every slab starts page-aligned —
#: the alignment ``mmap.flush`` / ``madvise`` need to operate per slab.
_PAGE_BYTES = 4096

# Scalar meta slots within a slab (also used by non-arena FlashBlocks,
# which keep the same two small arrays on the heap).
META_PE_CYCLES = 0
META_TOTAL_READS = 1
META_VOLTAGE_EPOCH = 2
META_I_SLOTS = 3
METAF_TOTAL_EXPOSURE = 0
META_F_SLOTS = 1


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass(frozen=True)
class _FieldSpec:
    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(self.dtype.itemsize * int(np.prod(self.shape, dtype=np.int64)))


class SlabLayout:
    """Byte layout of one block's slab inside a :class:`BlockStore`.

    Purely a function of the geometry: field offsets are 8-byte aligned
    and the slab size is rounded up to a page, so any process that knows
    the geometry can address any field of any block without metadata
    exchange — the property the fork-inherited process workers rely on.
    """

    def __init__(self, geometry: FlashGeometry):
        wordlines = geometry.wordlines_per_block
        shape_2d = (wordlines, geometry.bitlines_per_block)
        fields = [
            ("v0", np.float32, shape_2d),
            ("susceptibility", np.float32, shape_2d),
            ("leak", np.float32, shape_2d),
            ("true_states", np.int8, shape_2d),
            ("program_time", np.float64, (wordlines,)),
            ("exposure_targeted", np.float64, (wordlines,)),
            ("reads_targeted", np.int64, (wordlines,)),
            ("programmed", np.bool_, (wordlines,)),
            ("meta_i", np.int64, (META_I_SLOTS,)),
            ("meta_f", np.float64, (META_F_SLOTS,)),
        ]
        self.fields: dict[str, _FieldSpec] = {}
        offset = 0
        for name, dtype, shape in fields:
            offset = _align8(offset)
            spec = _FieldSpec(name, np.dtype(dtype), shape, offset)
            self.fields[name] = spec
            offset += spec.nbytes
        #: bytes per block slab (page-aligned).
        self.slab_bytes = -(-offset // _PAGE_BYTES) * _PAGE_BYTES


class BlockSlab:
    """Numpy views over one block's slab (nothing is copied)."""

    __slots__ = (
        "block_id",
        "v0",
        "susceptibility",
        "leak",
        "true_states",
        "program_time",
        "exposure_targeted",
        "reads_targeted",
        "programmed",
        "meta_i",
        "meta_f",
    )

    def __init__(self, layout: SlabLayout, buffer, base: int, block_id: int):
        self.block_id = block_id
        for name, spec in layout.fields.items():
            view = np.frombuffer(
                buffer,
                dtype=spec.dtype,
                count=int(np.prod(spec.shape, dtype=np.int64)),
                offset=base + spec.offset,
            ).reshape(spec.shape)
            setattr(self, name, view)


class BlockStore:
    """One shared arena of per-block slabs, with an optional LRU spill.

    Parameters
    ----------
    geometry:
        Block geometry; together with *blocks* it fixes the
        :class:`SlabLayout` and the arena size.
    blocks:
        Number of slabs (defaults to ``geometry.blocks``).
    backing:
        ``"shm"`` — a ``multiprocessing.shared_memory`` segment (RAM-backed,
        not spillable); ``"mmap"`` — a ``MAP_SHARED`` temp file, the
        out-of-core tier.
    resident_limit:
        Only with ``backing="mmap"``: keep at most this many slabs
        resident; least-recently-touched slabs are flushed to the file
        and dropped from memory (views stay valid; access refaults).
    on_evict:
        Called with the evicted ``block_id`` after each spill — the
        backend uses it to drop that block's (heap-resident) voltage
        cache, which is what actually bounds the resident set.

    **Ownership.**  The creating process owns the backing resource:
    forked children inherit the mapping but :meth:`close` in a child
    never unlinks (guarded by PID), and a ``weakref.finalize`` backstop
    unlinks in the owner even if :meth:`close` is never called.
    """

    def __init__(
        self,
        geometry: FlashGeometry,
        blocks: int | None = None,
        backing: str = "shm",
        resident_limit: int | None = None,
        on_evict: Callable[[int], None] | None = None,
        dir: str | None = None,
    ):
        if backing not in ARENA_BACKINGS:
            raise ValueError(
                f"unknown arena backing {backing!r}; expected one of {ARENA_BACKINGS}"
            )
        self.geometry = geometry
        self.blocks = int(geometry.blocks if blocks is None else blocks)
        if self.blocks < 1:
            raise ValueError("arena needs at least one block")
        self.backing = backing
        self.layout = SlabLayout(geometry)
        self.nbytes = self.layout.slab_bytes * self.blocks
        self.on_evict = on_evict
        self.evictions = 0
        self._slabs: dict[int, BlockSlab] = {}
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._owner_pid = os.getpid()
        self._closed = False
        self._shm = None
        self._mmap = None
        self.path: str | None = None
        if backing == "shm":
            if resident_limit is not None:
                raise ValueError(
                    "resident_limit needs backing='mmap' (a shm segment's "
                    "pages *are* the data and cannot spill)"
                )
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(create=True, size=self.nbytes)
            self.name = self._shm.name
            self._buffer = self._shm.buf
            self._finalizer = weakref.finalize(
                self, _cleanup_shm, self._shm, self._owner_pid
            )
        else:
            if resident_limit is not None and resident_limit < 1:
                raise ValueError("resident_limit must be at least 1")
            fd, path = tempfile.mkstemp(
                prefix="repro-arena-", suffix=".bin", dir=dir
            )
            try:
                os.ftruncate(fd, self.nbytes)
                self._mmap = mmap.mmap(fd, self.nbytes, mmap.MAP_SHARED)
            finally:
                os.close(fd)
            self.path = path
            self.name = path
            self._buffer = self._mmap
            self._finalizer = weakref.finalize(
                self, _cleanup_mmap, self._mmap, path, self._owner_pid
            )
        self.resident_limit = resident_limit

    # ------------------------------------------------------------------
    # Slab access
    # ------------------------------------------------------------------

    def slab(self, block_id: int) -> BlockSlab:
        """Views over block *block_id*'s slab (cached; touches the LRU)."""
        slab = self._slabs.get(block_id)
        if slab is None:
            if not 0 <= block_id < self.blocks:
                raise IndexError(
                    f"block {block_id} outside arena of {self.blocks} blocks"
                )
            slab = BlockSlab(
                self.layout,
                self._buffer,
                block_id * self.layout.slab_bytes,
                block_id,
            )
            self._slabs[block_id] = slab
        self.touch(block_id)
        return slab

    def touch(self, block_id: int) -> None:
        """Mark *block_id* most-recently used; evict past the limit."""
        if self.resident_limit is None:
            return
        self._lru[block_id] = None
        self._lru.move_to_end(block_id)
        while len(self._lru) > self.resident_limit:
            victim, _ = self._lru.popitem(last=False)
            self._evict(victim)

    def _evict(self, block_id: int) -> None:
        """Write one slab back to the file and drop its resident pages.

        ``flush`` (msync) first, so the pages are clean before
        ``MADV_DONTNEED`` discards them — the next access refaults from
        the up-to-date file, bit-identical.  Slab offsets are
        page-aligned by construction.
        """
        offset = block_id * self.layout.slab_bytes
        self._mmap.flush(offset, self.layout.slab_bytes)
        if hasattr(mmap, "MADV_DONTNEED"):
            self._mmap.madvise(mmap.MADV_DONTNEED, offset, self.layout.slab_bytes)
        self.evictions += 1
        obs.counter("arena.evictions").inc()
        if self.on_evict is not None:
            self.on_evict(block_id)

    @property
    def resident_blocks(self) -> tuple[int, ...]:
        """Block ids currently resident (LRU order, oldest first).

        Only meaningful under an ``mmap`` backing with a
        ``resident_limit`` — a shm arena never spills.
        """
        if self.resident_limit is None:
            raise ValueError(
                "resident tracking needs backing='mmap' with a resident_limit"
            )
        return tuple(self._lru)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backing resource (idempotent).

        In the owning process this also unlinks the shm segment /
        deletes the backing file; forked children only drop their
        references.  Live numpy views may still pin the exported buffer
        — the mapping then persists until those views die, but the
        *name* is gone immediately, so nothing leaks in ``/dev/shm`` or
        the temp dir.
        """
        if self._closed:
            return
        self._closed = True
        self._slabs.clear()
        self._lru.clear()
        self._finalizer.detach()
        if self._shm is not None:
            _cleanup_shm(self._shm, self._owner_pid)
        else:
            _cleanup_mmap(self._mmap, self.path, self._owner_pid)

    def __repr__(self) -> str:
        return (
            f"BlockStore(backing={self.backing!r}, blocks={self.blocks}, "
            f"slab_bytes={self.layout.slab_bytes}, nbytes={self.nbytes})"
        )


def _cleanup_shm(shm, owner_pid: int) -> None:
    """Close (and, in the owner, unlink) a shm segment; never raises."""
    try:
        shm.close()
    except BufferError:
        # Live numpy views still export the buffer; the mapping stays
        # until they die, but the segment can be unlinked regardless.
        # Detach the instance's mmap/fd ourselves so SharedMemory's own
        # __del__ does not retry close() and print an ignored error.
        shm._mmap = None
        if getattr(shm, "_fd", -1) >= 0:
            os.close(shm._fd)
            shm._fd = -1
    if os.getpid() == owner_pid:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _cleanup_mmap(mm, path: str | None, owner_pid: int) -> None:
    """Close (and, in the owner, delete) a file-backed arena; never raises."""
    try:
        mm.close()
    except BufferError:
        pass
    if path is not None and os.getpid() == owner_pid:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
