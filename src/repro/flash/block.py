"""One flash block: the unit of erase, wear, and read disturb.

All cells of a block share bitlines, so *every* read to any page of the
block disturbs the cells of every other wordline.  The block tracks read
disturb as an accumulated, Vpass-weighted *exposure* per wordline and
materializes threshold voltages lazily (program voltage -> retention shift
-> disturb drift), which makes bulk experiments ("apply one million reads")
O(1) in bookkeeping and one vectorized pass at measurement time.
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngFactory
from repro.units import VPASS_NOMINAL
from repro.flash.arena import (
    BlockStore,
    META_F_SLOTS,
    META_I_SLOTS,
    META_PE_CYCLES,
    META_TOTAL_READS,
    META_VOLTAGE_EPOCH,
    METAF_TOTAL_EXPOSURE,
)
from repro.flash.cell_array import CellArray
from repro.flash.errors import page_bits_from_states
from repro.flash.geometry import FlashGeometry
from repro.flash.sensing import (
    DEFAULT_REFERENCES,
    ReadReferences,
    sense_page,
    sense_pages,
    sense_states,
)
from repro.flash.state import MlcState, states_from_bits
from repro.physics import constants
from repro.physics.read_disturb import DEFAULT_READ_DISTURB, vpass_exposure_weight
from repro.physics.retention import retained_voltage
from repro.physics.wear import read_disturb_damage, retention_damage

#: Above this Vpass no programmed cell can be cut off (program-verify bound
#: plus slack for disturb drift of high cells), so sensing skips the
#: expensive whole-block materialization.
_CUTOFF_CHECK_VPASS = 505.0


def _unique_sorted(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(values, return_inverse=True)``, cheap for sorted input.

    The backend feeds already-sorted page batches, where the groups fall
    out of one boundary scan; anything unsorted falls back to the real
    ``np.unique``.
    """
    if values.size <= 1:
        return values, np.zeros(values.size, dtype=np.int64)
    if (values[1:] < values[:-1]).any():
        return np.unique(values, return_inverse=True)
    keep = np.empty(values.size, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    inverse = np.empty(values.size, dtype=np.int64)
    inverse[0] = 0
    np.cumsum(keep[1:], out=inverse[1:])
    return values[keep], inverse


class FlashBlock:
    """A single simulated MLC NAND flash block."""

    def __init__(
        self,
        geometry: FlashGeometry,
        rng_factory: RngFactory,
        block_id: int = 0,
        store: BlockStore | None = None,
    ):
        self.geometry = geometry
        self.block_id = block_id
        self._rng = rng_factory.for_block(block_id).stream("cells")
        self.disturb_model = DEFAULT_READ_DISTURB

        if store is None:
            # Heap-backed: the two scalar meta arrays mirror the slab
            # layout so every counter below has one code path.
            self._meta_i = np.zeros(META_I_SLOTS, dtype=np.int64)
            self._meta_f = np.zeros(META_F_SLOTS, dtype=np.float64)
            #: simulation time at which each wordline was last programmed.
            self.program_time = np.zeros(
                geometry.wordlines_per_block, dtype=np.float64
            )
            #: whether each wordline holds programmed data (vs. erased).
            self.programmed = np.zeros(geometry.wordlines_per_block, dtype=bool)
            # Read-disturb accounting: a read targeting wordline w disturbs
            # all other wordlines, so exposure(w) = total - targeted(w).
            self._exposure_targeted = np.zeros(
                geometry.wordlines_per_block, dtype=np.float64
            )
            self.reads_targeted = np.zeros(
                geometry.wordlines_per_block, dtype=np.int64
            )
            self.cells = CellArray(geometry, self._rng)
        else:
            # Arena-backed: every mutable array is a view into the
            # block's slab, shared with any process mapping the arena.
            slab = store.slab(block_id)
            self._meta_i = slab.meta_i
            self._meta_i[:] = 0
            self._meta_f = slab.meta_f
            self._meta_f[:] = 0.0
            self.program_time = slab.program_time
            self.program_time[:] = 0.0
            self.programmed = slab.programmed
            self.programmed[:] = False
            self._exposure_targeted = slab.exposure_targeted
            self._exposure_targeted[:] = 0.0
            self.reads_targeted = slab.reads_targeted
            self.reads_targeted[:] = 0
            self.cells = CellArray(geometry, self._rng, storage=slab)

        # Dirty-epoch voltage cache: `voltage_epoch` counts every mutation
        # that can change a materialized threshold voltage (program, erase,
        # disturb recording).  `block_voltages` caches one full-block
        # materialization per (now, epoch) key, so any number of sensing
        # operations between mutations shares a single physics pass.  The
        # cache itself is per-process (plain heap arrays); the epoch lives
        # in the (possibly shared) meta slot, so caches in other processes
        # invalidate coherently.
        self._voltage_cache_key: tuple[float, int] | None = None
        self._voltage_cache: np.ndarray | None = None

    @classmethod
    def attach(
        cls,
        geometry: FlashGeometry,
        store: BlockStore,
        block_id: int,
    ) -> "FlashBlock":
        """Reconstruct a block over its existing arena slab, touching
        nothing.

        This is how a forked executor worker binds to a block the parent
        materialized *after* the fork: slab addressing is deterministic
        in ``block_id``, so no coordination is needed, and no state is
        initialized — the views expose whatever the owning process has
        written.  The attached block has a placeholder RNG (program
        tasks ship the authoritative generator state explicitly; read
        tasks consume no RNG at all).
        """
        self = cls.__new__(cls)
        self.geometry = geometry
        self.block_id = block_id
        self._rng = np.random.default_rng(0)  # placeholder; see docstring
        self.disturb_model = DEFAULT_READ_DISTURB
        slab = store.slab(block_id)
        self._meta_i = slab.meta_i
        self._meta_f = slab.meta_f
        self.program_time = slab.program_time
        self.programmed = slab.programmed
        self._exposure_targeted = slab.exposure_targeted
        self.reads_targeted = slab.reads_targeted
        self.cells = CellArray.attach(geometry, slab)
        self._voltage_cache_key = None
        self._voltage_cache = None
        return self

    # ------------------------------------------------------------------
    # Scalar meta state (slab slots when arena-backed)
    # ------------------------------------------------------------------

    @property
    def pe_cycles(self) -> int:
        """Program/erase cycles endured so far."""
        return int(self._meta_i[META_PE_CYCLES])

    @pe_cycles.setter
    def pe_cycles(self, value: int) -> None:
        self._meta_i[META_PE_CYCLES] = value

    @property
    def total_reads(self) -> int:
        """Total reads absorbed since the last erase."""
        return int(self._meta_i[META_TOTAL_READS])

    @total_reads.setter
    def total_reads(self, value: int) -> None:
        self._meta_i[META_TOTAL_READS] = value

    @property
    def _total_exposure(self) -> float:
        return float(self._meta_f[METAF_TOTAL_EXPOSURE])

    @_total_exposure.setter
    def _total_exposure(self, value: float) -> None:
        self._meta_f[METAF_TOTAL_EXPOSURE] = value

    # ------------------------------------------------------------------
    # Voltage-cache epoch
    # ------------------------------------------------------------------

    @property
    def voltage_epoch(self) -> int:
        """Monotone counter of voltage-affecting mutations.

        Bumped by every program, erase, and disturb-recording operation;
        :meth:`block_voltages` reuses a materialization only while the
        epoch (and requested time) are unchanged.  Arena-backed blocks
        keep the epoch in the shared slab, so a mutation in one process
        invalidates every process's cache.
        """
        return int(self._meta_i[META_VOLTAGE_EPOCH])

    def invalidate_voltage_cache(self) -> None:
        """Bump the epoch after an out-of-band mutation.

        All :class:`FlashBlock` methods bump the epoch themselves; call
        this only after mutating cell state directly (e.g. swapping
        :attr:`disturb_model` or editing :attr:`cells` arrays in a test).
        """
        self._meta_i[META_VOLTAGE_EPOCH] += 1
        self._voltage_cache_key = None
        self._voltage_cache = None

    # ------------------------------------------------------------------
    # Lifecycle operations
    # ------------------------------------------------------------------

    def erase(self, now: float = 0.0) -> None:
        """Erase the block; counts one P/E cycle and clears disturb history."""
        self.pe_cycles += 1
        self.cells.erase(self.pe_cycles, self._rng)
        self.programmed[:] = False
        self.program_time[:] = now
        self._total_exposure = 0.0
        self._exposure_targeted[:] = 0.0
        self.total_reads = 0
        self.reads_targeted[:] = 0
        self.invalidate_voltage_cache()

    def cycle_wear_to(self, pe_cycles: int, now: float = 0.0) -> None:
        """Fast-forward wear to *pe_cycles*, like the paper's wear-out loop.

        The paper ages blocks by repeated program/erase with pseudo-random
        data; simulating each cycle adds nothing (wear enters only through
        the damage factors), so we jump the counter and erase once.
        """
        if pe_cycles < self.pe_cycles:
            raise ValueError("wear cannot decrease")
        self.pe_cycles = int(pe_cycles) - 1
        self.erase(now)

    def program_wordline_bits(
        self,
        wordline: int,
        lsb_bits: np.ndarray,
        msb_bits: np.ndarray,
        now: float = 0.0,
    ) -> None:
        """Program both pages of a wordline with explicit bit arrays."""
        if self.programmed[wordline]:
            raise RuntimeError(
                f"wordline {wordline} already programmed; erase the block first"
            )
        states = states_from_bits(lsb_bits, msb_bits)
        self.cells.program_wordline(wordline, states, self.pe_cycles, self._rng)
        self.programmed[wordline] = True
        self.program_time[wordline] = now
        self.invalidate_voltage_cache()

    def program_block_bits(
        self,
        lsb_bits: np.ndarray,
        msb_bits: np.ndarray,
        now: float = 0.0,
    ) -> None:
        """Program every wordline at once with explicit ``(wordlines,
        bitlines)`` bit arrays: one vectorized sampling pass per state
        group instead of one per (wordline, state)."""
        if self.programmed.any():
            raise RuntimeError(
                "block has programmed wordlines; erase it before a full-block program"
            )
        states = states_from_bits(lsb_bits, msb_bits)
        self.cells.program_block(states, self.pe_cycles, self._rng)
        self.programmed[:] = True
        self.program_time[:] = now
        self.invalidate_voltage_cache()

    def program_random(self, now: float = 0.0, rng: np.random.Generator | None = None) -> None:
        """Program every wordline with pseudo-random data (paper's workload
        for characterization experiments), vectorized over the block."""
        rng = rng if rng is not None else self._rng
        shape = (self.geometry.wordlines_per_block, self.geometry.bitlines_per_block)
        lsb = rng.integers(0, 2, shape, dtype=np.uint8)
        msb = rng.integers(0, 2, shape, dtype=np.uint8)
        self.program_block_bits(lsb, msb, now)

    # ------------------------------------------------------------------
    # Read disturb accounting
    # ------------------------------------------------------------------

    def disturb_exposure(self, wordline: int | None = None) -> np.ndarray | float:
        """Vpass-weighted disturb exposure received by a wordline (or all)."""
        if wordline is None:
            return self._total_exposure - self._exposure_targeted
        return self._total_exposure - float(self._exposure_targeted[wordline])

    def record_read(self, wordline: int, vpass: float = VPASS_NOMINAL, count: int = 1) -> None:
        """Account for *count* reads targeting *wordline* at *vpass*."""
        if count < 0:
            raise ValueError("read count cannot be negative")
        weight = float(vpass_exposure_weight(vpass)) * count
        self._total_exposure += weight
        self._exposure_targeted[wordline] += weight
        self.total_reads += count
        self.reads_targeted[wordline] += count
        self._meta_i[META_VOLTAGE_EPOCH] += 1

    def record_reads(
        self,
        wordlines: np.ndarray,
        counts: np.ndarray,
        vpass: float = VPASS_NOMINAL,
    ) -> None:
        """Batched :meth:`record_read`: *counts[i]* reads target
        *wordlines[i]*, all at *vpass*.  One call accounts a whole
        maintenance window of reads in O(unique wordlines)."""
        wordlines = np.asarray(wordlines, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if wordlines.shape != counts.shape:
            raise ValueError("wordlines and counts must have the same shape")
        if counts.size == 0:
            return
        if (counts < 0).any():
            raise ValueError("read count cannot be negative")
        weights = float(vpass_exposure_weight(vpass)) * counts.astype(np.float64)
        self._total_exposure += float(weights.sum())
        np.add.at(self._exposure_targeted, wordlines, weights)
        self.total_reads += int(counts.sum())
        np.add.at(self.reads_targeted, wordlines, counts)
        self._meta_i[META_VOLTAGE_EPOCH] += 1

    def record_retry_sweep(
        self,
        wordline: int,
        count: int,
        vpass: float = VPASS_NOMINAL,
    ) -> None:
        """Charge the disturb of a whole *count*-step recording read-retry
        sweep of *wordline* in one update.

        A recording sweep (RDR's ΔVth measurement) historically looped
        :meth:`threshold_read` per retry step, each step paying a fresh
        materialization.  But every step of the sweep targets the *same*
        wordline, and a read targeting wordline *w* adds the same weight
        to both the block total and *w*'s targeted exposure — *w*'s own
        exposure (``total - targeted[w]``) is invariant across the sweep.
        So the sensing can collapse to one materialization
        (:meth:`threshold_sweep_counts`) and the disturb bookkeeping to
        this single batched update.

        **Bit-identity.**  The exposure scalars accumulate by replaying
        the per-step loop's float additions (one rounded add per step —
        O(count) scalar adds, no materialization, no sensing), so the
        block's end state is bit-for-bit the state the
        :meth:`threshold_read` loop leaves behind; a closed-form
        ``weight * count`` add could drift by an ulp once the exposure
        carries fractional Vpass weights.  Equivalence suite:
        ``tests/analysis/test_histograms.py`` and
        ``tests/core/test_rdr.py``.
        """
        if count < 0:
            raise ValueError("read count cannot be negative")
        if count == 0:
            return
        weight = float(vpass_exposure_weight(vpass))
        total = self._total_exposure
        targeted = float(self._exposure_targeted[wordline])
        for _ in range(count):
            total += weight
            targeted += weight
        self._total_exposure = total
        self._exposure_targeted[wordline] = targeted
        self.total_reads += count
        self.reads_targeted[wordline] += count
        self._meta_i[META_VOLTAGE_EPOCH] += 1

    def apply_read_disturb(
        self,
        reads: int,
        vpass: float = VPASS_NOMINAL,
        target_wordline: int | None = None,
    ) -> None:
        """Bulk-apply *reads* read operations.

        With ``target_wordline`` the reads all hit that wordline (its own
        cells are then *not* disturbed, as in the paper's setup where the
        measured wordline is read and its neighbors absorb the disturb --
        or vice versa).  Without it the reads spread uniformly over
        wordlines.
        """
        if reads < 0:
            raise ValueError("read count cannot be negative")
        if target_wordline is not None:
            self.record_read(target_wordline, vpass, reads)
            return
        weight = float(vpass_exposure_weight(vpass)) * reads
        self._total_exposure += weight
        self._exposure_targeted += weight / self.geometry.wordlines_per_block
        self.total_reads += reads
        self._meta_i[META_VOLTAGE_EPOCH] += 1
        # Integer bookkeeping: spread as evenly as possible, handing the
        # remainder to the lowest wordlines so reads_targeted.sum() always
        # equals total_reads.
        per, remainder = divmod(reads, self.geometry.wordlines_per_block)
        self.reads_targeted += per
        if remainder:
            self.reads_targeted[:remainder] += 1

    # ------------------------------------------------------------------
    # Voltage materialization and sensing
    # ------------------------------------------------------------------

    def current_voltages(self, now: float, wordlines: np.ndarray | slice | None = None) -> np.ndarray:
        """Materialize current threshold voltages: program value, then
        retention loss, then read-disturb drift (see physics modules)."""
        if wordlines is None:
            wordlines = slice(None)
        v0 = self.cells.v0[wordlines].astype(np.float64)
        ages = np.maximum(now - self.program_time[wordlines], 0.0)
        leak = self.cells.leak[wordlines].astype(np.float64)
        v_ret = retained_voltage(v0, ages[..., None], self.pe_cycles, leak=leak)
        exposure = (self._total_exposure - self._exposure_targeted[wordlines])[..., None]
        susceptibility = self.cells.susceptibility[wordlines].astype(np.float64)
        return self.disturb_model.drifted_voltage(
            v_ret, exposure, susceptibility, self.pe_cycles
        )

    def _materialize_rows(self, wordlines: np.ndarray | slice, now: float) -> np.ndarray:
        """Fused, allocation-lean :meth:`current_voltages`.

        Performs the exact elementwise operation sequence of the composed
        physics chain (same grouping of every multiply, so the results
        are bit-identical — the equivalence suite asserts this) with
        in-place ufuncs over four buffers.  This is the kernel behind the
        hot sensing paths; :meth:`current_voltages` stays the readable
        reference composition.
        """
        cells = self.cells
        v0 = cells.v0[wordlines].astype(np.float64)
        work = cells.leak[wordlines].astype(np.float64)
        scratch = cells.susceptibility[wordlines].astype(np.float64)
        pe = self.pe_cycles
        # Retention: vr = max(v0 - leak*k*max(v0 - floor, 0), min(v0, floor)).
        k = np.maximum(now - self.program_time[wordlines], 0.0)[..., None]
        k /= constants.T0_RET_SECONDS
        np.log1p(k, out=k)
        k *= constants.R_RET * float(retention_damage(pe))
        k /= 512.0
        charge = v0 - constants.RET_CHARGE_FLOOR
        np.maximum(charge, 0.0, out=charge)
        np.negative(work, out=work)
        work *= k
        work *= charge
        work += v0
        np.minimum(v0, constants.RET_CHARGE_FLOOR, out=charge)
        np.maximum(work, charge, out=work)
        # Disturb drift: V = log(exp(k_v*vr) + k_v*(A*susc*damage)*E) / k_v.
        model = self.disturb_model
        scratch *= model.amplitude
        scratch *= float(read_disturb_damage(pe))
        scratch *= model.k_v
        scratch *= (self._total_exposure - self._exposure_targeted[wordlines])[..., None]
        work *= model.k_v
        np.exp(work, out=work)
        work += scratch
        np.log(work, out=work)
        work /= model.k_v
        return work

    def block_voltages(self, now: float) -> np.ndarray:
        """Full-block materialization, cached per ``(now, voltage_epoch)``.

        The returned ``(wordlines, bitlines)`` array is shared by every
        sensing call until the next voltage-affecting mutation, so it is
        marked read-only — writing to it raises instead of silently
        corrupting later reads.

        **Thread confinement.**  A block (cache included) belongs to at
        most one executor task at a time — the block-group executor's
        task-purity contract (:mod:`repro.controller.executor`) — so no
        locking is needed; materialization stays a per-block,
        single-writer affair.  Defensively, the fresh materialization is
        fully built (and frozen) in locals before the two cache fields
        are published, cache array first, so a mid-publication observer
        can only ever recompute, never sense a half-written buffer.
        """
        key = (float(now), int(self._meta_i[META_VOLTAGE_EPOCH]))
        if self._voltage_cache is None or self._voltage_cache_key != key:
            cache = self._materialize_rows(slice(None), now)
            cache.flags.writeable = False
            self._voltage_cache = cache
            self._voltage_cache_key = key
        return self._voltage_cache

    def _cached_voltages(self, now: float) -> np.ndarray | None:
        """The cached full-block materialization if warm for *now*."""
        key = (float(now), int(self._meta_i[META_VOLTAGE_EPOCH]))
        if self._voltage_cache is not None and self._voltage_cache_key == key:
            return self._voltage_cache
        return None

    def _wordline_voltages(self, wordlines: np.ndarray, now: float) -> np.ndarray:
        """Voltages of the given wordlines, through the cache when warm.

        A cold cache materializes only the requested rows (a full-block
        pass would waste work when the caller needs a few wordlines and no
        cutoff check); full-block requests warm the cache for later reads.
        """
        cached = self._cached_voltages(now)
        if cached is not None:
            return cached[wordlines]
        if wordlines.size >= self.geometry.wordlines_per_block:
            return self.block_voltages(now)[wordlines]
        return self._materialize_rows(wordlines, now)

    def _cutoff_mask(self, wordline: int, now: float, vpass: float) -> np.ndarray | None:
        """Bitlines cut off when reading *wordline* at *vpass* (or None)."""
        if vpass >= _CUTOFF_CHECK_VPASS:
            return None
        cached = self._cached_voltages(now)
        if cached is not None:
            above = cached > vpass
            return (above.sum(axis=0) - above[wordline]) > 0
        others = np.arange(self.geometry.wordlines_per_block) != wordline
        voltages = self.current_voltages(now, others)
        return (voltages > vpass).any(axis=0)

    def read_page(
        self,
        page: int,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> np.ndarray:
        """Read one page; returns its bit array and disturbs the block."""
        wordline, is_msb = self.geometry.page_to_wordline(page)
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self._wordline_voltages(np.array([wordline]), now)[0]
        bits = sense_page(voltages, is_msb, references, cutoff)
        if record_disturb:
            self.record_read(wordline, vpass)
        return bits

    def read_pages(
        self,
        pages: np.ndarray,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = False,
    ) -> np.ndarray:
        """Batched :meth:`read_page`: sense every page of *pages* against
        one materialization of the block.

        Returns the ``(len(pages), bitlines)`` bit matrix.

        **Bit-identity.**  All pages are sensed at the entry exposure —
        bit-identical to a per-page loop with ``record_disturb=False``
        (the equivalence suite in ``tests/flash/test_batched_sensing.py``
        pins this); with recording on, the disturb of the whole batch is
        charged *after* sensing (one :meth:`record_reads` call), matching
        the controller's flush-granular accounting rather than a per-op
        interleave.

        **Cache precondition.**  Sensing reads the ``(now,
        voltage_epoch)``-keyed cache behind :meth:`block_voltages`; every
        mutation through this class bumps the epoch, but out-of-band
        edits to :attr:`cells` or :attr:`disturb_model` must call
        :meth:`invalidate_voltage_cache` first or this batch senses stale
        voltages.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size and (
            pages.min() < 0 or pages.max() >= self.geometry.pages_per_block
        ):
            raise IndexError("page out of range in batched read")
        wordlines = pages // 2
        is_msb = pages % 2 == 1
        if vpass < _CUTOFF_CHECK_VPASS:
            # One shared cutoff pass for the whole batch: count cells above
            # vpass per bitline once, then exclude each page's own wordline.
            full = self.block_voltages(now)
            above = full > vpass
            above_counts = above.sum(axis=0)
            cutoff = (above_counts[None, :] - above[wordlines]) > 0
            voltages = full[wordlines]
        else:
            cutoff = None
            unique_wordlines, inverse = _unique_sorted(wordlines)
            voltages = self._wordline_voltages(unique_wordlines, now)[inverse]
        bits = sense_pages(voltages, is_msb, references, cutoff)
        if record_disturb and pages.size:
            self.record_reads(wordlines, np.ones(wordlines.size, dtype=np.int64), vpass)
        return bits

    def threshold_read(
        self,
        wordline: int,
        threshold: float,
        now: float = 0.0,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> np.ndarray:
        """Single-reference retry read: True where the cell conducts
        (V <= threshold).  This is the primitive the paper's read-retry
        threshold-voltage measurement is built from."""
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self._wordline_voltages(np.array([wordline]), now)[0]
        conducting = voltages <= threshold
        if cutoff is not None:
            conducting &= ~cutoff
        if record_disturb:
            self.record_read(wordline, vpass)
        return conducting

    def threshold_sweep_counts(
        self,
        wordline: int,
        thresholds: np.ndarray,
        now: float = 0.0,
        vpass: float = VPASS_NOMINAL,
    ) -> np.ndarray:
        """Per-cell count of sweep *thresholds* the cell conducts at,
        without disturbing the block.

        **Bit-identity.**  Equal to summing non-recording
        :meth:`threshold_read` over the sweep, but the wordline is
        materialized once and the counts fall out of one
        ``searchsorted`` (a cell at voltage V conducts at every
        threshold >= V, so its count is order-independent).  Only valid
        for *non-disturbing* sweeps: a recording read-retry sweep
        physically shifts the block between steps and must stay an
        ordered per-step loop (as RDR's sweeps do).

        **Cache precondition.**  Same as :meth:`read_pages`: warm
        ``(now, voltage_epoch)`` caches are reused, so out-of-band cell
        mutations require :meth:`invalidate_voltage_cache`.
        """
        thresholds = np.sort(np.asarray(thresholds, dtype=np.float64))
        if thresholds.size == 0:
            raise ValueError("sweep needs at least one threshold")
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self._wordline_voltages(np.array([wordline]), now)[0]
        counts = thresholds.size - np.searchsorted(thresholds, voltages, side="left")
        if cutoff is not None:
            counts[cutoff] = 0
        return counts.astype(np.int64)

    def read_wordline_states(
        self,
        wordline: int,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> np.ndarray:
        """Full-state sense of one wordline (used by read-retry sweeps)."""
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self._wordline_voltages(np.array([wordline]), now)[0]
        states = sense_states(voltages, references, cutoff)
        if record_disturb:
            self.record_read(wordline, vpass)
        return states

    # ------------------------------------------------------------------
    # Ground truth helpers (simulator-only; a real chip cannot do this)
    # ------------------------------------------------------------------

    def expected_page_bits(self, page: int) -> np.ndarray:
        """Ground-truth bits of *page* as programmed."""
        wordline, is_msb = self.geometry.page_to_wordline(page)
        return page_bits_from_states(self.cells.true_states[wordline], is_msb)

    def expected_pages_bits(self, pages: np.ndarray) -> np.ndarray:
        """Batched :meth:`expected_page_bits`: the ``(len(pages),
        bitlines)`` ground-truth bit matrix."""
        pages = np.asarray(pages, dtype=np.int64)
        states = self.cells.true_states[pages // 2]
        lsb = page_bits_from_states(states, False)
        msb = page_bits_from_states(states, True)
        return np.where((pages % 2 == 1)[:, None], msb, lsb)

    def page_error_count(
        self,
        page: int,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> int:
        """Bit errors a read of *page* would return right now."""
        bits = self.read_page(page, now, references, vpass, record_disturb)
        return int((bits != self.expected_page_bits(page)).sum())

    def page_error_counts(
        self,
        pages: np.ndarray,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = False,
    ) -> np.ndarray:
        """Batched :meth:`page_error_count`: raw bit errors per page.

        Sensing and the ground-truth comparison are fused per unique
        wordline (both page kinds at once), so a whole block's error
        profile costs one materialization plus a handful of vectorized
        passes.

        **Bit-identity.**  Counts equal a non-recording scalar
        :meth:`page_error_count` loop exactly (equivalence suite:
        ``tests/flash/test_batched_sensing.py``, including relaxed-Vpass
        cutoff cases); as in :meth:`read_pages`, recording (when
        enabled) charges the batch's disturb after sensing.

        **Cache precondition.**  Same ``(now, voltage_epoch)`` cache
        contract as :meth:`read_pages`: call
        :meth:`invalidate_voltage_cache` after any out-of-band mutation.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return np.zeros(0, dtype=np.int64)
        wordlines, inverse, errors_lsb, errors_msb = self._page_error_flags(
            pages, now, references, vpass
        )
        per_wordline = np.empty((errors_lsb.shape[0], 2), dtype=np.int64)
        per_wordline[:, 0] = np.count_nonzero(errors_lsb, axis=1)
        per_wordline[:, 1] = np.count_nonzero(errors_msb, axis=1)
        counts = per_wordline[inverse, pages % 2]
        if record_disturb:
            self.record_reads(wordlines, np.ones(wordlines.size, dtype=np.int64), vpass)
        return counts

    def page_error_masks(
        self,
        pages: np.ndarray,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = False,
    ) -> np.ndarray:
        """Batched raw bit-error *positions*: ``(pages, bitlines)`` bool.

        The position-level companion of :meth:`page_error_counts` for
        decoders that need more than a count (the RS engine decodes the
        mask as a received word).  Both methods share one fused
        sense-and-compare kernel, so
        ``page_error_masks(...).sum(axis=1) == page_error_counts(...)``
        bit-for-bit, under the same disturb-recording and ``(now,
        voltage_epoch)`` cache contract.
        """
        pages = np.asarray(pages, dtype=np.int64)
        if pages.size == 0:
            return np.zeros((0, self.geometry.bitlines_per_block), dtype=bool)
        wordlines, inverse, errors_lsb, errors_msb = self._page_error_flags(
            pages, now, references, vpass
        )
        masks = np.empty((pages.size, self.geometry.bitlines_per_block), dtype=bool)
        lsb = pages % 2 == 0
        masks[lsb] = errors_lsb[inverse[lsb]]
        masks[~lsb] = errors_msb[inverse[~lsb]]
        if record_disturb:
            self.record_reads(wordlines, np.ones(wordlines.size, dtype=np.int64), vpass)
        return masks

    def _page_error_flags(
        self,
        pages: np.ndarray,
        now: float,
        references: ReadReferences,
        vpass: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused sense-and-compare shared by the count and mask paths.

        Returns ``(wordlines, inverse, errors_lsb, errors_msb)`` — the
        per-unique-wordline boolean error matrices for both page kinds,
        one voltage materialization total.
        """
        if pages.min() < 0 or pages.max() >= self.geometry.pages_per_block:
            raise IndexError("page out of range in batched error count")
        wordlines = pages // 2
        unique_wordlines, inverse = _unique_sorted(wordlines)
        if vpass < _CUTOFF_CHECK_VPASS:
            full = self.block_voltages(now)
            above = full > vpass
            above_counts = above.sum(axis=0)
            cutoff = (above_counts[None, :] - above[unique_wordlines]) > 0
            voltages = full[unique_wordlines]
        else:
            cutoff = None
            voltages = self._wordline_voltages(unique_wordlines, now)
        states = self.cells.true_states[unique_wordlines]
        # LSB page: sensed bit is V <= Vb (cut-off senses 0, erring wherever
        # the true bit is 1); MSB page: V <= Va or V > Vc (cut-off senses 1).
        expected_lsb = page_bits_from_states(states, False)
        errors_lsb = voltages <= references.vb
        np.not_equal(errors_lsb, expected_lsb, out=errors_lsb)
        expected_msb = page_bits_from_states(states, True)
        errors_msb = voltages <= references.va
        errors_msb |= voltages > references.vc
        np.not_equal(errors_msb, expected_msb, out=errors_msb)
        if cutoff is not None:
            # A cut-off bitline's sensed bit is fixed (LSB 0 / MSB 1), so
            # its error flag is just the expected bit (or its complement).
            np.copyto(errors_lsb, expected_lsb.astype(bool), where=cutoff)
            np.copyto(errors_msb, expected_msb == 0, where=cutoff)
        return wordlines, inverse, errors_lsb, errors_msb

    def measure_block_rber(
        self,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = False,
    ) -> float:
        """RBER over all programmed pages (measurement reads are optionally
        excluded from disturb accounting, like a characterization pass).

        Runs on :meth:`page_error_counts`, so the whole block is measured
        from a single voltage materialization.  With ``record_disturb``
        on, every page is sensed at the entry exposure and the
        measurement's disturb is charged afterwards in one batch — unlike
        the historical per-page loop, where each measurement read
        disturbed the pages sensed after it.
        """
        programmed = np.flatnonzero(self.programmed)
        if programmed.size == 0:
            raise RuntimeError("block has no programmed pages to measure")
        pages = np.repeat(2 * programmed, 2)
        pages[1::2] += 1
        errors = self.page_error_counts(pages, now, references, vpass, record_disturb)
        return float(errors.sum()) / (pages.size * self.geometry.bitlines_per_block)

    def true_states_of_wordline(self, wordline: int) -> np.ndarray:
        """Programmed states of one wordline (ground truth)."""
        return self.cells.true_states[wordline].copy()

    def __repr__(self) -> str:
        return (
            f"FlashBlock(id={self.block_id}, pe={self.pe_cycles}, "
            f"reads={self.total_reads}, programmed={int(self.programmed.sum())}/"
            f"{self.geometry.wordlines_per_block})"
        )
