"""One flash block: the unit of erase, wear, and read disturb.

All cells of a block share bitlines, so *every* read to any page of the
block disturbs the cells of every other wordline.  The block tracks read
disturb as an accumulated, Vpass-weighted *exposure* per wordline and
materializes threshold voltages lazily (program voltage -> retention shift
-> disturb drift), which makes bulk experiments ("apply one million reads")
O(1) in bookkeeping and one vectorized pass at measurement time.
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngFactory
from repro.units import VPASS_NOMINAL
from repro.flash.cell_array import CellArray
from repro.flash.errors import page_bits_from_states
from repro.flash.geometry import FlashGeometry
from repro.flash.sensing import DEFAULT_REFERENCES, ReadReferences, sense_page, sense_states
from repro.flash.state import MlcState, states_from_bits
from repro.physics.read_disturb import DEFAULT_READ_DISTURB, vpass_exposure_weight
from repro.physics.retention import retained_voltage

#: Above this Vpass no programmed cell can be cut off (program-verify bound
#: plus slack for disturb drift of high cells), so sensing skips the
#: expensive whole-block materialization.
_CUTOFF_CHECK_VPASS = 505.0


class FlashBlock:
    """A single simulated MLC NAND flash block."""

    def __init__(
        self,
        geometry: FlashGeometry,
        rng_factory: RngFactory,
        block_id: int = 0,
    ):
        self.geometry = geometry
        self.block_id = block_id
        self._rng = rng_factory.child(f"block-{block_id}").stream("cells")
        self.cells = CellArray(geometry, self._rng)
        self.disturb_model = DEFAULT_READ_DISTURB

        #: program/erase cycles endured so far.
        self.pe_cycles = 0
        #: simulation time at which each wordline was last programmed.
        self.program_time = np.zeros(geometry.wordlines_per_block, dtype=np.float64)
        #: whether each wordline holds programmed data (vs. erased).
        self.programmed = np.zeros(geometry.wordlines_per_block, dtype=bool)

        # Read-disturb accounting: a read targeting wordline w disturbs all
        # other wordlines, so exposure(w) = total - targeted(w).
        self._total_exposure = 0.0
        self._exposure_targeted = np.zeros(geometry.wordlines_per_block, dtype=np.float64)
        self.total_reads = 0
        self.reads_targeted = np.zeros(geometry.wordlines_per_block, dtype=np.int64)

    # ------------------------------------------------------------------
    # Lifecycle operations
    # ------------------------------------------------------------------

    def erase(self, now: float = 0.0) -> None:
        """Erase the block; counts one P/E cycle and clears disturb history."""
        self.pe_cycles += 1
        self.cells.erase(self.pe_cycles, self._rng)
        self.programmed[:] = False
        self.program_time[:] = now
        self._total_exposure = 0.0
        self._exposure_targeted[:] = 0.0
        self.total_reads = 0
        self.reads_targeted[:] = 0

    def cycle_wear_to(self, pe_cycles: int, now: float = 0.0) -> None:
        """Fast-forward wear to *pe_cycles*, like the paper's wear-out loop.

        The paper ages blocks by repeated program/erase with pseudo-random
        data; simulating each cycle adds nothing (wear enters only through
        the damage factors), so we jump the counter and erase once.
        """
        if pe_cycles < self.pe_cycles:
            raise ValueError("wear cannot decrease")
        self.pe_cycles = int(pe_cycles) - 1
        self.erase(now)

    def program_wordline_bits(
        self,
        wordline: int,
        lsb_bits: np.ndarray,
        msb_bits: np.ndarray,
        now: float = 0.0,
    ) -> None:
        """Program both pages of a wordline with explicit bit arrays."""
        if self.programmed[wordline]:
            raise RuntimeError(
                f"wordline {wordline} already programmed; erase the block first"
            )
        states = states_from_bits(lsb_bits, msb_bits)
        self.cells.program_wordline(wordline, states, self.pe_cycles, self._rng)
        self.programmed[wordline] = True
        self.program_time[wordline] = now

    def program_random(self, now: float = 0.0, rng: np.random.Generator | None = None) -> None:
        """Program every wordline with pseudo-random data (paper's workload
        for characterization experiments)."""
        rng = rng if rng is not None else self._rng
        bits = self.geometry.bitlines_per_block
        for wordline in range(self.geometry.wordlines_per_block):
            lsb = rng.integers(0, 2, bits, dtype=np.uint8)
            msb = rng.integers(0, 2, bits, dtype=np.uint8)
            self.program_wordline_bits(wordline, lsb, msb, now)

    # ------------------------------------------------------------------
    # Read disturb accounting
    # ------------------------------------------------------------------

    def disturb_exposure(self, wordline: int | None = None) -> np.ndarray | float:
        """Vpass-weighted disturb exposure received by a wordline (or all)."""
        if wordline is None:
            return self._total_exposure - self._exposure_targeted
        return self._total_exposure - float(self._exposure_targeted[wordline])

    def record_read(self, wordline: int, vpass: float = VPASS_NOMINAL, count: int = 1) -> None:
        """Account for *count* reads targeting *wordline* at *vpass*."""
        if count < 0:
            raise ValueError("read count cannot be negative")
        weight = float(vpass_exposure_weight(vpass)) * count
        self._total_exposure += weight
        self._exposure_targeted[wordline] += weight
        self.total_reads += count
        self.reads_targeted[wordline] += count

    def record_reads(
        self,
        wordlines: np.ndarray,
        counts: np.ndarray,
        vpass: float = VPASS_NOMINAL,
    ) -> None:
        """Batched :meth:`record_read`: *counts[i]* reads target
        *wordlines[i]*, all at *vpass*.  One call accounts a whole
        maintenance window of reads in O(unique wordlines)."""
        wordlines = np.asarray(wordlines, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if wordlines.shape != counts.shape:
            raise ValueError("wordlines and counts must have the same shape")
        if counts.size == 0:
            return
        if (counts < 0).any():
            raise ValueError("read count cannot be negative")
        weights = float(vpass_exposure_weight(vpass)) * counts.astype(np.float64)
        self._total_exposure += float(weights.sum())
        np.add.at(self._exposure_targeted, wordlines, weights)
        self.total_reads += int(counts.sum())
        np.add.at(self.reads_targeted, wordlines, counts)

    def apply_read_disturb(
        self,
        reads: int,
        vpass: float = VPASS_NOMINAL,
        target_wordline: int | None = None,
    ) -> None:
        """Bulk-apply *reads* read operations.

        With ``target_wordline`` the reads all hit that wordline (its own
        cells are then *not* disturbed, as in the paper's setup where the
        measured wordline is read and its neighbors absorb the disturb --
        or vice versa).  Without it the reads spread uniformly over
        wordlines.
        """
        if reads < 0:
            raise ValueError("read count cannot be negative")
        if target_wordline is not None:
            self.record_read(target_wordline, vpass, reads)
            return
        weight = float(vpass_exposure_weight(vpass)) * reads
        self._total_exposure += weight
        self._exposure_targeted += weight / self.geometry.wordlines_per_block
        self.total_reads += reads
        # Integer bookkeeping: spread as evenly as possible, handing the
        # remainder to the lowest wordlines so reads_targeted.sum() always
        # equals total_reads.
        per, remainder = divmod(reads, self.geometry.wordlines_per_block)
        self.reads_targeted += per
        if remainder:
            self.reads_targeted[:remainder] += 1

    # ------------------------------------------------------------------
    # Voltage materialization and sensing
    # ------------------------------------------------------------------

    def current_voltages(self, now: float, wordlines: np.ndarray | slice | None = None) -> np.ndarray:
        """Materialize current threshold voltages: program value, then
        retention loss, then read-disturb drift (see physics modules)."""
        if wordlines is None:
            wordlines = slice(None)
        v0 = self.cells.v0[wordlines].astype(np.float64)
        ages = np.maximum(now - self.program_time[wordlines], 0.0)
        leak = self.cells.leak[wordlines].astype(np.float64)
        v_ret = retained_voltage(v0, ages[..., None], self.pe_cycles, leak=leak)
        exposure = (self._total_exposure - self._exposure_targeted[wordlines])[..., None]
        susceptibility = self.cells.susceptibility[wordlines].astype(np.float64)
        return self.disturb_model.drifted_voltage(
            v_ret, exposure, susceptibility, self.pe_cycles
        )

    def _cutoff_mask(self, wordline: int, now: float, vpass: float) -> np.ndarray | None:
        """Bitlines cut off when reading *wordline* at *vpass* (or None)."""
        if vpass >= _CUTOFF_CHECK_VPASS:
            return None
        others = np.arange(self.geometry.wordlines_per_block) != wordline
        voltages = self.current_voltages(now, others)
        return (voltages > vpass).any(axis=0)

    def read_page(
        self,
        page: int,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> np.ndarray:
        """Read one page; returns its bit array and disturbs the block."""
        wordline, is_msb = self.geometry.page_to_wordline(page)
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self.current_voltages(now, np.array([wordline]))[0]
        bits = sense_page(voltages, is_msb, references, cutoff)
        if record_disturb:
            self.record_read(wordline, vpass)
        return bits

    def threshold_read(
        self,
        wordline: int,
        threshold: float,
        now: float = 0.0,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> np.ndarray:
        """Single-reference retry read: True where the cell conducts
        (V <= threshold).  This is the primitive the paper's read-retry
        threshold-voltage measurement is built from."""
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self.current_voltages(now, np.array([wordline]))[0]
        conducting = voltages <= threshold
        if cutoff is not None:
            conducting &= ~cutoff
        if record_disturb:
            self.record_read(wordline, vpass)
        return conducting

    def read_wordline_states(
        self,
        wordline: int,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> np.ndarray:
        """Full-state sense of one wordline (used by read-retry sweeps)."""
        cutoff = self._cutoff_mask(wordline, now, vpass)
        voltages = self.current_voltages(now, np.array([wordline]))[0]
        states = sense_states(voltages, references, cutoff)
        if record_disturb:
            self.record_read(wordline, vpass)
        return states

    # ------------------------------------------------------------------
    # Ground truth helpers (simulator-only; a real chip cannot do this)
    # ------------------------------------------------------------------

    def expected_page_bits(self, page: int) -> np.ndarray:
        """Ground-truth bits of *page* as programmed."""
        wordline, is_msb = self.geometry.page_to_wordline(page)
        return page_bits_from_states(self.cells.true_states[wordline], is_msb)

    def page_error_count(
        self,
        page: int,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = True,
    ) -> int:
        """Bit errors a read of *page* would return right now."""
        bits = self.read_page(page, now, references, vpass, record_disturb)
        return int((bits != self.expected_page_bits(page)).sum())

    def measure_block_rber(
        self,
        now: float = 0.0,
        references: ReadReferences = DEFAULT_REFERENCES,
        vpass: float = VPASS_NOMINAL,
        record_disturb: bool = False,
    ) -> float:
        """RBER over all programmed pages (measurement reads are optionally
        excluded from disturb accounting, like a characterization pass)."""
        total_bits = 0
        total_errors = 0
        for wordline in range(self.geometry.wordlines_per_block):
            if not self.programmed[wordline]:
                continue
            for is_msb in (False, True):
                page = 2 * wordline + int(is_msb)
                bits = self.read_page(page, now, references, vpass, record_disturb)
                expected = self.expected_page_bits(page)
                total_errors += int((bits != expected).sum())
                total_bits += bits.size
        if total_bits == 0:
            raise RuntimeError("block has no programmed pages to measure")
        return total_errors / total_bits

    def true_states_of_wordline(self, wordline: int) -> np.ndarray:
        """Programmed states of one wordline (ground truth)."""
        return self.cells.true_states[wordline].copy()

    def __repr__(self) -> str:
        return (
            f"FlashBlock(id={self.block_id}, pe={self.pe_cycles}, "
            f"reads={self.total_reads}, programmed={int(self.programmed.sum())}/"
            f"{self.geometry.wordlines_per_block})"
        )
