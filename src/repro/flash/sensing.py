"""Read sensing: compare cell voltages against read references.

A full-state sense applies Va, Vb, Vc in sequence (read-retry style); a
page read applies only the references its bit needs (Vb for the LSB page,
Va and Vc for the MSB page).  A bitline cut off by a too-low pass-through
voltage conducts no current, so the sense amplifier concludes the cell is
above every applied reference regardless of its true voltage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.constants import VA, VB, VC


@dataclass(frozen=True)
class ReadReferences:
    """The three read reference voltages of a 2-bit MLC sense."""

    va: float = VA
    vb: float = VB
    vc: float = VC

    def __post_init__(self) -> None:
        if not self.va < self.vb < self.vc:
            raise ValueError("references must satisfy va < vb < vc")

    def shifted(self, dva: float = 0.0, dvb: float = 0.0, dvc: float = 0.0) -> "ReadReferences":
        """Read-retry: return references shifted by the given offsets."""
        return ReadReferences(self.va + dva, self.vb + dvb, self.vc + dvc)

    def as_array(self) -> np.ndarray:
        return np.array([self.va, self.vb, self.vc], dtype=np.float64)


DEFAULT_REFERENCES = ReadReferences()


def sense_states(
    voltages: np.ndarray,
    references: ReadReferences = DEFAULT_REFERENCES,
    cutoff: np.ndarray | None = None,
) -> np.ndarray:
    """Full-state sense: map voltages to state indices 0..3.

    *cutoff* marks bitlines that cannot conduct; they sense as the highest
    state (above every reference).
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    states = np.searchsorted(references.as_array(), voltages, side="left").astype(np.int8)
    if cutoff is not None:
        states = np.where(np.asarray(cutoff, bool), np.int8(3), states)
    return states


def sense_page(
    voltages: np.ndarray,
    is_msb: bool,
    references: ReadReferences = DEFAULT_REFERENCES,
    cutoff: np.ndarray | None = None,
) -> np.ndarray:
    """Page sense: return the bit array read from one wordline's page.

    LSB page: bit = 1 iff V <= Vb.  MSB page: bit = 1 iff V <= Va or
    V > Vc (gray coding from the paper's Figure 1).  Cut-off bitlines sense
    as above-all-references: LSB reads 0, MSB reads 1.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    if is_msb:
        bits = ((voltages <= references.va) | (voltages > references.vc)).astype(np.uint8)
        if cutoff is not None:
            bits = np.where(np.asarray(cutoff, bool), np.uint8(1), bits)
    else:
        bits = (voltages <= references.vb).astype(np.uint8)
        if cutoff is not None:
            bits = np.where(np.asarray(cutoff, bool), np.uint8(0), bits)
    return bits


def sense_pages(
    voltages: np.ndarray,
    is_msb: np.ndarray,
    references: ReadReferences = DEFAULT_REFERENCES,
    cutoff: np.ndarray | None = None,
) -> np.ndarray:
    """Batched :func:`sense_page`: sense many pages in two passes.

    *voltages* is ``(pages, bitlines)`` — one wordline's voltages per row —
    and *is_msb* a boolean per row.  Rows are grouped by page kind and each
    group is sensed with :func:`sense_page`, so the result is bit-identical
    to a per-page loop at a fraction of the call count.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    is_msb = np.asarray(is_msb, dtype=bool)
    if voltages.ndim != 2 or is_msb.shape != (voltages.shape[0],):
        raise ValueError("need (pages, bitlines) voltages and one is_msb flag per page")
    bits = np.empty(voltages.shape, dtype=np.uint8)
    for msb in (False, True):
        rows = is_msb if msb else ~is_msb
        if rows.any():
            group_cutoff = cutoff[rows] if cutoff is not None else None
            bits[rows] = sense_page(voltages[rows], msb, references, group_cutoff)
    return bits
