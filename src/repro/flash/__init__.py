"""NAND flash device substrate.

This subpackage is the software stand-in for the paper's FPGA-based testing
platform plus the 2Y-nm MLC NAND chips under test.  It models a chip as an
array of blocks, each block a grid of wordlines x bitlines of floating-gate
cells whose state is a continuous normalized threshold voltage.  The same
observables the paper relies on are exposed here: read/program/erase
operations, read-retry Vth stepping, per-page error counts, and Vref/Vpass
control.
"""

from repro.flash.state import (
    MlcState,
    STATE_ORDER,
    bits_to_state,
    state_to_bits,
    lsb_of_state,
    msb_of_state,
    states_from_bits,
)
from repro.flash.geometry import FlashGeometry
from repro.flash.arena import BlockStore, SlabLayout
from repro.flash.cell_array import CellArray
from repro.flash.block import FlashBlock
from repro.flash.chip import FlashChip
from repro.flash.sensing import ReadReferences, sense_states, sense_page, sense_pages
from repro.flash.errors import (
    ErrorBreakdown,
    count_bit_errors,
    measure_rber,
    state_transition_matrix,
)

__all__ = [
    "MlcState",
    "STATE_ORDER",
    "bits_to_state",
    "state_to_bits",
    "lsb_of_state",
    "msb_of_state",
    "states_from_bits",
    "FlashGeometry",
    "BlockStore",
    "SlabLayout",
    "CellArray",
    "FlashBlock",
    "FlashChip",
    "ReadReferences",
    "sense_states",
    "sense_page",
    "sense_pages",
    "ErrorBreakdown",
    "count_bit_errors",
    "measure_rber",
    "state_transition_matrix",
]
