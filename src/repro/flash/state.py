"""MLC cell states and their gray-coded bit mapping.

A 2-bit MLC cell is in one of four states ordered by threshold voltage:
ER (erased) < P1 < P2 < P3.  The paper's Figure 1 gives the gray coding as
(LSB, MSB) tuples: ER=11, P1=10, P2=00, P3=01.  Gray coding guarantees that
a misread into an *adjacent* state flips exactly one of the two bits, which
is why state-level error rates convert to raw bit error rates with a factor
of one bit per two stored bits.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np


class MlcState(IntEnum):
    """The four 2-bit MLC states, ordered by increasing threshold voltage."""

    ER = 0
    P1 = 1
    P2 = 2
    P3 = 3


#: States in increasing-Vth order.
STATE_ORDER = (MlcState.ER, MlcState.P1, MlcState.P2, MlcState.P3)

#: Gray code from the paper's Figure 1, as (LSB, MSB) per state.
_STATE_TO_BITS = {
    MlcState.ER: (1, 1),
    MlcState.P1: (1, 0),
    MlcState.P2: (0, 0),
    MlcState.P3: (0, 1),
}

_BITS_TO_STATE = {bits: state for state, bits in _STATE_TO_BITS.items()}

#: Vectorized lookup tables indexed by state value.
_LSB_TABLE = np.array([_STATE_TO_BITS[s][0] for s in STATE_ORDER], dtype=np.uint8)
_MSB_TABLE = np.array([_STATE_TO_BITS[s][1] for s in STATE_ORDER], dtype=np.uint8)

#: state index for each (lsb, msb) pair; -1 marks impossible combinations
#: (none exist for 2-bit gray code, but keep the guard for clarity).
_STATE_TABLE = np.full((2, 2), -1, dtype=np.int8)
for _state, (_lsb, _msb) in _STATE_TO_BITS.items():
    _STATE_TABLE[_lsb, _msb] = int(_state)


def state_to_bits(state: MlcState) -> tuple[int, int]:
    """Return the (LSB, MSB) tuple stored by *state*."""
    return _STATE_TO_BITS[MlcState(state)]


def bits_to_state(lsb: int, msb: int) -> MlcState:
    """Return the state encoding the (LSB, MSB) pair."""
    if lsb not in (0, 1) or msb not in (0, 1):
        raise ValueError(f"bits must be 0 or 1, got lsb={lsb}, msb={msb}")
    return MlcState(int(_STATE_TABLE[lsb, msb]))


def _as_index(states: np.ndarray) -> np.ndarray:
    """States as an indexable integer array (no copy when already one)."""
    states = np.asarray(states)
    if states.dtype.kind not in "iu":
        states = states.astype(np.int64)
    return states


def lsb_of_state(states: np.ndarray) -> np.ndarray:
    """Vectorized LSB extraction for an integer state array."""
    return _LSB_TABLE[_as_index(states)]


def msb_of_state(states: np.ndarray) -> np.ndarray:
    """Vectorized MSB extraction for an integer state array."""
    return _MSB_TABLE[_as_index(states)]


def states_from_bits(lsb: np.ndarray, msb: np.ndarray) -> np.ndarray:
    """Vectorized (LSB, MSB) -> state conversion."""
    lsb = _as_index(lsb)
    msb = _as_index(msb)
    if lsb.shape != msb.shape:
        raise ValueError("lsb and msb arrays must have the same shape")
    if ((lsb < 0) | (lsb > 1) | (msb < 0) | (msb > 1)).any():
        raise ValueError("bit arrays must contain only 0 and 1")
    return _STATE_TABLE[lsb, msb].astype(np.int64)


def bit_errors_between(true_states: np.ndarray, read_states: np.ndarray) -> np.ndarray:
    """Per-cell number of bit errors (0, 1, or 2) between two state arrays.

    With gray coding, adjacent-state misreads cost one bit and misreads that
    skip a state may cost two.
    """
    true_states = np.asarray(true_states, dtype=np.int64)
    read_states = np.asarray(read_states, dtype=np.int64)
    lsb_err = _LSB_TABLE[true_states] != _LSB_TABLE[read_states]
    msb_err = _MSB_TABLE[true_states] != _MSB_TABLE[read_states]
    return lsb_err.astype(np.int64) + msb_err.astype(np.int64)
