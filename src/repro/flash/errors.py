"""Error accounting: compare sensed data against ground truth.

The simulator knows the programmed ground truth, so raw bit error rates are
measured exactly the way the paper's FPGA platform does: program known
(pseudo-random) data, read it back, count differing bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.state import bit_errors_between, lsb_of_state, msb_of_state


@dataclass(frozen=True)
class ErrorBreakdown:
    """Bit error counts of one measurement, by direction of state movement."""

    total_bits: int
    bit_errors: int
    upward_state_errors: int
    downward_state_errors: int

    @property
    def rber(self) -> float:
        """Raw bit error rate of the measurement."""
        if self.total_bits == 0:
            raise ValueError("cannot compute RBER over zero bits")
        return self.bit_errors / self.total_bits


def count_bit_errors(expected_bits: np.ndarray, read_bits: np.ndarray) -> int:
    """Number of differing bits between two bit arrays."""
    expected_bits = np.asarray(expected_bits)
    read_bits = np.asarray(read_bits)
    if expected_bits.shape != read_bits.shape:
        raise ValueError("bit arrays must have the same shape")
    return int((expected_bits != read_bits).sum())


def measure_rber(expected_bits: np.ndarray, read_bits: np.ndarray) -> float:
    """Raw bit error rate between expectation and a read."""
    expected_bits = np.asarray(expected_bits)
    if expected_bits.size == 0:
        raise ValueError("cannot compute RBER over zero bits")
    return count_bit_errors(expected_bits, read_bits) / expected_bits.size


def state_error_breakdown(
    true_states: np.ndarray, sensed_states: np.ndarray
) -> ErrorBreakdown:
    """Full error breakdown between programmed and sensed states."""
    true_states = np.asarray(true_states, dtype=np.int64)
    sensed_states = np.asarray(sensed_states, dtype=np.int64)
    if true_states.shape != sensed_states.shape:
        raise ValueError("state arrays must have the same shape")
    bit_errors = int(bit_errors_between(true_states, sensed_states).sum())
    return ErrorBreakdown(
        total_bits=2 * true_states.size,
        bit_errors=bit_errors,
        upward_state_errors=int((sensed_states > true_states).sum()),
        downward_state_errors=int((sensed_states < true_states).sum()),
    )


def state_transition_matrix(
    true_states: np.ndarray, sensed_states: np.ndarray
) -> np.ndarray:
    """4x4 count matrix T[i, j] = number of cells programmed i, sensed j."""
    true_states = np.asarray(true_states, dtype=np.int64).ravel()
    sensed_states = np.asarray(sensed_states, dtype=np.int64).ravel()
    if true_states.shape != sensed_states.shape:
        raise ValueError("state arrays must have the same shape")
    matrix = np.zeros((4, 4), dtype=np.int64)
    np.add.at(matrix, (true_states, sensed_states), 1)
    return matrix


def page_bits_from_states(states: np.ndarray, is_msb: bool) -> np.ndarray:
    """Ground-truth bits of a page given the programmed states."""
    states = np.asarray(states)
    return (msb_of_state(states) if is_msb else lsb_of_state(states)).astype(np.uint8)
