"""Physical organization of the simulated NAND flash chip.

The defaults are scaled down from a real 2Y-nm MLC die so Monte-Carlo
experiments stay laptop-fast while keeping enough cells per block
(wordlines x bitlines) for error-rate estimates at the 1e-4..1e-2 level the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of one simulated flash chip.

    Each block is a grid of ``wordlines x bitlines`` MLC cells.  Every
    wordline stores two logical pages (LSB page and MSB page), so a block
    holds ``2 * wordlines`` pages of ``bitlines`` bits each.  All cells of a
    bitline within a block share one output line; reading any page drives
    the pass-through voltage onto every *other* wordline of the block, which
    is the root cause of read disturb.
    """

    blocks: int = 16
    wordlines_per_block: int = 128
    bitlines_per_block: int = 4096

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise ValueError("geometry needs at least one block")
        if self.wordlines_per_block < 2:
            raise ValueError("read disturb needs at least two wordlines")
        if self.bitlines_per_block < 1:
            raise ValueError("geometry needs at least one bitline")

    @property
    def cells_per_block(self) -> int:
        """Number of MLC cells in one block."""
        return self.wordlines_per_block * self.bitlines_per_block

    @property
    def pages_per_block(self) -> int:
        """Logical pages per block (two per wordline: LSB and MSB)."""
        return 2 * self.wordlines_per_block

    @property
    def bits_per_page(self) -> int:
        """Bits stored by one logical page."""
        return self.bitlines_per_block

    @property
    def bits_per_block(self) -> int:
        """Bits stored by one block (2 bits per cell)."""
        return 2 * self.cells_per_block

    @property
    def total_cells(self) -> int:
        """Cells in the whole chip."""
        return self.blocks * self.cells_per_block

    def page_to_wordline(self, page: int) -> tuple[int, bool]:
        """Map a page index to ``(wordline, is_msb_page)``.

        Pages are interleaved in the common MLC order: page ``2*w`` is the
        LSB page of wordline ``w`` and page ``2*w + 1`` its MSB page.
        """
        if not 0 <= page < self.pages_per_block:
            raise IndexError(f"page {page} out of range 0..{self.pages_per_block - 1}")
        return page // 2, bool(page % 2)

    def wordline_to_pages(self, wordline: int) -> tuple[int, int]:
        """Return the (LSB page, MSB page) indices stored on *wordline*."""
        if not 0 <= wordline < self.wordlines_per_block:
            raise IndexError(
                f"wordline {wordline} out of range 0..{self.wordlines_per_block - 1}"
            )
        return 2 * wordline, 2 * wordline + 1


#: Geometry used by most tests: small but statistically meaningful.
SMALL_GEOMETRY = FlashGeometry(blocks=4, wordlines_per_block=32, bitlines_per_block=1024)

#: Geometry used by the characterization benches (1 wordline is measured but
#: the whole block disturbs it, as in the paper's setup).
CHARACTERIZATION_GEOMETRY = FlashGeometry(
    blocks=10, wordlines_per_block=64, bitlines_per_block=8192
)
