"""DRAM read disturb (RowHammer) substrate.

The paper's Section 5.2 reproduces two figures from Kim et al. (ISCA 2014):
the RowHammer error rate of 129 DRAM modules against their manufacture
date (Figure 11) and the distribution of victim cells per aggressor row
for three representative modules (Figure 12).  This package models those
module populations statistically so both figures can be regenerated; it is
deliberately independent of the flash subsystem (the paper stresses the
disturb *mechanisms* differ even though the phenomena rhyme).
"""

from repro.dram.module import DramModuleSpec, Manufacturer, module_fleet
from repro.dram.rowhammer import (
    DramModule,
    hammer_test_error_rate,
    victim_histogram,
)

__all__ = [
    "DramModuleSpec",
    "Manufacturer",
    "module_fleet",
    "DramModule",
    "hammer_test_error_rate",
    "victim_histogram",
]
