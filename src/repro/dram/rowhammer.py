"""Row-level RowHammer simulation.

A module is a grid of rows; repeatedly activating ("hammering") an
aggressor row flips bits in its physically adjacent victim rows once the
activation count crosses each victim cell's coupling threshold.  Victim
counts per aggressor row are heavy-tailed — most rows flip a handful of
cells, a few flip over a hundred (Kim et al., ISCA 2014, Figure 12 /
this paper's Figure 12) — which we model as a Poisson-lognormal mixture
whose intensity scales with the module's overall vulnerability.
"""

from __future__ import annotations

import numpy as np

from repro.rng import stream
from repro.dram.module import DramModuleSpec

#: Activation count used by the paper's standard test procedure.
STANDARD_HAMMER_COUNT = 2_200_000

#: Activation threshold below which even vulnerable cells do not flip
#: (the ISCA 2014 data shows first flips around 139K activations).
MIN_HAMMER_COUNT = 139_000


class DramModule:
    """One simulated module: per-row RowHammer intensities."""

    def __init__(
        self,
        spec: DramModuleSpec,
        rows: int = 32768,
        cells_per_row: int = 8192,
        seed: int = 0,
        error_rate_override: float | None = None,
    ):
        """``error_rate_override`` pins the module's vulnerability (errors
        per 1e9 cells) instead of sampling it from the population model —
        used to study specific modules, like the paper's three
        representative (highly vulnerable) parts in Figure 12."""
        if rows < 3 or cells_per_row < 1:
            raise ValueError("module needs at least 3 rows and 1 cell per row")
        if error_rate_override is not None and error_rate_override < 0:
            raise ValueError("error rate override cannot be negative")
        self.spec = spec
        self.rows = rows
        self.cells_per_row = cells_per_row
        self._rng = stream(f"dram-rows-{spec.label}", seed)
        total_cells = rows * cells_per_row
        rate = (
            error_rate_override
            if error_rate_override is not None
            else spec.sampled_error_rate(seed)
        )
        expected_victims = rate * total_cells / 1e9
        # Heavy-tailed per-row intensity: lognormal with unit-normalized
        # mean, scaled so the module-wide victim total matches its
        # vulnerability.  sigma = 1.2 puts a visible tail past 100 victims
        # for vulnerable modules, as in the paper's Figure 12.
        sigma = 1.2
        mean_per_row = expected_victims / rows
        if mean_per_row > 0:
            lam = mean_per_row * self._rng.lognormal(-0.5 * sigma**2, sigma, rows)
            self._victims_per_row = self._rng.poisson(lam)
        else:
            self._victims_per_row = np.zeros(rows, dtype=np.int64)
        self._victims_per_row = np.minimum(self._victims_per_row, cells_per_row)

    def hammer(self, row: int, activations: int) -> int:
        """Hammer *row*; return the number of victim-cell bit flips in the
        adjacent rows.

        Flips scale in the activation count past the minimum threshold,
        saturating at the row's full victim population by the standard test
        count.
        """
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range")
        if activations < 0:
            raise ValueError("activation count cannot be negative")
        if activations < MIN_HAMMER_COUNT:
            return 0
        full = int(self._victims_per_row[row])
        span = STANDARD_HAMMER_COUNT - MIN_HAMMER_COUNT
        fraction = min((activations - MIN_HAMMER_COUNT) / span, 1.0)
        return int(round(full * fraction))

    def victims_per_row(self) -> np.ndarray:
        """Victim-cell count for each aggressor row at the standard test
        count (the paper's Figure 12 raw data)."""
        return self._victims_per_row.copy()

    def total_victims(self) -> int:
        """Module-wide victim cells at the standard test count."""
        return int(self._victims_per_row.sum())

    @property
    def total_cells(self) -> int:
        return self.rows * self.cells_per_row


def hammer_test_error_rate(
    spec: DramModuleSpec,
    rows: int = 4096,
    cells_per_row: int = 8192,
    seed: int = 0,
) -> float:
    """Run the standard hammer test over a module; errors per 1e9 cells.

    This is the measured counterpart of
    :meth:`DramModuleSpec.sampled_error_rate` (it adds row-level sampling
    noise, like a real test campaign).
    """
    module = DramModule(spec, rows=rows, cells_per_row=cells_per_row, seed=seed)
    return module.total_victims() / module.total_cells * 1e9


def victim_histogram(module: DramModule, max_victims: int = 120) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of victim cells per aggressor row (Figure 12 format).

    Returns ``(victim_counts, row_counts)`` for 0..max_victims victims.
    """
    victims = np.minimum(module.victims_per_row(), max_victims)
    counts = np.bincount(victims, minlength=max_victims + 1)
    return np.arange(max_victims + 1), counts
