"""DRAM module population model.

Kim et al. (ISCA 2014) tested 129 modules from three major manufacturers
(anonymized A, B, C) made between 2008 and 2014, finding no RowHammer
errors in pre-2010 modules and rapidly growing error rates afterwards —
the signature of process scaling shrinking cell-to-cell isolation.  We
model a module's intrinsic vulnerability as zero before a
manufacturer-specific onset date, then exponentially increasing with
manufacture date, with large lognormal module-to-module variation (the
3-decade within-year spread in their Figure 11 scatter).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.rng import stream


class Manufacturer(str, Enum):
    A = "A"
    B = "B"
    C = "C"


#: Vulnerability-onset year per manufacturer (first vulnerable modules in
#: the ISCA 2014 data appear in 2010).
_ONSET_YEAR = {Manufacturer.A: 2010.0, Manufacturer.B: 2010.5, Manufacturer.C: 2010.25}

#: Error-rate growth per year after onset, in decades (log10 units).
_GROWTH_DECADES_PER_YEAR = {Manufacturer.A: 1.6, Manufacturer.B: 1.3, Manufacturer.C: 1.5}

#: Error rate (per 1e9 cells) of a median module one year past onset.
_BASE_RATE = {Manufacturer.A: 30.0, Manufacturer.B: 8.0, Manufacturer.C: 15.0}

#: Lognormal sigma (in decades) of module-to-module vulnerability spread.
_MODULE_SPREAD_DECADES = 0.9


@dataclass(frozen=True)
class DramModuleSpec:
    """Identity of one tested module, labeled as in the paper: X yyww n."""

    manufacturer: Manufacturer
    year: int
    week: int
    index: int

    def __post_init__(self) -> None:
        if not 2008 <= self.year <= 2014:
            raise ValueError("module year outside the studied 2008-2014 range")
        if not 1 <= self.week <= 52:
            raise ValueError("week of year must be 1..52")

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``A12-40#23`` for year '12 week 40."""
        return f"{self.manufacturer.value}{self.year % 100:02d}{self.week:02d}#{self.index}"

    @property
    def fractional_year(self) -> float:
        return self.year + (self.week - 1) / 52.0

    def median_error_rate(self) -> float:
        """Median errors per 1e9 cells for this manufacture date (before
        module-to-module variation)."""
        onset = _ONSET_YEAR[self.manufacturer]
        age = self.fractional_year - onset
        if age <= 0:
            return 0.0
        growth = _GROWTH_DECADES_PER_YEAR[self.manufacturer]
        return _BASE_RATE[self.manufacturer] * 10.0 ** (growth * (age - 1.0))

    def sampled_error_rate(self, seed: int = 0) -> float:
        """Module's actual vulnerability, with lognormal unit spread."""
        median = self.median_error_rate()
        if median == 0.0:
            return 0.0
        rng = stream(f"dram-module-{self.label}", seed)
        spread = 10.0 ** rng.normal(0.0, _MODULE_SPREAD_DECADES)
        return median * spread


def module_fleet(count: int = 129, seed: int = 0) -> list[DramModuleSpec]:
    """Generate a test fleet like the paper's 129 modules.

    Manufacture dates concentrate in 2011-2013 (the bulk of the tested
    population) with a thinner 2008-2010 prefix, mirroring the ISCA 2014
    module table.
    """
    if count < 1:
        raise ValueError("fleet needs at least one module")
    rng = stream("dram-fleet", seed)
    year_choices = np.array([2008, 2009, 2010, 2011, 2012, 2013, 2014])
    year_weights = np.array([0.05, 0.06, 0.10, 0.22, 0.28, 0.22, 0.07])
    fleet = []
    for index in range(count):
        manufacturer = Manufacturer(rng.choice(["A", "B", "C"], p=[0.4, 0.3, 0.3]))
        year = int(rng.choice(year_choices, p=year_weights / year_weights.sum()))
        week = int(rng.integers(1, 53))
        fleet.append(DramModuleSpec(manufacturer, year, week, index))
    return fleet
