"""Test-support utilities shipped with the package.

Only :mod:`repro.testing.faults` lives here: the deterministic
fault-injection harness the campaign layer's recovery paths are tested
against.  Production code may *call into* this package (the scenario
runner's single fault hook), but nothing here is imported by default on
any hot path, and with no faults armed every hook is a constant-time
no-op.
"""

from repro.testing.faults import (
    FaultSpec,
    InjectedFault,
    active_faults,
    injected_faults,
    maybe_inject,
    parse_faults,
)

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "active_faults",
    "injected_faults",
    "maybe_inject",
    "parse_faults",
]
