"""Deterministic fault injection for the campaign recovery paths.

Every recovery path of the fault-tolerant sweep layer — worker crash,
hung worker, in-scenario exception, torn or corrupted store record — is
exercised by tests through this module rather than hoped for.  The
design constraints:

- **Deterministic.**  A fault names the exact scenario id it fires on
  and (optionally) how many times; no randomness, no timing windows.
- **Env-gated.**  Faults arm through ``REPRO_FAULTS`` (inherited by
  fork *and* spawn workers) or programmatically through
  :func:`injected_faults` (inherited by fork workers); with neither set
  the hook in :func:`repro.controller.factory.run_scenario` is a
  constant-time no-op.
- **Cross-process counting.**  "Crash the first 2 attempts, then
  succeed" needs a firing count that survives the crashing process.
  Counted faults keep their tally in small files under the
  ``REPRO_FAULTS_STATE`` directory — attempts of one scenario are
  sequential, so a plain read-increment-write is race-free.

Fault spec syntax (``;``-separated in ``REPRO_FAULTS``)::

    <mode>:<count>:<scenario_id>

where *mode* is ``crash`` (``os._exit`` — a hard death, no Python
cleanup, indistinguishable from a SIGKILL to the parent), ``hang``
(sleep far past any sane timeout), ``stall`` (sleep
:data:`ENV_STALL_SECONDS` seconds — long enough for a lease TTL to
lapse — then *continue normally*: the zombie-writer ingredient), or
``raise`` (raise :class:`InjectedFault` inside the scenario); *count*
is a positive integer or ``*`` for "every attempt".  Scenario ids
contain ``/`` and ``.`` but never ``:`` or ``;``, so the two delimiters
cannot collide.

Besides scenario ids, :func:`maybe_inject` is called at every commit
boundary of store compaction with the pseudo-ids ``compact/tmp``,
``compact/data``, ``compact/index``, ``compact/manifest``, and
``compact/cleanup`` — arming a ``crash`` or ``raise`` fault on one of
those kills the compaction at that exact byte boundary, which is how
the crash-mid-compaction suite walks every stage of the protocol.

The store-corruption injectors (:func:`corrupt_store_record`,
:func:`truncate_store_tail`) operate on a
:class:`~repro.parallel.store.ResultStore` directory from the outside —
they simulate bit rot and torn appends without the store's cooperation.
The lease injectors (:func:`expire_leases`, :func:`steal_lease`) do the
same to the lease ledger: rewind heartbeats so a live holder looks
dead, or forcibly re-claim a batch so the original holder becomes a
fenced-off zombie.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

#: env var holding the armed fault specs (``;``-separated).
ENV_FAULTS = "REPRO_FAULTS"
#: env var naming the directory counted faults keep their tallies in.
ENV_STATE = "REPRO_FAULTS_STATE"

#: how long a ``hang`` fault sleeps — far past any sane scenario
#: timeout, so an un-detected hang fails the surrounding test loudly.
HANG_SECONDS = 3600.0

#: env var overriding how long a ``stall`` fault sleeps (seconds).
#: Tests set it just past a short lease TTL: the stalled worker misses
#: its renewals, gets reclaimed, then *finishes normally* — a zombie.
ENV_STALL_SECONDS = "REPRO_FAULTS_STALL"
DEFAULT_STALL_SECONDS = 2.0

#: exit code of a ``crash`` fault (visible in the parent's ledger entry).
CRASH_EXIT_CODE = 86

_MODES = ("crash", "hang", "stall", "raise")

#: programmatically installed faults (fork workers inherit these).
_installed: tuple["FaultSpec", ...] = ()


class InjectedFault(RuntimeError):
    """The exception a ``raise``-mode fault throws inside a scenario."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire *mode* on *scenario_id*, *count* times.

    ``count=None`` fires on every attempt; a positive count fires on
    the first *count* attempts and then stands down (the state that
    survives a crashing process lives under :data:`ENV_STATE`).
    """

    mode: str
    count: int | None
    scenario_id: str

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.count is not None and self.count < 1:
            raise ValueError("fault count must be at least 1 (or '*')")
        if not self.scenario_id:
            raise ValueError("fault needs a scenario id")

    @property
    def spec(self) -> str:
        """The env-var text form of this fault."""
        count = "*" if self.count is None else str(self.count)
        return f"{self.mode}:{count}:{self.scenario_id}"


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``;``-separated fault-spec string (see module docs)."""
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        mode, sep, rest = chunk.partition(":")
        count_text, sep2, scenario_id = rest.partition(":")
        if not sep or not sep2:
            raise ValueError(
                f"bad fault spec {chunk!r}; expected "
                f"'<mode>:<count>:<scenario_id>'"
            )
        if count_text == "*":
            count = None
        else:
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(
                    f"bad fault count {count_text!r} in {chunk!r}; "
                    f"expected an integer or '*'"
                ) from None
        specs.append(FaultSpec(mode=mode, count=count, scenario_id=scenario_id))
    return tuple(specs)


def active_faults() -> tuple[FaultSpec, ...]:
    """Every currently armed fault (programmatic + environment)."""
    env = os.environ.get(ENV_FAULTS)
    return _installed + (parse_faults(env) if env else ())


@contextmanager
def injected_faults(*specs: FaultSpec, state_dir: str | os.PathLike | None = None):
    """Arm *specs* for the duration of the block (tests' in-process gate).

    Fork-start workers inherit the installed tuple; spawn-start workers
    do not — arm via :data:`ENV_FAULTS` for those.  *state_dir* (for
    counted faults) sets :data:`ENV_STATE` for the duration.
    """
    global _installed
    previous, _installed = _installed, _installed + tuple(specs)
    previous_state = os.environ.get(ENV_STATE)
    if state_dir is not None:
        os.environ[ENV_STATE] = str(state_dir)
    try:
        yield
    finally:
        _installed = previous
        if state_dir is not None:
            if previous_state is None:
                os.environ.pop(ENV_STATE, None)
            else:
                os.environ[ENV_STATE] = previous_state


def _state_path(spec: FaultSpec) -> Path:
    state = os.environ.get(ENV_STATE)
    if not state:
        raise RuntimeError(
            f"counted fault {spec.spec!r} needs {ENV_STATE} to point at a "
            f"directory (the firing tally must survive the faulted process)"
        )
    digest = hashlib.sha256(f"{spec.mode}:{spec.scenario_id}".encode()).hexdigest()
    return Path(state) / f"fault-{digest[:16]}.count"


def _should_fire(spec: FaultSpec) -> bool:
    """Check (and for counted faults, consume) one firing of *spec*.

    The tally is written *before* the fault fires — a ``crash`` fault
    never returns to do bookkeeping afterwards.  Attempts of one
    scenario are strictly sequential (the campaign retries only after
    observing the previous attempt's death), so read-increment-write
    needs no locking.
    """
    if spec.count is None:
        return True
    path = _state_path(spec)
    try:
        fired = int(path.read_text())
    except (FileNotFoundError, ValueError):
        fired = 0
    if fired >= spec.count:
        return False
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(str(fired + 1))
    return True


def maybe_inject(scenario_id: str) -> None:
    """The scenario runner's fault hook: fire any armed fault for
    *scenario_id*.

    Called by :func:`repro.controller.factory.run_scenario` before the
    scenario executes.  With nothing armed (the production case) this
    is one tuple check and one ``os.environ`` lookup.
    """
    if not _installed and ENV_FAULTS not in os.environ:
        return
    for spec in active_faults():
        if spec.scenario_id != scenario_id or not _should_fire(spec):
            continue
        if spec.mode == "crash":
            # A hard death: no exception, no finally blocks, no
            # finalizers — what a SIGKILL or OOM kill looks like.
            os._exit(CRASH_EXIT_CODE)
        if spec.mode == "hang":
            time.sleep(HANG_SECONDS)
            raise InjectedFault(
                f"hang fault for {scenario_id!r} outlived "
                f"{HANG_SECONDS:g}s without being killed"
            )
        if spec.mode == "stall":
            # Sleep long enough for a short lease TTL to lapse, then
            # return — the scenario proceeds and its (deterministic)
            # result lands under the now-stale lease token.
            time.sleep(
                float(os.environ.get(ENV_STALL_SECONDS, DEFAULT_STALL_SECONDS))
            )
            continue
        raise InjectedFault(f"injected fault for scenario {scenario_id!r}")


# ----------------------------------------------------------------------
# Store-corruption injectors (operate on a ResultStore directory)
# ----------------------------------------------------------------------


def corrupt_store_record(store_root: str | os.PathLike, scenario_id: str) -> int:
    """Flip bytes inside every stored record of *scenario_id*.

    Rewrites matching record lines with a damaged payload (the checksum
    is left as-was, so validation must fail).  Returns how many records
    were corrupted; raises if none matched.
    """
    corrupted = 0
    for path in sorted((Path(store_root) / "records").glob("*.jsonl")):
        lines = path.read_text().splitlines(keepends=True)
        changed = False
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("result", {}).get("scenario_id") != scenario_id:
                continue
            record["result"]["stats"] = {"__bitrot__": True}
            lines[i] = json.dumps(record, sort_keys=True) + "\n"
            changed = True
            corrupted += 1
        if changed:
            path.write_text("".join(lines))
    if not corrupted:
        raise ValueError(f"no stored record for scenario {scenario_id!r}")
    return corrupted


def truncate_store_tail(store_root: str | os.PathLike, nbytes: int = 20) -> Path:
    """Tear the final append: chop *nbytes* off the largest record file.

    Simulates a parent killed mid-``write`` — the torn final line must
    be skipped on load and its scenario re-run on resume.  Returns the
    truncated file.
    """
    candidates = sorted(
        (Path(store_root) / "records").glob("*.jsonl"),
        key=lambda p: p.stat().st_size,
    )
    if not candidates:
        raise ValueError(f"no record files under {store_root}")
    victim = candidates[-1]
    size = victim.stat().st_size
    with open(victim, "rb+") as handle:
        handle.truncate(max(0, size - nbytes))
    return victim


# ----------------------------------------------------------------------
# Lease injectors (operate on a store's lease ledger)
# ----------------------------------------------------------------------


def expire_leases(
    store_root: str | os.PathLike,
    rewind_seconds: float,
    batch_id: str | None = None,
) -> int:
    """Rewind every heartbeat in the lease ledger by *rewind_seconds*.

    Makes a live holder look *rewind_seconds* staler than it is —
    rewind past the TTL and any worker may reclaim the batch, exactly
    as if the holder had frozen for that long.  Limiting to *batch_id*
    expires one batch.  Returns how many claim files were rewound;
    raises if none matched.
    """
    leases_dir = Path(store_root) / "leases"
    pattern = f"{batch_id}.jsonl" if batch_id is not None else "b*.jsonl"
    rewound = 0
    for path in sorted(leases_dir.glob(pattern)):
        lines = []
        for line in path.read_text().splitlines():
            try:
                entry = json.loads(line)
                entry["at"] = float(entry["at"]) - rewind_seconds
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                lines.append(line)
                continue
            lines.append(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
            )
        path.write_text("".join(f"{line}\n" for line in lines))
        rewound += 1
    if not rewound:
        raise ValueError(f"no lease claim files under {leases_dir}")
    return rewound


def steal_lease(store_root: str | os.PathLike, batch_id: str, owner: str):
    """Forcibly re-claim *batch_id* as *owner*, fencing off the holder.

    Appends a higher-token claim regardless of heartbeat freshness —
    from the original holder's perspective this is indistinguishable
    from being reclaimed after a real TTL lapse: its next renew fails
    and any result it still lands carries the stale fencing token.
    Returns the stolen :class:`~repro.parallel.leases.Lease`.
    """
    from repro.parallel.leases import LeaseLedger

    lease = LeaseLedger(store_root, owner=owner).claim(batch_id, force=True)
    if lease is None:
        raise ValueError(
            f"could not steal lease {batch_id!r} (batch already done?)"
        )
    return lease
