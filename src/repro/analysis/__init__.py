"""Measurement and reporting utilities.

These modules play the role of the paper's FPGA-based characterization
infrastructure: read-retry threshold-voltage sweeps and histograms
(:mod:`repro.analysis.histograms`), end-to-end experiment drivers
(:mod:`repro.analysis.characterization`), slope fitting
(:mod:`repro.analysis.fitting`), and table/series formatting for the
benchmark harness (:mod:`repro.analysis.reporting`).

The characterization drivers are re-exported lazily: they depend on
:mod:`repro.core`, which itself uses the low-level helpers here, and the
lazy hop keeps that a diamond instead of a cycle.
"""

from repro.analysis.histograms import (
    quantized_voltages,
    sweep_conducting_counts,
    vth_histogram,
    per_state_histograms,
)
from repro.analysis.fitting import linear_slope, relative_change
from repro.analysis.reporting import format_table, format_series, write_csv

_LAZY_CHARACTERIZATION = (
    "VthSnapshot",
    "vth_shift_experiment",
    "RberSeries",
    "rber_vs_read_disturb",
    "vpass_sweep",
    "relaxed_vpass_errors",
    "RdrPoint",
    "rdr_experiment",
)

__all__ = [
    "quantized_voltages",
    "sweep_conducting_counts",
    "vth_histogram",
    "per_state_histograms",
    "linear_slope",
    "relative_change",
    "format_table",
    "format_series",
    "write_csv",
    *_LAZY_CHARACTERIZATION,
]


def __getattr__(name: str):
    if name in _LAZY_CHARACTERIZATION:
        from repro.analysis import characterization

        return getattr(characterization, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
