"""Read-retry threshold-voltage measurement.

Real chips expose no "read the threshold voltage" command; the paper
measures Vth by sweeping the read-retry reference and recording, per cell,
the first reference at which it conducts.  These helpers do exactly that
against the simulated chip, producing the quantized per-cell voltages and
the distribution histograms of Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.flash.block import FlashBlock
from repro.flash.state import MlcState


def sweep_conducting_counts(
    block: FlashBlock,
    wordline: int,
    thresholds: np.ndarray,
    now: float = 0.0,
    record_disturb: bool = True,
    batched: bool = True,
) -> np.ndarray:
    """For each cell, count how many sweep thresholds it conducts at.

    A cell with voltage V conducts at every threshold >= V, so the count
    directly encodes its quantized voltage.

    A *recording* sweep shifts the block a little per retry read — but
    every read of the sweep targets the measured wordline itself, whose
    own exposure (``total - targeted``) is invariant under its own
    reads.  So with ``batched=True`` (the default) the steps all sense
    from one materialization (:meth:`FlashBlock.threshold_sweep_counts`)
    and the sweep's disturb is charged in one
    :meth:`FlashBlock.record_retry_sweep` update whose accumulation
    replays the per-step loop bit-for-bit; ``batched=False`` keeps the
    historical ordered per-step loop as the executable reference the
    equivalence suite compares against.
    """
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if thresholds.size == 0:
        raise ValueError("sweep needs at least one threshold")
    if not record_disturb:
        # Non-disturbing sweep: the wordline's voltages are frozen for the
        # whole sweep, so all steps share one materialization.
        return block.threshold_sweep_counts(wordline, thresholds, now)
    if batched:
        counts = block.threshold_sweep_counts(wordline, thresholds, now)
        block.record_retry_sweep(wordline, thresholds.size)
        return counts
    # Reference path: sense the steps in order, each at its own exposure.
    counts = np.zeros(block.geometry.bitlines_per_block, dtype=np.int64)
    for threshold in thresholds:
        conducting = block.threshold_read(
            wordline, float(threshold), now, record_disturb=record_disturb
        )
        counts += conducting
    return counts


def quantized_voltages(
    block: FlashBlock,
    wordline: int,
    lo: float = -40.0,
    hi: float = 520.0,
    step: float = 4.0,
    now: float = 0.0,
    record_disturb: bool = True,
    batched: bool = True,
) -> np.ndarray:
    """Per-cell threshold voltage measured by a read-retry sweep.

    The result is quantized to *step* (the retry resolution): a cell whose
    first conducting threshold is t is reported at t - step/2.  Cells that
    never conduct are reported at ``hi + step/2``.  *batched* selects the
    one-materialization recording-sweep path (see
    :func:`sweep_conducting_counts`).
    """
    if step <= 0:
        raise ValueError("sweep step must be positive")
    if hi <= lo:
        raise ValueError("sweep range must be non-empty")
    thresholds = np.arange(lo, hi + step, step)
    counts = sweep_conducting_counts(
        block, wordline, thresholds, now, record_disturb, batched
    )
    first_conducting_index = thresholds.size - counts
    return lo + step * first_conducting_index - step / 2.0


def vth_histogram(
    voltages: np.ndarray,
    lo: float = -40.0,
    hi: float = 520.0,
    bins: int = 140,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalized PDF histogram of measured voltages.

    Returns ``(bin_centers, density)`` with density integrating to 1, the
    format of the paper's Figure 2.
    """
    voltages = np.asarray(voltages, dtype=np.float64).ravel()
    if voltages.size == 0:
        raise ValueError("cannot histogram zero cells")
    density, edges = np.histogram(voltages, bins=bins, range=(lo, hi), density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def per_state_histograms(
    voltages: np.ndarray,
    true_states: np.ndarray,
    lo: float = -40.0,
    hi: float = 520.0,
    bins: int = 140,
) -> dict[MlcState, tuple[np.ndarray, np.ndarray]]:
    """One histogram per programmed state (ground-truth partitioned)."""
    voltages = np.asarray(voltages, dtype=np.float64).ravel()
    true_states = np.asarray(true_states, dtype=np.int64).ravel()
    if voltages.shape != true_states.shape:
        raise ValueError("voltages and states must align")
    out: dict[MlcState, tuple[np.ndarray, np.ndarray]] = {}
    for state in MlcState:
        mask = true_states == int(state)
        if mask.any():
            out[state] = vth_histogram(voltages[mask], lo, hi, bins)
    return out
