"""Plain-text tables and CSV dumps for the benchmark harness.

Every figure bench prints the series the paper plots, in a format that can
be eyeballed against the figure and archived in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """One labeled x/y series as two aligned columns."""
    return format_table(["x", name], zip(xs, ys))


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> Path:
    """Write rows to a CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-2 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
