"""Curve fitting used when comparing against the paper's reported numbers."""

from __future__ import annotations

import numpy as np


def linear_slope(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Least-squares slope and intercept of y against x.

    Used to reproduce the paper's Figure 3 slope table (RBER per read
    disturb at each wear level).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need two same-length arrays with at least 2 points")
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def relative_change(before: float, after: float) -> float:
    """Relative change (after - before) / before; e.g. -0.36 for the
    paper's 36% RDR reduction."""
    if before == 0:
        raise ValueError("relative change undefined for zero baseline")
    return (after - before) / before
