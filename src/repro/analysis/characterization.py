"""End-to-end characterization experiment drivers.

Each function reproduces one of the paper's measurement campaigns, using
the same methodology: wear a block to a target P/E count, program
pseudo-random data, apply read disturbs, and measure through the chip's
read interface (read-retry sweeps for threshold voltages, ground-truth
comparison for RBER).  Monte-Carlo experiments (Figures 2, 9, 10) run on
the simulated chip; rate experiments over huge read counts (Figures 3-6)
use the analytic channel model, which tests verify against the chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import VPASS_NOMINAL, days
from repro.analysis.fitting import linear_slope
from repro.analysis.histograms import per_state_histograms, quantized_voltages
from repro.core.rdr import RdrConfig, ReadDisturbRecovery
from repro.flash.block import FlashBlock
from repro.flash.geometry import FlashGeometry
from repro.model.rber import FlashChannelModel
from repro.rng import RngFactory


@dataclass(frozen=True)
class VthSnapshot:
    """Measured threshold-voltage data after a given number of reads."""

    reads: int
    voltages: np.ndarray
    true_states: np.ndarray

    def histograms(self, bins: int = 140):
        """Per-state PDF histograms (paper Figure 2 format)."""
        return per_state_histograms(self.voltages, self.true_states, bins=bins)


def vth_shift_experiment(
    read_counts=(0, 250_000, 500_000, 1_000_000),
    pe_cycles: int = 8000,
    geometry: FlashGeometry | None = None,
    wordline: int = 0,
    seed: int = 0,
    retry_step: float = 4.0,
) -> list[VthSnapshot]:
    """Figure 2: threshold-voltage distributions vs. read disturb count.

    Follows the paper's procedure: one measured wordline per block, with
    the read disturbs applied through reads to *other* pages of the block.
    """
    geometry = geometry or FlashGeometry(blocks=1, wordlines_per_block=32, bitlines_per_block=16384)
    block = FlashBlock(geometry, RngFactory(seed))
    block.cycle_wear_to(pe_cycles)
    block.program_random()
    target_other = (wordline + 1) % geometry.wordlines_per_block

    snapshots = []
    applied = 0
    for reads in sorted(read_counts):
        block.apply_read_disturb(reads - applied, target_wordline=target_other)
        applied = reads
        voltages = quantized_voltages(
            block, wordline, step=retry_step, record_disturb=False
        )
        snapshots.append(
            VthSnapshot(
                reads=reads,
                voltages=voltages,
                true_states=block.true_states_of_wordline(wordline),
            )
        )
    return snapshots


@dataclass(frozen=True)
class RberSeries:
    """One RBER-vs-reads curve with its fitted slope."""

    pe_cycles: int
    reads: np.ndarray
    rber: np.ndarray
    slope: float
    intercept: float


def rber_vs_read_disturb(
    pe_values=(2000, 3000, 4000, 5000, 8000, 10000, 15000),
    reads=np.arange(0, 100_001, 20_000),
    retention_age_seconds: float = 3600.0,
    model: FlashChannelModel | None = None,
) -> list[RberSeries]:
    """Figure 3: RBER vs. read disturb count per wear level, with the
    embedded slope table."""
    model = model or FlashChannelModel()
    reads = np.asarray(reads, dtype=np.float64)
    out = []
    for pe in pe_values:
        rber = np.array(
            [
                model.rber(pe, retention_age_seconds, n, include_pass_through=False)
                for n in reads
            ]
        )
        slope, intercept = linear_slope(reads, rber)
        out.append(RberSeries(int(pe), reads.copy(), rber, slope, intercept))
    return out


def vpass_sweep(
    vpass_percents=(94, 95, 96, 97, 98, 99, 100),
    reads=np.logspace(4, 9, 26),
    pe_cycles: int = 8000,
    retention_age_seconds: float = 3600.0,
    model: FlashChannelModel | None = None,
) -> dict[int, np.ndarray]:
    """Figure 4: RBER vs. read count for relaxed Vpass values.

    Reproduces the paper's methodology: Vpass is emulated through the
    read-retry Vref (their chips expose no Vpass knob), so the disturb
    reduction appears but no pass-through errors do.
    """
    model = model or FlashChannelModel()
    out = {}
    for pct in vpass_percents:
        vpass = VPASS_NOMINAL * pct / 100.0
        out[int(pct)] = np.array(
            [
                model.rber(
                    pe_cycles,
                    retention_age_seconds,
                    n,
                    vpass=vpass,
                    vpass_emulated_via_vref=True,
                )
                for n in reads
            ]
        )
    return out


def relaxed_vpass_errors(
    retention_ages_days=(0, 1, 2, 6, 9, 17, 21),
    vpass_values=np.arange(480.0, 513.0, 2.0),
    pe_cycles: int = 8000,
    model: FlashChannelModel | None = None,
) -> dict[int, np.ndarray]:
    """Figure 5: additional RBER from relaxing Vpass, by retention age."""
    model = model or FlashChannelModel()
    out = {}
    for age in retention_ages_days:
        out[int(age)] = np.array(
            [
                model.additional_pass_through_rber(v, pe_cycles, days(age))
                for v in vpass_values
            ]
        )
    return out


@dataclass(frozen=True)
class RdrPoint:
    """RBER with and without RDR at one read-disturb count."""

    reads: int
    rber_no_recovery: float
    rber_rdr: float

    @property
    def reduction_percent(self) -> float:
        if self.rber_no_recovery == 0:
            return 0.0
        return 100.0 * (1.0 - self.rber_rdr / self.rber_no_recovery)


def rdr_experiment(
    read_counts=(0, 200_000, 400_000, 600_000, 800_000, 1_000_000),
    pe_cycles: int = 8000,
    geometry: FlashGeometry | None = None,
    wordlines=(0, 5, 10),
    seed: int = 0,
    config: RdrConfig | None = None,
    retention_age_seconds: float = days(1),
) -> list[RdrPoint]:
    """Figure 10: RBER with and without RDR vs. read disturb count.

    Each point uses a freshly prepared block (RDR itself perturbs the
    block, so points cannot share state), averaging over several measured
    wordlines.
    """
    geometry = geometry or FlashGeometry(blocks=1, wordlines_per_block=32, bitlines_per_block=8192)
    rdr = ReadDisturbRecovery(config)
    points = []
    for i, reads in enumerate(read_counts):
        before_total = 0
        after_total = 0
        bits_total = 0
        for j, wordline in enumerate(wordlines):
            block = FlashBlock(geometry, RngFactory(seed + 1000 * i + j))
            block.cycle_wear_to(pe_cycles)
            block.program_random()
            target_other = (wordline + 1) % geometry.wordlines_per_block
            block.apply_read_disturb(int(reads), target_wordline=target_other)
            outcome = rdr.recover_wordline(block, wordline, now=retention_age_seconds)
            before_total += outcome.bit_errors_before
            after_total += outcome.bit_errors_after
            bits_total += outcome.bits_total
        points.append(
            RdrPoint(
                reads=int(reads),
                rber_no_recovery=before_total / bits_total,
                rber_rdr=after_total / bits_total,
            )
        )
    return points
