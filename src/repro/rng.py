"""Deterministic random-number streams.

Every stochastic component of the simulator draws from a named stream so
experiments are reproducible bit-for-bit given a root seed, and so two
components never consume from each other's stream (which would make results
depend on call ordering).
"""

from __future__ import annotations

import zlib

import numpy as np

_ROOT_SALT = 0x9E3779B9


def _stream_key(name: str) -> int:
    """Map a stream *name* to a stable 32-bit key."""
    return zlib.crc32(name.encode("utf-8")) ^ _ROOT_SALT


def stream(name: str, seed: int = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named stream.

    The same ``(name, seed)`` pair always yields an identical generator.
    Different names yield statistically independent generators even for the
    same seed.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("stream name must be a non-empty string")
    return np.random.default_rng([_stream_key(name), int(seed) & 0xFFFFFFFF])


def spawn_key(seed: int, *parts: str | int | float) -> int:
    """Deterministically derive a child seed from *seed* and a label path.

    This is the worker-safe seeding primitive behind the sweep runner
    (:mod:`repro.parallel`): the derived key depends only on the root seed
    and the labels — never on process identity, worker assignment, or the
    order scenarios are executed in — so a scenario's RNG streams are
    bit-identical whether it runs in-process, in a worker pool, or alone.

    Each label folds into the key with the same CRC mix as
    :meth:`RngFactory.child` (``spawn_key(seed, x)`` equals
    ``RngFactory(seed).child(x).seed``); multiple labels chain, e.g.
    ``spawn_key(root, scenario_id, "workload")``.
    """
    mixed = int(seed)
    for part in parts:
        mixed = zlib.crc32(str(part).encode("utf-8")) ^ (mixed * 2654435761 & 0xFFFFFFFF)
    return mixed


def block_spawn_key(seed: int, block_id: int) -> int:
    """Spawn key of one flash block's RNG streams inside a scenario.

    ``block_spawn_key(seed, b)`` equals ``spawn_key(seed, f"block-{b}")``
    — the address :class:`~repro.flash.block.FlashBlock` has always used
    — stated as its own primitive because the block-group executor
    (:mod:`repro.controller.executor`) leans on it: a block's streams
    depend only on the root seed and the block id, never on the order
    blocks are materialized, touched, or scheduled across executor
    workers, so per-block physics tasks can run concurrently without any
    RNG stream crossing between blocks.
    """
    return spawn_key(seed, f"block-{block_id}")


class RngFactory:
    """Factory producing named, reproducible RNG streams from one root seed.

    A factory is shared across the components of one experiment; each
    component requests its own stream by name.  Requesting the same name
    twice returns a *fresh* generator with identical state, so callers must
    request once and hold the generator if they need a persistent stream.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for stream *name* under this root seed."""
        return stream(name, self.seed)

    def child(self, suffix: str | int) -> "RngFactory":
        """Derive a sub-factory (e.g. one per block) from this factory."""
        return RngFactory(spawn_key(self.seed, suffix))

    def spawn(self, *parts: str | int | float) -> "RngFactory":
        """Derive a sub-factory along a label path (see :func:`spawn_key`).

        ``factory.spawn(a, b)`` is ``factory.child(a).child(b)``: a
        stable address for one scenario's randomness inside a sweep,
        independent of which worker process runs it.
        """
        return RngFactory(spawn_key(self.seed, *parts))

    def for_block(self, block_id: int) -> "RngFactory":
        """Sub-factory owning flash block *block_id*'s streams.

        The factory-level form of :func:`block_spawn_key` (bit-identical
        to the historical ``child(f"block-{block_id}")`` derivation):
        each block's randomness has a stable per-block address, the
        executor-safety property documented there.
        """
        return RngFactory(block_spawn_key(self.seed, block_id))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self.seed})"
