"""Program/erase cycling wear transforms.

P/E cycling damages the tunnel oxide.  The paper measures three consequences
that we model as multiplicative wear factors:

- state distributions widen and creep upward (baseline RBER grows with wear,
  Figure 3 intercepts);
- each read disturb shifts Vth more on a worn block; the damage factor
  ``(pe / 2000) ** 1.46`` reproduces the Figure 3 slope table exactly;
- retention leakage accelerates with wear (Figures 5 and 6 are measured at
  8K P/E cycles).
"""

from __future__ import annotations

import numpy as np

from repro.flash.state import MlcState
from repro.physics import constants


def _effective_pe(pe_cycles: float | np.ndarray) -> np.ndarray:
    """Clamp wear below the floor; a nearly-fresh block behaves like one at
    the floor rather than becoming infinitely reliable."""
    pe = np.asarray(pe_cycles, dtype=np.float64)
    if (pe < 0).any():
        raise ValueError("P/E cycle count cannot be negative")
    return np.maximum(pe, constants.PE_FLOOR)


def sigma_widening(pe_cycles: float | np.ndarray) -> np.ndarray | float:
    """Multiplicative widening of distribution scales at *pe_cycles* wear."""
    pe = np.asarray(pe_cycles, dtype=np.float64)
    if (pe < 0).any():
        raise ValueError("P/E cycle count cannot be negative")
    out = np.sqrt(1.0 + pe / constants.SIGMA_WIDEN_PE)
    return float(out) if out.ndim == 0 else out


def mean_creep(state: MlcState, pe_cycles: float | np.ndarray) -> np.ndarray | float:
    """Upward creep of the state mean due to trapped charge.

    The erased state creeps fastest (it is the farthest from its verify
    level, and trapped electrons raise its apparent Vth most visibly).
    """
    pe = np.asarray(pe_cycles, dtype=np.float64)
    if (pe < 0).any():
        raise ValueError("P/E cycle count cannot be negative")
    scale = (
        constants.ER_CREEP_SCALE
        if MlcState(state) is MlcState.ER
        else constants.PROG_CREEP_SCALE
    )
    out = scale * (pe / 1.0e4) ** constants.CREEP_EXPONENT
    return float(out) if out.ndim == 0 else out


def read_disturb_damage(pe_cycles: float | np.ndarray) -> np.ndarray | float:
    """Read-disturb damage factor at *pe_cycles* wear.

    Power law calibrated to the paper's Figure 3 slope table: the RBER slope
    grows as (pe / 2000) ** 1.46, which matches all seven reported slopes
    within reading accuracy (15K/2K ratio = 19.0).
    """
    pe = _effective_pe(pe_cycles)
    out = (pe / constants.RD_DAMAGE_PE_REF) ** constants.RD_DAMAGE_EXPONENT
    return float(out) if out.ndim == 0 else out


def retention_damage(pe_cycles: float | np.ndarray) -> np.ndarray | float:
    """Retention-leakage damage factor at *pe_cycles* wear."""
    pe = _effective_pe(pe_cycles)
    out = (pe / constants.RET_DAMAGE_PE_REF) ** constants.RET_DAMAGE_EXPONENT
    return float(out) if out.ndim == 0 else out
