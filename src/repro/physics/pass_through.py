"""Pass-through (bitline cutoff) errors from a relaxed Vpass.

During a read, every unread wordline of the block is driven at Vpass so its
cells conduct regardless of their state.  If Vpass is relaxed below the
threshold voltage of *any* unread cell on a bitline, that bitline cannot
conduct and the read senses "no current" — i.e. the target cell appears to
be above every applied reference, regardless of its true state (paper
Section 2.3).  Unlike read disturb these errors do not move any threshold
voltage; raising Vpass back makes them vanish.

Program-verify bounds programmed voltages below ``PROGRAM_VERIFY_MAX``, so a
small relaxation induces *no* errors (the flat region of Figure 5).
Retention loss lowers voltages over time — but heterogeneously: the
fast-leakers drop quickly while slow-leaking cells linger near the verify
bound, so older data tolerates a deeper relaxation without the error
population ever collapsing outright (the Figure 5 age ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.state import MlcState, STATE_ORDER
from repro.physics import constants
from repro.physics.distributions import state_distribution
from repro.physics.retention import leak_cdf, retention_coefficient


@dataclass(frozen=True)
class PassThroughModel:
    """Analytic model of the extra raw bit errors from relaxing Vpass.

    ``wordlines_per_block`` controls how many unread cells share each
    bitline: the cutoff probability per bitline is
    1 - (1 - p_cell)^(W - 1).
    """

    wordlines_per_block: int = 128
    state_fractions: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)
    grid_points: int = 400

    def __post_init__(self) -> None:
        if self.wordlines_per_block < 2:
            raise ValueError("need at least two wordlines for pass-through")
        if abs(sum(self.state_fractions) - 1.0) > 1e-9:
            raise ValueError("state fractions must sum to 1")

    def cell_cutoff_probability(
        self,
        vpass: float,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
    ) -> float:
        """P[one cell's current Vth exceeds *vpass*].

        A cell programmed at v0 > vpass is still above vpass at age t iff
        its leak factor is below the closed-form requirement
        ``(v0 - vpass) / (k * (v0 - floor))``; the expectation over the
        programmed-voltage distribution is a short quadrature.  Read-disturb
        drift is neglected here (cells high enough to matter are P3 cells,
        whose drift is ~100x smaller than ER's).
        """
        if vpass <= 0:
            raise ValueError("vpass must be positive")
        if vpass >= constants.PROGRAM_VERIFY_MAX:
            return 0.0
        k = float(retention_coefficient(retention_age_seconds, pe_cycles))
        edges = np.linspace(vpass, constants.PROGRAM_VERIFY_MAX, self.grid_points + 1)
        mids = 0.5 * (edges[:-1] + edges[1:])
        if k > 0.0:
            l_req = (mids - vpass) / (k * np.maximum(mids - constants.RET_CHARGE_FLOOR, 1e-9))
            still_above = leak_cdf(l_req)
        else:
            still_above = np.ones_like(mids)
        total = 0.0
        for frac, state in zip(self.state_fractions, STATE_ORDER):
            if frac == 0.0:
                continue
            dist = state_distribution(MlcState(state), pe_cycles)
            masses = np.diff(dist.cdf(edges))
            total += frac * float(masses @ still_above)
        return total

    def bitline_cutoff_probability(
        self,
        vpass: float,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
    ) -> float:
        """P[a bitline is cut off during a read] (any of W-1 unread cells)."""
        p = self.cell_cutoff_probability(vpass, pe_cycles, retention_age_seconds)
        return float(1.0 - (1.0 - p) ** (self.wordlines_per_block - 1))

    def additional_rber(
        self,
        vpass: float,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
    ) -> float:
        """Extra raw bit error rate induced by reading at *vpass*.

        A cut-off bitline reads as the highest sensed category; with random
        data this flips the stored bit with probability 1/2 on either page.
        """
        return 0.5 * self.bitline_cutoff_probability(
            vpass, pe_cycles, retention_age_seconds
        )

    def max_safe_vpass_reduction(
        self,
        rber_budget: float,
        pe_cycles: float,
        retention_age_seconds: float = 0.0,
        resolution: float = 1.0,
        max_reduction_fraction: float = 0.12,
    ) -> float:
        """Deepest Vpass (normalized volts below nominal) whose extra RBER
        stays within *rber_budget*, at the given resolution.

        This is the physics-side answer the VpassTuner discovers empirically
        on a block (Figure 6's per-age annotations).
        """
        if rber_budget < 0:
            return 0.0
        from repro.units import VPASS_NOMINAL

        best = 0.0
        steps = int(max_reduction_fraction * VPASS_NOMINAL / resolution)
        for i in range(1, steps + 1):
            reduction = i * resolution
            extra = self.additional_rber(
                VPASS_NOMINAL - reduction, pe_cycles, retention_age_seconds
            )
            if extra > rber_budget:
                break
            best = reduction
        return best
