"""Device-physics models for the simulated 2Y-nm MLC NAND flash chip.

Every stochastic law the paper measures on real silicon is modeled here:

- per-state threshold-voltage distributions (normal body + asymmetric
  Laplace tails, truncated by program-verify), widened and shifted by
  program/erase wear (:mod:`repro.physics.distributions`,
  :mod:`repro.physics.wear`);
- read-disturb drift: a self-limiting exponential-field law with per-cell
  process-variation susceptibility whose heavy (Pareto) tail produces the
  paper's linear RBER-vs-read-count growth
  (:mod:`repro.physics.read_disturb`, :mod:`repro.physics.susceptibility`);
- retention leakage, logarithmic in time and proportional to stored charge
  (:mod:`repro.physics.retention`);
- pass-through (bitline cutoff) errors induced by relaxing Vpass
  (:mod:`repro.physics.pass_through`).

All constants live in :mod:`repro.physics.constants` and are calibrated so
the paper's published curves (Figure 3 slope table, Figure 4 crossovers,
Figure 5/6 retention interplay) emerge from the model.
"""

from repro.physics import constants
from repro.physics.distributions import (
    AsymmetricLaplace,
    NormalLaplaceMixture,
    StateParams,
    state_distribution,
)
from repro.physics.wear import (
    read_disturb_damage,
    retention_damage,
    sigma_widening,
    mean_creep,
)
from repro.physics.susceptibility import SusceptibilityModel
from repro.physics.read_disturb import ReadDisturbModel
from repro.physics.retention import (
    retention_shift,
    retained_voltage,
    retention_threshold_inverse,
    sample_leak_factors,
    leak_cdf,
    leak_quadrature,
)
from repro.physics.program import (
    program_error_rate,
    program_error_rber,
    apply_program_errors,
)
from repro.physics.pass_through import PassThroughModel

__all__ = [
    "constants",
    "AsymmetricLaplace",
    "NormalLaplaceMixture",
    "StateParams",
    "state_distribution",
    "read_disturb_damage",
    "retention_damage",
    "sigma_widening",
    "mean_creep",
    "SusceptibilityModel",
    "ReadDisturbModel",
    "retention_shift",
    "retained_voltage",
    "retention_threshold_inverse",
    "sample_leak_factors",
    "leak_cdf",
    "leak_quadrature",
    "program_error_rate",
    "program_error_rber",
    "apply_program_errors",
    "PassThroughModel",
]
