"""Per-cell read-disturb susceptibility (process variation).

The paper's RDR mechanism works *because* cells differ persistently in how
much each read disturb shifts them ("the variation in read disturb shifts
that arise from the underlying process variation within a flash chip",
Section 6.2).  We model each cell's susceptibility ``a`` as a mixture:

- a lognormal body with unit mean (ordinary cells), and
- a small fraction of "weak" cells whose susceptibility follows a truncated
  Pareto law with tail index alpha = 1.

The Pareto tail is the load-bearing modeling choice: its survival function
S(a) ~ 1/a makes the number of cells whose cumulative shift crosses a read
reference grow *linearly* in the read count, which is exactly the paper's
Figure 3 observation.  (Any flip-threshold distribution with locally flat
density yields linear RBER growth; alpha = 1 gives it over the full
measured window.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr

from repro.physics import constants


@dataclass(frozen=True)
class SusceptibilityModel:
    """Mixture susceptibility model with analytic survival function."""

    lognormal_sigma: float = constants.SUSCEPT_LOGNORMAL_SIGMA
    weak_fraction: float = constants.WEAK_CELL_FRACTION
    weak_a_min: float = constants.WEAK_CELL_A_MIN
    weak_a_max: float = constants.WEAK_CELL_A_MAX

    def __post_init__(self) -> None:
        if not 0.0 <= self.weak_fraction < 1.0:
            raise ValueError("weak fraction must be in [0, 1)")
        if not 0.0 < self.weak_a_min < self.weak_a_max:
            raise ValueError("need 0 < a_min < a_max")
        if self.lognormal_sigma <= 0:
            raise ValueError("lognormal sigma must be positive")

    @property
    def _lognormal_mu(self) -> float:
        # Unit-mean lognormal: E[a] = exp(mu + sigma^2/2) = 1.
        return -0.5 * self.lognormal_sigma**2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw per-cell susceptibilities (persistent for a cell's lifetime)."""
        out = rng.lognormal(self._lognormal_mu, self.lognormal_sigma, size)
        weak = rng.random(size) < self.weak_fraction
        n_weak = int(weak.sum())
        if n_weak:
            out[weak] = self._sample_weak(rng, n_weak)
        return out

    def _sample_weak(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Inverse-CDF sampling of the truncated Pareto(alpha=1) component."""
        u = rng.random(size)
        inv_min = 1.0 / self.weak_a_min
        inv_max = 1.0 / self.weak_a_max
        return 1.0 / (inv_min - u * (inv_min - inv_max))

    def survival(self, a: np.ndarray | float) -> np.ndarray:
        """P[susceptibility > a] for the full mixture (vectorized).

        This is the closed form that makes the analytic RBER model exact:
        given a read count, the set of flipped cells is exactly the set with
        susceptibility above a deterministic per-cell requirement.
        """
        a = np.asarray(a, dtype=np.float64)
        out = np.empty(np.shape(a), dtype=np.float64)
        positive = a > 0.0
        # Lognormal body survival.
        body = np.ones_like(out)
        safe_a = np.where(positive, a, 1.0)
        z = (np.log(safe_a) - self._lognormal_mu) / self.lognormal_sigma
        body = np.where(positive, 1.0 - ndtr(z), 1.0)
        # Truncated-Pareto weak survival.
        inv_min = 1.0 / self.weak_a_min
        inv_max = 1.0 / self.weak_a_max
        clipped = np.clip(safe_a, self.weak_a_min, self.weak_a_max)
        weak = (1.0 / clipped - inv_max) / (inv_min - inv_max)
        weak = np.where(a <= self.weak_a_min, 1.0, weak)
        weak = np.where(a >= self.weak_a_max, 0.0, weak)
        out = (1.0 - self.weak_fraction) * body + self.weak_fraction * weak
        return out if out.ndim else float(out)


#: Default model shared by the Monte-Carlo and analytic layers.
DEFAULT_SUSCEPTIBILITY = SusceptibilityModel()
