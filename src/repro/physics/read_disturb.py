"""Read-disturb threshold-voltage drift.

Each read to a page applies the pass-through voltage to every *other*
wordline of the block; the resulting weak programming stress injects charge
into the unread cells.  We model the per-read drift of a cell at voltage V
as a field-driven tunneling law:

    dV/dn = A_RD * a_cell * damage_rd(pe)
            * exp(-K_V * V) * exp(K_VPASS * (vpass - 512))

which integrates in closed form to self-limiting logarithmic growth:

    V(n) = (1/K_V) * ln( exp(K_V * V0) + K_V * C * n ),
    C    = A_RD * a_cell * damage_rd(pe) * exp(K_VPASS * (vpass - 512)).

Consequences, all observed in the paper:

- lower-Vth cells shift more (exp(-K_V * V): the erased state is hit
  hardest, Figure 2b);
- a worn block shifts more per read (damage factor, Figure 3);
- relaxing Vpass reduces the per-read shift *exponentially* (K_VPASS,
  Figure 4);
- drift slows as the cell rises (logarithmic in n, Figure 2a).

Because the Vpass dependence factors out of the integral, the sufficient
statistic for a variable-Vpass read history is the accumulated *exposure*
``E = sum_reads exp(K_VPASS * (vpass_read - 512))``; the device layer tracks
exposure per wordline and materializes voltages lazily through this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import VPASS_NOMINAL
from repro.physics import constants
from repro.physics.wear import read_disturb_damage


def vpass_exposure_weight(vpass: float | np.ndarray) -> np.ndarray | float:
    """Exposure contributed by one read performed at *vpass*.

    At nominal Vpass the weight is 1; each 1% relaxation divides it by
    about e^1.1 (the paper's Figure 4 calibration).
    """
    vpass = np.asarray(vpass, dtype=np.float64)
    if (vpass <= 0).any():
        raise ValueError("vpass must be positive")
    out = np.exp(constants.K_VPASS * (vpass - VPASS_NOMINAL))
    return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class ReadDisturbModel:
    """Closed-form read-disturb drift with configurable constants."""

    amplitude: float = constants.A_RD
    k_v: float = constants.K_V
    k_vpass: float = constants.K_VPASS

    def rate_coefficient(
        self,
        susceptibility: np.ndarray | float,
        pe_cycles: float,
    ) -> np.ndarray | float:
        """The constant C of the drift law (at unit exposure weight)."""
        return self.amplitude * np.asarray(susceptibility, np.float64) * read_disturb_damage(
            pe_cycles
        )

    def drifted_voltage(
        self,
        v0: np.ndarray | float,
        exposure: np.ndarray | float,
        susceptibility: np.ndarray | float,
        pe_cycles: float,
    ) -> np.ndarray:
        """Voltage after accumulated disturb *exposure* (closed form).

        ``exposure`` is the Vpass-weighted read count (see module docstring);
        for a constant nominal Vpass it equals the raw read count.
        """
        v0 = np.asarray(v0, dtype=np.float64)
        exposure = np.asarray(exposure, dtype=np.float64)
        if (exposure < 0).any():
            raise ValueError("exposure cannot be negative")
        c = self.rate_coefficient(susceptibility, pe_cycles)
        # exp(K_V * v0) stays modest (K_V * 512 ~ 6) so no overflow care
        # is needed beyond float64.
        return np.log(np.exp(self.k_v * v0) + self.k_v * c * exposure) / self.k_v

    def drift(
        self,
        v0: np.ndarray | float,
        exposure: np.ndarray | float,
        susceptibility: np.ndarray | float,
        pe_cycles: float,
    ) -> np.ndarray:
        """Vth shift (always >= 0) after the given exposure."""
        return self.drifted_voltage(v0, exposure, susceptibility, pe_cycles) - np.asarray(
            v0, dtype=np.float64
        )

    def required_susceptibility(
        self,
        v0: np.ndarray | float,
        v_target: float,
        exposure: float,
        pe_cycles: float,
    ) -> np.ndarray:
        """Minimum susceptibility for a cell at *v0* to reach *v_target*.

        Inverts the closed form: drift is monotone in susceptibility, so
        P[V(n) > v_target] = S(required_susceptibility) with S the
        susceptibility survival function.  This is what makes the analytic
        RBER model exact rather than a Monte-Carlo average.
        """
        if exposure < 0:
            raise ValueError("exposure cannot be negative")
        v0 = np.asarray(v0, dtype=np.float64)
        base = self.amplitude * read_disturb_damage(pe_cycles)
        if exposure == 0 or base == 0:
            out = np.full(v0.shape, np.inf)
            out[v0 >= v_target] = 0.0
            return out
        need = (np.exp(self.k_v * v_target) - np.exp(self.k_v * v0)) / (
            self.k_v * base * exposure
        )
        return np.maximum(need, 0.0)


#: Default drift model shared by the Monte-Carlo and analytic layers.
DEFAULT_READ_DISTURB = ReadDisturbModel()
