"""Program errors: cells mis-programmed into an adjacent state.

During incremental step-pulse programming a small, wear-dependent fraction
of cells overshoots (or fails to inhibit) and settles in a state adjacent
to the intended one.  Under gray coding this costs exactly one bit per
affected cell, producing the error floor visible before any retention or
read disturb accumulates (the intercepts of the paper's Figure 3 and the
day-0 level of Figure 6).

The Monte-Carlo layer applies :func:`apply_program_errors` at program time;
the analytic layer adds the equivalent closed-form term
:func:`program_error_rber`.
"""

from __future__ import annotations

import numpy as np

from repro.physics import constants


def program_error_rate(pe_cycles: float) -> float:
    """Fraction of programmed cells that land in an adjacent state."""
    if pe_cycles < 0:
        raise ValueError("P/E cycle count cannot be negative")
    pe = max(pe_cycles, constants.PE_FLOOR)
    return constants.PROGRAM_ERROR_RATE_REF * (
        pe / constants.PROGRAM_ERROR_PE_REF
    ) ** constants.PROGRAM_ERROR_PE_EXPONENT


def program_error_rber(pe_cycles: float) -> float:
    """Raw bit error rate contributed by program errors.

    One bit flips per mis-programmed cell (adjacent states differ by one
    gray-coded bit), and each cell stores two bits.
    """
    return program_error_rate(pe_cycles) / 2.0


def apply_program_errors(
    intended_states: np.ndarray,
    pe_cycles: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return the states cells *actually* land in.

    Mis-programmed cells move one state up when possible, otherwise one
    state down (the top state can only undershoot).
    """
    states = np.asarray(intended_states, dtype=np.int8).copy()
    rate = program_error_rate(pe_cycles)
    if rate <= 0.0:
        return states
    wrong = rng.random(states.shape) < rate
    if not wrong.any():
        return states
    moved = states[wrong]
    moved = np.where(moved < 3, moved + 1, moved - 1).astype(np.int8)
    states[wrong] = moved
    return states
