"""Calibrated physical constants of the simulated flash device.

The paper's chips are proprietary, so absolute constants cannot be copied
from silicon.  Instead, every constant here is calibrated so that the
*published* observables emerge (see DESIGN.md section 5):

- the Figure 3 slope table (RBER slope 1.00e-9 .. 1.90e-8 per read for
  2K .. 15K P/E cycles) pins the read-disturb damage exponent and amplitude;
- Figure 4 (one-percent Vpass relaxation multiplies the tolerable read count
  by roughly e^1.1) pins ``K_VPASS``;
- Figures 5 and 6 (extra errors from relaxed Vpass across retention ages,
  safe reduction 4% -> 0%) pin the P3 upper tail and the retention law;
- Figure 2 (visible bulk ER shift after 1M reads) pins the drift amplitude.

All voltages are on the paper's normalized scale: GND = 0, nominal
Vpass = 512.
"""

from __future__ import annotations

from repro.units import VPASS_NOMINAL

# ---------------------------------------------------------------------------
# Read reference voltages (paper Figure 1: Va < Vb < Vc < Vpass).
# ---------------------------------------------------------------------------

VA = 100.0
VB = 227.0
VC = 362.0

#: Default read references in increasing order.
READ_REFERENCES = (VA, VB, VC)

#: Program-verify upper bound: programming retries until the cell threshold
#: voltage lands below this value, which is why a small Vpass relaxation
#: induces *no* read errors (paper Section 2.4, Figure 5 flat region).
PROGRAM_VERIFY_MAX = 507.0

# ---------------------------------------------------------------------------
# Per-state threshold-voltage distribution parameters (fresh cells).
# Each state is a normal body with weight (1 - TAIL_WEIGHT) plus an
# asymmetric Laplace tail component with weight TAIL_WEIGHT; tails are the
# standard model for sub-20nm state distributions (Parnell+ GLOBECOM 2014).
# Values: (mean, sigma, laplace_scale_low, laplace_scale_high).
# ---------------------------------------------------------------------------

TAIL_WEIGHT = 0.03

STATE_MEANS = (36.0, 165.0, 290.0, 415.0)
STATE_SIGMAS = (13.0, 11.0, 10.0, 12.0)
STATE_TAIL_LOW = (13.0, 12.0, 12.0, 10.0)
STATE_TAIL_HIGH = (9.0, 9.0, 9.0, 9.5)

# ---------------------------------------------------------------------------
# Program/erase cycling wear.
# ---------------------------------------------------------------------------

#: Distribution widening: sigma(pe) = sigma0 * sqrt(1 + pe / SIGMA_WIDEN_PE).
SIGMA_WIDEN_PE = 20000.0

#: Erased-state mean creep (trapped charge raises the erased distribution):
#: mu_ER(pe) = mu_ER + ER_CREEP_SCALE * (pe / 1e4) ** CREEP_EXPONENT.
ER_CREEP_SCALE = 12.0
PROG_CREEP_SCALE = 3.0
CREEP_EXPONENT = 0.6

#: Read-disturb damage factor (pe / RD_DAMAGE_PE_REF) ** RD_DAMAGE_EXPONENT.
#: The exponent 1.46 reproduces the paper's Figure 3 slope table exactly:
#: (15000 / 2000) ** 1.46 = 19 = 1.90e-8 / 1.00e-9.
RD_DAMAGE_PE_REF = 2000.0
RD_DAMAGE_EXPONENT = 1.46

#: Retention damage factor (pe / RET_DAMAGE_PE_REF) ** RET_DAMAGE_EXPONENT.
RET_DAMAGE_PE_REF = 8000.0
RET_DAMAGE_EXPONENT = 0.9

#: Wear factors saturate below this cycle count (a handful of cycles does
#: not make a block *more* reliable than the floor).
PE_FLOOR = 200.0

# ---------------------------------------------------------------------------
# Read-disturb drift law:
#:   dV/dn = A_RD * a_cell * damage_rd(pe) * exp(-K_V * V)
#:                * exp(K_VPASS * (vpass - VPASS_NOMINAL))
#: integrated in closed form (self-limiting logarithmic growth).
# ---------------------------------------------------------------------------

#: Drift amplitude (normalized volts per read at V = 0 for a median cell on
#: a block at the damage reference wear level).
A_RD = 2.8e-5

#: Cell-voltage sensitivity of the tunneling rate: lower-Vth cells are
#: disturbed more (paper Section 2.1).  K_V = 24 / 512 makes the erased
#: state dominate disturb errors (~300x the P1 rate) and confines crossed
#: cells to an exponential pile (scale 512/24 ~ 21) just above the read
#: reference — the boundary population RDR corrects (paper Figure 9).
K_V = 24.0 / VPASS_NOMINAL

#: Pass-through-voltage sensitivity of the tunneling rate.  K_VPASS =
#: 110 / 512 means each 1% Vpass relaxation multiplies the per-read disturb
#: by exp(-1.1) ~ 1/3, which reproduces the paper's "2% relaxation halves
#: RBER at 100K reads" and the exponential growth in tolerable reads
#: (Figure 4).
K_VPASS = 110.0 / VPASS_NOMINAL

# ---------------------------------------------------------------------------
# Per-cell disturb susceptibility (process variation).  Body: lognormal with
# unit mean.  Weak tail: truncated Pareto with alpha = 1, whose survival
# S(a) ~ 1/a makes the population flip rate *linear* in read count — the
# paper's central Figure 3 observation.
# ---------------------------------------------------------------------------

SUSCEPT_LOGNORMAL_SIGMA = 0.45
WEAK_CELL_FRACTION = 0.061
WEAK_CELL_A_MIN = 10.0
WEAK_CELL_A_MAX = 2.0e4

# ---------------------------------------------------------------------------
# Retention leakage: dV = -R_RET * damage_ret(pe) * q * ln(1 + t / T0_RET),
# with q = max(V - RET_CHARGE_FLOOR, 0) / 512 the normalized stored charge.
# ---------------------------------------------------------------------------

R_RET = 2.5
T0_RET_SECONDS = 3600.0
RET_CHARGE_FLOOR = 40.0

#: Per-cell retention-leak heterogeneity (lognormal sigma, unit mean).
#: Process variation makes some cells fast-leaking and some slow-leaking —
#: the effect the authors' companion RFR mechanism exploits (HPCA 2015) and
#: the reason relaxed-Vpass read errors shrink but never fully vanish with
#: retention age (Figure 5).
RET_LEAK_SIGMA = 0.5

# ---------------------------------------------------------------------------
# Program errors: a small fraction of cells lands in an adjacent state
# during programming (ISPP overshoot / inhibit failures; Cai et al., DATE
# 2012).  Each such cell costs exactly one bit under gray coding.  This is
# the wear-dependent error floor visible at zero reads and zero retention.
# ---------------------------------------------------------------------------

PROGRAM_ERROR_RATE_REF = 2.4e-4
PROGRAM_ERROR_PE_REF = 8000.0
PROGRAM_ERROR_PE_EXPONENT = 1.1

# ---------------------------------------------------------------------------
# ECC provisioning (paper Section 2.5): tolerable RBER about 1e-3, and the
# mechanisms reserve 20% of the correction capability as margin.
# ---------------------------------------------------------------------------

ECC_CODEWORD_BITS = 9216
ECC_T_BITS = 40
ECC_RESERVED_MARGIN_FRACTION = 0.2
