"""Retention leakage: cells slowly lose charge after programming.

The median shift is logarithmic in time and proportional to the stored
charge (cells programmed higher leak faster), accelerated by P/E wear:

    dV(t) = -leak * R_RET * damage_ret(pe) * q(V0) * ln(1 + t / T0),
    q(V0) = max(V0 - RET_CHARGE_FLOOR, 0) / 512,

where ``leak`` is a per-cell lognormal factor (unit mean): process
variation makes some cells fast-leaking and some slow-leaking.  The
heterogeneity matters for two paper observations: the slow-leakers keep a
persistent (if shrinking) population of high-Vth cells, so relaxed-Vpass
read errors decay with retention age but never fully vanish (Figure 5);
and error growth over days follows a soft power law rather than a sharp
Gaussian-edge cliff (Figure 6).

This is the standard log-time retention law (Cai et al., HPCA 2015); the
fast/slow-leaking distinction is the same one the authors' RFR recovery
mechanism exploits.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from repro.physics import constants
from repro.physics.wear import retention_damage

#: lognormal location for a unit-mean leak factor.
_LEAK_MU = -0.5 * constants.RET_LEAK_SIGMA**2


def _log_term(age_seconds: float | np.ndarray) -> np.ndarray:
    age = np.asarray(age_seconds, dtype=np.float64)
    if (age < 0).any():
        raise ValueError("retention age cannot be negative")
    return np.log1p(age / constants.T0_RET_SECONDS)


def retention_coefficient(age_seconds: float | np.ndarray, pe_cycles: float) -> np.ndarray | float:
    """The k in ``shift = -leak * k * (v0 - floor)``: fraction of stored
    charge lost by a median cell at this age and wear."""
    out = (
        constants.R_RET
        * retention_damage(pe_cycles)
        * _log_term(age_seconds)
        / 512.0
    )
    return float(out) if np.ndim(out) == 0 else out


def retention_shift(
    v0: np.ndarray | float,
    age_seconds: float | np.ndarray,
    pe_cycles: float,
    leak: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Vth shift (<= 0) of a cell programmed at *v0* after *age_seconds*."""
    v0 = np.asarray(v0, dtype=np.float64)
    charge = np.maximum(v0 - constants.RET_CHARGE_FLOOR, 0.0)
    k = retention_coefficient(age_seconds, pe_cycles)
    return -np.asarray(leak, dtype=np.float64) * k * charge


def retained_voltage(
    v0: np.ndarray | float,
    age_seconds: float | np.ndarray,
    pe_cycles: float,
    leak: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Voltage after retention loss (never below the charge floor)."""
    v0 = np.asarray(v0, dtype=np.float64)
    out = v0 + retention_shift(v0, age_seconds, pe_cycles, leak)
    # Leakage stops once the cell is down at the neutral level.
    return np.maximum(out, np.minimum(v0, constants.RET_CHARGE_FLOOR))


def sample_leak_factors(rng: np.random.Generator, size: int) -> np.ndarray:
    """Draw persistent per-cell leak factors (unit-mean lognormal)."""
    return rng.lognormal(_LEAK_MU, constants.RET_LEAK_SIGMA, size)


def leak_cdf(x: np.ndarray | float) -> np.ndarray:
    """P[leak factor <= x], vectorized; 0 for non-positive x."""
    x = np.asarray(x, dtype=np.float64)
    positive = x > 0
    safe = np.where(positive, x, 1.0)
    z = (np.log(safe) - _LEAK_MU) / constants.RET_LEAK_SIGMA
    out = np.where(positive, ndtr(z), 0.0)
    return out if out.ndim else float(out)


def leak_quadrature(nodes: int = 9) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Hermite nodes and weights for expectations over the leak
    factor: E[f(leak)] ~ sum(w * f(l)).  Weights sum to 1."""
    x, w = np.polynomial.hermite.hermgauss(nodes)
    leaks = np.exp(_LEAK_MU + np.sqrt(2.0) * constants.RET_LEAK_SIGMA * x)
    return leaks, w / np.sqrt(np.pi)


def retention_threshold_inverse(
    v_after: float,
    age_seconds: float,
    pe_cycles: float,
    leak: float = 1.0,
) -> float:
    """Invert the retention law for a given leak factor: the programmed v0
    that decays to exactly *v_after*.

    The shift is linear in v0 above the charge floor, so the inverse is
    closed-form.
    """
    k = float(leak) * float(retention_coefficient(age_seconds, pe_cycles))
    if v_after <= constants.RET_CHARGE_FLOOR:
        return float(v_after)
    if k >= 1.0:
        # The cell would have fully collapsed to the floor; no finite v0
        # stays above the floor at this leak rate.
        return float("inf")
    # v_after = v0 - k * (v0 - floor)  =>  v0 = (v_after - k * floor) / (1 - k)
    return float((v_after - k * constants.RET_CHARGE_FLOOR) / (1.0 - k))
