"""Threshold-voltage distributions: normal body + asymmetric Laplace tails.

Sub-20nm MLC state distributions are well modeled by a Gaussian body with
exponential tails (Parnell et al., GLOBECOM 2014; Luo et al., JSAC 2016).
We implement the mixture

    V ~ (1 - w) * Normal(mu, sigma) + w * AsymmetricLaplace(mu, s_lo, s_hi)

truncated above by the program-verify bound.  Wear (P/E cycling) widens the
body and tails and creeps the means upward; the wear transforms live in
:mod:`repro.physics.wear` and are applied through :func:`state_distribution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np
from scipy.special import ndtr  # Gaussian CDF, vectorized

from repro.flash.state import MlcState
from repro.physics import constants
from repro.physics.wear import mean_creep, sigma_widening


@dataclass(frozen=True)
class AsymmetricLaplace:
    """Asymmetric Laplace distribution with distinct low/high scales.

    Density: f(x) = exp((x - mu) / s_lo) / (s_lo + s_hi) for x < mu and
    f(x) = exp(-(x - mu) / s_hi) / (s_lo + s_hi) for x >= mu.
    """

    mu: float
    scale_low: float
    scale_high: float

    def __post_init__(self) -> None:
        if self.scale_low <= 0 or self.scale_high <= 0:
            raise ValueError("Laplace scales must be positive")

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = self.scale_low + self.scale_high
        below = (self.scale_low / total) * np.exp(
            np.minimum(x - self.mu, 0.0) / self.scale_low
        )
        above = 1.0 - (self.scale_high / total) * np.exp(
            -np.maximum(x - self.mu, 0.0) / self.scale_high
        )
        return np.where(x < self.mu, below, above)

    def sf(self, x: np.ndarray | float) -> np.ndarray:
        return 1.0 - self.cdf(x)

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = self.scale_low + self.scale_high
        lo = np.exp(np.minimum(x - self.mu, 0.0) / self.scale_low)
        hi = np.exp(-np.maximum(x - self.mu, 0.0) / self.scale_high)
        return np.where(x < self.mu, lo, hi) / total

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        p_low = self.scale_low / (self.scale_low + self.scale_high)
        low = rng.random(size) < p_low
        out = np.empty(size, dtype=np.float64)
        n_low = int(np.count_nonzero(low))
        out[low] = self.mu - rng.exponential(self.scale_low, n_low)
        out[~low] = self.mu + rng.exponential(self.scale_high, size - n_low)
        return out


@dataclass(frozen=True)
class NormalLaplaceMixture:
    """Gaussian body plus asymmetric-Laplace tail component, truncated above.

    ``upper_bound`` models program-verify: samples are redrawn until they
    land below it, and the analytic CDF/SF are renormalized accordingly.
    """

    mu: float
    sigma: float
    tail_weight: float
    scale_low: float
    scale_high: float
    upper_bound: float = np.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.tail_weight < 1.0:
            raise ValueError("tail weight must be in [0, 1)")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.upper_bound <= self.mu:
            raise ValueError("upper bound must exceed the mean")

    @cached_property
    def _laplace(self) -> AsymmetricLaplace:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits; sampling hits this on every draw.
        return AsymmetricLaplace(self.mu, self.scale_low, self.scale_high)

    def _raw_cdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        body = ndtr((x - self.mu) / self.sigma)
        return (1.0 - self.tail_weight) * body + self.tail_weight * self._laplace.cdf(x)

    def _truncation_mass(self) -> float:
        if np.isinf(self.upper_bound):
            return 1.0
        return float(self._raw_cdf(self.upper_bound))

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        """CDF of the truncated mixture."""
        x = np.asarray(x, dtype=np.float64)
        mass = self._truncation_mass()
        return np.minimum(self._raw_cdf(x) / mass, 1.0)

    def sf(self, x: np.ndarray | float) -> np.ndarray:
        """Survival function (P[V > x]) of the truncated mixture."""
        return 1.0 - self.cdf(x)

    def pdf(self, x: np.ndarray | float) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        body = np.exp(-0.5 * ((x - self.mu) / self.sigma) ** 2) / (
            self.sigma * np.sqrt(2.0 * np.pi)
        )
        raw = (1.0 - self.tail_weight) * body + self.tail_weight * self._laplace.pdf(x)
        raw = raw / self._truncation_mass()
        if np.isfinite(self.upper_bound):
            raw = np.where(x > self.upper_bound, 0.0, raw)
        return raw

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw samples, rejection-resampling anything above the bound."""
        out = self._sample_raw(rng, size)
        if np.isfinite(self.upper_bound):
            bad = out > self.upper_bound
            # Program-verify retries; offender fraction is ~1e-4 so a few
            # rounds always suffice.
            for _ in range(100):
                n_bad = int(np.count_nonzero(bad))
                if n_bad == 0:
                    break
                out[bad] = self._sample_raw(rng, n_bad)
                bad = out > self.upper_bound
            else:  # pragma: no cover - defensive
                out = np.minimum(out, self.upper_bound)
        return out

    def _sample_raw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        tail = rng.random(size) < self.tail_weight
        out = np.empty(size, dtype=np.float64)
        n_tail = int(np.count_nonzero(tail))
        out[~tail] = rng.normal(self.mu, self.sigma, size - n_tail)
        if n_tail:
            out[tail] = self._laplace.sample(rng, n_tail)
        return out

    def mass_between(self, lo: float, hi: float) -> float:
        """Probability mass on the interval (lo, hi]."""
        return float(self.cdf(hi) - self.cdf(lo))


@dataclass(frozen=True)
class StateParams:
    """Fresh (zero-wear) distribution parameters for one MLC state."""

    mean: float
    sigma: float
    tail_low: float
    tail_high: float


#: Fresh parameters per state, from the calibration table in constants.
FRESH_STATE_PARAMS = {
    MlcState(i): StateParams(
        mean=constants.STATE_MEANS[i],
        sigma=constants.STATE_SIGMAS[i],
        tail_low=constants.STATE_TAIL_LOW[i],
        tail_high=constants.STATE_TAIL_HIGH[i],
    )
    for i in range(4)
}


@lru_cache(maxsize=512)
def state_distribution(state: MlcState, pe_cycles: float) -> NormalLaplaceMixture:
    """Return the Vth distribution of *state* on a block with *pe_cycles* wear.

    Wear widens the body and tails (oxide damage adds programming noise) and
    creeps the means upward (trapped charge); see
    :mod:`repro.physics.wear`.  Programmed states are truncated above by the
    program-verify bound; the erased state is far below the bound so the
    truncation is inert for it.

    Memoized: program paths resolve the same (state, wear) pair for every
    wordline of a block, and the mixture is immutable.
    """
    params = FRESH_STATE_PARAMS[MlcState(state)]
    widen = sigma_widening(pe_cycles)
    return NormalLaplaceMixture(
        mu=params.mean + mean_creep(MlcState(state), pe_cycles),
        sigma=params.sigma * widen,
        tail_weight=constants.TAIL_WEIGHT,
        scale_low=params.tail_low * widen,
        scale_high=params.tail_high * widen,
        upper_bound=constants.PROGRAM_VERIFY_MAX,
    )
