"""Reproduction of "Read Disturb Errors in MLC NAND Flash Memory:
Characterization, Mitigation, and Recovery" (Cai et al., DSN 2015).

Public API re-exports: the simulated device (:class:`FlashChip`), the
analytic channel model (:class:`FlashChannelModel`), the paper's two
mechanisms (:class:`VpassTuner`, :class:`ReadDisturbRecovery`), the
unified simulation engine (:class:`SimulationEngine` and its backends),
and the sharded sweep subsystem (:class:`ScenarioGrid`,
:class:`SweepRunner`, ``python -m repro.sweep``).  See README.md for a
quickstart and docs/architecture.md for the system contracts.
"""

from repro.units import VPASS_NOMINAL, days, hours
from repro.rng import RngFactory
from repro.flash import (
    FlashChip,
    FlashBlock,
    FlashGeometry,
    MlcState,
    ReadReferences,
)
from repro.ecc import EccConfig, EccDecoder, DEFAULT_ECC, UncorrectableError
from repro.model import (
    FlashChannelModel,
    BaselinePolicy,
    TunedVpassPolicy,
    endurance,
    worst_case_rber,
)
from repro.core import (
    VpassTuner,
    TunerConfig,
    TuningOutcome,
    MonteCarloTunableBlock,
    ReadDisturbRecovery,
    RdrConfig,
    RdrOutcome,
    predict_worst_page,
)
from repro.controller import (
    SimulationEngine,
    SsdSimulator,
    SsdConfig,
    SsdRunStats,
    CounterBackend,
    FlashChipBackend,
    PhysicsBackend,
    SerialExecutor,
    ThreadedExecutor,
    build_engine,
    run_scenario,
)
from repro.workloads import (
    BackendSpec,
    GeometrySpec,
    PolicySpec,
    Scenario,
    ScenarioGrid,
    suite_grid,
)
from repro.parallel import (
    ScenarioFailure,
    ScenarioResult,
    SweepReport,
    SweepRunner,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "VPASS_NOMINAL",
    "days",
    "hours",
    "RngFactory",
    "FlashChip",
    "FlashBlock",
    "FlashGeometry",
    "MlcState",
    "ReadReferences",
    "EccConfig",
    "EccDecoder",
    "DEFAULT_ECC",
    "UncorrectableError",
    "FlashChannelModel",
    "BaselinePolicy",
    "TunedVpassPolicy",
    "endurance",
    "worst_case_rber",
    "VpassTuner",
    "TunerConfig",
    "TuningOutcome",
    "MonteCarloTunableBlock",
    "ReadDisturbRecovery",
    "RdrConfig",
    "RdrOutcome",
    "predict_worst_page",
    "SimulationEngine",
    "SsdSimulator",
    "SsdConfig",
    "SsdRunStats",
    "CounterBackend",
    "FlashChipBackend",
    "PhysicsBackend",
    "SerialExecutor",
    "ThreadedExecutor",
    "build_engine",
    "run_scenario",
    "BackendSpec",
    "GeometrySpec",
    "PolicySpec",
    "Scenario",
    "ScenarioGrid",
    "suite_grid",
    "ScenarioFailure",
    "ScenarioResult",
    "SweepReport",
    "SweepRunner",
    "run_sweep",
    "__version__",
]
