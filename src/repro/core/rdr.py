"""Read Disturb Recovery (RDR): the paper's error-recovery mechanism
(Section 4).

When a read has more raw errors than ECC can correct, the drive has
traditionally lost the data.  RDR recovers it offline by exploiting
process variation in disturb susceptibility:

1. Measure each cell's threshold voltage with a read-retry sweep.
2. Induce a significant number of additional read disturbs (default 100K)
   to *other* pages of the block, then sweep again; the per-cell difference
   is the measured disturb shift ΔVth.
3. Cells near a read-reference boundary whose shift exceeds the ΔVref at
   the intersection of the prone/resistant shift distributions are
   classified *disturb-prone*; RDR predicts they belong to the lower of the
   two adjacent states (they drifted up into the boundary).  Cells shifting
   less are *disturb-resistant* and predicted to belong to the higher state.
4. The probabilistic correction does not fix every cell, but it lowers the
   raw error count enough for ECC to take over.

The mechanism here never consults ground truth; the simulator's ground
truth is used only to *evaluate* the outcome, exactly as the paper
evaluates against known programmed data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.histograms import quantized_voltages
from repro.core.classifier import intersection_threshold
from repro.flash.block import FlashBlock
from repro.flash.sensing import DEFAULT_REFERENCES, ReadReferences
from repro.flash.state import bit_errors_between


@dataclass(frozen=True)
class RdrConfig:
    """RDR parameters."""

    #: additional read disturbs induced for the ΔVth characterization
    #: (paper: "a significant number ... (e.g., 100K)").
    extra_reads: int = 400_000
    #: read-retry resolution of the Vth sweeps.
    retry_step: float = 2.0
    #: boundary window above each read reference.  Disturb-shifted cells
    #: pile up exponentially just *above* the reference they crossed, so
    #: the upper window is the recovery-relevant one.
    upper_window: float = 12.0
    #: boundary window below each reference (retention-dropped cells from
    #: the higher state).
    lower_window: float = 8.0
    #: minimum separation between the prone and resistant ΔVth class means
    #: (in units of retry_step) for the classification to be trusted; when
    #: the measured shifts are not bimodal the probabilistic correction
    #: would be a coin flip, so RDR conservatively does nothing.
    min_class_separation_steps: float = 1.5
    #: minimum number of disturb-prone cells at a boundary before acting;
    #: a handful of prone cells means no disturb-error population worth the
    #: risk of probabilistic correction.
    min_prone_cells: int = 10
    #: also reassign cells sensed *below* a reference to the higher state
    #: when disturb-resistant (the paper's symmetric correction rule).
    correct_below_reference: bool = True
    #: sweep range (min, max) covering all states.
    sweep_lo: float = -40.0
    sweep_hi: float = 520.0
    #: charge each recording retry sweep's disturb exposure in one
    #: batched update and sense all steps from one materialization
    #: (bit-identical to the per-step loop — every sweep read targets
    #: the measured wordline, leaving its own exposure invariant; see
    #: :meth:`repro.flash.block.FlashBlock.record_retry_sweep`).  False
    #: keeps the historical per-step loop, the equivalence reference.
    batched_sweeps: bool = True

    def __post_init__(self) -> None:
        if self.extra_reads <= 0:
            raise ValueError("RDR needs a positive number of extra reads")
        if self.retry_step <= 0:
            raise ValueError("retry step must be positive")
        if self.upper_window <= 0 or self.lower_window < 0:
            raise ValueError("boundary windows must be non-negative (upper > 0)")


@dataclass(frozen=True)
class RdrOutcome:
    """Result of recovering one wordline."""

    bits_total: int
    bit_errors_before: int
    bit_errors_after: int
    candidate_cells: int
    corrected_to_lower: int
    corrected_to_higher: int
    delta_vrefs: tuple[float, ...]
    #: references where the prone/resistant split was too weak to act on.
    skipped_boundaries: int = 0

    @property
    def rber_before(self) -> float:
        return self.bit_errors_before / self.bits_total

    @property
    def rber_after(self) -> float:
        return self.bit_errors_after / self.bits_total

    @property
    def reduction_fraction(self) -> float:
        """Fraction of raw bit errors removed (the paper's 36% at 1M reads)."""
        if self.bit_errors_before == 0:
            return 0.0
        return 1.0 - self.bit_errors_after / self.bit_errors_before


class ReadDisturbRecovery:
    """RDR engine operating on a Monte-Carlo flash block."""

    def __init__(
        self,
        config: RdrConfig | None = None,
        references: ReadReferences = DEFAULT_REFERENCES,
    ):
        self.config = config if config is not None else RdrConfig()
        self.references = references

    # ------------------------------------------------------------------

    def recover_wordline(
        self,
        block: FlashBlock,
        wordline: int,
        now: float = 0.0,
    ) -> RdrOutcome:
        """Run RDR on one wordline and evaluate against ground truth.

        The recovery itself (steps 1-3 of the module docstring) uses only
        chip-visible observables; ground truth enters only the returned
        error counts.
        """
        cfg = self.config
        refs = self.references.as_array()

        # Step 1: Vth sweep at failure time.
        vth_before = quantized_voltages(
            block, wordline, cfg.sweep_lo, cfg.sweep_hi, cfg.retry_step, now,
            batched=cfg.batched_sweeps,
        )
        sensed_before = np.searchsorted(refs, vth_before, side="left").astype(np.int64)

        # Step 2: induce additional disturbs on the block (targeting another
        # wordline so the measured one absorbs them), then re-sweep.
        other = (wordline + 1) % block.geometry.wordlines_per_block
        block.apply_read_disturb(cfg.extra_reads, target_wordline=other)
        vth_after = quantized_voltages(
            block, wordline, cfg.sweep_lo, cfg.sweep_hi, cfg.retry_step, now,
            batched=cfg.batched_sweeps,
        )
        delta_vth = vth_after - vth_before

        # Step 3: classify and correct boundary cells around each reference.
        corrected = sensed_before.copy()
        lower_count = 0
        higher_count = 0
        candidates_total = 0
        skipped = 0
        delta_vrefs: list[float] = []
        for ref_index, ref in enumerate(refs):
            near = (vth_before >= ref - cfg.lower_window) & (
                vth_before <= ref + cfg.upper_window
            )
            n_near = int(near.sum())
            if n_near == 0:
                delta_vrefs.append(float("nan"))
                continue
            candidates_total += n_near
            delta_vref = intersection_threshold(delta_vth[near])
            prone = near & (delta_vth > delta_vref)
            resistant = near & ~prone
            # Guard: only act when the two classes are genuinely separated
            # (a bimodal shift distribution).  Without disturb damage the
            # split is quantization noise and correction would misfire.
            if not self._classes_separated(delta_vth, prone, resistant):
                delta_vrefs.append(float("nan"))
                skipped += 1
                continue
            delta_vrefs.append(delta_vref)
            if cfg.correct_below_reference:
                corrected[prone] = ref_index  # lower adjacent state
                corrected[resistant] = ref_index + 1  # higher adjacent state
                lower_count += int(prone.sum())
                higher_count += int(resistant.sum())
            else:
                above = vth_before > ref
                corrected[prone & above] = ref_index
                corrected[resistant & above] = ref_index + 1
                lower_count += int((prone & above).sum())
                higher_count += int((resistant & above).sum())

        true_states = block.true_states_of_wordline(wordline)
        errors_before = int(bit_errors_between(true_states, sensed_before).sum())
        errors_after = int(bit_errors_between(true_states, corrected).sum())
        return RdrOutcome(
            bits_total=2 * true_states.size,
            bit_errors_before=errors_before,
            bit_errors_after=errors_after,
            candidate_cells=candidates_total,
            corrected_to_lower=lower_count,
            corrected_to_higher=higher_count,
            delta_vrefs=tuple(delta_vrefs),
            skipped_boundaries=skipped,
        )

    def rescue_wordline(
        self,
        block: FlashBlock,
        wordline: int,
        now: float = 0.0,
        capability_bits: int | None = None,
    ) -> tuple[RdrOutcome, bool]:
        """Controller-facing recovery: run RDR and judge the outcome.

        Returns ``(outcome, recovered)`` where *recovered* is True when
        the post-RDR raw error count of the wordline fits back within
        *capability_bits* (the ECC strength over the wordline's
        ``outcome.bits_total`` bits), i.e. ECC can now finish the job.
        With no capability given, any error reduction counts as recovery.
        """
        outcome = self.recover_wordline(block, wordline, now)
        if capability_bits is None:
            recovered = outcome.bit_errors_after < outcome.bit_errors_before
        else:
            recovered = outcome.bit_errors_after <= capability_bits
        return outcome, recovered

    def _classes_separated(
        self,
        delta_vth: np.ndarray,
        prone: np.ndarray,
        resistant: np.ndarray,
    ) -> bool:
        """True when the prone/resistant ΔVth means are far enough apart."""
        if int(prone.sum()) < self.config.min_prone_cells or not resistant.any():
            return False
        separation = float(delta_vth[prone].mean() - delta_vth[resistant].mean())
        return separation >= self.config.min_class_separation_steps * self.config.retry_step
