"""Manufacturing-time prediction of a block's worst-case page.

Paper, Section 3: "After manufacturing, we statically find the predicted
worst-case page by programming pseudo-randomly generated data to each page
within the block, and then immediately reading the page to find the error
count."  The page with the highest count is recorded; one daily read of it
yields the maximum estimated error (MEE).
"""

from __future__ import annotations

import numpy as np

from repro.flash.block import FlashBlock


def predict_worst_page(block: FlashBlock, now: float = 0.0) -> int:
    """Program pseudo-random data and return the page with most raw errors.

    The block is erased and re-programmed as part of the procedure (it runs
    once, after manufacturing).  Measurement reads are excluded from
    disturb accounting, as a factory characterization pass would be; the
    whole profile is one batched error count over the block.
    """
    block.erase(now)
    block.program_random(now)
    pages = np.arange(block.geometry.pages_per_block, dtype=np.int64)
    errors = block.page_error_counts(pages, now, record_disturb=False)
    return int(np.argmax(errors))
