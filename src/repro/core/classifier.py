"""Threshold selection for RDR's disturb-prone / disturb-resistant split.

RDR compares each boundary cell's measured threshold-voltage shift against
a delta threshold "at the intersection of the two probability density
functions" (paper Section 4).  Given the measured shifts — a bimodal
sample: large shifts from disturb-prone cells, near-zero shifts from
disturb-resistant ones — Otsu's criterion (maximizing the between-class
variance of the two-way split) recovers that intersection point without
assuming parametric component shapes.
"""

from __future__ import annotations

import numpy as np


def intersection_threshold(samples: np.ndarray, bins: int = 128) -> float:
    """Split point between the two modes of a bimodal 1-D sample.

    Returns the Otsu threshold: the cut that maximizes between-class
    variance.  For well-separated modes this coincides with the PDF
    intersection the paper describes.  Degenerate inputs (all values equal,
    or fewer than two samples) return the sample midpoint.
    """
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if samples.size == 0:
        raise ValueError("cannot pick a threshold from an empty sample")
    lo = float(samples.min())
    hi = float(samples.max())
    if samples.size < 2 or hi - lo < 1e-12:
        return 0.5 * (lo + hi)

    counts, edges = np.histogram(samples, bins=bins, range=(lo, hi))
    centers = 0.5 * (edges[:-1] + edges[1:])
    total = counts.sum()

    weights_low = np.cumsum(counts)
    weights_high = total - weights_low
    sums_low = np.cumsum(counts * centers)
    total_sum = sums_low[-1]

    valid = (weights_low > 0) & (weights_high > 0)
    mean_low = np.where(valid, sums_low / np.maximum(weights_low, 1), 0.0)
    mean_high = np.where(
        valid, (total_sum - sums_low) / np.maximum(weights_high, 1), 0.0
    )
    between_var = weights_low * weights_high * (mean_low - mean_high) ** 2
    between_var = np.where(valid, between_var, -np.inf)
    best = int(np.argmax(between_var))
    # The threshold sits at the upper edge of the chosen bin.
    return float(edges[best + 1])
