"""The paper's contributions.

- :mod:`repro.core.vpass_tuning` — the online per-block pass-through-voltage
  tuning mechanism (Section 3): discover the predicted worst-case page, read
  its error count daily (MEE), compute the unused ECC margin, and walk Vpass
  down/up in Δ steps until the extra pass-through errors just fit.
- :mod:`repro.core.worst_page` — manufacturing-time worst-page prediction.
- :mod:`repro.core.rdr` — Read Disturb Recovery (Section 4): induce extra
  disturbs, classify disturb-prone vs. disturb-resistant cells from their
  measured ΔVth, and probabilistically correct boundary cells.
- :mod:`repro.core.classifier` — the ΔVref intersection classifier RDR uses.
"""

from repro.core.vpass_tuning import (
    TunerConfig,
    TuningOutcome,
    VpassTuner,
    MonteCarloTunableBlock,
)
from repro.core.worst_page import predict_worst_page
from repro.core.rdr import ReadDisturbRecovery, RdrConfig, RdrOutcome
from repro.core.classifier import intersection_threshold

__all__ = [
    "TunerConfig",
    "TuningOutcome",
    "VpassTuner",
    "MonteCarloTunableBlock",
    "predict_worst_page",
    "ReadDisturbRecovery",
    "RdrConfig",
    "RdrOutcome",
    "intersection_threshold",
]
