"""Vpass Tuning: the paper's read-disturb mitigation mechanism (Section 3).

Once a day, for each block holding valid data, the flash controller:

1. reads the block's predicted worst-case page once and takes the
   ECC-reported error count as the maximum estimated error (MEE);
2. computes the available margin ``M = (1 - 0.2) * C - MEE``, where C is the
   per-page ECC correction capability and 20% is reserved headroom;
3. walks the block's pass-through voltage down in Δ steps (Step 1), after
   each step counting the bits newly read as 0 — bitlines incorrectly
   switched off — as N (Step 2); while ``N <= M`` it keeps reducing, and
   once ``N > M`` it rolls Vpass back up until the check passes (Step 3).

On days when the block was just refreshed (Action 2) the search restarts
from nominal, because the accumulated retention and disturb errors were
cleared; on other days (Action 1) the tuner only verifies the current
Vpass and raises it if errors have grown into the margin.  If the margin is
already negative, the mechanism falls back to nominal Vpass, which is
always safe.

The tuner runs against anything implementing the small ``TunableBlock``
protocol; the package ships a Monte-Carlo implementation (wrapping
:class:`repro.flash.block.FlashBlock`) and an analytic one used by the
lifetime studies (:mod:`repro.model.lifetime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.units import VPASS_NOMINAL
from repro.ecc import EccConfig, DEFAULT_ECC
from repro.flash.block import FlashBlock
from repro.core.worst_page import predict_worst_page


class TunableBlock(Protocol):
    """What Vpass Tuning needs from a block.

    Real controllers get these observables from the chip's status output:
    ECC-reported error counts and raw page reads at a candidate Vpass.
    """

    @property
    def page_bits(self) -> int:
        """Bits per page (sizing for ECC capability)."""

    def measure_worst_page_errors(self) -> int:
        """One read of the predicted worst-case page at nominal Vpass,
        returning the ECC-reported raw error count (the MEE)."""

    def measure_extra_errors(self, vpass: float) -> int:
        """Read a page at candidate *vpass* and count the bits newly read
        as 0 relative to the nominal-Vpass read (bitlines switched off)."""


@dataclass(frozen=True)
class TunerConfig:
    """Vpass Tuning parameters."""

    #: Δ — the smallest resolution by which Vpass can change (Step 1).
    step: float = 2.0
    #: hard floor; deeper relaxation than ~10% is never useful because the
    #: P3 distribution body would cut off wholesale.
    min_vpass: float = VPASS_NOMINAL * 0.90

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("tuning step must be positive")
        if not 0 < self.min_vpass < VPASS_NOMINAL:
            raise ValueError("min_vpass must lie below nominal")


@dataclass(frozen=True)
class TuningOutcome:
    """Result of one daily tuning pass on one block."""

    vpass: float
    mee: int
    margin: int
    extra_errors: int
    fell_back: bool
    measurements: int

    @property
    def reduction_percent(self) -> float:
        """Vpass relaxation below nominal, in percent."""
        return 100.0 * (1.0 - self.vpass / VPASS_NOMINAL)


class VpassTuner:
    """Online per-block Vpass tuning engine."""

    def __init__(self, ecc: EccConfig = DEFAULT_ECC, config: TunerConfig | None = None):
        self.ecc = ecc
        self.config = config if config is not None else TunerConfig()

    # ------------------------------------------------------------------

    def available_margin(self, block: TunableBlock) -> tuple[int, int]:
        """Measure MEE and return ``(mee, M)`` with M = 0.8*C - MEE."""
        mee = int(block.measure_worst_page_errors())
        usable = self.ecc.usable_capability_bits(block.page_bits)
        return mee, usable - mee

    def tune_after_refresh(self, block: TunableBlock) -> TuningOutcome:
        """Action 2: full Vpass search, run right after a block refresh."""
        return self._tune(block, start_vpass=VPASS_NOMINAL)

    def verify_daily(self, block: TunableBlock, current_vpass: float) -> TuningOutcome:
        """Action 1: daily check between refreshes.

        Re-measures the margin and raises Vpass if the slowly-growing
        retention and disturb errors have eaten into it; never lowers
        Vpass further (that only happens after a refresh).
        """
        mee, margin = self.available_margin(block)
        measurements = 1
        if margin < 0:
            return TuningOutcome(VPASS_NOMINAL, mee, margin, 0, True, measurements)
        vpass = min(float(current_vpass), VPASS_NOMINAL)
        extra = block.measure_extra_errors(vpass) if vpass < VPASS_NOMINAL else 0
        measurements += 1 if vpass < VPASS_NOMINAL else 0
        # Step 3 only: roll back up while the margin is exceeded.
        while extra > margin and vpass < VPASS_NOMINAL:
            vpass = min(vpass + self.config.step, VPASS_NOMINAL)
            extra = block.measure_extra_errors(vpass) if vpass < VPASS_NOMINAL else 0
            measurements += 1
        return TuningOutcome(vpass, mee, margin, extra, False, measurements)

    # ------------------------------------------------------------------

    def _tune(self, block: TunableBlock, start_vpass: float) -> TuningOutcome:
        mee, margin = self.available_margin(block)
        measurements = 1
        if margin < 0:
            # Extreme case: errors already ate the reserved margin.  Fall
            # back to nominal Vpass, which is always correct.
            return TuningOutcome(VPASS_NOMINAL, mee, margin, 0, True, measurements)

        vpass = float(start_vpass)
        extra = 0
        # Steps 1 and 2: aggressively reduce while errors fit the margin.
        while vpass - self.config.step >= self.config.min_vpass:
            candidate = vpass - self.config.step
            n = block.measure_extra_errors(candidate)
            measurements += 1
            if n <= margin:
                vpass = candidate
                extra = n
            else:
                # Step 3: we went one step too deep; the last accepted vpass
                # already verified N <= M, so roll back and stop.
                break
        return TuningOutcome(vpass, mee, margin, extra, False, measurements)


class MonteCarloTunableBlock:
    """Adapt a :class:`FlashBlock` to the ``TunableBlock`` protocol.

    The worst page is predicted at construction (the manufacturing-time
    procedure), after which the block can be aged, written, and read by the
    experiment; tuning reads go through the normal read path and therefore
    cost disturb like real reads would.
    """

    def __init__(self, block: FlashBlock, now: float = 0.0, characterize: bool = True):
        self.block = block
        self.now = now
        self.worst_page = predict_worst_page(block, now) if characterize else 0
        # Counting N uses an LSB page: cut-off bitlines force LSB bits to 0,
        # which is the "number of 0's read from the page" of Step 2.
        wordline = self.worst_page // 2
        self._count_page = 2 * wordline

    @property
    def page_bits(self) -> int:
        return self.block.geometry.bits_per_page

    def measure_worst_page_errors(self) -> int:
        return self.block.page_error_count(self.worst_page, self.now)

    def measure_extra_errors(self, vpass: float) -> int:
        nominal = self.block.read_page(self._count_page, self.now)
        candidate = self.block.read_page(self._count_page, self.now, vpass=vpass)
        newly_zero = (candidate == 0) & (nominal == 1)
        return int(newly_zero.sum())
