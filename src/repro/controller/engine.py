"""Unified, batched simulation engine: one controller loop, two physics.

The engine drives the page-mapping FTL through a trace under periodic
maintenance (remap refresh, read reclaim) exactly like the historical
``SsdSimulator`` — but the device physics behind the FTL is pluggable
(:mod:`repro.controller.backends`) and trace execution is batched.

Batched execution segments the trace into maintenance windows and
replays per-op only the operations that can change the mapping: host
writes and the garbage collection they trigger.  Reads cannot influence
any in-window decision (GC picks victims by valid count; reclaim and
refresh run only at window boundaries), so the engine resolves *all* of
a window's reads vectorized at the window's end:

- with the counter backend, against a change log of the window's
  mapping updates — each read joins the mapping state at its own
  position in the op stream (an epoch join), and charges wiped by an
  in-window block reopen are filtered out, so the resulting
  :class:`SsdRunStats` are bit-for-bit those of the per-op reference
  loop (``batch=False``);
- with a physics backend, reads buffer in trace order and flush against
  the live mapping whenever a relocation is about to move data (and at
  the window end), so disturb always lands on the block that actually
  held the data.  Physics granularity is per flush: disturb exposure is
  charged in bulk and each unique page is ECC-decoded once per flush at
  its final exposure, escalating uncorrectable pages through Read
  Disturb Recovery and remapping the damaged block.  Within one flush
  the per-block sense+decode tasks are independent, and the flash-chip
  backend runs them on a pluggable block-group executor
  (:mod:`repro.controller.executor`): ``executor="threaded"`` spreads
  one scenario's physics across cores, bit-identical to serial.

See ``benchmarks/bench_engine_throughput.py`` for the throughput
trajectory of both backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.units import SECONDS_PER_DAY
from repro.controller.backends import CounterBackend, PhysicsBackend
from repro.controller.ftl import BlockState, FtlObserver, PageMappingFtl, SsdConfig
from repro.controller.read_reclaim import ReadReclaimPolicy
from repro.controller.refresh import RefreshScheduler
from repro.workloads.trace import IoTrace, OP_READ, OP_WRITE, maintenance_windows


@dataclass(frozen=True)
class SsdRunStats:
    """Summary of one simulated trace run."""

    duration_days: float
    host_reads: int
    host_writes: int
    write_amplification: float
    gc_runs: int
    refreshed_blocks: int
    reclaimed_blocks: int
    #: peak reads absorbed by any block within one refresh interval —
    #: the read-disturb exposure that bounds endurance.
    peak_block_reads_per_interval: int
    #: mean P/E cycles across blocks at the end of the run.
    mean_pe_cycles: float
    max_pe_cycles: int
    #: host reads of never-written pages (no flash touched, no disturb).
    unmapped_reads: int = 0


class SimulationEngine(FtlObserver):
    """Drive an FTL with a trace under periodic maintenance.

    Parameters mirror the historical ``SsdSimulator`` plus:

    - *backend*: the physics model behind the FTL; defaults to the
      bookkeeping-only :class:`~repro.controller.backends.CounterBackend`.
    - *batch*: run traces with windowed/vectorized execution (default)
      or the per-op reference loop.  With the counter backend both modes
      produce bit-identical stats; with a physics backend the
      controller-side counters still agree on failure-free traces, but
      ECC decode granularity differs (per flush vs. per op), so
      escalation timing — and everything downstream of a recovery —
      can legitimately diverge.
    """

    def __init__(
        self,
        config: SsdConfig | None = None,
        refresh_interval_days: float = 7.0,
        read_reclaim_threshold: int | None = None,
        maintenance_period_days: float = 1.0,
        backend: PhysicsBackend | None = None,
        batch: bool = True,
    ):
        self.ftl = PageMappingFtl(config)
        self.backend: PhysicsBackend = (
            backend if backend is not None else CounterBackend()
        )
        self.backend.bind(self.ftl)
        # The counter backend consumes no events at all: the engine only
        # observes the FTL while recording a window's mapping change log,
        # so serial counter runs keep the bare-FTL hot path.  Physics
        # backends observe permanently (appends program real wordlines).
        self._counter_only = isinstance(self.backend, CounterBackend)
        if not self._counter_only:
            self.ftl.observer = self
        self.refresh = RefreshScheduler(interval_days=refresh_interval_days)
        self.reclaim = (
            ReadReclaimPolicy(threshold_reads=read_reclaim_threshold)
            if read_reclaim_threshold is not None
            else None
        )
        if maintenance_period_days <= 0:
            raise ValueError("maintenance period must be positive")
        self.maintenance_period = maintenance_period_days * SECONDS_PER_DAY
        self.batch = bool(batch)
        self.now = 0.0
        self._next_maintenance = self.maintenance_period
        self._peak_interval_reads = 0
        # Physics-path read buffer (lpns issued, not yet charged).
        self._pending_reads: list[np.ndarray] = []
        # Physical pages of already-resolved reads (FTL counters charged),
        # awaiting the backend's next batch.
        self._pending_ppns: list[np.ndarray] = []
        # Counter-path change log, active only inside a window's writes.
        self._recording = False
        # Externally installed observer to keep feeding while recording.
        self._chained_observer: FtlObserver | None = None
        self._epoch = 0
        self._log: list[tuple[int, int, int]] = []  # (lpn, epoch+1, ppn)
        self._log_seen: set[int] = set()
        self._resets: list[tuple[int, int]] = []  # (block, epoch)
        #: blocks relocated because the backend escalated a failure.
        self.recovery_relocations = 0
        # Telemetry handles; re-fetched in run_trace so a registry armed
        # after construction is still observed.
        self._windows_counter = obs.counter("engine.windows")
        self._maintenance_counter = obs.counter("engine.maintenance_runs")

    # ------------------------------------------------------------------
    # FtlObserver: mapping events -> backend and/or change log
    # ------------------------------------------------------------------

    def on_append(
        self, block: int, page: int, lpn: int, old_ppn: int, now: float
    ) -> None:
        if self._recording:
            if lpn not in self._log_seen:
                # Virtual epoch-0 entry: the lpn's pre-window location,
                # consulted by reads that precede its first in-window write.
                self._log_seen.add(lpn)
                self._log.append((lpn, 0, old_ppn))
            self._log.append(
                (lpn, self._epoch + 1, block * self.ftl.config.pages_per_block + page)
            )
        if not self._counter_only:
            self.backend.on_append(block, page, lpn, now)
        if self._chained_observer is not None:
            self._chained_observer.on_append(block, page, lpn, old_ppn, now)

    def on_append_many(
        self,
        block: int,
        pages: np.ndarray,
        lpns: np.ndarray,
        old_ppns: np.ndarray,
        now: float,
    ) -> None:
        # Same bookkeeping as per-page on_append, but the backend sees
        # the whole burst at once (its parallel write path batches the
        # block's wordline programs).
        if self._recording:
            pages_per_block = self.ftl.config.pages_per_block
            for page, lpn, old_ppn in zip(pages, lpns, old_ppns):
                lpn = int(lpn)
                if lpn not in self._log_seen:
                    self._log_seen.add(lpn)
                    self._log.append((lpn, 0, int(old_ppn)))
                self._log.append(
                    (lpn, self._epoch + 1, block * pages_per_block + int(page))
                )
        if not self._counter_only:
            self.backend.on_append_many(block, pages, lpns, now)
        if self._chained_observer is not None:
            self._chained_observer.on_append_many(block, pages, lpns, old_ppns, now)

    def on_open(self, block: int, now: float) -> None:
        if self._recording:
            # Opening resets the block's read counter: charges from reads
            # that preceded this point in the op stream are wiped.
            self._resets.append((block, self._epoch))
        if not self._counter_only:
            self.backend.on_open(block, now)
        if self._chained_observer is not None:
            self._chained_observer.on_open(block, now)

    def on_erase(self, block: int, now: float) -> None:
        if not self._counter_only:
            self.backend.on_erase(block, now)
        if self._chained_observer is not None:
            self._chained_observer.on_erase(block, now)

    def on_relocate_begin(self, block: int, now: float) -> None:
        # Physics path: buffered reads were issued against the
        # pre-relocation mapping; charge them before it changes.
        if not self._counter_only:
            self._flush_reads()
        if self._chained_observer is not None:
            self._chained_observer.on_relocate_begin(block, now)

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------

    def run_trace(self, trace: IoTrace, on_window=None) -> SsdRunStats:
        """Process every operation of *trace* in order.

        *on_window* (optional) is called with the engine after every
        maintenance pass — a hook for invariant checks and live metrics.
        """
        if not self._counter_only and self.ftl.observer is not self:
            # A physics backend needs every append/erase; if the user
            # installed their own observer over the engine's, reclaim the
            # hook and keep forwarding events to theirs.
            self._chained_observer = self.ftl.observer
            self.ftl.observer = self
        # Telemetry handles, fetched once per run (no-op singletons when
        # disabled — the gated bench holds the overhead line).
        self._windows_counter = obs.counter("engine.windows")
        self._maintenance_counter = obs.counter("engine.maintenance_runs")
        if self.batch:
            return self._run_batched(trace, on_window)
        return self._run_serial(trace, on_window)

    def _run_serial(self, trace: IoTrace, on_window=None) -> SsdRunStats:
        """Per-op reference loop (the historical ``SsdSimulator`` path)."""
        logical_pages = self.ftl.config.logical_pages
        pages_per_block = self.ftl.config.pages_per_block
        counter_only = self._counter_only
        for i in range(len(trace)):
            t = float(trace.timestamps[i])
            while t >= self._next_maintenance:
                self._run_maintenance(self._next_maintenance)
                self._next_maintenance += self.maintenance_period
                self._drain_relocations()
                if on_window is not None:
                    on_window(self)
            self.now = t
            lpn = int(trace.lpns[i]) % logical_pages
            if trace.ops[i] == OP_READ:
                loc = self.ftl.read(lpn, self.now)
                if loc is not None and not counter_only:
                    ppn = loc[0] * pages_per_block + loc[1]
                    self.backend.on_reads(np.array([ppn], dtype=np.int64), self.now)
                    self._drain_relocations()
            else:
                self.ftl.write(lpn, self.now)
                if not counter_only:
                    self._drain_relocations()
        self._run_maintenance(self.now)
        self._drain_relocations()
        if on_window is not None:
            on_window(self)
        return self._stats(trace)

    def _run_batched(self, trace: IoTrace, on_window=None) -> SsdRunStats:
        """Windowed execution: vectorized reads, per-op writes."""
        timestamps = np.asarray(trace.timestamps, dtype=np.float64)
        ops = np.asarray(trace.ops)
        lpns = np.asarray(trace.lpns, dtype=np.int64) % self.ftl.config.logical_pages
        boundaries, splits = maintenance_windows(
            timestamps, self._next_maintenance, self.maintenance_period
        )
        run_window = (
            self._run_window_counter if self._counter_only else self._run_window_physics
        )
        tracer = obs.tracer()
        start = 0
        for index, (boundary, split) in enumerate(zip(boundaries, splits)):
            split = int(split)
            with tracer.span("engine.window", window=index, ops=split - start):
                if split > start:
                    run_window(
                        timestamps[start:split], ops[start:split], lpns[start:split]
                    )
                self._flush_reads()
                self._drain_relocations()
                self._run_maintenance(float(boundary))
                self._next_maintenance = float(boundary) + self.maintenance_period
                self._drain_relocations()
            self._windows_counter.inc()
            if on_window is not None:
                on_window(self)
            start = split
        with tracer.span(
            "engine.window", window=len(boundaries), ops=int(timestamps.size) - start
        ):
            if timestamps.size > start:
                run_window(timestamps[start:], ops[start:], lpns[start:])
            self._flush_reads()
            self._drain_relocations()
            self._run_maintenance(self.now)
            self._drain_relocations()
        self._windows_counter.inc()
        if on_window is not None:
            on_window(self)
        return self._stats(trace)

    # ------------------------------------------------------------------
    # Counter-backend window: change log + epoch-joined read resolution
    # ------------------------------------------------------------------

    def _run_window_counter(
        self, timestamps: np.ndarray, ops: np.ndarray, lpns: np.ndarray
    ) -> None:
        write_positions = np.flatnonzero(ops == OP_WRITE)
        if write_positions.size == 0:
            # Frozen mapping: the whole window is one batched read.
            self.ftl.read_many(lpns)
            self.now = float(timestamps[-1])
            return
        # Replay writes per-op while logging every mapping change (host
        # appends and GC relocations) and block reopen with its epoch =
        # index of the host write being processed.
        self._log = []
        self._log_seen = set()
        self._resets = []
        self._recording = True
        # Keep feeding any externally installed observer while the engine
        # borrows the hook point, and restore it afterwards.
        self._chained_observer = self.ftl.observer
        self.ftl.observer = self
        try:
            for epoch, position in enumerate(write_positions):
                position = int(position)
                self._epoch = epoch
                self.now = float(timestamps[position])
                self.ftl.write(int(lpns[position]), self.now)
        finally:
            self._recording = False
            self.ftl.observer = self._chained_observer
            self._chained_observer = None
        self._resolve_window_reads(ops, lpns, write_positions)
        self.now = float(timestamps[-1])

    def _resolve_window_reads(
        self, ops: np.ndarray, lpns: np.ndarray, write_positions: np.ndarray
    ) -> None:
        """Charge the window's reads as the per-op loop would have.

        Each read's epoch is the number of host writes that preceded it;
        the change log yields the mapping it saw, and charges to blocks
        reopened at a later epoch are dropped (the per-op loop's counter
        reset would have wiped them).
        """
        read_positions = np.flatnonzero(ops == OP_READ)
        if read_positions.size == 0:
            return
        ftl = self.ftl
        read_lpns = lpns[read_positions]
        epochs = np.searchsorted(write_positions, read_positions)
        # Default resolution: the end-of-window mapping (exact for every
        # lpn the window's writes and relocations never touched).
        ppns = ftl.l2p[read_lpns].copy()
        if self._log:
            log = np.asarray(self._log, dtype=np.int64)
            key_span = write_positions.size + 2
            order = np.argsort(log[:, 0] * key_span + log[:, 1], kind="stable")
            log_keys = (log[:, 0] * key_span + log[:, 1])[order]
            log_ppns = log[:, 2][order]
            changed = np.isin(read_lpns, log[:, 0])
            if changed.any():
                # Rightmost log entry with epoch <= the read's epoch; the
                # virtual epoch-0 entry guarantees a same-lpn hit.
                idx = (
                    np.searchsorted(
                        log_keys, read_lpns[changed] * key_span + epochs[changed],
                        side="right",
                    )
                    - 1
                )
                ppns[changed] = log_ppns[idx]
        mapped_mask = ppns != ftl.INVALID
        n_mapped = int(mapped_mask.sum())
        ftl.unmapped_reads += int(ppns.size - n_mapped)
        ftl.host_reads += n_mapped
        if n_mapped == 0:
            return
        blocks = ppns[mapped_mask] // ftl.config.pages_per_block
        if self._resets:
            last_reset = np.full(ftl.config.blocks, -1, dtype=np.int64)
            resets = np.asarray(self._resets, dtype=np.int64)
            np.maximum.at(last_reset, resets[:, 0], resets[:, 1])
            surviving = epochs[mapped_mask] > last_reset[blocks]
            blocks = blocks[surviving]
        if blocks.size:
            ftl.reads_since_program += np.bincount(
                blocks, minlength=ftl.config.blocks
            )

    # ------------------------------------------------------------------
    # Physics-backend window: buffered reads, flush-before-relocate
    # ------------------------------------------------------------------

    def _run_window_physics(
        self, timestamps: np.ndarray, ops: np.ndarray, lpns: np.ndarray
    ) -> None:
        """Writes replay per-op; reads resolve vectorized per segment.

        Between two consecutive writes the mapping is frozen (GC, reopen,
        and relocation all happen inside writes), so each inter-write
        segment of reads resolves in one :meth:`PageMappingFtl.read_many`
        call just before the next write — the same counters and physical
        pages the per-op loop produced, without the Python loop.  Resolved
        pages buffer for the backend's next flush so decode and disturb
        stay batch-granular; the trailing segment stays buffered as lpns
        until :meth:`_flush_reads` (its mapping can only change under a
        relocation, which flushes first).
        """
        write_positions = np.flatnonzero(ops == OP_WRITE)
        if write_positions.size == 0:
            self._pending_reads.append(lpns)
            self.now = float(timestamps[-1])
            return
        prev = 0
        for position in write_positions:
            position = int(position)
            if position > prev:
                self._pending_reads.append(lpns[prev:position])
            self.now = float(timestamps[position])
            # The write below may change the mapping of any buffered lpn
            # (its own lpn directly, others via GC): resolve the buffer
            # against the still-current mapping first.
            self._resolve_pending_reads()
            self.ftl.write(int(lpns[position]), self.now)
            self._drain_relocations()
            prev = position + 1
        if prev < lpns.size:
            self._pending_reads.append(lpns[prev:])
        self.now = float(timestamps[-1])

    def _resolve_pending_reads(self) -> None:
        """Resolve buffered read lpns to physical pages (charging the FTL
        counters) without flushing them to the backend."""
        if not self._pending_reads:
            return
        pending, self._pending_reads = self._pending_reads, []
        lpns = pending[0] if len(pending) == 1 else np.concatenate(pending)
        mapped = self.ftl.read_many(lpns)
        if mapped.size:
            self._pending_ppns.append(mapped)

    def _flush_reads(self) -> None:
        """Charge all buffered reads against the current mapping."""
        if not self._pending_reads and not self._pending_ppns:
            return
        self._resolve_pending_reads()
        resolved, self._pending_ppns = self._pending_ppns, []
        if not resolved:
            self.backend.on_reads(np.empty(0, dtype=np.int64), self.now)
            return
        mapped = resolved[0] if len(resolved) == 1 else np.concatenate(resolved)
        self.backend.on_reads(mapped, self.now)

    def close(self) -> None:
        """Release backend resources (worker pools, shared arenas).

        Delegates to the backend's ``close`` when it has one; safe to
        call on any backend and idempotent.  Extract results (which
        flush pending work) *before* closing —
        :func:`repro.controller.factory.run_scenario` shows the shape.
        """
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def _drain_relocations(self) -> None:
        """Relocate blocks the backend flagged (post-recovery remap)."""
        while True:
            pending = self.backend.drain_relocations()
            if not pending:
                return
            for block in pending:
                if (
                    self.ftl.block_state[block] == int(BlockState.FREE)
                    or self.ftl.valid_count[block] == 0
                ):
                    continue
                self.ftl.relocate_block(int(block), self.now)
                self.recovery_relocations += 1

    # ------------------------------------------------------------------
    # Maintenance and reporting
    # ------------------------------------------------------------------

    def _run_maintenance(self, now: float) -> None:
        self._peak_interval_reads = max(
            self._peak_interval_reads, int(self.ftl.reads_since_program.max())
        )
        self.refresh.run(self.ftl, now)
        if self.reclaim is not None:
            self.reclaim.run(self.ftl, now)
        self._maintenance_counter.inc()

    def _stats(self, trace: IoTrace) -> SsdRunStats:
        return SsdRunStats(
            duration_days=trace.duration_seconds / SECONDS_PER_DAY,
            host_reads=self.ftl.host_reads,
            host_writes=self.ftl.host_writes,
            write_amplification=self.ftl.write_amplification,
            gc_runs=self.ftl.gc_runs,
            refreshed_blocks=self.refresh.refreshed_blocks,
            reclaimed_blocks=(
                self.reclaim.reclaimed_blocks if self.reclaim is not None else 0
            ),
            peak_block_reads_per_interval=self._peak_interval_reads,
            mean_pe_cycles=float(np.mean(self.ftl.pe_cycles)),
            max_pe_cycles=int(np.max(self.ftl.pe_cycles)),
            unmapped_reads=self.ftl.unmapped_reads,
        )
