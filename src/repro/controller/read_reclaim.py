"""Read reclaim: the industry-standard read-disturb mitigation baseline.

Flash vendors bound read disturb by remapping a block's data once the
block has absorbed a fixed number of reads (e.g. 50,000 for an MLC chip;
paper Section 5, Yaffs and Ha et al.).  It is the mechanism Vpass Tuning
is compared against and composed with: reclaim caps the disturb count per
program cycle, Vpass Tuning shrinks the damage done by each read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controller.ftl import PageMappingFtl


@dataclass
class ReadReclaimPolicy:
    """Relocate blocks whose read count exceeds a fixed threshold."""

    threshold_reads: int = 50_000
    reclaimed_blocks: int = 0
    reclaimed_pages: int = 0

    def __post_init__(self) -> None:
        if self.threshold_reads < 1:
            raise ValueError("read-reclaim threshold must be positive")

    def due_blocks(self, ftl: PageMappingFtl) -> np.ndarray:
        """Blocks that have absorbed more reads than the threshold."""
        holding = ftl.blocks_with_valid_data()
        return holding[ftl.reads_since_program[holding] >= self.threshold_reads]

    def run(self, ftl: PageMappingFtl, now: float) -> list[int]:
        """Reclaim every due block; returns the reclaimed block indices."""
        reclaimed = []
        for block in self.due_blocks(ftl):
            if ftl.valid_count[block] == 0:
                continue
            self.reclaimed_pages += ftl.relocate_block(int(block), now)
            self.reclaimed_blocks += 1
            reclaimed.append(int(block))
        return reclaimed
