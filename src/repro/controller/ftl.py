"""Page-mapping flash translation layer.

Implements the standard controller mapping between logical pages and
physical flash pages: out-of-place writes into an open block, greedy
garbage collection (victim = fewest valid pages), and wear-leveling block
allocation (freest block with least wear).  The FTL tracks exactly the
per-block quantities the paper's mechanisms consume: read counts since
program (read disturb pressure), program timestamps (retention age and
refresh due-dates), and P/E cycles (wear).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.controller.stats import per_block_read_counts


class BlockState(IntEnum):
    FREE = 0
    OPEN = 1
    CLOSED = 2


@dataclass(frozen=True)
class SsdConfig:
    """Geometry and policy knobs of the simulated SSD."""

    blocks: int = 256
    pages_per_block: int = 256
    page_size_bytes: int = 4096
    #: fraction of physical space held back from the logical capacity.
    overprovision: float = 0.07
    #: GC runs when the free-block pool drops to this size.
    gc_threshold_blocks: int = 2

    def __post_init__(self) -> None:
        if self.blocks < 4 or self.pages_per_block < 1:
            raise ValueError("SSD needs at least 4 blocks and 1 page/block")
        if not 0.0 < self.overprovision < 0.5:
            raise ValueError("overprovision must be in (0, 0.5)")
        if self.gc_threshold_blocks < 1:
            raise ValueError("GC threshold must be at least one block")
        # Greedy GC only makes forward progress if, even with the free pool
        # at its threshold and one open block, the closed blocks cannot all
        # be 100% valid; otherwise every relocation is zero-gain and the
        # drive livelocks.  Guarantee that structurally.
        slack_blocks = self.blocks - self.gc_threshold_blocks - 1
        if self.logical_pages > slack_blocks * self.pages_per_block:
            raise ValueError(
                "overprovisioning too small for the GC threshold: logical "
                f"capacity {self.logical_pages} pages exceeds the "
                f"{slack_blocks} blocks available outside the reserve"
            )

    @property
    def physical_pages(self) -> int:
        return self.blocks * self.pages_per_block

    @property
    def logical_pages(self) -> int:
        """Host-visible capacity in pages."""
        return int(self.physical_pages * (1.0 - self.overprovision))


class GcStarvationError(RuntimeError):
    """Raised when garbage collection cannot reclaim a block (drive full)."""


class FtlObserver:
    """Hook points the FTL raises while mutating physical state.

    The simulation engine installs itself here to keep a physics backend
    in lockstep with the mapping: every page append, block erase, and
    relocation is visible the moment it happens.  All hooks default to
    no-ops so the bare FTL stays dependency-free and fast.
    """

    def on_append(
        self, block: int, page: int, lpn: int, old_ppn: int, now: float
    ) -> None:
        """A logical page was written to physical ``(block, page)``;
        *old_ppn* is the invalidated previous location (or INVALID)."""

    def on_open(self, block: int, now: float) -> None:
        """A free block was opened for writing (its read counter reset)."""

    def on_erase(self, block: int, now: float) -> None:
        """A block was erased (end of GC/refresh/reclaim relocation)."""

    def on_relocate_begin(self, block: int, now: float) -> None:
        """A relocation of *block* is about to start (mapping still old)."""

    def on_append_many(
        self,
        block: int,
        pages: np.ndarray,
        lpns: np.ndarray,
        old_ppns: np.ndarray,
        now: float,
    ) -> None:
        """A contiguous run of logical pages was appended to *block*
        (``pages`` ascending, one relocation chunk).

        The default unrolls into per-page :meth:`on_append` calls in page
        order, so observers that only implement the scalar hook see the
        exact event sequence of a per-page append loop; observers on a
        hot path may override this with a batched handler instead.
        """
        for page, lpn, old_ppn in zip(pages, lpns, old_ppns):
            self.on_append(block, int(page), int(lpn), int(old_ppn), now)


class PageMappingFtl:
    """The mapping engine of the simulated SSD controller."""

    INVALID = -1

    def __init__(self, config: SsdConfig | None = None):
        self.config = config if config is not None else SsdConfig()
        cfg = self.config
        #: logical page -> physical page id (block * pages_per_block + page).
        self.l2p = np.full(cfg.logical_pages, self.INVALID, dtype=np.int64)
        #: physical page id -> logical page (or INVALID).
        self.p2l = np.full(cfg.physical_pages, self.INVALID, dtype=np.int64)
        self.valid_count = np.zeros(cfg.blocks, dtype=np.int64)
        self.block_state = np.full(cfg.blocks, int(BlockState.FREE), dtype=np.int8)
        self.pe_cycles = np.zeros(cfg.blocks, dtype=np.int64)
        self.reads_since_program = np.zeros(cfg.blocks, dtype=np.int64)
        self.program_time = np.zeros(cfg.blocks, dtype=np.float64)
        self.write_pointer = np.zeros(cfg.blocks, dtype=np.int64)
        self._free_blocks = list(range(cfg.blocks - 1, -1, -1))
        #: optional :class:`FtlObserver` notified of physical mutations.
        self.observer: FtlObserver | None = None
        self._active_block = self._allocate_block(0.0)
        # Accounting.
        self.host_writes = 0
        self.flash_writes = 0
        self.host_reads = 0
        self.unmapped_reads = 0
        self.gc_runs = 0

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    def read(self, lpn: int, now: float = 0.0) -> tuple[int, int] | None:
        """Host read: returns the physical ``(block, page)`` or None when
        the page was never written.  Counts read-disturb pressure.

        A read of a never-written page touches no flash cells, so it is
        counted in :attr:`unmapped_reads` rather than :attr:`host_reads`
        (and, as before, charges no disturb pressure).
        """
        self._check_lpn(lpn)
        ppn = self.l2p[lpn]
        if ppn == self.INVALID:
            self.unmapped_reads += 1
            return None
        self.host_reads += 1
        block, page = divmod(int(ppn), self.config.pages_per_block)
        self.reads_since_program[block] += 1
        return block, page

    def read_many(self, lpns: np.ndarray) -> np.ndarray:
        """Batched host reads against the *current* mapping.

        Performs exactly the bookkeeping :meth:`read` would do per
        operation — mapped-read and unmapped-read counts, per-block
        disturb pressure via one ``bincount`` — and returns the physical
        page numbers of the mapped reads (duplicates preserved) so a
        physics backend can apply the same batch.  Callers must ensure
        the mapping has not changed since the reads were issued.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        if lpns.size == 0:
            return lpns
        if lpns.min() < 0 or lpns.max() >= self.config.logical_pages:
            raise IndexError("logical page out of range in batched read")
        ppns = self.l2p[lpns]
        mapped = ppns[ppns != self.INVALID]
        self.unmapped_reads += int(ppns.size - mapped.size)
        self.host_reads += int(mapped.size)
        if mapped.size:
            self.reads_since_program += per_block_read_counts(
                mapped, self.config.pages_per_block, self.config.blocks
            )
        return mapped

    def write(self, lpn: int, now: float = 0.0) -> tuple[int, int]:
        """Host write: out-of-place update, may trigger garbage collection."""
        self._check_lpn(lpn)
        self.host_writes += 1
        block, page = self._append(lpn, now)
        self._maybe_gc(now)
        return block, page

    # ------------------------------------------------------------------
    # Internals shared with refresh / read reclaim
    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.config.logical_pages:
            raise IndexError(f"logical page {lpn} out of range")

    def _append(self, lpn: int, now: float) -> tuple[int, int]:
        """Write *lpn* at the write pointer, invalidating any old copy."""
        old = self.l2p[lpn]
        if old != self.INVALID:
            old_block = int(old) // self.config.pages_per_block
            self.valid_count[old_block] -= 1
            self.p2l[old] = self.INVALID

        block = self._active_block
        page = int(self.write_pointer[block])
        ppn = block * self.config.pages_per_block + page
        self.l2p[lpn] = ppn
        self.p2l[ppn] = lpn
        self.valid_count[block] += 1
        self.write_pointer[block] += 1
        self.flash_writes += 1
        if self.observer is not None:
            self.observer.on_append(block, page, int(lpn), int(old), now)
        if self.write_pointer[block] == self.config.pages_per_block:
            self.block_state[block] = int(BlockState.CLOSED)
            self._active_block = self._allocate_block(now)
        return block, page

    def _allocate_block(self, now: float) -> int:
        """Take the least-worn free block (wear leveling) and open it."""
        if not self._free_blocks:
            raise GcStarvationError("no free blocks available to open")
        best_idx = min(
            range(len(self._free_blocks)),
            key=lambda i: self.pe_cycles[self._free_blocks[i]],
        )
        block = self._free_blocks.pop(best_idx)
        self.block_state[block] = int(BlockState.OPEN)
        self.write_pointer[block] = 0
        self.reads_since_program[block] = 0
        self.program_time[block] = now
        if self.observer is not None:
            self.observer.on_open(block, now)
        return block

    def _erase(self, block: int, now: float = 0.0) -> None:
        start = block * self.config.pages_per_block
        self.p2l[start : start + self.config.pages_per_block] = self.INVALID
        self.valid_count[block] = 0
        self.block_state[block] = int(BlockState.FREE)
        self.write_pointer[block] = 0
        self.pe_cycles[block] += 1
        self._free_blocks.append(block)
        if self.observer is not None:
            self.observer.on_erase(block, now)

    def _maybe_gc(self, now: float) -> None:
        # Backstop against any GC livelock: a full sweep of the drive must
        # grow the free pool; if it does not, the drive is genuinely full.
        rounds = 0
        while len(self._free_blocks) < self.config.gc_threshold_blocks:
            self.collect_garbage(now)
            rounds += 1
            if rounds > 2 * self.config.blocks:
                raise GcStarvationError(
                    "garbage collection made no progress over a full sweep"
                )

    def collect_garbage(self, now: float) -> int:
        """Greedy GC: relocate the closed block with fewest valid pages."""
        closed = np.flatnonzero(self.block_state == int(BlockState.CLOSED))
        if closed.size == 0:
            raise GcStarvationError("no closed blocks to garbage-collect")
        victim = int(closed[np.argmin(self.valid_count[closed])])
        self.relocate_block(victim, now)
        self.gc_runs += 1
        return victim

    def relocate_block(self, block: int, now: float) -> int:
        """Move every valid page of *block* elsewhere, then erase it.

        This is the shared primitive behind GC, remapping-based refresh,
        and read reclaim.  Returns the number of pages moved.

        Valid pages move in bulk (:meth:`_append_many`): mapping arrays
        update vectorized per destination block, bit-identical in final
        state and observer event order to the historical per-page
        :meth:`_append` loop (``tests/controller/test_ftl.py`` pins the
        equivalence; the physics-path golden summaries in
        ``tests/controller/test_backend_vectorized.py`` pin it end to end).
        """
        if self.block_state[block] == int(BlockState.FREE):
            raise ValueError(f"block {block} is free; nothing to relocate")
        if self.observer is not None:
            self.observer.on_relocate_begin(block, now)
        if block == self._active_block:
            # Close the active block first so appends target a fresh one.
            self.block_state[block] = int(BlockState.CLOSED)
            self._active_block = self._allocate_block(now)
        start = block * self.config.pages_per_block
        lpns = self.p2l[start : start + self.config.pages_per_block]
        # Boolean indexing yields a fresh array, so the erase below cannot
        # alias it through the p2l view.
        valid = lpns[lpns != self.INVALID]
        moved = int(valid.size)
        if moved:
            self._append_many(valid, block, now)
        self._erase(block, now)
        return moved

    def _append_many(self, lpns: np.ndarray, source_block: int, now: float) -> None:
        """Bulk :meth:`_append` for relocation: every *lpn* currently maps
        into *source_block*, each exactly once.

        Writes land at the write pointer in chunks bounded by the open
        block's remaining room; chunk boundaries fall exactly where the
        per-page loop would have closed the block and opened the next, so
        the block open/close event order — and therefore wear leveling —
        is unchanged.  Observers receive one :meth:`FtlObserver.on_append_many`
        per chunk (per-page order preserved by its default unrolling).
        """
        cfg = self.config
        # The old copies all live in the source block, which cannot be a
        # destination (it is not free until the erase below), so they can
        # be invalidated up front in one pass.  Fancy indexing returns a
        # fresh array, so the l2p updates below cannot alias old_ppns.
        old_ppns = self.l2p[lpns]
        self.p2l[old_ppns] = self.INVALID
        self.valid_count[source_block] -= lpns.size
        position = 0
        while position < lpns.size:
            block = self._active_block
            pointer = int(self.write_pointer[block])
            take = min(cfg.pages_per_block - pointer, int(lpns.size) - position)
            chunk = lpns[position : position + take]
            pages = np.arange(pointer, pointer + take, dtype=np.int64)
            ppns = block * cfg.pages_per_block + pages
            self.l2p[chunk] = ppns
            self.p2l[ppns] = chunk
            self.valid_count[block] += take
            self.write_pointer[block] += take
            self.flash_writes += take
            if self.observer is not None:
                self.observer.on_append_many(
                    block, pages, chunk, old_ppns[position : position + take], now
                )
            if self.write_pointer[block] == cfg.pages_per_block:
                self.block_state[block] = int(BlockState.CLOSED)
                self._active_block = self._allocate_block(now)
            position += take

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def write_amplification(self) -> float:
        """Flash writes per host write (>= 1 once GC has run)."""
        if self.host_writes == 0:
            return 1.0
        return self.flash_writes / self.host_writes

    def blocks_with_valid_data(self) -> np.ndarray:
        """Indices of blocks currently holding at least one valid page."""
        return np.flatnonzero(self.valid_count > 0)

    def check_invariants(self) -> None:
        """Verify mapping consistency (used by tests and debug builds)."""
        mapped = self.l2p[self.l2p != self.INVALID]
        if mapped.size != np.unique(mapped).size:
            raise AssertionError("two logical pages share a physical page")
        for lpn in np.flatnonzero(self.l2p != self.INVALID)[:1000]:
            ppn = self.l2p[lpn]
            if self.p2l[ppn] != lpn:
                raise AssertionError(f"l2p/p2l disagree for lpn {lpn}")
        per_block_valid = np.bincount(
            (mapped // self.config.pages_per_block), minlength=self.config.blocks
        )
        if not np.array_equal(per_block_valid, self.valid_count):
            raise AssertionError("valid_count out of sync with mapping")
