"""Remapping-based refresh (Cai et al., ICCD 2012; paper Section 3).

Every block holding valid data is rewritten to a fresh block once per
refresh interval (seven days in the paper), clearing its accumulated
retention and read-disturb errors.  Vpass Tuning's Action 2 (the full
Vpass search) runs right after a block's refresh, when the error slate is
clean and the unused ECC margin is largest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import SECONDS_PER_DAY
from repro.controller.ftl import PageMappingFtl


@dataclass
class RefreshScheduler:
    """Periodically relocates aged blocks."""

    interval_days: float = 7.0
    refreshed_blocks: int = 0
    refreshed_pages: int = 0

    def __post_init__(self) -> None:
        if self.interval_days <= 0:
            raise ValueError("refresh interval must be positive")

    @property
    def interval_seconds(self) -> float:
        return self.interval_days * SECONDS_PER_DAY

    def due_blocks(self, ftl: PageMappingFtl, now: float) -> np.ndarray:
        """Blocks whose data is older than the refresh interval."""
        holding = ftl.blocks_with_valid_data()
        age = now - ftl.program_time[holding]
        return holding[age >= self.interval_seconds]

    def run(self, ftl: PageMappingFtl, now: float) -> list[int]:
        """Refresh every due block; returns the refreshed block indices."""
        refreshed = []
        for block in self.due_blocks(ftl, now):
            # The block may have been emptied by a relocation triggered for
            # an earlier block in this same pass.
            if ftl.valid_count[block] == 0:
                continue
            self.refreshed_pages += ftl.relocate_block(int(block), now)
            self.refreshed_blocks += 1
            refreshed.append(int(block))
        return refreshed
