"""Build and run engines from scenario descriptions.

This is the controller half of the sweep subsystem: it turns a pure-data
:class:`~repro.workloads.grid.Scenario` into a live
:class:`~repro.controller.engine.SimulationEngine` and extracts a
picklable :class:`~repro.parallel.results.ScenarioResult` from the run.
Everything here is deterministic given the scenario: seeds come from the
scenario's spawn keys, never from ambient state, so the same scenario
produces a bit-identical result in any process (the property the sweep
runner's ``workers=1`` vs ``workers=N`` equivalence suite pins).
"""

from __future__ import annotations

from dataclasses import asdict

from repro import obs
from repro.units import SECONDS_PER_DAY
from repro.controller.backends import CounterBackend, FlashChipBackend, PhysicsBackend
from repro.ecc import DEFAULT_ECC, EccConfig
from repro.controller.engine import SimulationEngine
from repro.controller.ftl import SsdConfig
from repro.parallel.results import ScenarioResult
from repro.testing.faults import maybe_inject
from repro.workloads.grid import BackendSpec, Scenario
from repro.workloads.trace_cache import scenario_trace


def build_backend(spec: BackendSpec, seed: int) -> PhysicsBackend:
    """Instantiate the physics backend a scenario asked for."""
    if spec.kind == "counter":
        return CounterBackend()
    ecc = DEFAULT_ECC
    if spec.decoder != "threshold":
        ecc = EccConfig(decoder=spec.decoder, rs_n=spec.rs_n, rs_k=spec.rs_k)
    return FlashChipBackend(
        bitlines_per_block=spec.bitlines_per_block,
        initial_pe_cycles=spec.initial_pe_cycles,
        vpass=spec.vpass,
        ecc=ecc,
        enable_rdr=spec.enable_rdr,
        seed=seed,
        executor=spec.executor,
        arena=spec.arena,
        resident_blocks=spec.resident_blocks,
        fault_pattern=spec.fault_pattern,
    )


def build_engine(scenario: Scenario) -> SimulationEngine:
    """Fresh engine for *scenario* (geometry, policy, backend, seeds)."""
    geometry = scenario.geometry
    config = SsdConfig(
        blocks=geometry.blocks,
        pages_per_block=geometry.pages_per_block,
        overprovision=geometry.overprovision,
        gc_threshold_blocks=geometry.gc_threshold_blocks,
    )
    policy = scenario.policy
    return SimulationEngine(
        config,
        refresh_interval_days=policy.refresh_interval_days,
        read_reclaim_threshold=policy.read_reclaim_threshold,
        maintenance_period_days=policy.maintenance_period_days,
        backend=build_backend(scenario.backend, scenario.backend_seed),
        batch=scenario.batch,
    )


def _measure_backend_rber(engine: SimulationEngine) -> float | None:
    """Worst current RBER across the backend's bound, programmed blocks.

    Counter scenarios have no cells to measure and report ``None``;
    measurement is the backend's own non-recording
    :meth:`~repro.controller.backends.FlashChipBackend.worst_block_rber`,
    so taking a trajectory does not perturb the run it observes.
    """
    backend = engine.backend
    if not isinstance(backend, FlashChipBackend):
        return None
    return backend.worst_block_rber(engine.now)


def extract_result(
    scenario: Scenario,
    engine: SimulationEngine,
    stats,
    trajectory: list[dict] | None,
) -> ScenarioResult:
    """Fold a finished run into the picklable result record."""
    ftl = engine.ftl
    return ScenarioResult(
        scenario_id=scenario.scenario_id,
        stats=asdict(stats),
        backend=engine.backend.summary(),
        per_block={
            "pe_cycles": ftl.pe_cycles.tolist(),
            "reads_since_program": ftl.reads_since_program.tolist(),
            "valid_count": ftl.valid_count.tolist(),
        },
        trajectory=trajectory,
    )


def run_scenario(
    scenario: Scenario, span_parent: str | None = None
) -> ScenarioResult:
    """Execute one scenario from scratch and return its result.

    This is the pure function the sweep runner fans out: trace
    generation, engine construction, and every RNG stream derive from
    the scenario alone, so the result is bit-identical wherever it runs.
    The trace comes through the per-process cache
    (:mod:`repro.workloads.trace_cache`): repeated runs of one scenario
    reuse a single frozen trace, and fork-start sweep workers inherit
    pre-warmed traces copy-on-write instead of regenerating them.

    *span_parent* (telemetry only — never touches the result) links this
    run's ``scenario.run`` span under another process's span, e.g. the
    campaign scheduler's per-attempt span.
    """
    tracer = obs.tracer()
    span = tracer.begin(
        "scenario.run", parent=span_parent, scenario=scenario.scenario_id
    )
    try:
        result = _run_scenario_inner(scenario)
    except BaseException as exc:
        tracer.end(span, error=type(exc).__name__)
        raise
    tracer.end(span)
    return result


def _run_scenario_inner(scenario: Scenario) -> ScenarioResult:
    # The one fault-injection hook of the execution path: a no-op unless
    # a test armed a fault for exactly this scenario id (see
    # repro.testing.faults) — it is how the campaign layer's crash/hang/
    # retry recovery is exercised deterministically.
    maybe_inject(scenario.scenario_id)
    trace = scenario_trace(scenario)
    engine = build_engine(scenario)
    try:
        trajectory: list[dict] | None = None
        on_window = None
        if scenario.record_trajectory:
            trajectory = []

            def on_window(eng: SimulationEngine) -> None:
                record = {
                    "window": len(trajectory),
                    "now_days": eng.now / SECONDS_PER_DAY,
                    "host_reads": eng.ftl.host_reads,
                    "gc_runs": eng.ftl.gc_runs,
                    "refreshed_blocks": eng.refresh.refreshed_blocks,
                    "reclaimed_blocks": (
                        eng.reclaim.reclaimed_blocks if eng.reclaim is not None else 0
                    ),
                    "max_reads_since_program": int(eng.ftl.reads_since_program.max()),
                }
                rber = _measure_backend_rber(eng)
                if rber is not None:
                    record["worst_block_rber"] = rber
                trajectory.append(record)

        stats = engine.run_trace(trace, on_window=on_window)
        # Extraction flushes pending backend work (summary does), so it
        # must run before close() tears down pools and the arena.
        return extract_result(scenario, engine, stats, trajectory)
    finally:
        # Shared-memory arenas and worker pools must not outlive the
        # scenario, success or failure (no leaked /dev/shm segments).
        engine.close()
