"""Trace and drive statistics feeding the lifetime studies.

The quantity that couples a workload to read-disturb damage is the read
pressure on the *hottest* block: disturb accumulates per block, refresh
clears it every interval, so endurance is set by the block that absorbs
the most reads per interval.  These helpers compute per-block pressure
from a trace with static logical-to-block binning — a fast, deterministic
proxy for the placement a page-mapping FTL produces (hot logical pages
land in some block either way; the FTL path in :mod:`repro.controller.ssd`
measures the same quantity with full mapping dynamics).
"""

from __future__ import annotations

import numpy as np

from repro.units import SECONDS_PER_DAY
from repro.workloads.trace import IoTrace, OP_READ


def per_block_read_counts(
    ppns: np.ndarray, pages_per_block: int, blocks: int
) -> np.ndarray:
    """Per-block read counts from a batch of physical-page reads.

    The ``bincount`` grouping shared by the static-binning helpers below
    and the batched engine's read flush (:meth:`PageMappingFtl.read_many`).
    """
    if pages_per_block < 1 or blocks < 1:
        raise ValueError("pages_per_block and blocks must be positive")
    return np.bincount(np.asarray(ppns) // pages_per_block, minlength=blocks)


def block_read_pressure(trace: IoTrace, pages_per_block: int) -> np.ndarray:
    """Reads per block over the whole trace (static striping)."""
    if pages_per_block < 1:
        raise ValueError("pages_per_block must be positive")
    reads = trace.lpns[trace.ops == OP_READ]
    if reads.size == 0:
        return np.zeros(1, dtype=np.int64)
    blocks = reads // pages_per_block
    return np.bincount(blocks)


def hottest_block_reads_per_day(trace: IoTrace, pages_per_block: int) -> float:
    """Daily read pressure on the hottest block of the trace."""
    duration_days = trace.duration_seconds / SECONDS_PER_DAY
    if duration_days <= 0:
        raise ValueError("trace must span a positive duration")
    pressure = block_read_pressure(trace, pages_per_block)
    return float(pressure.max()) / duration_days


def read_pressure_percentiles(
    trace: IoTrace, pages_per_block: int, percentiles=(50.0, 90.0, 99.0, 100.0)
) -> dict[float, float]:
    """Distribution summary of per-block total reads."""
    pressure = block_read_pressure(trace, pages_per_block)
    return {p: float(np.percentile(pressure, p)) for p in percentiles}
