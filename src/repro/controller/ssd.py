"""SSD-level simulator: FTL + refresh + read reclaim driven by a trace.

This is the controller-in-the-loop path: every host operation goes through
the page-mapping FTL, maintenance (refresh, read reclaim) runs on a daily
schedule, and the simulator reports the per-interval read pressure that
determines read-disturb exposure.  Use it for full-fidelity studies on
moderate traces; the static-binning fast path in
:mod:`repro.controller.stats` handles multi-million-operation traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import SECONDS_PER_DAY
from repro.controller.ftl import PageMappingFtl, SsdConfig
from repro.controller.read_reclaim import ReadReclaimPolicy
from repro.controller.refresh import RefreshScheduler
from repro.workloads.trace import IoTrace, OP_READ, OP_WRITE


@dataclass(frozen=True)
class SsdRunStats:
    """Summary of one simulated trace run."""

    duration_days: float
    host_reads: int
    host_writes: int
    write_amplification: float
    gc_runs: int
    refreshed_blocks: int
    reclaimed_blocks: int
    #: peak reads absorbed by any block within one refresh interval —
    #: the read-disturb exposure that bounds endurance.
    peak_block_reads_per_interval: int
    #: mean P/E cycles across blocks at the end of the run.
    mean_pe_cycles: float
    max_pe_cycles: int


class SsdSimulator:
    """Drive an FTL with a trace under periodic maintenance."""

    def __init__(
        self,
        config: SsdConfig | None = None,
        refresh_interval_days: float = 7.0,
        read_reclaim_threshold: int | None = None,
        maintenance_period_days: float = 1.0,
    ):
        self.ftl = PageMappingFtl(config)
        self.refresh = RefreshScheduler(interval_days=refresh_interval_days)
        self.reclaim = (
            ReadReclaimPolicy(threshold_reads=read_reclaim_threshold)
            if read_reclaim_threshold is not None
            else None
        )
        if maintenance_period_days <= 0:
            raise ValueError("maintenance period must be positive")
        self.maintenance_period = maintenance_period_days * SECONDS_PER_DAY
        self.now = 0.0
        self._next_maintenance = self.maintenance_period
        self._peak_interval_reads = 0

    def run_trace(self, trace: IoTrace) -> SsdRunStats:
        """Process every operation of *trace* in order."""
        logical_pages = self.ftl.config.logical_pages
        for i in range(len(trace)):
            t = float(trace.timestamps[i])
            while t >= self._next_maintenance:
                self._run_maintenance(self._next_maintenance)
                self._next_maintenance += self.maintenance_period
            self.now = t
            lpn = int(trace.lpns[i]) % logical_pages
            if trace.ops[i] == OP_READ:
                self.ftl.read(lpn, self.now)
            else:
                self.ftl.write(lpn, self.now)
        self._run_maintenance(self.now)
        return self._stats(trace)

    def _run_maintenance(self, now: float) -> None:
        self._peak_interval_reads = max(
            self._peak_interval_reads, int(self.ftl.reads_since_program.max())
        )
        self.refresh.run(self.ftl, now)
        if self.reclaim is not None:
            self.reclaim.run(self.ftl, now)

    def _stats(self, trace: IoTrace) -> SsdRunStats:
        return SsdRunStats(
            duration_days=trace.duration_seconds / SECONDS_PER_DAY,
            host_reads=self.ftl.host_reads,
            host_writes=self.ftl.host_writes,
            write_amplification=self.ftl.write_amplification,
            gc_runs=self.ftl.gc_runs,
            refreshed_blocks=self.refresh.refreshed_blocks,
            reclaimed_blocks=(
                self.reclaim.reclaimed_blocks if self.reclaim is not None else 0
            ),
            peak_block_reads_per_interval=self._peak_interval_reads,
            mean_pe_cycles=float(np.mean(self.ftl.pe_cycles)),
            max_pe_cycles=int(np.max(self.ftl.pe_cycles)),
        )
