"""SSD-level simulator: the classic entry point, now engine-backed.

``SsdSimulator`` is the historical name for what is today the unified
:class:`~repro.controller.engine.SimulationEngine`: an FTL + refresh +
read-reclaim loop driven by a trace, with a pluggable physics backend
(:mod:`repro.controller.backends`) and batched windowed execution.  The
default configuration — counter backend, batching on — reproduces the
original per-op simulator's :class:`SsdRunStats` bit-for-bit, only
faster; pass ``batch=False`` for the per-op reference loop or a
:class:`~repro.controller.backends.FlashChipBackend` for RBER-in-the-loop
fidelity.
"""

from __future__ import annotations

from repro.controller.engine import SimulationEngine, SsdRunStats


class SsdSimulator(SimulationEngine):
    """Backward-compatible alias of :class:`SimulationEngine`."""


__all__ = ["SsdSimulator", "SsdRunStats", "SimulationEngine"]
