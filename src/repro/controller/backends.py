"""Pluggable physics backends for the simulation engine.

The engine drives the FTL; a backend decides how much device physics sits
behind each FTL block:

- :class:`CounterBackend` — pure bookkeeping.  The FTL's own counters
  (reads since program, P/E cycles, program timestamps) are the whole
  device model.  This is the fast path for multi-million-operation
  sweeps and reproduces the historical ``SsdSimulator`` semantics.

- :class:`FlashChipBackend` — full fidelity.  Every FTL block is bound to
  a Monte-Carlo :class:`~repro.flash.block.FlashBlock`; host writes
  program real wordlines, host reads charge Vpass-weighted disturb
  exposure and are ECC-decoded, and an uncorrectable page escalates
  through the paper's Read Disturb Recovery before the controller counts
  data loss.  Use it to measure the RBER a policy actually leaves behind.

Both backends observe the FTL through :class:`~repro.controller.ftl.FtlObserver`
hooks (appends, erases, relocations) plus one engine-driven hook,
:meth:`PhysicsBackend.on_reads`, that receives each flushed batch of
mapped host reads.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from functools import partial
from typing import Protocol, runtime_checkable

import numpy as np

from repro import obs
from repro.rng import RngFactory, spawn_key
from repro.units import VPASS_NOMINAL
from repro.core.rdr import RdrConfig, ReadDisturbRecovery
from repro.ecc import DEFAULT_ECC, EccConfig, EccDecoder
from repro.ecc.decoder import BatchDecodeResult
from repro.ecc.fault_model import (
    PATTERN_CLEAN,
    PATTERN_NAMES,
    FaultSpec,
    classify_symbol_errors,
    inject_faults,
    parse_fault_spec,
)
from repro.flash.arena import ARENA_BACKINGS, BlockStore
from repro.flash.block import FlashBlock
from repro.flash.geometry import FlashGeometry
from repro.controller.executor import BlockGroupExecutor, resolve_executor
from repro.controller.ftl import PageMappingFtl


# ----------------------------------------------------------------------
# Process-executor worker plumbing
# ----------------------------------------------------------------------
#
# A ProcessExecutor pool is created with the fork start method and an
# initializer that stashes the owning backend here: under fork the
# initargs are *inherited* (copy-on-write), not pickled, so the whole
# backend — decoder tables, geometry, the shared-arena handle — rides
# into every worker exactly once.  Per-task traffic is then only the
# small picklable payloads the functions below unpack; the cell state
# itself lives in the shared arena and is mutated in place.

_WORKER_BACKEND: "FlashChipBackend | None" = None


def _install_worker_backend(backend: "FlashChipBackend") -> None:
    """Pool initializer: bind this worker process to its backend."""
    global _WORKER_BACKEND
    _WORKER_BACKEND = backend


def _run_read_task(payload: tuple) -> "BlockReadOutcome":
    """Execute one block's read task in a worker process.

    The payload is ``(block_id, wordlines, counts, pages, now)`` — the
    index arrays of a :class:`BlockReadTask`, without the live
    ``FlashBlock`` (which is reattached worker-side over the shared
    arena slab).  Reads consume no RNG, so no generator state needs to
    travel; the returned :class:`BlockReadOutcome` is plain ndarrays.
    """
    block_id, wordlines, counts, pages, now = payload
    backend = _WORKER_BACKEND
    fb = backend._worker_block(block_id)
    task = BlockReadTask(
        block_id=block_id,
        flash_block=fb,
        wordlines=wordlines,
        counts=counts,
        pages=pages,
    )
    return backend._sense_and_decode(task, now=now)


def _run_program_task(payload: tuple) -> tuple:
    """Execute one block's deferred program queue in a worker process.

    The payload is ``(block_id, programs, rng_state)`` where *programs*
    is the queued ``(wordline, now, lsb, msb)`` list and *rng_state* is
    the authoritative per-block generator state from the parent (the
    worker's reattached block has only a placeholder RNG).  The final
    generator state is returned so the parent can adopt it — keeping
    the per-block stream bit-identical to serial execution.
    """
    block_id, programs, rng_state = payload
    backend = _WORKER_BACKEND
    fb = backend._worker_block(block_id)
    fb._rng.bit_generator.state = rng_state
    for wordline, now, lsb, msb in programs:
        fb.program_wordline_bits(wordline, lsb, msb, now)
    return block_id, fb._rng.bit_generator.state


@runtime_checkable
class PhysicsBackend(Protocol):
    """What the simulation engine needs from a device-physics model."""

    def bind(self, ftl: PageMappingFtl) -> None:
        """Attach to the FTL whose physical state this backend mirrors."""

    def on_append(self, block: int, page: int, lpn: int, now: float) -> None:
        """A logical page landed on physical ``(block, page)``."""

    def on_append_many(
        self, block: int, pages: np.ndarray, lpns: np.ndarray, now: float
    ) -> None:
        """A burst of logical pages landed on one block, in page order
        (the relocation path).  Semantically identical to calling
        :meth:`on_append` per page."""

    def on_erase(self, block: int, now: float) -> None:
        """A block was erased."""

    def on_open(self, block: int, now: float) -> None:
        """A free block was opened for writing."""

    def on_reads(self, ppns: np.ndarray, now: float) -> None:
        """A flushed batch of mapped host reads (physical page numbers,
        duplicates preserved).  Called after the FTL's own bookkeeping."""

    def drain_relocations(self) -> list[int]:
        """Blocks the backend wants relocated (e.g. after recovery); the
        engine relocates them at the next safe point and the list clears."""

    def summary(self) -> dict:
        """Backend-specific counters for reporting."""


class CounterBackend:
    """Bookkeeping-only physics: all state lives in the FTL counters."""

    name = "counter"

    def bind(self, ftl: PageMappingFtl) -> None:
        self.ftl = ftl

    def on_append(self, block: int, page: int, lpn: int, now: float) -> None:
        pass

    def on_append_many(
        self, block: int, pages: np.ndarray, lpns: np.ndarray, now: float
    ) -> None:
        pass

    def on_erase(self, block: int, now: float) -> None:
        pass

    def on_open(self, block: int, now: float) -> None:
        pass

    def on_reads(self, ppns: np.ndarray, now: float) -> None:
        pass

    def drain_relocations(self) -> list[int]:
        return []

    def summary(self) -> dict:
        return {"backend": self.name}


@dataclass(frozen=True)
class BlockReadTask:
    """One block's share of a flushed read batch (the planning output).

    The task is *pure per block*: executing it touches only
    :attr:`flash_block` — its exposure counters, its voltage cache —
    plus read-only configuration (decoder, Vpass).  That purity is what
    lets the block-group executor run tasks of one flush concurrently
    and still merge bit-identically (see
    :mod:`repro.controller.executor`).
    """

    block_id: int
    flash_block: FlashBlock
    #: wordlines targeted within the block (parallel to :attr:`counts`).
    wordlines: np.ndarray
    #: reads per targeted wordline in this flush.
    counts: np.ndarray
    #: unique pages of the batch in this block, ascending.
    pages: np.ndarray


@dataclass(frozen=True)
class BlockReadOutcome:
    """What one executed :class:`BlockReadTask` reports back to the merge.

    *checked* is the ascending list of programmed pages the task decoded
    (the decode order the scalar loop used); *decode* is ``None`` when
    the block held no programmed page of the batch.
    """

    block_id: int
    checked: np.ndarray
    decode: BatchDecodeResult | None
    #: per-checked-page injected-fault flags (None without an injector).
    injected: np.ndarray | None = None
    #: per-checked-page fault-pattern codes (:mod:`repro.ecc.fault_model`),
    #: computed only for pages that failed or miscorrected; None when the
    #: task ran on the count-only path or nothing needed classifying.
    patterns: np.ndarray | None = None


class FlashChipBackend:
    """Bind every FTL block to a Monte-Carlo flash block.

    Blocks are materialized lazily (first append), so memory scales with
    the blocks a workload actually touches.  Host data is synthetic:
    programming a wordline writes pseudo-random bits, which is exactly the
    paper's characterization workload and all ECC needs — the decoder
    compares the sensed page against what was programmed.

    Read handling per flushed batch runs as a plan/execute/merge
    pipeline:

    1. **plan** — group the batch per block in one pass over the sorted
       unique physical pages (materializing lazily-bound blocks while
       still serial);
    2. **execute** — one pure :class:`BlockReadTask` per touched block
       on the configured block-group executor
       (:mod:`repro.controller.executor`): charge Vpass-weighted disturb
       exposure in one :meth:`FlashBlock.record_reads` call, then
       ECC-decode each *unique* page of the batch once, at the batch's
       final exposure (repeated reads of a page within one flush return
       the same sensed data, so one decode per page per flush is the
       exact per-op semantics at a fraction of the cost) — one
       :meth:`EccDecoder.check_pages` call per block, sensing every page
       against a single materialization of the block's voltages;
    3. **merge** — fold the outcomes into the shared counters in
       ascending block order; on an uncorrectable page, run Read Disturb
       Recovery on the wordline; if the post-RDR error count fits the
       ECC capability the data is recovered, otherwise it is lost.
       Either way the block is queued for relocation so the engine
       rewrites it to a fresh block, and later pages of the same flush
       on that block are skipped (their data is already being remapped).

    With ``arena="shm"`` or ``arena="mmap"`` every block's mutable
    state lives in one :class:`~repro.flash.arena.BlockStore` slab
    instead of per-block heap arrays — required (and defaulted to
    ``"shm"``) for a multi-worker ``executor="process[:N]"``, whose
    forked workers mutate the slabs in place, and the enabler of
    out-of-core drives: ``arena="mmap"`` plus ``resident_blocks=N``
    spills cold blocks' pages back to the backing file so a
    ``blocks=4096`` geometry runs under a bounded resident set.
    Parallel executors (``workers > 1``) also defer wordline programs
    into per-block queues flushed in ascending block order at the next
    observation point (read flush, erase, RBER probe, summary), which
    keeps the write path parallel *and* bit-identical to serial — data
    bits are drawn at append time, per-block RNG streams advance in
    queue order.
    """

    name = "flash_chip"

    def __init__(
        self,
        bitlines_per_block: int = 2048,
        initial_pe_cycles: int = 0,
        vpass: float = VPASS_NOMINAL,
        ecc: EccConfig = DEFAULT_ECC,
        rdr: RdrConfig | None = None,
        enable_rdr: bool = True,
        seed: int = 0,
        executor: str | BlockGroupExecutor = "serial",
        arena: str | None = None,
        resident_blocks: int | None = None,
        fault_pattern: str | FaultSpec | None = None,
    ):
        if bitlines_per_block < 1:
            raise ValueError("need at least one bitline per block")
        if initial_pe_cycles < 0:
            raise ValueError("initial wear cannot be negative")
        self.bitlines_per_block = int(bitlines_per_block)
        self.initial_pe_cycles = int(initial_pe_cycles)
        self.vpass = float(vpass)
        self.decoder = EccDecoder(ecc)
        #: structured fault injection overlaid on sensed error masks
        #: (:mod:`repro.ecc.fault_model`); None injects nothing.
        self.fault_spec: FaultSpec | None = (
            parse_fault_spec(fault_pattern)
            if isinstance(fault_pattern, str)
            else fault_pattern
        )
        # Capability of the RDR rescue judgement (a wordline holds two
        # pages) — resolved once per backend instead of per escalation.
        self._wordline_capability = self.decoder.config.page_capability_bits(
            2 * self.bitlines_per_block
        )
        self.rdr = ReadDisturbRecovery(rdr) if enable_rdr else None
        self.seed = int(seed)
        # A caller handing us a live executor instance keeps ownership
        # of it; executors we resolve from a spec are ours to close.
        self._owns_executor = isinstance(executor, (str, type(None)))
        #: block-group executor running each flush's per-block tasks;
        #: "serial", "threaded[:N]" and "process[:N]" are bit-identical
        #: by construction.
        self.executor: BlockGroupExecutor = resolve_executor(executor)
        self._process_workers = (
            getattr(self.executor, "name", "") == "process"
            and self.executor.workers > 1
        )
        if arena is not None and arena not in ARENA_BACKINGS:
            raise ValueError(
                f"unknown arena backing {arena!r}; expected one of "
                f"{ARENA_BACKINGS}"
            )
        if arena is None and self._process_workers:
            # Worker processes need the cell state reachable in place.
            arena = "shm"
        if resident_blocks is not None:
            if arena != "mmap":
                raise ValueError(
                    "resident_blocks needs arena='mmap' (only a file-backed "
                    "arena can spill cold blocks)"
                )
            if resident_blocks < 1:
                raise ValueError("resident_blocks must be at least 1")
        #: arena backing for block state (None = per-block heap arrays).
        self.arena = arena
        self._resident_blocks = resident_blocks
        self._store: BlockStore | None = None
        # Deferred per-block program queue: only a parallel executor
        # batches programs (the serial path keeps its exact immediate
        # semantics); data bits are drawn at queue time so the global
        # data stream stays in append order.
        self._defer_programs = getattr(self.executor, "workers", 1) > 1
        self._pending_programs: dict[int, list] = {}
        self._pending_wordlines: set[tuple[int, int]] = set()
        # Filled in bind().
        self.ftl: PageMappingFtl | None = None
        self.geometry: FlashGeometry | None = None
        self._blocks: dict[int, FlashBlock] = {}
        self._rng_factory = RngFactory(self.seed)
        self._data_rng = np.random.default_rng(self.seed ^ 0x5EED)
        self._pending_relocations: list[int] = []
        # Physics-path accounting.
        self.pages_checked = 0
        self.uncorrectable_pages = 0
        self.rdr_attempts = 0
        self.rdr_recovered = 0
        self.data_loss_events = 0
        self.corrected_bits = 0
        # Decode-quality accounting (always reported; the threshold
        # decoder without fault injection legitimately keeps them zero).
        self.miscorrected_pages = 0
        self.injected_faults = 0
        #: taxonomy histogram of pages that failed decode or miscorrected.
        self.fault_patterns = {
            name: 0 for name in PATTERN_NAMES if name != "clean"
        }
        # Telemetry handles (shared no-op singletons when disabled).
        # Out-of-band only: these mirror the accounting counters above,
        # they never feed RNG streams or results.
        self._obs_decode_seconds = obs.histogram("physics.decode_pages.seconds")
        self._obs_miscorrections = obs.counter("ecc.rs.miscorrections")
        self._obs_uncorrectable = obs.counter("ecc.uncorrectable_pages")
        self._obs_rdr_attempts = obs.counter("physics.rdr.attempts")
        # Parent span id for per-block task records; set only around the
        # in-process executor.map of a traced flush (detail "block"), so
        # process-pool workers (forked with this at None) emit nothing.
        self._trace_block_parent: str | None = None

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def bind(self, ftl: PageMappingFtl) -> None:
        cfg = ftl.config
        if cfg.pages_per_block % 2 != 0:
            raise ValueError(
                "FlashChipBackend needs an even pages_per_block (MLC stores "
                "two pages per wordline)"
            )
        self.ftl = ftl
        self.geometry = FlashGeometry(
            blocks=cfg.blocks,
            wordlines_per_block=cfg.pages_per_block // 2,
            bitlines_per_block=self.bitlines_per_block,
        )
        if self._store is not None:
            self._store.close()
            self._store = None
        if self.arena is not None:
            self._store = BlockStore(
                self.geometry,
                backing=self.arena,
                resident_limit=self._resident_blocks,
                on_evict=self._on_arena_evict,
            )

    def on_append(self, block: int, page: int, lpn: int, now: float) -> None:
        fb = self.block(block)
        wordline = page // 2
        if fb.programmed[wordline]:
            return
        if self._defer_programs and (block, wordline) in self._pending_wordlines:
            return
        # First touch of the wordline: program both of its pages at once
        # (the LSB page is always appended first, and MLC wordlines are
        # programmed as a unit).  Data bits are drawn *now* — whether the
        # program executes immediately or is queued — so the global data
        # stream is consumed in append order in both modes.
        bits = self.geometry.bitlines_per_block
        lsb = self._data_rng.integers(0, 2, bits, dtype=np.uint8)
        msb = self._data_rng.integers(0, 2, bits, dtype=np.uint8)
        if self._defer_programs:
            self._pending_wordlines.add((block, wordline))
            self._pending_programs.setdefault(block, []).append(
                (wordline, now, lsb, msb)
            )
        else:
            fb.program_wordline_bits(wordline, lsb, msb, now)

    def on_append_many(
        self, block: int, pages: np.ndarray, lpns: np.ndarray, now: float
    ) -> None:
        for page, lpn in zip(pages, lpns):
            self.on_append(block, int(page), int(lpn), now)

    def flush_programs(self) -> None:
        """Execute every queued wordline program, grouped per block.

        Programs are queued only by a parallel executor (see
        ``__init__``); this flush runs at every point that observes
        programmed state — a read flush, an erase, an RBER probe, a
        summary — so deferral is invisible.  Each block's queue runs in
        append order with the data bits and timestamps fixed at queue
        time, and blocks flush in ascending id order, so the per-block
        RNG streams advance exactly as the serial immediate path would
        have advanced them.
        """
        if not self._pending_programs:
            return
        pending = self._pending_programs
        self._pending_programs = {}
        self._pending_wordlines = set()
        tasks = [(block, pending[block]) for block in sorted(pending)]
        if self._use_process_pool(len(tasks)):
            # Ship each block's RNG state out and adopt the final state
            # back: the workers' arena-attached blocks carry placeholder
            # generators.
            payloads = [
                (
                    block,
                    programs,
                    self._blocks[block]._rng.bit_generator.state,
                )
                for block, programs in tasks
            ]
            for block, state in self._process_map(_run_program_task, payloads):
                self._blocks[block]._rng.bit_generator.state = state
        else:
            self.executor.map(self._program_block_task, tasks)
        self._settle_arena(block for block, _ in tasks)

    def _program_block_task(self, task: tuple) -> None:
        """Run one block's queued programs on the live block (pure per
        block: the serial/threaded flush path)."""
        block, programs = task
        fb = self._blocks[block]
        for wordline, now, lsb, msb in programs:
            fb.program_wordline_bits(wordline, lsb, msb, now)

    def on_erase(self, block: int, now: float) -> None:
        # Flush all queued programs first: erase draws from the same
        # per-block stream, and the serial order is programs-then-erase.
        self.flush_programs()
        fb = self._blocks.get(block)
        if fb is not None:
            fb.erase(now)
            self._settle_arena((block,))

    def on_open(self, block: int, now: float) -> None:
        # Physical erase (the disturb/history reset) happened at on_erase.
        pass

    def on_reads(self, ppns: np.ndarray, now: float) -> None:
        """Apply one flushed batch of mapped host reads to the chip.

        A plan/execute/merge pipeline: one grouping pass over the sorted
        unique pages of the batch (:meth:`_plan_reads`), then one pure
        per-block task per touched block on the block-group executor
        (:meth:`_sense_and_decode` — one
        :meth:`~repro.flash.block.FlashBlock.record_reads` bulk disturb
        charge and one :meth:`~repro.ecc.decoder.EccDecoder.check_pages`
        sensing every unique programmed page against a single voltage
        materialization), and finally a deterministic merge in ascending
        block order (:meth:`_merge_outcomes` — shared counters and RDR
        escalation).

        **Bit-identity.**  Decode granularity is *per flush*: repeated
        reads of a page within one flush sense identical data, so one
        decode per unique page reproduces the per-op loop's outcomes
        exactly on that flush boundary; within a block, pages decode in
        ascending order and the merge stops counting at the first
        uncorrectable page — the scalar escalation bookkeeping — before
        RDR runs and the block is queued for relocation (golden
        summaries in ``tests/controller/test_backend_vectorized.py`` pin
        all of it).  Tasks touch only their own block and the merge
        order is fixed, so ``executor="threaded"`` produces the same
        bits as ``executor="serial"``
        (``tests/controller/test_block_executor.py``).

        **Cache precondition.**  Assumes *ppns* were resolved against
        the mapping current at flush time (the engine flushes before any
        relocation moves data); the voltage cache is managed by the
        block's own epoch bumps.

        **Process dispatch.**  Under a multi-worker
        :class:`~repro.controller.executor.ProcessExecutor` the tasks
        cross to the workers as index tuples only (module-level
        :func:`_run_read_task`); cell state stays in the shared arena
        and the outcomes merge in the same ascending-block order, so the
        result is still bit-identical to serial.
        """
        # Reads observe programmed state: drain the deferred program
        # queue before the empty-batch early-return (a flush with no
        # reads must still surface queued programs to later observers).
        self.flush_programs()
        if ppns.size == 0:
            return
        tracer = obs.tracer()
        if not tracer.detail_flush:
            self._flush_reads_inner(ppns, now, tracer)
            return
        with tracer.span("physics.flush", reads=int(ppns.size)):
            self._flush_reads_inner(ppns, now, tracer)

    def _flush_reads_inner(self, ppns: np.ndarray, now: float, tracer) -> None:
        # Phase spans only at detail "flush"+; the histogram observes at
        # every detail (it is a metric, not a span).
        if tracer.detail_flush:
            span = tracer.span
        else:
            span = lambda name, **attrs: nullcontext(None)  # noqa: E731
        with span("physics.plan"):
            tasks = self._plan_reads(ppns)
        t_start = time.monotonic()
        if self._use_process_pool(len(tasks)):
            payloads = [
                (task.block_id, task.wordlines, task.counts, task.pages, now)
                for task in tasks
            ]
            with span("physics.execute", blocks=len(tasks)):
                outcomes = self._process_map(_run_read_task, payloads)
            self._obs_decode_seconds.observe(time.monotonic() - t_start)
            with span("physics.merge", blocks=len(tasks)):
                self._merge_outcomes(outcomes, now)
            self._settle_arena(task.block_id for task in tasks)
            return
        execute = partial(self._sense_and_decode, now=now)
        limit = self._store.resident_limit if self._store is not None else None
        if limit is None:
            with span("physics.execute", blocks=len(tasks)) as execute_span:
                if execute_span is not None and tracer.detail_block:
                    self._trace_block_parent = execute_span.id
                try:
                    outcomes = self.executor.map(execute, tasks)
                finally:
                    self._trace_block_parent = None
            self._obs_decode_seconds.observe(time.monotonic() - t_start)
            with span("physics.merge", blocks=len(tasks)):
                self._merge_outcomes(outcomes, now)
            return
        # Out-of-core: one flush can touch far more blocks than the
        # residency budget, so execute/merge/settle in LRU-sized chunks.
        # The merge is a sequential fold in ascending block order and
        # each block is exactly one task, so chunking at any boundary
        # (with the flush-wide RDR dedup set threaded through) produces
        # bit-identical results while peak residency stays near the
        # limit instead of near the flush's block count.
        rescued: set[tuple[int, int]] = set()
        for start in range(0, len(tasks), limit):
            chunk = tasks[start : start + limit]
            outcomes = self.executor.map(execute, chunk)
            self._merge_outcomes(outcomes, now, rescued)
            self._settle_arena(task.block_id for task in chunk)
        self._obs_decode_seconds.observe(time.monotonic() - t_start)

    def _plan_reads(self, ppns: np.ndarray) -> list[BlockReadTask]:
        """Grouping/planning pass: one :class:`BlockReadTask` per block.

        Runs serially so lazy block materialization (a dict insert plus
        RNG-stream construction) never races the executor's workers;
        the tasks come back in ascending block order, which is the order
        the merge folds them in.
        """
        pages_per_block = self.ftl.config.pages_per_block
        unique_ppns, counts = np.unique(ppns, return_counts=True)
        blocks = unique_ppns // pages_per_block
        pages = unique_ppns % pages_per_block
        wordlines = pages // 2
        # unique_ppns is sorted, so blocks is sorted: one boundary scan
        # yields the per-block groups for both recording and decoding.
        group_starts = np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]])
        group_ends = np.r_[group_starts[1:], blocks.size]
        tasks = []
        for start, end in zip(group_starts, group_ends):
            start, end = int(start), int(end)
            block = int(blocks[start])
            tasks.append(
                BlockReadTask(
                    block_id=block,
                    flash_block=self.block(block),
                    wordlines=wordlines[start:end],
                    counts=counts[start:end],
                    pages=pages[start:end],
                )
            )
        return tasks

    def _sense_and_decode(
        self, task: BlockReadTask, now: float
    ) -> BlockReadOutcome:
        """:meth:`_sense_decode_block`, plus an optional per-block span.

        The span (detail "block") uses a parent-derived id via
        :meth:`~repro.obs.tracing.Tracer.record`, so concurrent tasks
        consume no shared sequence and ids stay deterministic under any
        thread interleaving.  ``_trace_block_parent`` is only ever set
        around the in-process executor.map of a traced flush — forked
        process-pool workers hold it at ``None`` and emit nothing.
        """
        parent = self._trace_block_parent
        if parent is None:
            return self._sense_decode_block(task, now)
        tracer = obs.tracer()
        t0 = time.monotonic()
        outcome = self._sense_decode_block(task, now)
        tracer.record(
            "physics.block",
            t0,
            time.monotonic(),
            span_id=tracer.child_id(parent, f"b{task.block_id}"),
            parent=parent,
            block=task.block_id,
            pages=int(task.pages.size),
        )
        return outcome

    def _sense_decode_block(
        self, task: BlockReadTask, now: float
    ) -> BlockReadOutcome:
        """Execute one block's task: bulk disturb charge, then decode.

        Pure per block — mutates only ``task.flash_block`` (exposure
        counters, voltage cache) and reads shared configuration, so any
        number of tasks from one flush can run concurrently.
        """
        fb = task.flash_block
        # Reads of both pages of a wordline are one sensing pass each
        # but identical disturb, so the wordline counts just add up.
        fb.record_reads(task.wordlines, task.counts, self.vpass)
        # ECC-decode each unique programmed page once, at post-batch
        # exposure.  Page order within the group is ascending — the
        # order the scalar loop decoded in — so the merge's stop at the
        # first failure reproduces its escalation bookkeeping exactly.
        in_block = task.pages[fb.programmed[task.wordlines]]
        if in_block.size == 0:
            return BlockReadOutcome(task.block_id, in_block, None)
        if self.fault_spec is None and self.decoder.kind == "threshold":
            # Count-only fast path: the exact pre-RS semantics.
            decode = self.decoder.check_pages(fb, in_block, now, self.vpass)
            return BlockReadOutcome(task.block_id, in_block, decode)
        # Position path: the RS engine (and any fault injector) needs the
        # raw error masks, not just counts.  Same fused sensing kernel,
        # same disturb accounting.
        masks = fb.page_error_masks(in_block, now, vpass=self.vpass)
        injected = None
        if self.fault_spec is not None:
            # Spawn-keyed off per-block state only (the post-record read
            # total), so injection is bit-identical across serial,
            # threaded, and process executors.
            rng = np.random.default_rng(
                spawn_key(self.seed, "fault", task.block_id, fb.total_reads)
            )
            injected = inject_faults(masks, self.fault_spec, rng)
        decode = self.decoder.decode_error_masks(masks)
        need = ~decode.success
        miscorrected = getattr(decode, "miscorrected", None)
        if miscorrected is not None:
            need = need | miscorrected
        patterns = None
        if need.any():
            symbols = np.packbits(masks[need].astype(np.uint8), axis=1)
            patterns = np.zeros(in_block.size, dtype=np.int8)
            patterns[need] = classify_symbol_errors(symbols)
        return BlockReadOutcome(task.block_id, in_block, decode, injected, patterns)

    def _merge_outcomes(
        self,
        outcomes: list[BlockReadOutcome],
        now: float,
        rescued_wordlines: set[tuple[int, int]] | None = None,
    ) -> None:
        """Ordered merge: fold outcomes into shared state, escalate RDR.

        Outcomes arrive in ascending block order (planning order, which
        every executor preserves), so counter updates, RDR escalations,
        and relocation queuing happen in exactly the sequence the serial
        loop produced.  RDR mutates only the failing block — blocks the
        executor already decoded are unaffected.
        """
        if rescued_wordlines is None:
            rescued_wordlines = set()
        for outcome in outcomes:
            if outcome.decode is None:
                continue
            failures = np.flatnonzero(~outcome.decode.success)
            counted = outcome.checked.size if failures.size == 0 else int(failures[0])
            self.pages_checked += counted + (0 if failures.size == 0 else 1)
            self.corrected_bits += int(outcome.decode.raw_errors[:counted].sum())
            self._account_decode_quality(outcome, counted)
            if failures.size == 0:
                continue
            first = int(failures[0])
            self.uncorrectable_pages += 1
            self._obs_uncorrectable.inc()
            if outcome.patterns is not None:
                self._count_pattern(int(outcome.patterns[first]))
            # The block is queued for relocation; pages after the failure
            # are skipped this flush, as their data is being remapped.
            self._escalate(
                outcome.block_id,
                int(outcome.checked[first]) // 2,
                now,
                rescued_wordlines,
            )

    def _account_decode_quality(self, outcome: BlockReadOutcome, counted: int) -> None:
        """Fold one outcome's miscorrection/injection data into counters.

        *counted* is the number of successfully accounted pages (up to
        the first failure); the failing page itself is accounted by the
        caller, except its injection flag which is included here.
        """
        miscorrected = getattr(outcome.decode, "miscorrected", None)
        if miscorrected is not None:
            for index in np.flatnonzero(miscorrected[:counted]):
                self.miscorrected_pages += 1
                self._obs_miscorrections.inc()
                if outcome.patterns is not None:
                    self._count_pattern(int(outcome.patterns[index]))
        if outcome.injected is not None:
            # Include the failing page (it was checked) when one exists.
            upto = min(counted + 1, outcome.injected.size)
            self.injected_faults += int(outcome.injected[:upto].sum())

    def _count_pattern(self, code: int) -> None:
        if code != PATTERN_CLEAN:
            self.fault_patterns[PATTERN_NAMES[code]] += 1

    def drain_relocations(self) -> list[int]:
        pending, self._pending_relocations = self._pending_relocations, []
        return pending

    def worst_block_rber(self, now: float) -> float | None:
        """Worst current RBER across bound blocks with programmed data
        (or None when nothing is programmed yet).

        A non-recording characterization pass: no disturb is charged and
        no RNG is consumed, so observing a run (e.g. the sweep runner's
        per-window trajectory) cannot perturb it.
        """
        self.flush_programs()
        worst = None
        for block_id, fb in self._blocks.items():
            if not fb.programmed.any():
                continue
            rber = fb.measure_block_rber(now=now, vpass=self.vpass)
            self._settle_arena((block_id,))
            if worst is None or rber > worst:
                worst = rber
        return worst

    def summary(self) -> dict:
        self.flush_programs()
        return {
            "backend": self.name,
            "bound_blocks": len(self._blocks),
            "pages_checked": self.pages_checked,
            "corrected_bits": self.corrected_bits,
            "uncorrectable_pages": self.uncorrectable_pages,
            "miscorrected_pages": self.miscorrected_pages,
            "injected_faults": self.injected_faults,
            "fault_patterns": dict(self.fault_patterns),
            "rdr_attempts": self.rdr_attempts,
            "rdr_recovered": self.rdr_recovered,
            "data_loss_events": self.data_loss_events,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def block(self, block_id: int) -> FlashBlock:
        """The :class:`FlashBlock` bound to FTL block *block_id* (lazy)."""
        fb = self._blocks.get(block_id)
        if fb is None:
            if self.geometry is None:
                raise RuntimeError("backend not bound to an FTL yet")
            fb = FlashBlock(
                self.geometry,
                self._rng_factory,
                block_id=block_id,
                store=self._store,
            )
            if self.initial_pe_cycles > 0:
                fb.cycle_wear_to(self.initial_pe_cycles)
            self._blocks[block_id] = fb
        elif self._store is not None:
            # Keep the arena's LRU warm for out-of-core spilling.
            self._store.touch(block_id)
        return fb

    def _worker_block(self, block_id: int) -> FlashBlock:
        """Worker-side block lookup: the fork-inherited dict first, then
        an arena reattach for blocks the parent materialized after the
        pool forked (slab addressing is deterministic in *block_id*)."""
        fb = self._blocks.get(block_id)
        if fb is None:
            fb = FlashBlock.attach(self.geometry, self._store, block_id)
            self._blocks[block_id] = fb
        return fb

    def _use_process_pool(self, n_tasks: int) -> bool:
        """Whether a flush of *n_tasks* blocks crosses to worker
        processes (multi-worker process executor, multi-block flush)."""
        return self._process_workers and n_tasks > 1

    def _process_map(self, fn, payloads: list) -> list:
        """Run picklable *payloads* on the process executor's pool,
        installing this backend in each worker by fork inheritance."""
        return self.executor.process_map(
            fn,
            payloads,
            initializer=_install_worker_backend,
            initargs=(self,),
        )

    def _settle_arena(self, block_ids) -> None:
        """Re-enter *block_ids* into the arena's LRU after their slabs
        were touched through live views.

        Task execution, program flushes, and RBER probes fault slab
        pages back in *without* going through :meth:`BlockStore.slab`
        (they hold the numpy views directly), so the LRU would never see
        those refaults — a block evicted mid-batch and then executed
        would stay resident forever.  Touching after the fact keeps the
        spill accounting honest: anything faulted in re-queues for
        eviction, so the resident set stays bounded by the limit plus
        one batch.  No-op without an out-of-core arena.
        """
        if self._store is not None and self._store.resident_limit is not None:
            for block_id in block_ids:
                self._store.touch(block_id)

    def _on_arena_evict(self, block_id: int) -> None:
        """Arena spilled a block: drop its heap-resident voltage cache
        (the materialized voltages are the real RSS cost; they recompute
        from the slab on the next sense)."""
        fb = self._blocks.get(block_id)
        if fb is not None:
            fb._voltage_cache = None
            fb._voltage_cache_key = None

    def close(self) -> None:
        """Release pooled workers and the block arena (idempotent).

        Flushes nothing: callers observe final state via
        :meth:`summary` (which flushes) before closing —
        :func:`repro.controller.factory.run_scenario` does this inside
        its ``try``/``finally``.
        """
        if self._owns_executor:
            close = getattr(self.executor, "close", None)
            if close is not None:
                close()
        if self._store is not None:
            self._store.close()
            self._store = None

    def _escalate(
        self,
        block: int,
        wordline: int,
        now: float,
        rescued: set[tuple[int, int]],
    ) -> None:
        """Uncorrectable page: try RDR, then queue the block for remap."""
        if block not in self._pending_relocations:
            self._pending_relocations.append(block)
        if self.rdr is None:
            self.data_loss_events += 1
            return
        if (block, wordline) in rescued:
            return
        rescued.add((block, wordline))
        fb = self._blocks[block]
        self.rdr_attempts += 1
        self._obs_rdr_attempts.inc()
        outcome, recovered = self.rdr.rescue_wordline(
            fb, wordline, now, self._wordline_capability
        )
        if recovered:
            self.rdr_recovered += 1
        else:
            self.data_loss_events += 1
