"""Pluggable physics backends for the simulation engine.

The engine drives the FTL; a backend decides how much device physics sits
behind each FTL block:

- :class:`CounterBackend` — pure bookkeeping.  The FTL's own counters
  (reads since program, P/E cycles, program timestamps) are the whole
  device model.  This is the fast path for multi-million-operation
  sweeps and reproduces the historical ``SsdSimulator`` semantics.

- :class:`FlashChipBackend` — full fidelity.  Every FTL block is bound to
  a Monte-Carlo :class:`~repro.flash.block.FlashBlock`; host writes
  program real wordlines, host reads charge Vpass-weighted disturb
  exposure and are ECC-decoded, and an uncorrectable page escalates
  through the paper's Read Disturb Recovery before the controller counts
  data loss.  Use it to measure the RBER a policy actually leaves behind.

Both backends observe the FTL through :class:`~repro.controller.ftl.FtlObserver`
hooks (appends, erases, relocations) plus one engine-driven hook,
:meth:`PhysicsBackend.on_reads`, that receives each flushed batch of
mapped host reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Protocol, runtime_checkable

import numpy as np

from repro.rng import RngFactory
from repro.units import VPASS_NOMINAL
from repro.core.rdr import RdrConfig, ReadDisturbRecovery
from repro.ecc import DEFAULT_ECC, EccConfig, EccDecoder
from repro.ecc.decoder import BatchDecodeResult
from repro.flash.block import FlashBlock
from repro.flash.geometry import FlashGeometry
from repro.controller.executor import BlockGroupExecutor, resolve_executor
from repro.controller.ftl import PageMappingFtl


@runtime_checkable
class PhysicsBackend(Protocol):
    """What the simulation engine needs from a device-physics model."""

    def bind(self, ftl: PageMappingFtl) -> None:
        """Attach to the FTL whose physical state this backend mirrors."""

    def on_append(self, block: int, page: int, lpn: int, now: float) -> None:
        """A logical page landed on physical ``(block, page)``."""

    def on_erase(self, block: int, now: float) -> None:
        """A block was erased."""

    def on_open(self, block: int, now: float) -> None:
        """A free block was opened for writing."""

    def on_reads(self, ppns: np.ndarray, now: float) -> None:
        """A flushed batch of mapped host reads (physical page numbers,
        duplicates preserved).  Called after the FTL's own bookkeeping."""

    def drain_relocations(self) -> list[int]:
        """Blocks the backend wants relocated (e.g. after recovery); the
        engine relocates them at the next safe point and the list clears."""

    def summary(self) -> dict:
        """Backend-specific counters for reporting."""


class CounterBackend:
    """Bookkeeping-only physics: all state lives in the FTL counters."""

    name = "counter"

    def bind(self, ftl: PageMappingFtl) -> None:
        self.ftl = ftl

    def on_append(self, block: int, page: int, lpn: int, now: float) -> None:
        pass

    def on_erase(self, block: int, now: float) -> None:
        pass

    def on_open(self, block: int, now: float) -> None:
        pass

    def on_reads(self, ppns: np.ndarray, now: float) -> None:
        pass

    def drain_relocations(self) -> list[int]:
        return []

    def summary(self) -> dict:
        return {"backend": self.name}


@dataclass(frozen=True)
class BlockReadTask:
    """One block's share of a flushed read batch (the planning output).

    The task is *pure per block*: executing it touches only
    :attr:`flash_block` — its exposure counters, its voltage cache —
    plus read-only configuration (decoder, Vpass).  That purity is what
    lets the block-group executor run tasks of one flush concurrently
    and still merge bit-identically (see
    :mod:`repro.controller.executor`).
    """

    block_id: int
    flash_block: FlashBlock
    #: wordlines targeted within the block (parallel to :attr:`counts`).
    wordlines: np.ndarray
    #: reads per targeted wordline in this flush.
    counts: np.ndarray
    #: unique pages of the batch in this block, ascending.
    pages: np.ndarray


@dataclass(frozen=True)
class BlockReadOutcome:
    """What one executed :class:`BlockReadTask` reports back to the merge.

    *checked* is the ascending list of programmed pages the task decoded
    (the decode order the scalar loop used); *decode* is ``None`` when
    the block held no programmed page of the batch.
    """

    block_id: int
    checked: np.ndarray
    decode: BatchDecodeResult | None


class FlashChipBackend:
    """Bind every FTL block to a Monte-Carlo flash block.

    Blocks are materialized lazily (first append), so memory scales with
    the blocks a workload actually touches.  Host data is synthetic:
    programming a wordline writes pseudo-random bits, which is exactly the
    paper's characterization workload and all ECC needs — the decoder
    compares the sensed page against what was programmed.

    Read handling per flushed batch runs as a plan/execute/merge
    pipeline:

    1. **plan** — group the batch per block in one pass over the sorted
       unique physical pages (materializing lazily-bound blocks while
       still serial);
    2. **execute** — one pure :class:`BlockReadTask` per touched block
       on the configured block-group executor
       (:mod:`repro.controller.executor`): charge Vpass-weighted disturb
       exposure in one :meth:`FlashBlock.record_reads` call, then
       ECC-decode each *unique* page of the batch once, at the batch's
       final exposure (repeated reads of a page within one flush return
       the same sensed data, so one decode per page per flush is the
       exact per-op semantics at a fraction of the cost) — one
       :meth:`EccDecoder.check_pages` call per block, sensing every page
       against a single materialization of the block's voltages;
    3. **merge** — fold the outcomes into the shared counters in
       ascending block order; on an uncorrectable page, run Read Disturb
       Recovery on the wordline; if the post-RDR error count fits the
       ECC capability the data is recovered, otherwise it is lost.
       Either way the block is queued for relocation so the engine
       rewrites it to a fresh block, and later pages of the same flush
       on that block are skipped (their data is already being remapped).
    """

    name = "flash_chip"

    def __init__(
        self,
        bitlines_per_block: int = 2048,
        initial_pe_cycles: int = 0,
        vpass: float = VPASS_NOMINAL,
        ecc: EccConfig = DEFAULT_ECC,
        rdr: RdrConfig | None = None,
        enable_rdr: bool = True,
        seed: int = 0,
        executor: str | BlockGroupExecutor = "serial",
    ):
        if bitlines_per_block < 1:
            raise ValueError("need at least one bitline per block")
        if initial_pe_cycles < 0:
            raise ValueError("initial wear cannot be negative")
        self.bitlines_per_block = int(bitlines_per_block)
        self.initial_pe_cycles = int(initial_pe_cycles)
        self.vpass = float(vpass)
        self.decoder = EccDecoder(ecc)
        # Capability of the RDR rescue judgement (a wordline holds two
        # pages) — resolved once per backend instead of per escalation.
        self._wordline_capability = self.decoder.config.page_capability_bits(
            2 * self.bitlines_per_block
        )
        self.rdr = ReadDisturbRecovery(rdr) if enable_rdr else None
        self.seed = int(seed)
        #: block-group executor running each flush's per-block tasks;
        #: "serial" and "threaded[:N]" are bit-identical by construction.
        self.executor: BlockGroupExecutor = resolve_executor(executor)
        # Filled in bind().
        self.ftl: PageMappingFtl | None = None
        self.geometry: FlashGeometry | None = None
        self._blocks: dict[int, FlashBlock] = {}
        self._rng_factory = RngFactory(self.seed)
        self._data_rng = np.random.default_rng(self.seed ^ 0x5EED)
        self._pending_relocations: list[int] = []
        # Physics-path accounting.
        self.pages_checked = 0
        self.uncorrectable_pages = 0
        self.rdr_attempts = 0
        self.rdr_recovered = 0
        self.data_loss_events = 0
        self.corrected_bits = 0

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def bind(self, ftl: PageMappingFtl) -> None:
        cfg = ftl.config
        if cfg.pages_per_block % 2 != 0:
            raise ValueError(
                "FlashChipBackend needs an even pages_per_block (MLC stores "
                "two pages per wordline)"
            )
        self.ftl = ftl
        self.geometry = FlashGeometry(
            blocks=cfg.blocks,
            wordlines_per_block=cfg.pages_per_block // 2,
            bitlines_per_block=self.bitlines_per_block,
        )

    def on_append(self, block: int, page: int, lpn: int, now: float) -> None:
        fb = self.block(block)
        wordline = page // 2
        if fb.programmed[wordline]:
            return
        # First touch of the wordline: program both of its pages at once
        # (the LSB page is always appended first, and MLC wordlines are
        # programmed as a unit).
        bits = self.geometry.bitlines_per_block
        lsb = self._data_rng.integers(0, 2, bits, dtype=np.uint8)
        msb = self._data_rng.integers(0, 2, bits, dtype=np.uint8)
        fb.program_wordline_bits(wordline, lsb, msb, now)

    def on_erase(self, block: int, now: float) -> None:
        fb = self._blocks.get(block)
        if fb is not None:
            fb.erase(now)

    def on_open(self, block: int, now: float) -> None:
        # Physical erase (the disturb/history reset) happened at on_erase.
        pass

    def on_reads(self, ppns: np.ndarray, now: float) -> None:
        """Apply one flushed batch of mapped host reads to the chip.

        A plan/execute/merge pipeline: one grouping pass over the sorted
        unique pages of the batch (:meth:`_plan_reads`), then one pure
        per-block task per touched block on the block-group executor
        (:meth:`_sense_and_decode` — one
        :meth:`~repro.flash.block.FlashBlock.record_reads` bulk disturb
        charge and one :meth:`~repro.ecc.decoder.EccDecoder.check_pages`
        sensing every unique programmed page against a single voltage
        materialization), and finally a deterministic merge in ascending
        block order (:meth:`_merge_outcomes` — shared counters and RDR
        escalation).

        **Bit-identity.**  Decode granularity is *per flush*: repeated
        reads of a page within one flush sense identical data, so one
        decode per unique page reproduces the per-op loop's outcomes
        exactly on that flush boundary; within a block, pages decode in
        ascending order and the merge stops counting at the first
        uncorrectable page — the scalar escalation bookkeeping — before
        RDR runs and the block is queued for relocation (golden
        summaries in ``tests/controller/test_backend_vectorized.py`` pin
        all of it).  Tasks touch only their own block and the merge
        order is fixed, so ``executor="threaded"`` produces the same
        bits as ``executor="serial"``
        (``tests/controller/test_block_executor.py``).

        **Cache precondition.**  Assumes *ppns* were resolved against
        the mapping current at flush time (the engine flushes before any
        relocation moves data); the voltage cache is managed by the
        block's own epoch bumps.
        """
        if ppns.size == 0:
            return
        tasks = self._plan_reads(ppns)
        execute = partial(self._sense_and_decode, now=now)
        outcomes = self.executor.map(execute, tasks)
        self._merge_outcomes(outcomes, now)

    def _plan_reads(self, ppns: np.ndarray) -> list[BlockReadTask]:
        """Grouping/planning pass: one :class:`BlockReadTask` per block.

        Runs serially so lazy block materialization (a dict insert plus
        RNG-stream construction) never races the executor's workers;
        the tasks come back in ascending block order, which is the order
        the merge folds them in.
        """
        pages_per_block = self.ftl.config.pages_per_block
        unique_ppns, counts = np.unique(ppns, return_counts=True)
        blocks = unique_ppns // pages_per_block
        pages = unique_ppns % pages_per_block
        wordlines = pages // 2
        # unique_ppns is sorted, so blocks is sorted: one boundary scan
        # yields the per-block groups for both recording and decoding.
        group_starts = np.flatnonzero(np.r_[True, blocks[1:] != blocks[:-1]])
        group_ends = np.r_[group_starts[1:], blocks.size]
        tasks = []
        for start, end in zip(group_starts, group_ends):
            start, end = int(start), int(end)
            block = int(blocks[start])
            tasks.append(
                BlockReadTask(
                    block_id=block,
                    flash_block=self.block(block),
                    wordlines=wordlines[start:end],
                    counts=counts[start:end],
                    pages=pages[start:end],
                )
            )
        return tasks

    def _sense_and_decode(
        self, task: BlockReadTask, now: float
    ) -> BlockReadOutcome:
        """Execute one block's task: bulk disturb charge, then decode.

        Pure per block — mutates only ``task.flash_block`` (exposure
        counters, voltage cache) and reads shared configuration, so any
        number of tasks from one flush can run concurrently.
        """
        fb = task.flash_block
        # Reads of both pages of a wordline are one sensing pass each
        # but identical disturb, so the wordline counts just add up.
        fb.record_reads(task.wordlines, task.counts, self.vpass)
        # ECC-decode each unique programmed page once, at post-batch
        # exposure.  Page order within the group is ascending — the
        # order the scalar loop decoded in — so the merge's stop at the
        # first failure reproduces its escalation bookkeeping exactly.
        in_block = task.pages[fb.programmed[task.wordlines]]
        if in_block.size == 0:
            return BlockReadOutcome(task.block_id, in_block, None)
        decode = self.decoder.check_pages(fb, in_block, now, self.vpass)
        return BlockReadOutcome(task.block_id, in_block, decode)

    def _merge_outcomes(
        self, outcomes: list[BlockReadOutcome], now: float
    ) -> None:
        """Ordered merge: fold outcomes into shared state, escalate RDR.

        Outcomes arrive in ascending block order (planning order, which
        every executor preserves), so counter updates, RDR escalations,
        and relocation queuing happen in exactly the sequence the serial
        loop produced.  RDR mutates only the failing block — blocks the
        executor already decoded are unaffected.
        """
        rescued_wordlines: set[tuple[int, int]] = set()
        for outcome in outcomes:
            if outcome.decode is None:
                continue
            failures = np.flatnonzero(~outcome.decode.success)
            if failures.size == 0:
                self.pages_checked += outcome.checked.size
                self.corrected_bits += int(outcome.decode.raw_errors.sum())
                continue
            first = int(failures[0])
            self.pages_checked += first + 1
            self.corrected_bits += int(outcome.decode.raw_errors[:first].sum())
            self.uncorrectable_pages += 1
            # The block is queued for relocation; pages after the failure
            # are skipped this flush, as their data is being remapped.
            self._escalate(
                outcome.block_id,
                int(outcome.checked[first]) // 2,
                now,
                rescued_wordlines,
            )

    def drain_relocations(self) -> list[int]:
        pending, self._pending_relocations = self._pending_relocations, []
        return pending

    def worst_block_rber(self, now: float) -> float | None:
        """Worst current RBER across bound blocks with programmed data
        (or None when nothing is programmed yet).

        A non-recording characterization pass: no disturb is charged and
        no RNG is consumed, so observing a run (e.g. the sweep runner's
        per-window trajectory) cannot perturb it.
        """
        worst = None
        for fb in self._blocks.values():
            if not fb.programmed.any():
                continue
            rber = fb.measure_block_rber(now=now, vpass=self.vpass)
            if worst is None or rber > worst:
                worst = rber
        return worst

    def summary(self) -> dict:
        return {
            "backend": self.name,
            "bound_blocks": len(self._blocks),
            "pages_checked": self.pages_checked,
            "corrected_bits": self.corrected_bits,
            "uncorrectable_pages": self.uncorrectable_pages,
            "rdr_attempts": self.rdr_attempts,
            "rdr_recovered": self.rdr_recovered,
            "data_loss_events": self.data_loss_events,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def block(self, block_id: int) -> FlashBlock:
        """The :class:`FlashBlock` bound to FTL block *block_id* (lazy)."""
        fb = self._blocks.get(block_id)
        if fb is None:
            if self.geometry is None:
                raise RuntimeError("backend not bound to an FTL yet")
            fb = FlashBlock(self.geometry, self._rng_factory, block_id=block_id)
            if self.initial_pe_cycles > 0:
                fb.cycle_wear_to(self.initial_pe_cycles)
            self._blocks[block_id] = fb
        return fb

    def _escalate(
        self,
        block: int,
        wordline: int,
        now: float,
        rescued: set[tuple[int, int]],
    ) -> None:
        """Uncorrectable page: try RDR, then queue the block for remap."""
        if block not in self._pending_relocations:
            self._pending_relocations.append(block)
        if self.rdr is None:
            self.data_loss_events += 1
            return
        if (block, wordline) in rescued:
            return
        rescued.add((block, wordline))
        fb = self._blocks[block]
        self.rdr_attempts += 1
        outcome, recovered = self.rdr.rescue_wordline(
            fb, wordline, now, self._wordline_capability
        )
        if recovered:
            self.rdr_recovered += 1
        else:
            self.data_loss_events += 1
