"""Block-group executors: intra-scenario parallelism for the flash chip.

The sweep runner (:mod:`repro.parallel`) shards at *scenario*
granularity; within one scenario the engine used to be single-core.  The
flash-chip read path, however, is embarrassingly parallel per block:
once a flushed batch of reads is grouped by physical block, each block's
``sense + decode`` work touches only that block's :class:`FlashBlock`
(its cell arrays, its ``(now, voltage_epoch)`` voltage cache, its
exposure counters) — no shared mutable state at all.

:class:`~repro.controller.backends.FlashChipBackend.on_reads` exploits
that by splitting every flush into three phases:

1. **plan** (serial): group the batch per block and materialize any
   lazily-created blocks;
2. **execute** (this module): run the pure per-block tasks on a
   *block-group executor* — :class:`SerialExecutor` (in-place loop),
   :class:`ThreadedExecutor` (``N`` worker threads; the per-block numpy
   kernels release the GIL, so threads buy parallelism at kernel
   granularity without pickling), or :class:`ProcessExecutor` (``N``
   forked worker processes over a shared-memory block arena — see
   :mod:`repro.flash.arena` — which sidesteps the GIL entirely while
   still moving zero cell state per task);
3. **merge** (serial): fold the per-block outcomes back into the shared
   counters and the RDR escalation path in ascending block order.

Because tasks are pure per block and the merge order is fixed,
``executor="threaded"`` and ``executor="process"`` are **bit-identical**
to ``executor="serial"`` (pinned by
``tests/controller/test_block_executor.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Protocol, runtime_checkable

from repro import obs

#: executor kinds accepted by :func:`resolve_executor` and
#: :class:`~repro.workloads.grid.BackendSpec`.
EXECUTOR_KINDS = ("serial", "threaded", "process")


def default_executor_workers() -> int:
    """Thread count when the caller does not choose: one per CPU.

    Honors ``REPRO_EXECUTOR_WORKERS`` (useful to pin CI smokes) and
    falls back to :func:`os.cpu_count`.
    """
    env = os.environ.get("REPRO_EXECUTOR_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_EXECUTOR_WORKERS must be an integer worker count, "
                f"got {env!r}"
            ) from None
    return max(1, os.cpu_count() or 1)


@runtime_checkable
class BlockGroupExecutor(Protocol):
    """What the backend needs from an executor: an order-preserving map.

    ``map(fn, tasks)`` must return ``[fn(t) for t in tasks]`` — same
    results, same order — for *pure-per-task* callables (each task
    touches only its own block).  How the calls are scheduled is the
    executor's business; the caller's ordered merge depends only on the
    output order.
    """

    name: str

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Apply *fn* to every task, results in task order."""


class SerialExecutor:
    """In-place loop: the reference executor (and the default)."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        obs.counter("executor.serial.tasks").inc(len(tasks))
        return [fn(task) for task in tasks]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor:
    """Run block tasks on a persistent pool of ``workers`` threads.

    The pool is created lazily on the first multi-task flush and reused
    for the life of the executor (thread startup would otherwise
    dominate small flushes); single-task flushes — e.g. the per-op
    reference loop, which flushes one read at a time — bypass the pool
    entirely.  ``ThreadPoolExecutor.map`` yields results in submission
    order, which is exactly the ordered-merge contract.
    """

    name = "threaded"

    def __init__(self, workers: int | None = None):
        self.workers = (
            default_executor_workers() if workers is None else int(workers)
        )
        if self.workers < 1:
            raise ValueError("need at least one executor worker")
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        obs.counter("executor.threaded.tasks").inc(len(tasks))
        if self.workers == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-block-group",
            )
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor stays usable —
        the next multi-task map lazily recreates the pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ThreadedExecutor(workers={self.workers})"


class ProcessExecutor:
    """Run block tasks on a persistent pool of ``workers`` forked
    processes over a shared block arena.

    Protocol-wise this is still an order-preserving
    :class:`BlockGroupExecutor`: plain :meth:`map` executes in place
    (live ``FlashBlock`` objects cannot cross a process boundary), so
    any caller that only knows the protocol gets correct serial
    behavior.  The parallel path is :meth:`process_map`, which
    :class:`~repro.controller.backends.FlashChipBackend` routes its
    multi-block flushes through with *picklable payloads* instead of
    live tasks: the backend rides along into the workers once, by fork
    inheritance at pool creation (``initializer`` / ``initargs`` are
    not pickled under fork), workers reattach each block's state via
    the shared arena (:meth:`~repro.flash.block.FlashBlock.attach`),
    and only small index tuples and decode results cross the pipe.

    Requires the ``fork`` start method (Linux/macOS-with-fork); the
    pool is created lazily on the first multi-payload call and bound to
    one owner backend for its lifetime.
    """

    name = "process"

    def __init__(self, workers: int | None = None):
        self.workers = (
            default_executor_workers() if workers is None else int(workers)
        )
        if self.workers < 1:
            raise ValueError("need at least one executor worker")
        self._pool: ProcessPoolExecutor | None = None
        self._owner: Any = None

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        # Live block tasks are not picklable; the backend calls
        # process_map for the parallel path.  Executing in place keeps
        # the executor protocol-correct for any other caller.
        return [fn(task) for task in tasks]

    def process_map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> list[Any]:
        """Order-preserving map of *fn* over picklable *payloads* on the
        worker pool.

        The pool is created lazily with the ``fork`` start method so
        *initargs* (the owning backend) are inherited copy-on-write
        rather than pickled; subsequent calls must pass the same owner.
        Single-payload calls (and ``workers == 1``) bypass the pool.
        """
        obs.counter("executor.process.tasks").inc(len(payloads))
        if self.workers == 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        owner = initargs[0] if initargs else None
        if self._pool is None:
            if "fork" not in multiprocessing.get_all_start_methods():
                raise RuntimeError(
                    "ProcessExecutor needs the 'fork' start method (workers "
                    "inherit the backend and its shared arena at fork time); "
                    "use executor='threaded' on this platform"
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=initializer,
                initargs=initargs,
            )
            self._owner = owner
        elif owner is not self._owner:
            raise RuntimeError(
                "ProcessExecutor is already bound to another backend; use "
                "one executor instance per FlashChipBackend"
            )
        return list(self._pool.map(fn, payloads))

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later process_map
        lazily recreates it, rebinding to its caller)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._owner = None

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


def parse_executor_spec(spec: str) -> tuple[str, int | None]:
    """Validate an executor spec string: ``"serial"``, ``"threaded"``,
    ``"threaded:N"``, ``"process"``, or ``"process:N"`` (N workers).

    Returns ``(kind, workers)``; *workers* is ``None`` when the spec
    leaves the count to :func:`default_executor_workers`.  This is the
    layering-safe validator :class:`~repro.workloads.grid.BackendSpec`
    calls at construction (the grid cannot import executor classes —
    the controller imports the workloads package, not vice versa — so
    specs ride the grid as strings and resolve here).
    """
    kind, sep, count = spec.partition(":")
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if not sep:
        return kind, None
    if kind not in ("threaded", "process"):
        raise ValueError(f"executor {kind!r} does not take a worker count")
    try:
        workers = int(count)
    except ValueError:
        raise ValueError(f"bad executor worker count {count!r}") from None
    if workers < 1:
        raise ValueError("executor worker count must be at least 1")
    return kind, workers


def resolve_executor(
    spec: str | BlockGroupExecutor | None,
) -> BlockGroupExecutor:
    """Turn an executor spec into a live executor.

    Accepts a ready executor instance (returned as-is), ``None`` /
    ``"serial"`` (the reference :class:`SerialExecutor`),
    ``"threaded[:N]"`` (a :class:`ThreadedExecutor`; one thread per CPU
    when ``N`` is omitted), or ``"process[:N]"`` (a
    :class:`ProcessExecutor` over forked workers).
    """
    if spec is None:
        return SerialExecutor()
    if not isinstance(spec, str):
        if not isinstance(spec, BlockGroupExecutor):
            raise TypeError(f"not a block-group executor: {spec!r}")
        return spec
    kind, workers = parse_executor_spec(spec)
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(workers)
    return ThreadedExecutor(workers)
