"""SSD controller substrate.

The paper evaluates Vpass Tuning inside an SSD controller fed by real I/O
traces.  This package provides that controller: a page-mapping flash
translation layer with greedy garbage collection and wear leveling
(:mod:`repro.controller.ftl`), the remapping-based refresh the paper's
7-day interval relies on (:mod:`repro.controller.refresh`), the
read-reclaim baseline mitigation (:mod:`repro.controller.read_reclaim`),
and the unified simulation engine (:mod:`repro.controller.engine`) that
runs traces through a pluggable physics backend
(:mod:`repro.controller.backends`) — counter-only for fast sweeps, or a
Monte-Carlo flash chip with ECC and Read Disturb Recovery in the loop.
"""

from repro.controller.ftl import (
    FtlObserver,
    PageMappingFtl,
    SsdConfig,
    BlockState,
    GcStarvationError,
)
from repro.controller.refresh import RefreshScheduler
from repro.controller.read_reclaim import ReadReclaimPolicy
from repro.controller.backends import (
    PhysicsBackend,
    CounterBackend,
    FlashChipBackend,
)
from repro.controller.executor import (
    BlockGroupExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
)
from repro.controller.engine import SimulationEngine, SsdRunStats
from repro.controller.factory import build_backend, build_engine, run_scenario
from repro.controller.ssd import SsdSimulator
from repro.controller.stats import block_read_pressure, hottest_block_reads_per_day

__all__ = [
    "FtlObserver",
    "PageMappingFtl",
    "SsdConfig",
    "BlockState",
    "GcStarvationError",
    "RefreshScheduler",
    "ReadReclaimPolicy",
    "PhysicsBackend",
    "CounterBackend",
    "FlashChipBackend",
    "BlockGroupExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "resolve_executor",
    "SimulationEngine",
    "SsdSimulator",
    "SsdRunStats",
    "build_backend",
    "build_engine",
    "run_scenario",
    "block_read_pressure",
    "hottest_block_reads_per_day",
]
