"""SSD controller substrate.

The paper evaluates Vpass Tuning inside an SSD controller fed by real I/O
traces.  This package provides that controller: a page-mapping flash
translation layer with greedy garbage collection and wear leveling
(:mod:`repro.controller.ftl`), the remapping-based refresh the paper's
7-day interval relies on (:mod:`repro.controller.refresh`), the
read-reclaim baseline mitigation (:mod:`repro.controller.read_reclaim`),
and an SSD-level simulator that runs traces and produces the per-block read
pressure the lifetime studies consume (:mod:`repro.controller.ssd`).
"""

from repro.controller.ftl import PageMappingFtl, SsdConfig, BlockState
from repro.controller.refresh import RefreshScheduler
from repro.controller.read_reclaim import ReadReclaimPolicy
from repro.controller.ssd import SsdSimulator, SsdRunStats
from repro.controller.stats import block_read_pressure, hottest_block_reads_per_day

__all__ = [
    "PageMappingFtl",
    "SsdConfig",
    "BlockState",
    "RefreshScheduler",
    "ReadReclaimPolicy",
    "SsdSimulator",
    "SsdRunStats",
    "block_read_pressure",
    "hottest_block_reads_per_day",
]
