"""The evaluation workload suite (paper Figure 8).

Fourteen workloads parameterized to the published characteristics of the
traces the paper evaluates: the MSR-Cambridge write off-loading volumes
(Narayanan et al., TOS 2008), the FIU I/O-deduplication traces (Koller &
Rangaswami, TOS 2010), postmark (Katcher, 1997), and HP cello99 (SNIA
IOTTA).  Intensities are average rates over the trace period; skews follow
the heavy-tailed read popularity those studies report.  Endurance results
depend on the hottest block's read pressure per refresh interval, which
these parameters control.
"""

from __future__ import annotations

from repro.workloads.grid import ScenarioGrid
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec

_SPECS = (
    WorkloadSpec(
        name="web_0",
        description="MSR web server volume: read-mostly with hot objects",
        iops=12.5, read_fraction=0.75, working_set_pages=65536,
        read_zipf_theta=0.78,
    ),
    WorkloadSpec(
        name="prxy_0",
        description="MSR firewall/web proxy: intense, highly skewed reads",
        iops=10.1, read_fraction=0.65, working_set_pages=32768,
        read_zipf_theta=0.8,
    ),
    WorkloadSpec(
        name="hm_0",
        description="MSR hardware-monitoring volume: write-dominated logging",
        iops=9.4, read_fraction=0.4, working_set_pages=65536,
        read_zipf_theta=0.65,
    ),
    WorkloadSpec(
        name="proj_0",
        description="MSR project directories: mixed, large footprint",
        iops=14.0, read_fraction=0.55, working_set_pages=131072,
        read_zipf_theta=0.75,
    ),
    WorkloadSpec(
        name="prn_0",
        description="MSR print server: bursty writes, moderate reads",
        iops=10.1, read_fraction=0.45, working_set_pages=65536,
        read_zipf_theta=0.68,
    ),
    WorkloadSpec(
        name="rsrch_0",
        description="MSR research projects volume: small mixed load",
        iops=7.0, read_fraction=0.45, working_set_pages=32768,
        read_zipf_theta=0.7,
    ),
    WorkloadSpec(
        name="src1_2",
        description="MSR source control: read-heavy with hot repository heads",
        iops=7.8, read_fraction=0.6, working_set_pages=65536,
        read_zipf_theta=0.85,
    ),
    WorkloadSpec(
        name="stg_0",
        description="MSR staging server: write-heavy ingest",
        iops=9.4, read_fraction=0.35, working_set_pages=65536,
        read_zipf_theta=0.6,
    ),
    WorkloadSpec(
        name="ts_0",
        description="MSR terminal server: interactive, moderately skewed",
        iops=7.8, read_fraction=0.5, working_set_pages=32768,
        read_zipf_theta=0.75,
    ),
    WorkloadSpec(
        name="usr_0",
        description="MSR user home directories: mixed, large footprint",
        iops=14.0, read_fraction=0.6, working_set_pages=131072,
        read_zipf_theta=0.72,
    ),
    WorkloadSpec(
        name="wdev_0",
        description="MSR test web server: light, write-dominated",
        iops=3.9, read_fraction=0.2, working_set_pages=32768,
        read_zipf_theta=0.5,
    ),
    WorkloadSpec(
        name="webmail",
        description="FIU web-mail server (I/O dedup study): hot mailboxes",
        iops=9.8, read_fraction=0.7, working_set_pages=65536,
        read_zipf_theta=0.8,
    ),
    WorkloadSpec(
        name="postmark",
        description="Postmark mail benchmark: small files, tight footprint",
        iops=11.7, read_fraction=0.5, working_set_pages=16384,
        read_zipf_theta=0.65,
    ),
    WorkloadSpec(
        name="cello99",
        description="HP cello99 timesharing cluster (SNIA IOTTA)",
        iops=10.9, read_fraction=0.45, working_set_pages=65536,
        read_zipf_theta=0.75,
    ),
)

#: name -> spec for the full suite.
WORKLOAD_SUITE: dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}


def workload_names() -> list[str]:
    """Names of the suite's workloads, in canonical order."""
    return [spec.name for spec in _SPECS]


def get_workload(name: str, seed: int = 0) -> SyntheticWorkload:
    """Instantiate the generator for one named workload."""
    if name not in WORKLOAD_SUITE:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        )
    return SyntheticWorkload(WORKLOAD_SUITE[name], seed=seed)


def suite_grid(names: list[str] | None = None, **grid_kwargs) -> ScenarioGrid:
    """The evaluation suite as a sweep grid (paper Figure 8's campaign).

    Adapter onto the parallel sweep runner: *names* selects workloads
    (default: the whole suite, in canonical order) and *grid_kwargs*
    forward to :class:`~repro.workloads.grid.ScenarioGrid` (geometries,
    policies, backends, seeds, duration_days, ...).  Example::

        from repro.parallel import run_sweep
        report = run_sweep(suite_grid(duration_days=7.0), workers=4)
    """
    if names is None:
        names = workload_names()
    missing = [name for name in names if name not in WORKLOAD_SUITE]
    if missing:
        raise KeyError(
            f"unknown workloads {missing}; available: {', '.join(workload_names())}"
        )
    return ScenarioGrid(
        workloads=tuple(WORKLOAD_SUITE[name] for name in names), **grid_kwargs
    )
