"""Block I/O trace container.

A trace is a time-ordered sequence of page-granularity operations, stored
as parallel numpy arrays (struct-of-arrays keeps million-operation traces
cheap).  CSV import/export uses the common ``timestamp,op,lpn`` layout so
real traces can be dropped in where licensing allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

OP_READ = 0
OP_WRITE = 1


@dataclass(frozen=True)
class IoTrace:
    """A page-granularity block I/O trace."""

    #: seconds from trace start, non-decreasing.
    timestamps: np.ndarray
    #: OP_READ or OP_WRITE per operation.
    ops: np.ndarray
    #: logical page number targeted by each operation.
    lpns: np.ndarray
    #: human-readable origin of the trace.
    name: str = "trace"

    def __post_init__(self) -> None:
        if not (self.timestamps.shape == self.ops.shape == self.lpns.shape):
            raise ValueError("trace arrays must have identical shapes")
        if self.timestamps.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if self.timestamps.size and (np.diff(self.timestamps) < 0).any():
            raise ValueError("timestamps must be non-decreasing")
        if self.ops.size and not np.isin(self.ops, (OP_READ, OP_WRITE)).all():
            raise ValueError("ops must be OP_READ or OP_WRITE")
        if self.lpns.size and (self.lpns < 0).any():
            raise ValueError("logical page numbers cannot be negative")

    def __len__(self) -> int:
        return int(self.timestamps.size)

    @property
    def duration_seconds(self) -> float:
        """Time span covered by the trace."""
        if len(self) == 0:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def read_fraction(self) -> float:
        """Fraction of operations that are reads."""
        if len(self) == 0:
            raise ValueError("empty trace has no read fraction")
        return float((self.ops == OP_READ).mean())

    @property
    def reads(self) -> "IoTrace":
        """The read operations only."""
        mask = self.ops == OP_READ
        return IoTrace(
            self.timestamps[mask], self.ops[mask], self.lpns[mask], f"{self.name}:reads"
        )

    @property
    def writes(self) -> "IoTrace":
        """The write operations only."""
        mask = self.ops == OP_WRITE
        return IoTrace(
            self.timestamps[mask], self.ops[mask], self.lpns[mask], f"{self.name}:writes"
        )

    def slice_time(self, start: float, end: float) -> "IoTrace":
        """Operations with start <= timestamp < end."""
        if end < start:
            raise ValueError("end must not precede start")
        mask = (self.timestamps >= start) & (self.timestamps < end)
        return IoTrace(self.timestamps[mask], self.ops[mask], self.lpns[mask], self.name)

    def to_csv(self, path: str | Path) -> Path:
        """Write the trace as ``timestamp,op,lpn`` rows."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = np.column_stack([self.timestamps, self.ops, self.lpns])
        np.savetxt(path, data, fmt=["%.6f", "%d", "%d"], delimiter=",", header="timestamp,op,lpn", comments="")
        return path

    @classmethod
    def from_csv(cls, path: str | Path, name: str | None = None) -> "IoTrace":
        """Load a ``timestamp,op,lpn`` CSV trace."""
        path = Path(path)
        data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        if data.size == 0:
            return cls(np.empty(0), np.empty(0, np.int64), np.empty(0, np.int64), name or path.stem)
        return cls(
            data[:, 0].astype(np.float64),
            data[:, 1].astype(np.int64),
            data[:, 2].astype(np.int64),
            name or path.stem,
        )
