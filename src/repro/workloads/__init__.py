"""I/O workloads.

The paper evaluates Vpass Tuning "with I/O traces collected from a wide
range of real workloads" (MSR-Cambridge write off-loading traces, the FIU
I/O-deduplication traces, postmark, and cello99).  Those traces are not
redistributable, so this package generates synthetic traces parameterized
to each workload's published statistics — read/write mix, intensity, and
access skew — which are the only properties the endurance results depend
on (read disturb is driven by per-block read pressure).
"""

from repro.workloads.trace import IoTrace, OP_READ, OP_WRITE, maintenance_windows
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.grid import (
    BackendSpec,
    GeometrySpec,
    PolicySpec,
    Scenario,
    ScenarioGrid,
)
from repro.workloads.suites import WORKLOAD_SUITE, workload_names, get_workload, suite_grid
from repro.workloads.trace_cache import (
    clear_trace_cache,
    generated_trace,
    scenario_trace,
    warm_trace_cache,
)

__all__ = [
    "IoTrace",
    "OP_READ",
    "OP_WRITE",
    "maintenance_windows",
    "SyntheticWorkload",
    "WorkloadSpec",
    "BackendSpec",
    "GeometrySpec",
    "PolicySpec",
    "Scenario",
    "ScenarioGrid",
    "WORKLOAD_SUITE",
    "workload_names",
    "get_workload",
    "suite_grid",
    "clear_trace_cache",
    "generated_trace",
    "scenario_trace",
    "warm_trace_cache",
]
