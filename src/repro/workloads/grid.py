"""Scenario grids: the unit of work of the parallel sweep runner.

The paper's results are all *sweeps* — RBER vs. read counts, Vpass
sweeps, refresh/reclaim ablations — i.e. many independent simulations
that differ only in workload, geometry, policy, or seed.  This module
gives that campaign shape a first-class, picklable description:

- a :class:`Scenario` is one fully specified engine run (trace x
  geometry x policy x backend x seed), identified by a stable
  human-readable :attr:`~Scenario.scenario_id`;
- a :class:`ScenarioGrid` is the cartesian product of the swept axes,
  expanded deterministically into scenarios.

Every field is a frozen dataclass of plain values, so a scenario can be
shipped to a worker process unchanged, and every RNG stream a scenario
consumes is derived from the grid's root seed and the scenario id via
:func:`repro.rng.spawn_key` — never from worker identity or execution
order.  That is what makes ``workers=N`` sweeps bit-identical to serial
execution (see :mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.rng import spawn_key
from repro.units import VPASS_NOMINAL
from repro.workloads.synthetic import WorkloadSpec


def _non_default(spec, name: str) -> bool:
    """True when field *name* differs from its dataclass default.

    Axis labels suffix exactly the non-default knobs; comparing against
    the dataclass defaults themselves (not restated literals) keeps
    labels — and the scenario ids and RNG seeds derived from them —
    from silently drifting if a default ever changes.
    """
    default = next(f.default for f in fields(spec) if f.name == name)
    return getattr(spec, name) != default

# SsdConfig lives in the controller layer; importing it here would invert
# the layering (controller already imports workloads), so geometry rides
# through the grid as plain numbers and the engine factory
# (repro.controller.factory) turns them into an SsdConfig.


@dataclass(frozen=True)
class GeometrySpec:
    """Drive geometry axis of a grid (mirrors ``SsdConfig``)."""

    blocks: int = 256
    pages_per_block: int = 256
    overprovision: float = 0.07
    gc_threshold_blocks: int = 2

    @property
    def label(self) -> str:
        """Stable axis label used inside scenario ids.

        Every field that distinguishes two specs appears in the label
        (non-default knobs as suffixes), so distinct geometries can
        never produce colliding scenario ids.
        """
        label = f"{self.blocks}x{self.pages_per_block}"
        if _non_default(self, "overprovision"):
            label += f"-op{self.overprovision:g}"
        if _non_default(self, "gc_threshold_blocks"):
            label += f"-gc{self.gc_threshold_blocks}"
        return label


@dataclass(frozen=True)
class PolicySpec:
    """Maintenance-policy axis of a grid.

    *name* is the human-readable prefix of the axis label; two specs
    with the same knobs but different names are distinct scenarios
    (useful for ablation rows that should keep their table labels), and
    two specs with the same name but different knobs are *also*
    distinct — every non-default knob appears in :attr:`label`.
    """

    name: str = "baseline"
    refresh_interval_days: float = 7.0
    read_reclaim_threshold: int | None = None
    maintenance_period_days: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("policy needs a non-empty name")

    @property
    def label(self) -> str:
        """Stable, collision-free axis label (name + non-default knobs)."""
        label = self.name
        if _non_default(self, "refresh_interval_days"):
            label += f"-rf{self.refresh_interval_days:g}"
        if self.read_reclaim_threshold is not None:
            label += f"-rc{self.read_reclaim_threshold}"
        if _non_default(self, "maintenance_period_days"):
            label += f"-mp{self.maintenance_period_days:g}"
        return label


@dataclass(frozen=True)
class BackendSpec:
    """Physics-backend axis of a grid.

    ``kind="counter"`` is the fast bookkeeping-only backend;
    ``kind="flash_chip"`` binds every touched block to a Monte-Carlo
    :class:`~repro.flash.block.FlashBlock` (ECC + RDR in the loop).  The
    flash-chip knobs are ignored by the counter backend.

    *executor* selects the flash-chip backend's intra-scenario
    block-group executor (``"serial"``, ``"threaded[:N]"``, or
    ``"process[:N]"``; see :mod:`repro.controller.executor`).  Like
    :attr:`Scenario.batch` it is an *execution* knob, not a physics
    knob: executors are bit-identical by contract, so the executor never
    enters :attr:`label` — and therefore never perturbs scenario ids or
    derived seeds.  Consequently two specs differing only in executor
    are the *same* scenario and cannot share a grid axis.  *arena* and
    *resident_blocks* (the shared/out-of-core block-state storage; see
    :mod:`repro.flash.arena`) are storage knobs under the same
    bit-identity contract and stay out of the label too.
    """

    kind: str = "counter"
    bitlines_per_block: int = 2048
    initial_pe_cycles: int = 0
    vpass: float = VPASS_NOMINAL
    enable_rdr: bool = True
    executor: str = "serial"
    arena: str | None = None
    resident_blocks: int | None = None
    #: ECC engine: "threshold" (capability count) or "rs" (the GF(256)
    #: Reed-Solomon codec; see :mod:`repro.ecc`).  A *physics* knob —
    #: unlike the executor it changes results, so it enters the label.
    decoder: str = "threshold"
    #: RS code rate (total / data symbols per codeword); only meaningful
    #: (and only validated strictly) with ``decoder="rs"``.
    rs_n: int = 255
    rs_k: int = 223
    #: structured fault-injection axis ("burst2:1e-3", "scatter4:1e-3",
    #: see :func:`repro.ecc.fault_model.parse_fault_spec`); None injects
    #: nothing.
    fault_pattern: str | None = None

    _KINDS = ("counter", "flash_chip")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown backend kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.decoder not in ("threshold", "rs"):
            raise ValueError(
                f"unknown decoder {self.decoder!r}; expected 'threshold' or 'rs'"
            )
        # Mirror RsCode's constraints (repro.ecc.rs) without importing
        # the scipy-backed config module at grid-build time.
        if not 3 <= self.rs_n <= 255:
            raise ValueError(f"rs_n must be in [3, 255], got {self.rs_n}")
        if not 1 <= self.rs_k < self.rs_n:
            raise ValueError(f"rs_k must be in [1, rs_n), got {self.rs_k}")
        if (self.rs_n - self.rs_k) % 2:
            raise ValueError(
                f"rs_n - rs_k must be even, got n={self.rs_n} k={self.rs_k}"
            )
        if self.decoder != "rs" and (
            _non_default(self, "rs_n") or _non_default(self, "rs_k")
        ):
            raise ValueError("rs_n/rs_k require decoder='rs'")
        if self.decoder != "threshold" and self.kind != "flash_chip":
            raise ValueError("decoder='rs' needs the flash_chip backend")
        if self.fault_pattern is not None:
            if self.kind != "flash_chip":
                raise ValueError("fault_pattern needs the flash_chip backend")
            from repro.ecc.fault_model import parse_fault_spec

            parse_fault_spec(self.fault_pattern)
        # Validate the executor spec shape here, at grid construction,
        # without importing the controller layer (which imports this
        # package); repro.controller.executor.parse_executor_spec is the
        # authoritative parser the engine factory resolves through.
        kind, sep, count = self.executor.partition(":")
        if kind not in ("serial", "threaded", "process") or (
            sep and (kind == "serial" or not count.isdigit() or int(count) < 1)
        ):
            raise ValueError(
                f"bad executor spec {self.executor!r}; expected 'serial', "
                "'threaded[:N]', or 'process[:N]'"
            )
        if self.arena not in (None, "shm", "mmap"):
            raise ValueError(
                f"bad arena {self.arena!r}; expected None, 'shm', or 'mmap'"
            )
        if self.resident_blocks is not None:
            if self.arena != "mmap":
                raise ValueError("resident_blocks needs arena='mmap'")
            if self.resident_blocks < 1:
                raise ValueError("resident_blocks must be at least 1")

    @property
    def label(self) -> str:
        """Stable axis label: kind, plus the flash-chip knobs when they
        differ from the defaults (the counter backend ignores them, so
        they never enter a counter label).  :attr:`executor` is a
        result-transparent execution knob and deliberately never enters
        the label (or the seeds derived from it)."""
        if self.kind == "counter":
            return self.kind
        label = self.kind
        if _non_default(self, "bitlines_per_block"):
            label += f"-bl{self.bitlines_per_block}"
        if _non_default(self, "initial_pe_cycles"):
            label += f"-pe{self.initial_pe_cycles}"
        if _non_default(self, "vpass"):
            label += f"-vp{self.vpass:g}"
        if not self.enable_rdr:
            label += "-nordr"
        if _non_default(self, "decoder"):
            label += f"-{self.decoder}{self.rs_n}.{self.rs_k}"
        if self.fault_pattern is not None:
            label += f"-f{self.fault_pattern}"
        return label


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulation: the sweep runner's unit of work.

    A scenario is pure data (picklable, hashable) and carries everything
    a worker needs to rebuild the run from scratch: the workload spec,
    trace duration, geometry, policy, backend, and the seed derivation
    inputs.  Execution lives in :func:`repro.controller.factory.run_scenario`.
    """

    workload: WorkloadSpec
    duration_days: float = 1.0
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    #: position on the grid's seed axis (replicas of the same cell).
    seed_index: int = 0
    #: the grid's root seed; all RNG streams derive from it + scenario_id.
    root_seed: int = 0
    #: windowed/vectorized execution (default) or the per-op reference loop.
    batch: bool = True
    #: record a per-maintenance-window trajectory in the result.
    record_trajectory: bool = False

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("scenario duration must be positive")
        if self.seed_index < 0:
            raise ValueError("seed index cannot be negative")

    @property
    def scenario_id(self) -> str:
        """Stable identifier: one axis label per grid dimension.

        The id is what failures report, what results are keyed and
        merged by, and one of the inputs every derived seed mixes in —
        so it must (and does) not depend on grid order or worker
        placement.  Axis labels include every distinguishing spec field
        (non-default knobs as suffixes), so two scenarios that can
        behave differently always carry different ids — a Vpass or
        overprovision sweep keys as cleanly as a workload sweep.
        """
        return "/".join(
            (
                self.workload.name,
                f"d{self.duration_days:g}",
                self.geometry.label,
                self.policy.label,
                self.backend.label,
                f"s{self.seed_index}",
            )
        )

    def derived_seed(self, component: str) -> int:
        """Deterministic seed for one of the scenario's RNG consumers.

        Mixes ``(root_seed, scenario_id, component)`` through
        :func:`repro.rng.spawn_key`; independent scenarios (and
        independent components of one scenario) get independent streams
        regardless of where or in which order they execute.
        """
        return spawn_key(self.root_seed, self.scenario_id, component)

    @property
    def workload_seed(self) -> int:
        """Seed of the synthetic trace generator."""
        return self.derived_seed("workload")

    @property
    def backend_seed(self) -> int:
        """Seed of the physics backend (cell arrays, programmed data)."""
        return self.derived_seed("backend")


@dataclass(frozen=True)
class ScenarioGrid:
    """Cartesian scenario product: workloads x geometry x policy x backend x seeds.

    Expansion order is deterministic (workload-major, seed-minor), but
    nothing downstream depends on it: results are merged by scenario id,
    so a shuffled scenario list produces an identical report.
    """

    workloads: tuple[WorkloadSpec, ...]
    geometries: tuple[GeometrySpec, ...] = (GeometrySpec(),)
    policies: tuple[PolicySpec, ...] = (PolicySpec(),)
    backends: tuple[BackendSpec, ...] = (BackendSpec(),)
    seeds: int = 1
    duration_days: float = 1.0
    root_seed: int = 0
    batch: bool = True
    record_trajectory: bool = False

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("grid needs at least one workload")
        if not self.geometries or not self.policies or not self.backends:
            raise ValueError("every grid axis needs at least one entry")
        if self.seeds < 1:
            raise ValueError("grid needs at least one seed")
        # Axis labels are what scenario ids (and derived seeds) key on,
        # so entries on one axis must label distinctly.  Catch the
        # collision here, at construction, rather than as a late
        # duplicate-id error from the runner.
        for axis, labels in (
            ("workloads", [w.name for w in self.workloads]),
            ("geometries", [g.label for g in self.geometries]),
            ("policies", [p.label for p in self.policies]),
            ("backends", [b.label for b in self.backends]),
        ):
            if len(set(labels)) != len(labels):
                raise ValueError(
                    f"{axis} axis entries must have distinct labels, got {labels}"
                )

    def __len__(self) -> int:
        return (
            len(self.workloads)
            * len(self.geometries)
            * len(self.policies)
            * len(self.backends)
            * self.seeds
        )

    def scenarios(self) -> list[Scenario]:
        """Expand the grid into its scenario list (ids are unique)."""
        out = []
        for workload in self.workloads:
            for geometry in self.geometries:
                for policy in self.policies:
                    for backend in self.backends:
                        for seed_index in range(self.seeds):
                            out.append(
                                Scenario(
                                    workload=workload,
                                    duration_days=self.duration_days,
                                    geometry=geometry,
                                    policy=policy,
                                    backend=backend,
                                    seed_index=seed_index,
                                    root_seed=self.root_seed,
                                    batch=self.batch,
                                    record_trajectory=self.record_trajectory,
                                )
                            )
        return out

    def __iter__(self):
        return iter(self.scenarios())
