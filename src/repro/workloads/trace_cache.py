"""Per-sweep trace cache: generate each scenario's trace once.

Scenario traces are pure functions of ``(workload spec, duration,
workload seed)``, yet they used to be regenerated for every run that
needed them — once per ``--serial-check`` leg, once per worker level of
a bench, once per repeat of a grid.  This module memoizes the generated
:class:`~repro.workloads.trace.IoTrace` per process behind that exact
key, so:

- repeated executions of the same scenario in one process (serial
  checks, executor/worker-level comparisons, repeated benches) generate
  the trace once;
- a sweep parent can *pre-warm* the cache before forking its worker
  pool (:meth:`repro.parallel.SweepRunner.run` does this
  automatically), so fork-start workers inherit every materialized
  trace read-only via copy-on-write instead of regenerating it —
  the shared-memory trace cache of the ROADMAP.  Spawn-start workers
  simply miss and regenerate; results are identical either way, because
  generation is deterministic in the key.

Cached traces are shared across engine runs, so their arrays are frozen
(``writeable=False``) — an accidental in-place mutation raises instead
of silently corrupting every later run of the same scenario.

An optional **disk tier** (:func:`enable_disk_tier`) catches what the
in-memory LRU evicts: evicted traces spill to ``.npz`` files keyed by
the generation inputs and reload on the next miss instead of
regenerating — the out-of-core companion to the block arena for grids
far beyond :data:`MAX_CACHED_TRACES` scenarios.  The round-trip is
exact (the arrays are stored bit-for-bit), so the tier, like the cache,
can never change a result.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import IoTrace

#: upper bound on cached traces per process; oldest-touched evicts first.
#: Grids routinely exceed this — the bound is a memory guard, not a
#: completeness promise (an evicted trace just regenerates, or reloads
#: from the disk tier when one is enabled).
MAX_CACHED_TRACES = 64

_cache: OrderedDict[tuple[WorkloadSpec, float, int], IoTrace] = OrderedDict()

#: directory evicted traces spill to; ``None`` disables the tier.
_disk_tier: Path | None = None


def enable_disk_tier(path: str | os.PathLike | None = None) -> Path:
    """Enable the disk tier: spill LRU-evicted traces to *path*.

    *path* defaults to ``$REPRO_TRACE_CACHE_DIR``, or a fresh temporary
    directory.  Returns the directory in use.  Enabling is idempotent
    and re-enabling with a different path just switches directories
    (already-spilled files in the old one are simply no longer found).
    """
    global _disk_tier
    if path is None:
        path = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if path is None:
        path = tempfile.mkdtemp(prefix="repro-trace-cache-")
    _disk_tier = Path(path)
    _disk_tier.mkdir(parents=True, exist_ok=True)
    return _disk_tier


def disable_disk_tier() -> None:
    """Stop spilling/loading (files already on disk are left alone)."""
    global _disk_tier
    _disk_tier = None


def _tier_path(key: tuple) -> Path:
    """Spill file for a cache key (hashed: keys hold a frozen dataclass)."""
    digest = hashlib.sha1(repr(key).encode()).hexdigest()
    return _disk_tier / f"trace-{digest}.npz"


def _spill(key: tuple, trace: IoTrace) -> None:
    """Write an evicted trace to the disk tier (bit-exact arrays)."""
    np.savez(
        _tier_path(key),
        timestamps=trace.timestamps,
        ops=trace.ops,
        lpns=trace.lpns,
        name=np.array(trace.name),
    )


def _load_spilled(key: tuple) -> IoTrace | None:
    """Reload a spilled trace, or ``None`` when the tier has no copy.

    A spill file can be torn (process killed mid-write) or bit-rotted;
    the tier is a pure cache of deterministic generation, so a file
    that fails to load is deleted and regenerated, never an error.
    """
    if _disk_tier is None:
        return None
    path = _tier_path(key)
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            return IoTrace(
                timestamps=data["timestamps"],
                ops=data["ops"],
                lpns=data["lpns"],
                name=str(data["name"][()]),
            )
    except Exception:  # noqa: BLE001 - any unreadable spill means regenerate
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _freeze(trace: IoTrace) -> IoTrace:
    """Mark the trace's arrays read-only (shared-cache safety)."""
    for array in (trace.timestamps, trace.ops, trace.lpns):
        array.flags.writeable = False
    return trace


def generated_trace(
    spec: WorkloadSpec, duration_days: float, seed: int
) -> IoTrace:
    """The synthetic trace for ``(spec, duration_days, seed)``, cached.

    Bit-identical to calling
    ``SyntheticWorkload(spec, seed).generate(duration_days)`` directly —
    the cache key is the full set of generation inputs — but repeated
    requests return the one frozen instance.
    """
    key = (spec, float(duration_days), int(seed))
    hit = _cache.get(key)
    if hit is not None:
        _cache.move_to_end(key)
        return hit
    trace = _load_spilled(key)
    if trace is None:
        trace = SyntheticWorkload(spec, seed=seed).generate(duration_days)
    trace = _freeze(trace)
    _cache[key] = trace
    while len(_cache) > MAX_CACHED_TRACES:
        victim_key, victim = _cache.popitem(last=False)
        if _disk_tier is not None:
            _spill(victim_key, victim)
    return trace


def scenario_trace(scenario) -> IoTrace:
    """The cached trace of a :class:`~repro.workloads.grid.Scenario`."""
    return generated_trace(
        scenario.workload, scenario.duration_days, scenario.workload_seed
    )


def warm_trace_cache(scenarios) -> int:
    """Materialize every scenario's trace into this process's cache.

    Called by the sweep runner in the parent before forking workers;
    returns how many traces are now resident.  With more scenarios than
    :data:`MAX_CACHED_TRACES` the earliest traces will already have been
    evicted — still correct, workers regenerate on miss.
    """
    for scenario in scenarios:
        scenario_trace(scenario)
    return len(_cache)


def clear_trace_cache() -> None:
    """Drop every cached trace (tests, memory pressure)."""
    _cache.clear()


def cached_trace_count() -> int:
    """How many traces are currently resident in this process."""
    return len(_cache)
