"""Per-sweep trace cache: generate each scenario's trace once.

Scenario traces are pure functions of ``(workload spec, duration,
workload seed)``, yet they used to be regenerated for every run that
needed them — once per ``--serial-check`` leg, once per worker level of
a bench, once per repeat of a grid.  This module memoizes the generated
:class:`~repro.workloads.trace.IoTrace` per process behind that exact
key, so:

- repeated executions of the same scenario in one process (serial
  checks, executor/worker-level comparisons, repeated benches) generate
  the trace once;
- a sweep parent can *pre-warm* the cache before forking its worker
  pool (:meth:`repro.parallel.SweepRunner.run` does this
  automatically), so fork-start workers inherit every materialized
  trace read-only via copy-on-write instead of regenerating it —
  the shared-memory trace cache of the ROADMAP.  Spawn-start workers
  simply miss and regenerate; results are identical either way, because
  generation is deterministic in the key.

Cached traces are shared across engine runs, so their arrays are frozen
(``writeable=False``) — an accidental in-place mutation raises instead
of silently corrupting every later run of the same scenario.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec
from repro.workloads.trace import IoTrace

#: upper bound on cached traces per process; oldest-touched evicts first.
#: Grids routinely exceed this — the bound is a memory guard, not a
#: completeness promise (an evicted trace just regenerates).
MAX_CACHED_TRACES = 64

_cache: OrderedDict[tuple[WorkloadSpec, float, int], IoTrace] = OrderedDict()


def _freeze(trace: IoTrace) -> IoTrace:
    """Mark the trace's arrays read-only (shared-cache safety)."""
    for array in (trace.timestamps, trace.ops, trace.lpns):
        array.flags.writeable = False
    return trace


def generated_trace(
    spec: WorkloadSpec, duration_days: float, seed: int
) -> IoTrace:
    """The synthetic trace for ``(spec, duration_days, seed)``, cached.

    Bit-identical to calling
    ``SyntheticWorkload(spec, seed).generate(duration_days)`` directly —
    the cache key is the full set of generation inputs — but repeated
    requests return the one frozen instance.
    """
    key = (spec, float(duration_days), int(seed))
    hit = _cache.get(key)
    if hit is not None:
        _cache.move_to_end(key)
        return hit
    trace = _freeze(SyntheticWorkload(spec, seed=seed).generate(duration_days))
    _cache[key] = trace
    while len(_cache) > MAX_CACHED_TRACES:
        _cache.popitem(last=False)
    return trace


def scenario_trace(scenario) -> IoTrace:
    """The cached trace of a :class:`~repro.workloads.grid.Scenario`."""
    return generated_trace(
        scenario.workload, scenario.duration_days, scenario.workload_seed
    )


def warm_trace_cache(scenarios) -> int:
    """Materialize every scenario's trace into this process's cache.

    Called by the sweep runner in the parent before forking workers;
    returns how many traces are now resident.  With more scenarios than
    :data:`MAX_CACHED_TRACES` the earliest traces will already have been
    evicted — still correct, workers regenerate on miss.
    """
    for scenario in scenarios:
        scenario_trace(scenario)
    return len(_cache)


def clear_trace_cache() -> None:
    """Drop every cached trace (tests, memory pressure)."""
    _cache.clear()


def cached_trace_count() -> int:
    """How many traces are currently resident in this process."""
    return len(_cache)
