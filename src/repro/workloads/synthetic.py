"""Synthetic trace generation from workload statistics.

Each workload is summarized by the properties that drive read-disturb
behavior: operation intensity, read/write mix, footprint, and access skew.
Reads follow a bounded Zipf popularity law over the working set (the
uneven read distribution the paper highlights: "certain flash blocks
experience high temporal locality"), with an optional sequential-run
component; writes use an independent, typically milder skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import SECONDS_PER_DAY
from repro.workloads.trace import IoTrace, OP_READ, OP_WRITE


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical summary of one workload."""

    name: str
    description: str
    #: average operations per second.
    iops: float
    #: fraction of operations that are reads.
    read_fraction: float
    #: logical pages touched by the workload.
    working_set_pages: int
    #: Zipf exponent of read popularity (0 = uniform; ~1 = heavily skewed).
    read_zipf_theta: float
    #: Zipf exponent of write popularity.
    write_zipf_theta: float = 0.3
    #: fraction of reads that are part of sequential runs.
    sequential_read_fraction: float = 0.2
    #: mean sequential run length in pages.
    sequential_run_pages: int = 16

    def __post_init__(self) -> None:
        if self.iops <= 0:
            raise ValueError("iops must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read fraction must be a probability")
        if self.working_set_pages < 1:
            raise ValueError("working set must contain at least one page")
        if self.read_zipf_theta < 0 or self.write_zipf_theta < 0:
            raise ValueError("zipf exponents cannot be negative")
        if not 0.0 <= self.sequential_read_fraction <= 1.0:
            raise ValueError("sequential fraction must be a probability")


def _zipf_cdf(n: int, theta: float) -> np.ndarray:
    """CDF of a bounded Zipf(theta) law over ranks 1..n."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-theta) if theta > 0 else np.ones(n)
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


class SyntheticWorkload:
    """Trace generator for a :class:`WorkloadSpec`.

    Popular pages are scattered across the address space with a fixed
    pseudo-random permutation (hot data is not physically contiguous),
    reproducibly derived from the seed.
    """

    #: cap on per-call array sizes; generation is chunked above this.
    _CHUNK = 1 << 20

    def __init__(self, spec: WorkloadSpec, seed: int = 0):
        self.spec = spec
        self.seed = int(seed)

    def generate(self, duration_days: float, seed: int | None = None) -> IoTrace:
        """Generate a trace covering *duration_days* of activity."""
        if duration_days <= 0:
            raise ValueError("duration must be positive")
        spec = self.spec
        rng = np.random.default_rng(self.seed if seed is None else seed)
        n_ops = rng.poisson(spec.iops * duration_days * SECONDS_PER_DAY)
        if n_ops == 0:
            empty = np.empty(0)
            return IoTrace(
                empty, empty.astype(np.int64), empty.astype(np.int64), spec.name
            )

        timestamps = np.sort(
            rng.uniform(0.0, duration_days * SECONDS_PER_DAY, n_ops)
        )
        ops = np.where(
            rng.random(n_ops) < spec.read_fraction, OP_READ, OP_WRITE
        ).astype(np.int64)

        # Rank -> page permutation: hot ranks land on scattered pages.
        permutation = rng.permutation(spec.working_set_pages)
        read_cdf = _zipf_cdf(spec.working_set_pages, spec.read_zipf_theta)
        write_cdf = _zipf_cdf(spec.working_set_pages, spec.write_zipf_theta)

        lpns = np.empty(n_ops, dtype=np.int64)
        read_mask = ops == OP_READ
        lpns[read_mask] = self._sample_pages(rng, read_cdf, permutation, int(read_mask.sum()))
        lpns[~read_mask] = self._sample_pages(
            rng, write_cdf, permutation, int((~read_mask).sum())
        )

        # Sequential read runs: replace a fraction of reads with
        # consecutive-page runs following their predecessor.
        if spec.sequential_read_fraction > 0 and read_mask.any():
            read_idx = np.flatnonzero(read_mask)
            seq = rng.random(read_idx.size) < spec.sequential_read_fraction
            seq_idx = read_idx[seq]
            if seq_idx.size > 1:
                offsets = rng.integers(1, spec.sequential_run_pages + 1, seq_idx.size)
                lpns[seq_idx[1:]] = (
                    lpns[seq_idx[:-1]] + offsets[1:]
                ) % spec.working_set_pages

        return IoTrace(timestamps, ops, lpns, spec.name)

    @staticmethod
    def _sample_pages(
        rng: np.random.Generator,
        cdf: np.ndarray,
        permutation: np.ndarray,
        count: int,
    ) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        ranks = np.searchsorted(cdf, rng.random(count), side="left")
        return permutation[ranks].astype(np.int64)
