"""Lease ledger: elastic, coordination-free scheduling over a result store.

``--shard i/N`` partitions a grid statically — every host must be told
its index, N is fixed up front, and a dead host strands its shard until
a human reruns it.  The lease ledger replaces that arithmetic with an
**elastic** protocol: any number of workers point at the same campaign
directory, atomically claim unowned *batches* of scenarios, renew a
heartbeat while they work, and reclaim any batch whose holder stopped
heartbeating.  Workers need no identity assignment, no fixed count, and
no coordinator — the store directory is the only shared state.

The ledger lives under ``<store>/leases/``:

``batches.json``
    The *batch plan*, written atomically by the first worker: the batch
    size and count plus a hash of the sorted scenario ids.  Every later
    worker verifies the hash and adopts the plan's batch size, so all
    workers partition the grid identically (the partition is sorted
    scenario ids chunked into consecutive runs of ``batch_size``).

``<batch>.jsonl``
    One append-only *claim file* per batch.  Claims, heartbeat renewals,
    and completion marks are single-line JSON appends (flushed and
    fsync'd); the current holder is resolved by replay with
    **last-writer-wins**: a ``claim`` whose token is >= the current
    token takes the lease (a later line wins a token tie, which is what
    resolves two workers racing for the same expired lease), a ``renew``
    refreshes the heartbeat only if its owner *and* token still match,
    and a ``done`` retires the batch only if its token still matches —
    so a fenced-off zombie can neither keep a lease alive nor mark work
    finished.  Torn lines (a worker killed mid-append) fail to parse
    and are skipped, exactly like the result store's records.

**Fencing tokens.**  Every successful claim carries a token one greater
than the last claim of that batch.  The token rides along into the
result records a worker appends (:meth:`ResultStore.append`'s ``lease``
argument), so a *zombie* — a worker that stalled past its TTL, was
reclaimed, and then resumed writing — is visible after the fact: the
store's duplicate-id check sees the same scenario recorded under two
different tokens.  Results are deterministic in the scenario, so the
zombie's payload must agree bit-for-bit (anything else raises); the
token mismatch is surfaced as :attr:`ResultStore.zombie_writes` for the
health report rather than silently folded away.

Expiry uses wall-clock heartbeats (``time.time()``), the only clock
that is meaningful across hosts sharing a directory.  A TTL must be
generous against clock skew between hosts; reclaiming a lease whose
holder is merely slow is *safe* (the fencing token plus deterministic
results make double execution harmless), just wasteful.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs

#: on-disk format identifier for the batch plan.
PLAN_FORMAT = "repro-campaign-leases"
PLAN_VERSION = 1

#: default seconds without a heartbeat before a lease is reclaimable.
DEFAULT_LEASE_TTL = 30.0

#: never partition a grid into more than this many batches by default
#: (one claim file per batch; the auto batch size targets this count).
DEFAULT_MAX_BATCHES = 64


def default_batch_size(scenario_count: int) -> int:
    """Auto batch size: at most :data:`DEFAULT_MAX_BATCHES` batches."""
    return max(1, -(-scenario_count // DEFAULT_MAX_BATCHES))


def sanitize_owner(name: str) -> str:
    """Restrict an owner/writer name to filesystem-safe characters."""
    cleaned = re.sub(r"[^A-Za-z0-9_.-]+", "-", name).lstrip(".")
    if not cleaned:
        raise ValueError(f"owner name {name!r} has no usable characters")
    return cleaned


def _ids_fingerprint(scenario_ids) -> str:
    digest = hashlib.sha256()
    for scenario_id in sorted(scenario_ids):
        digest.update(scenario_id.encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class Lease:
    """One held lease: the batch and the fencing token of the claim."""

    batch_id: str
    token: int
    owner: str


@dataclass(frozen=True)
class LeaseState:
    """The resolved state of one batch's claim file."""

    batch_id: str
    owner: str | None
    token: int
    heartbeat: float
    done: bool

    def age(self, now: float | None = None) -> float:
        """Seconds since the last heartbeat (``inf`` if never claimed)."""
        if self.owner is None:
            return float("inf")
        return (time.time() if now is None else now) - self.heartbeat


class LeaseLedger:
    """Claim, renew, reclaim, and retire scenario batches (see module docs).

    Parameters
    ----------
    root:
        The campaign store directory (the ledger lives in ``root/leases``).
    owner:
        This worker's name — must be unique among concurrently live
        workers of one store (the campaign layer derives it from
        hostname + PID).
    ttl:
        Seconds without a heartbeat before any worker may reclaim a
        lease.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        owner: str,
        ttl: float = DEFAULT_LEASE_TTL,
    ):
        if ttl <= 0:
            raise ValueError("lease ttl must be positive seconds")
        self.root = Path(root)
        self.owner = sanitize_owner(owner)
        self.ttl = float(ttl)
        self.dir = self.root / "leases"

    # ------------------------------------------------------------------
    # The batch plan
    # ------------------------------------------------------------------

    @property
    def plan_path(self) -> Path:
        return self.dir / "batches.json"

    @staticmethod
    def batch_id(index: int) -> str:
        return f"b{index:05d}"

    def plan(
        self, scenario_ids, batch_size: int | None = None
    ) -> list[tuple[str, list[str]]]:
        """Partition *scenario_ids* into batches (write or verify the plan).

        The first worker writes the plan atomically; every later worker
        verifies the id fingerprint and adopts the *plan's* batch size,
        so one elastic pool always agrees on the partition even when
        workers were started with different ``--lease-batch`` values.
        Returns ``[(batch_id, [scenario_id, ...]), ...]``.
        """
        ids = sorted(scenario_ids)
        if not ids:
            raise ValueError("cannot plan leases over an empty scenario set")
        fingerprint = _ids_fingerprint(ids)
        self.dir.mkdir(parents=True, exist_ok=True)
        existing = self._read_plan()
        if existing is None:
            size = batch_size if batch_size is not None else default_batch_size(len(ids))
            if size < 1:
                raise ValueError("lease batch size must be at least 1")
            plan = {
                "format": PLAN_FORMAT,
                "version": PLAN_VERSION,
                "batch_size": size,
                "scenario_count": len(ids),
                "ids_sha256": fingerprint,
            }
            self._write_atomic(self.plan_path, json.dumps(plan, indent=2) + "\n")
            # Two workers may race the first write; re-read so everyone
            # adopts whichever plan os.replace made durable last.
            existing = self._read_plan()
        if existing["ids_sha256"] != fingerprint:
            raise ValueError(
                f"lease plan at {self.plan_path} was written for a "
                f"different scenario set; use a fresh campaign directory"
            )
        size = existing["batch_size"]
        return [
            (self.batch_id(i), ids[start : start + size])
            for i, start in enumerate(range(0, len(ids), size))
        ]

    def _read_plan(self) -> dict | None:
        try:
            text = self.plan_path.read_text()
        except FileNotFoundError:
            return None
        plan = json.loads(text)
        if (
            plan.get("format") != PLAN_FORMAT
            or plan.get("version") != PLAN_VERSION
        ):
            raise ValueError(f"{self.plan_path} is not a lease plan: {plan!r}")
        return plan

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Claim-file replay
    # ------------------------------------------------------------------

    def _claims_path(self, batch_id: str) -> Path:
        return self.dir / f"{batch_id}.jsonl"

    def state(self, batch_id: str) -> LeaseState:
        """Resolve the current holder of *batch_id* by replaying claims."""
        owner, token, heartbeat, done = None, 0, 0.0, False
        try:
            lines = self._claims_path(batch_id).read_text().splitlines()
        except FileNotFoundError:
            lines = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                op = entry["op"]
                entry_owner = entry["owner"]
                entry_token = int(entry["token"])
                at = float(entry["at"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # torn append — skipped like a torn store record
            if done:
                continue  # a retired batch stays retired
            if op == "claim" and entry_token >= token:
                # Last-writer-wins: >= means a later line wins a token
                # tie, resolving two workers racing one expired lease.
                owner, token, heartbeat = entry_owner, entry_token, at
            elif (
                op == "renew"
                and entry_owner == owner
                and entry_token == token
            ):
                heartbeat = max(heartbeat, at)
            elif op == "done" and entry_token == token:
                done = True
        return LeaseState(
            batch_id=batch_id,
            owner=owner,
            token=token,
            heartbeat=heartbeat,
            done=done,
        )

    def states(self) -> list[LeaseState]:
        """Resolved state of every batch in the plan (for health reports)."""
        plan = self._read_plan()
        if plan is None:
            return []
        size = plan["batch_size"]
        count = -(-plan["scenario_count"] // size)
        return [self.state(self.batch_id(i)) for i in range(count)]

    def _append(self, batch_id: str, entry: dict) -> None:
        path = self._claims_path(batch_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Heal a torn tail first (a worker killed mid-append may have
        # left no final newline): start our entry on a fresh line so it
        # is the torn fragment that fails replay, not us.
        torn = False
        try:
            with open(path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    torn = existing.read(1) != b"\n"
        except FileNotFoundError:
            pass
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(path, "a") as handle:
            if torn:
                handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # The worker protocol: claim / renew / done
    # ------------------------------------------------------------------

    def claim(self, batch_id: str, force: bool = False) -> Lease | None:
        """Try to take *batch_id*; returns the lease or ``None``.

        ``None`` means the batch is already done, actively held by a
        live worker (heartbeat within the TTL), or we lost a claim race
        — all three mean "move on to another batch".  *force* skips the
        heartbeat check (the zombie-fencing test injector); production
        workers never pass it.
        """
        tracer = obs.tracer()
        # The claim span is always ended in-line, with the outcome as an
        # attribute — an abandoned begin would read as a phantom open
        # span in the merged trace.  ``takeover`` marks a reclaim of an
        # expired lease (token >= 2): the observable face of fencing,
        # since a SIGKILL'd owner never witnesses its own fence.
        span = tracer.begin("lease.claim", batch=batch_id)
        state = self.state(batch_id)
        if state.done:
            tracer.end(span, claimed=False, reason="done")
            return None
        held_by_other = (
            state.owner is not None
            and state.owner != self.owner
            and state.age() < self.ttl
        )
        if held_by_other and not force:
            tracer.end(span, claimed=False, reason="held")
            return None
        token = state.token + 1
        self._append(
            batch_id,
            {"op": "claim", "owner": self.owner, "token": token,
             "at": time.time()},
        )
        # Re-read to resolve the race: if another claimant appended
        # after us, last-writer-wins may have handed them the lease.
        after = self.state(batch_id)
        if after.owner == self.owner and after.token == token:
            obs.counter("campaign.lease.claims").inc()
            tracer.end(
                span,
                claimed=True,
                token=token,
                takeover=bool(
                    token >= 2
                    and state.owner is not None
                    and state.owner != self.owner
                ),
            )
            return Lease(batch_id=batch_id, token=token, owner=self.owner)
        tracer.end(span, claimed=False, reason="race")
        return None

    def renew(self, lease: Lease) -> bool:
        """Heartbeat *lease*; ``False`` means we have been fenced off.

        A ``False`` return is the zombie signal: some other worker
        reclaimed the batch after our heartbeat went stale.  The caller
        must stop starting new work under this lease (in-flight results
        may still land — the fencing token makes them detectable, and
        determinism makes them harmless).
        """
        tracer = obs.tracer()
        state = self.state(lease.batch_id)
        if state.owner != self.owner or state.token != lease.token:
            # Observed fence: we found our own lease reassigned.
            obs.counter("campaign.lease.fenced").inc()
            span = tracer.begin(
                "lease.fenced", batch=lease.batch_id, token=lease.token
            )
            tracer.end(span, new_owner=state.owner, new_token=state.token)
            return False
        with tracer.span(
            "lease.renew", batch=lease.batch_id, token=lease.token
        ):
            self._append(
                lease.batch_id,
                {"op": "renew", "owner": self.owner, "token": lease.token,
                 "at": time.time()},
            )
        obs.counter("campaign.lease.renewals").inc()
        return True

    def mark_done(self, lease: Lease) -> None:
        """Retire the batch (idempotent; ignored if we were fenced off)."""
        with obs.tracer().span(
            "lease.done", batch=lease.batch_id, token=lease.token
        ):
            self._append(
                lease.batch_id,
                {"op": "done", "owner": self.owner, "token": lease.token,
                 "at": time.time()},
            )

    def active_leases(self, now: float | None = None) -> list[LeaseState]:
        """Every batch currently held by a live (fresh-heartbeat) worker."""
        now = time.time() if now is None else now
        return [
            state
            for state in self.states()
            if not state.done
            and state.owner is not None
            and state.age(now) < self.ttl
        ]

    def __repr__(self) -> str:
        return f"LeaseLedger(root={str(self.root)!r}, owner={self.owner!r})"
