"""Typed, picklable result records of the sweep runner.

These dataclasses are the wire format between worker processes and the
merging parent, so they hold only plain values (strings, numbers, dicts,
lists) — no numpy arrays, no live simulator objects.  Pickling a result
and unpickling it in another process is exact (floats round-trip
bit-for-bit), which is one half of the runner's serial/parallel
bit-identity guarantee; the other half is per-scenario seed derivation
(:func:`repro.rng.spawn_key`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run reports back.

    - *stats*: the engine's :class:`~repro.controller.engine.SsdRunStats`
      as a plain dict (host reads/writes, write amplification, GC and
      maintenance counts, peak per-interval read pressure, wear).
    - *backend*: the backend's ``summary()`` dict (for the flash-chip
      backend: pages checked, corrected bits, uncorrectable pages, RDR
      attempts/recoveries, data-loss events).
    - *per_block*: end-of-run per-block counters (P/E cycles, reads since
      program, valid pages), as lists indexed by physical block.
    - *trajectory*: optional per-maintenance-window records (see
      :func:`repro.controller.factory.run_scenario`), including the RBER
      trajectory when the scenario's backend models real cells.
    """

    scenario_id: str
    stats: dict
    backend: dict
    per_block: dict[str, list] = field(default_factory=dict)
    trajectory: list[dict] | None = None

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioResult":
        """Rebuild a result from :meth:`as_dict` output (exact).

        The record fields are all JSON-native (plain ints, floats,
        strings, dicts, lists — enforced by the result-store round-trip
        test), and JSON preserves them bit-for-bit, so a result loaded
        from a campaign store compares equal to the freshly computed
        one — the property the resumed ≡ serial equivalence suite pins.
        """
        return cls(
            scenario_id=payload["scenario_id"],
            stats=payload["stats"],
            backend=payload["backend"],
            per_block=payload.get("per_block", {}),
            trajectory=payload.get("trajectory"),
        )


class ScenarioFailure(RuntimeError):
    """A scenario raised in its worker; carries the scenario id.

    The runner re-raises this in the parent process, so a failing sweep
    always names the scenario that broke (not just a worker traceback).
    The explicit :meth:`__reduce__` keeps the exception picklable — it
    crosses the worker/parent process boundary as a value.
    """

    def __init__(self, scenario_id: str, detail: str):
        super().__init__(f"scenario {scenario_id!r} failed: {detail}")
        self.scenario_id = scenario_id
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.scenario_id, self.detail))


class SweepWorkerLost(ScenarioFailure):
    """A sweep worker process died without reporting (SIGKILL, OOM, …).

    Unlike an exception *inside* a scenario — which the worker catches
    and ships back as a :class:`ScenarioFailure` — a killed worker can
    report nothing, so the runner cannot know which of the unfinished
    scenarios was in flight on the dead process.  This error names all
    of them (a small superset of the true in-flight set), which is what
    an operator needs to re-run; ``scenario_id`` is the first as a
    best-effort single-id anchor for code that only knows the base
    class.
    """

    def __init__(self, scenario_ids, detail: str):
        ids = tuple(scenario_ids)
        shown = ", ".join(ids[:8]) + ("…" if len(ids) > 8 else "")
        RuntimeError.__init__(
            self,
            f"a sweep worker process died without reporting ({detail}); "
            f"{len(ids)} unfinished scenario(s): {shown}",
        )
        self.scenario_id = ids[0] if ids else "<unknown>"
        self.scenario_ids = ids
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.scenario_ids, self.detail))


@dataclass(frozen=True)
class SweepReport:
    """Merged outcome of one sweep: results keyed by scenario id.

    Results are sorted by scenario id, so the report is identical for
    any execution order and any worker count — the determinism suite
    (``tests/parallel/test_sweep_runner.py``) pins this.
    """

    results: tuple[ScenarioResult, ...]
    workers: int

    def __post_init__(self) -> None:
        ids = [r.scenario_id for r in self.results]
        if sorted(ids) != ids:
            raise ValueError("report results must be sorted by scenario id")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate scenario ids in report: {ids}")

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, scenario_id: str) -> ScenarioResult:
        for result in self.results:
            if result.scenario_id == scenario_id:
                return result
        raise KeyError(scenario_id)

    @property
    def scenario_ids(self) -> list[str]:
        return [r.scenario_id for r in self.results]

    def as_dict(self) -> dict:
        """Plain-dict form: ``{scenario_id: result_dict}`` plus metadata."""
        return {
            "workers": self.workers,
            "scenarios": {r.scenario_id: r.as_dict() for r in self.results},
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON text of :meth:`as_dict` (the CLI's ``--json`` payload)."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)
