"""Sharded parallel scenario sweeps.

The paper's campaigns — RBER vs. read counts, Vpass sweeps,
refresh/reclaim ablations — are grids of independent simulations, and
this package runs them across worker processes with results bit-identical
to serial execution:

- describe the campaign with a :class:`~repro.workloads.grid.ScenarioGrid`
  (workload x geometry x policy x backend x seeds);
- run it with :class:`SweepRunner` (``SweepRunner(workers=4).run(grid)``)
  or the ``python -m repro.sweep`` CLI;
- read the merged :class:`SweepReport`, keyed by scenario id.

See ``docs/architecture.md`` ("The sweep subsystem") for the determinism
contract and ``tests/parallel/`` for the equivalence suite.
"""

from repro.parallel.results import ScenarioFailure, ScenarioResult, SweepReport
from repro.parallel.runner import SweepRunner, default_workers, run_sweep

__all__ = [
    "ScenarioFailure",
    "ScenarioResult",
    "SweepReport",
    "SweepRunner",
    "default_workers",
    "run_sweep",
]
