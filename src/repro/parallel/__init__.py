"""Sharded parallel scenario sweeps and fault-tolerant campaigns.

The paper's campaigns — RBER vs. read counts, Vpass sweeps,
refresh/reclaim ablations — are grids of independent simulations, and
this package runs them across worker processes with results bit-identical
to serial execution:

- describe the campaign with a :class:`~repro.workloads.grid.ScenarioGrid`
  (workload x geometry x policy x backend x seeds);
- run it with :class:`SweepRunner` (``SweepRunner(workers=4).run(grid)``)
  or the ``python -m repro.sweep`` CLI;
- read the merged :class:`SweepReport`, keyed by scenario id.

For grids too large or too long-lived to run in one sitting, the
campaign layer adds durability on the same substrate:

- :class:`ResultStore` — an append-only, crash-safe on-disk store of
  per-scenario results (checksummed records, fsync'd appends, atomic
  manifest) that merges across shards and hosts by construction;
- :class:`Campaign` — checkpoint/resume over a store, per-scenario
  failure policy (``fail_fast`` | ``continue`` | ``retry:N`` with
  exponential backoff), wall-clock timeouts that kill hung workers,
  hash-sharding (``shard="i/N"``), and streaming aggregation;
- :class:`LeaseLedger` — elastic scheduling over one store
  (``Campaign(..., elastic=True)``): workers claim/renew/reclaim
  scenario batches with fencing tokens, no shard arithmetic; and
  :func:`campaign_status` — live health of any campaign directory.

See ``docs/architecture.md`` ("The sweep subsystem", "Campaigns",
"Elastic campaigns") for the determinism contract and
``tests/parallel/`` for the equivalence suite.
"""

from repro.parallel.campaign import (
    Campaign,
    FailurePolicy,
    StreamingAggregate,
    campaign_status,
    parse_shard,
    run_campaign,
    shard_of,
)
from repro.parallel.leases import Lease, LeaseLedger, LeaseState
from repro.parallel.results import (
    ScenarioFailure,
    ScenarioResult,
    SweepReport,
    SweepWorkerLost,
)
from repro.parallel.runner import SweepRunner, default_workers, run_sweep
from repro.parallel.store import ResultStore, grid_fingerprint

__all__ = [
    "Campaign",
    "FailurePolicy",
    "Lease",
    "LeaseLedger",
    "LeaseState",
    "ResultStore",
    "campaign_status",
    "ScenarioFailure",
    "ScenarioResult",
    "StreamingAggregate",
    "SweepReport",
    "SweepRunner",
    "SweepWorkerLost",
    "default_workers",
    "grid_fingerprint",
    "parse_shard",
    "run_campaign",
    "run_sweep",
    "shard_of",
]
