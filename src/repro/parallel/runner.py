"""Sharded multi-process sweep execution.

:class:`SweepRunner` fans a scenario grid out to worker processes, each
running its own :class:`~repro.controller.engine.SimulationEngine`, and
merges the per-scenario results into a :class:`~repro.parallel.results.SweepReport`.

Design rules that make ``workers=N`` bit-identical to serial execution:

1. **Scenarios are pure.**  A worker receives the picklable
   :class:`~repro.workloads.grid.Scenario` and rebuilds everything —
   trace, engine, backend — from it.  No state crosses scenarios.
2. **Seeds are spawn-keyed.**  Every RNG stream derives from
   ``(root_seed, scenario_id, component)`` via
   :func:`repro.rng.spawn_key`; worker identity and scheduling order
   never enter the derivation.
3. **Merging is order-free.**  Results come back tagged with their
   scenario id and the report sorts by it, so an unordered pool, a
   shuffled scenario list, and a serial loop all produce the same
   report.  Duplicate ids are rejected up front.
4. **Failures carry their scenario.**  An exception in a worker is
   wrapped into :class:`~repro.parallel.results.ScenarioFailure` naming
   the scenario id and re-raised in the parent.

``workers=1`` runs in-process with no pool and no pickling — the serial
reference the equivalence suite compares against.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from collections import Counter
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.parallel.results import (
    ScenarioFailure,
    ScenarioResult,
    SweepReport,
    SweepWorkerLost,
)
from repro.workloads.grid import Scenario, ScenarioGrid

# repro.controller.factory is imported lazily inside SweepRunner.run: the
# factory itself imports repro.parallel.results (the records it returns),
# so a module-level import here would be circular at package init.


def default_workers() -> int:
    """Worker count when the caller does not choose: one per CPU.

    Honors ``REPRO_SWEEP_WORKERS`` (useful to pin CI smokes) and falls
    back to :func:`os.cpu_count`.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_SWEEP_WORKERS must be an integer worker count, "
                f"got {env!r}"
            ) from None
    return max(1, os.cpu_count() or 1)


def _available_cpus() -> int:
    """CPUs the nested-parallelism budget check counts against
    (a module function so tests can monkeypatch the machine size)."""
    return os.cpu_count() or 1


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the imported simulator);
    spawn otherwise.  The choice cannot affect results — workers rebuild
    every run from the pickled scenario alone."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_tagged(tagged: tuple[int, str, Callable[[Any], Any], Any]):
    """Worker entry: run one item, never raise across the process boundary.

    Returns ``(index, result)`` on success or ``(index, ScenarioFailure)``
    carrying the item's label — exceptions themselves may not pickle, so
    the failure travels as a typed record (with the worker's full
    traceback as text, since the live traceback cannot cross the process
    boundary) and is re-raised by the parent.
    """
    index, label, fn, item = tagged
    try:
        return index, fn(item)
    except Exception:  # noqa: BLE001 - reported to the parent
        return index, ScenarioFailure(label, traceback.format_exc().strip())


def _run_tagged_chunk(chunk: list) -> list:
    """Worker entry for a chunk: run items until one fails.

    Stops at the first failing item — the parent aborts the whole map on
    it, so finishing the chunk would only burn compute on a broken grid.
    """
    results = []
    for tagged in chunk:
        results.append(_run_tagged(tagged))
        if isinstance(results[-1][1], ScenarioFailure):
            break
    return results


def _kill_pool(executor: ProcessPoolExecutor) -> None:
    """Abandon *executor* without draining it: cancel queued work and
    kill the worker processes mid-item (the terminate() a raw Pool had).
    """
    processes = dict(getattr(executor, "_processes", None) or {})
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        try:
            process.kill()
        except (OSError, ValueError):
            pass


class SweepRunner:
    """Run independent work items across worker processes, deterministically.

    The primary entry point is :meth:`run`, which executes a scenario
    grid; :meth:`map` is the generic substrate (also used by the
    migrated ablation benchmarks) for any picklable function over any
    picklable items.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (in-process, no pool) is the serial
        reference; ``None`` picks :func:`default_workers`.
    chunksize:
        Items handed to a worker per dispatch.  ``1`` (default) shards
        finest — best for few, long scenarios; raise it for very many
        tiny items.
    """

    def __init__(self, workers: int | None = None, chunksize: int = 1):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self.chunksize = int(chunksize)

    # ------------------------------------------------------------------
    # Generic deterministic parallel map
    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Sequence[str] | None = None,
    ) -> list[Any]:
        """Apply *fn* to every item; results in item order regardless of
        worker scheduling.

        *fn* and the items must be picklable for ``workers > 1`` (a
        module-level function and plain-data items; lambdas only work
        in-process).  *labels* name the items in failure reports
        (defaults to ``item[<index>]``).  A failing item raises
        :class:`ScenarioFailure` with its label and stops the run —
        serially at the first failing item, in parallel as soon as any
        worker reports one (the pool is terminated rather than drained,
        so a broken grid does not burn the rest of the fleet's compute;
        with several failing items, *which* one is reported may vary
        with scheduling).

        A worker that *dies* without reporting — SIGKILL, OOM kill,
        ``os._exit`` — can return nothing, which stalled the previous
        ``multiprocessing.Pool`` implementation forever.  The pool here
        is a :class:`~concurrent.futures.ProcessPoolExecutor`, which
        detects the death; the run raises :class:`SweepWorkerLost`
        naming every label whose result had not yet arrived (a small
        superset of what was actually in flight on the dead worker).
        """
        items = list(items)
        if labels is None:
            labels = [f"item[{i}]" for i in range(len(items))]
        elif len(labels) != len(items):
            raise ValueError("labels must match items one-to-one")
        if not items:
            return []
        outputs: list[Any] = [None] * len(items)
        if self.workers == 1 or len(items) == 1:
            # In-process: no pickling, and the original traceback is
            # freely available — chain it instead of flattening to text.
            for index, item in enumerate(items):
                try:
                    outputs[index] = fn(item)
                except Exception as exc:
                    detail = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    raise ScenarioFailure(labels[index], detail) from exc
            return outputs
        tagged = [
            (index, labels[index], fn, item) for index, item in enumerate(items)
        ]
        chunks = [
            tagged[i : i + self.chunksize]
            for i in range(0, len(tagged), self.chunksize)
        ]
        received = [False] * len(items)
        failure: ScenarioFailure | None = None
        executor = ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            mp_context=_pool_context(),
        )
        try:
            pending = {executor.submit(_run_tagged_chunk, c) for c in chunks}
            while pending and failure is None:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for index, outcome in future.result():
                        if isinstance(outcome, ScenarioFailure):
                            failure = outcome
                            break
                        outputs[index] = outcome
                        received[index] = True
                    if failure is not None:
                        break
        except BrokenProcessPool as exc:
            _kill_pool(executor)
            lost = [labels[i] for i in range(len(items)) if not received[i]]
            raise SweepWorkerLost(lost, str(exc) or type(exc).__name__) from exc
        except BaseException:
            _kill_pool(executor)
            raise
        if failure is not None:
            _kill_pool(executor)
            raise failure
        executor.shutdown(wait=True)
        return outputs

    # ------------------------------------------------------------------
    # Scenario sweeps
    # ------------------------------------------------------------------

    def run(
        self, grid: ScenarioGrid | Iterable[Scenario]
    ) -> SweepReport:
        """Execute every scenario of *grid* and merge the results.

        *grid* may be a :class:`~repro.workloads.grid.ScenarioGrid` or
        any iterable of scenarios (ids must be unique).  The returned
        report is sorted by scenario id: the same grid yields the same
        report for any worker count and any scenario order.

        When the pool forks, the parent pre-warms the per-process trace
        cache (:mod:`repro.workloads.trace_cache`) first, so workers
        inherit every scenario's generated trace read-only via
        copy-on-write instead of regenerating it.  Traces are
        deterministic in the scenario, so warming cannot change a bit
        of the report — it only moves generation out of the workers.
        """
        from repro import obs
        from repro.controller.factory import run_scenario
        from repro.workloads.trace_cache import warm_trace_cache

        scenarios = list(grid)
        ids = [s.scenario_id for s in scenarios]
        duplicates = sorted(
            scenario_id for scenario_id, n in Counter(ids).items() if n > 1
        )
        if duplicates:
            raise ValueError(
                f"scenario ids must be unique; duplicated: {duplicates}"
            )
        if self.workers > 1 and len(scenarios) > 1:
            self._check_executor_budget(scenarios)
        if (
            self.workers > 1
            and len(scenarios) > 1
            and _pool_context().get_start_method() == "fork"
        ):
            warm_trace_cache(scenarios)
        with obs.tracer().span(
            "sweep.run", scenarios=len(scenarios), workers=self.workers
        ):
            results: list[ScenarioResult] = self.map(
                run_scenario, scenarios, labels=ids
            )
        ordered = tuple(sorted(results, key=lambda r: r.scenario_id))
        return SweepReport(results=ordered, workers=self.workers)

    def _check_executor_budget(
        self, scenarios: Sequence[Scenario]
    ) -> None:
        """Reject multi-worker sweeps over multi-process executors
        (see :func:`_reject_nested_process_pools`)."""
        _reject_nested_process_pools(scenarios, self.workers)


def _reject_nested_process_pools(
    scenarios: Sequence[Scenario], workers: int
) -> None:
    """Reject multi-worker sweeps over multi-process executors.

    Two reasons, one hard and one soft.  Hard: the sweep pool's
    workers are daemonic processes, and daemonic processes cannot
    spawn the executor's own worker pool at all.  Soft (why no
    silent fallback either): even if they could, ``sweep workers x
    executor processes`` would oversubscribe the machine and thrash
    rather than speed anything up.  Scenario-level sharding already
    uses the cores, so the fix is to pick one level: ``workers=1``
    with ``executor="process:N"`` for few large scenarios, or
    ``workers=N`` with a serial/threaded executor for many.  The
    campaign layer applies the same check (its per-scenario workers
    are non-daemonic, so nesting is merely ruinous rather than
    impossible there — rejected all the same).
    """
    from repro.controller.executor import (
        default_executor_workers,
        parse_executor_spec,
    )

    for scenario in scenarios:
        spec = getattr(scenario.backend, "executor", "serial")
        kind, count = parse_executor_spec(spec)
        if kind != "process":
            continue
        procs = count if count is not None else default_executor_workers()
        if procs <= 1:
            continue
        raise ValueError(
            f"scenario {scenario.scenario_id!r} requests executor "
            f"{spec!r} ({procs} processes) inside a {workers}-worker "
            f"sweep: nested process pools are impossible (pool workers "
            f"are daemonic) and {workers} x {procs} processes would "
            f"oversubscribe {_available_cpus()} CPU(s) anyway. Use "
            f"workers=1 with the process executor, or a serial/threaded "
            f"executor with sweep workers."
        )


def run_sweep(
    grid: ScenarioGrid | Iterable[Scenario], workers: int | None = None
) -> SweepReport:
    """One-call convenience: ``SweepRunner(workers).run(grid)``."""
    return SweepRunner(workers=workers).run(grid)
