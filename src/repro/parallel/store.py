"""Persistent, crash-safe per-scenario result store for sweep campaigns.

A :class:`ResultStore` is a directory that survives anything the
campaign layer (:mod:`repro.parallel.campaign`) can throw at it — killed
parents, killed workers, torn writes, bit flips, a crash at any byte of
a compaction — and merges back into a
:class:`~repro.parallel.results.SweepReport` by construction:

``manifest.json``
    Written atomically (temp file + ``os.replace`` + directory fsync).
    Pins the store format version and a *grid fingerprint* (a hash of
    the sorted scenario ids plus the root seed), so resuming a campaign
    against the wrong store fails up front instead of silently merging
    results of a different grid.

``records/<writer>.jsonl``
    The **live tail**: append-only result records, one JSON object per
    line, each carrying a SHA-256 checksum of its canonical payload.
    Appends are flushed and ``fsync``'d before :meth:`append` returns,
    so a record either exists completely or not at all: a parent killed
    mid-append leaves at most one torn final line, which fails to parse
    and is skipped on load (the scenario simply re-runs on resume).  A
    corrupted record (bit flip, truncation mid-file) fails its checksum
    and is skipped the same way.  Each concurrent writer — an elastic
    worker, a shard, a resumed run — appends to its *own* file, so two
    hosts sharing a directory (or a later ``rsync`` of one store into
    another) never interleave bytes.  Records written under a lease
    (:mod:`repro.parallel.leases`) carry the lease's fencing token, so
    a zombie writer's late duplicates are attributable (see
    :attr:`zombie_writes`).

``segments/``
    The **compacted tier**: :meth:`compact` folds the live tail's cold
    records into an indexed, checksummed columnar segment —
    ``segment-NNNNN.data.json`` (per-field column arrays of every
    record, one JSON parse per segment instead of one per record) plus
    ``segment-NNNNN.index.json`` (scenario ids, per-record checksums,
    and the data file's length and SHA-256, so resume can enumerate a
    segment without parsing its data).  A segment becomes real only
    when ``segments/MANIFEST.json`` (atomic tmp + fsync + rename) lists
    it — the *compaction commit point* — and the folded live files are
    deleted only **after** that commit.  A crash at any byte of
    compaction therefore loses nothing: uncommitted segment files are
    invisible to :meth:`load`, and committed segments coexist
    harmlessly with not-yet-deleted live duplicates (duplicate ids must
    agree, which compaction guarantees).  After compaction,
    :meth:`load` reads O(segments) files plus the live tail instead of
    re-parsing every record ever appended, and :meth:`scenario_ids`
    (what resume consults) verifies one whole-file checksum per segment
    instead of one per record.

``failures/<writer>.jsonl``
    The failure ledger: one record per failed *attempt* (scenario id,
    attempt number, failure kind, detail, wall-clock timestamp, and the
    attempt's monotonic-clock duration — so retry/backoff analysis
    survives a stepped wall clock), appended by the campaign's failure
    policy.  Purely diagnostic — never merged into reports.

**Order-free merge by construction.**  Results are keyed by scenario
id; :meth:`load` reads committed segments then every live record file
in sorted-name order and keeps the first valid record per id.  Scenario
results are deterministic in the scenario (the sweep substrate's
contract), so duplicate ids across files — a retried scenario, two
overlapping shards, a fenced-off zombie's late write — must agree, and
:meth:`load` verifies they do.  Merging two hosts' stores is therefore
just copying record files into one store (:meth:`ingest`); no ordering,
locking, or coordination exists to get wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

from repro import obs
from repro.parallel.results import ScenarioResult

#: on-disk format identifier (bump STORE_VERSION on incompatible change).
STORE_FORMAT = "repro-campaign-store"
STORE_VERSION = 1

#: on-disk identifiers of the compacted tier.
SEGMENT_FORMAT = "repro-campaign-segment"
SEGMENT_INDEX_FORMAT = "repro-campaign-segment-index"
SEGMENTS_MANIFEST_FORMAT = "repro-campaign-segments"
SEGMENT_VERSION = 1

#: the columnar layout: one array per record field, index-aligned.
_SEGMENT_COLUMNS = ("scenario_id", "stats", "backend", "per_block",
                    "trajectory", "lease_token")


def grid_fingerprint(scenarios) -> str:
    """Stable fingerprint of a campaign's scenario set.

    Hashes the sorted scenario ids and the root seed — the two inputs
    that determine every result bit — so a store can refuse scenarios
    it was not created for.  Deliberately *order-free* (ids are sorted)
    and *shard-free* (every shard of one grid fingerprints identically,
    which is what lets shard stores merge).
    """
    ids = sorted(s.scenario_id for s in scenarios)
    seeds = sorted({s.root_seed for s in scenarios})
    digest = hashlib.sha256()
    for seed in seeds:
        digest.update(f"seed={seed}\n".encode())
    for scenario_id in ids:
        digest.update(scenario_id.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _canonical(payload: dict) -> str:
    """The canonical JSON text a record's checksum covers."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _payload_sha(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


class ResultStore:
    """One campaign's persistent results under *root* (see module docs).

    Parameters
    ----------
    root:
        Store directory; created (with ``records/`` and ``failures/``)
        if missing.
    writer:
        Name of this writer's append files.  Each concurrently-writing
        campaign run must use a distinct name; the campaign layer derives
        it from the shard spec (``shard0of2``), the elastic worker name
        (``w-host-1234``), or uses ``"all"``.
    """

    def __init__(self, root: str | os.PathLike, writer: str = "all"):
        if not writer or "/" in writer or writer.startswith("."):
            raise ValueError(f"bad writer name {writer!r}")
        self.root = Path(root)
        self.writer = writer
        self.records_dir = self.root / "records"
        self.failures_dir = self.root / "failures"
        self.segments_dir = self.root / "segments"
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        #: invalid records seen by the last :meth:`load` (torn/corrupt).
        self.corrupt_records = 0
        #: scenario ids the last :meth:`load` saw recorded under more
        #: than one lease fencing token — the signature of a zombie
        #: writer that resumed after its lease expired.  The payloads
        #: agreed (anything else raises), so the results are fine; the
        #: count is surfaced so campaign health can report the event.
        self.zombie_writes = 0
        self._records_file = None
        self._failures_file = None

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def segments_manifest_path(self) -> Path:
        return self.segments_dir / "MANIFEST.json"

    @classmethod
    def is_initialized(cls, root: str | os.PathLike) -> bool:
        """True when *root* already holds a store manifest."""
        return (Path(root) / "manifest.json").exists()

    def read_manifest(self) -> dict | None:
        """The stored manifest, or ``None`` for a fresh directory."""
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            return None
        manifest = json.loads(text)
        if (
            manifest.get("format") != STORE_FORMAT
            or manifest.get("version") != STORE_VERSION
        ):
            raise ValueError(
                f"{self.manifest_path} is not a version-{STORE_VERSION} "
                f"{STORE_FORMAT} manifest: {manifest!r}"
            )
        return manifest

    def bind(self, scenarios) -> dict:
        """Bind the store to a scenario set (write or verify the manifest).

        A fresh store gets an atomically-written manifest carrying the
        grid fingerprint; an existing store must fingerprint-match, so a
        resume (or a shard sharing the directory) can never mix grids.
        """
        fingerprint = grid_fingerprint(scenarios)
        manifest = self.read_manifest()
        if manifest is not None:
            if manifest["grid_fingerprint"] != fingerprint:
                raise ValueError(
                    f"store at {self.root} was created for a different "
                    f"scenario grid (fingerprint "
                    f"{manifest['grid_fingerprint'][:12]}… != "
                    f"{fingerprint[:12]}…); use a fresh --campaign "
                    f"directory for a different grid"
                )
            return manifest
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "grid_fingerprint": fingerprint,
            "scenario_count": len(list(scenarios)),
        }
        self._write_atomic(self.manifest_path, json.dumps(manifest, indent=2) + "\n")
        return manifest

    def _write_atomic(self, path: Path, text: str) -> None:
        """Write *text* to *path* atomically and durably.

        temp file in the same directory → flush → fsync → ``os.replace``
        → fsync the directory, so a crash leaves either the old manifest
        or the new one, never a torn file.
        """
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, result: ScenarioResult, lease=None) -> None:
        """Durably append one scenario's result (crash-atomic).

        The record line carries a checksum of its canonical payload;
        the file is flushed and fsync'd before returning, so once
        :meth:`append` returns the record survives any later crash, and
        a crash *during* the append leaves a torn line that :meth:`load`
        skips — never a half-trusted result.

        *lease* (a :class:`repro.parallel.leases.Lease`, when the
        writer holds one) stamps the record with the lease's fencing
        token — outside the checksum, because it describes *who wrote*
        rather than *what was computed* — so a zombie writer's late
        duplicate is attributable on load (:attr:`zombie_writes`).
        """
        with obs.tracer().span("store.append", scenario=result.scenario_id):
            payload = result.as_dict()
            record = {"sha256": _payload_sha(payload), "result": payload}
            if lease is not None:
                record["lease"] = {
                    "batch": lease.batch_id,
                    "token": lease.token,
                    "owner": lease.owner,
                }
            if self._records_file is None:
                self._records_file = self._open_append(
                    self.records_dir / f"{self.writer}.jsonl"
                )
            self._records_file.write(_canonical(record) + "\n")
            self._records_file.flush()
            os.fsync(self._records_file.fileno())
        obs.counter("store.appends").inc()

    @staticmethod
    def _open_append(path: Path):
        """Open an append handle, healing a torn tail first.

        A crash mid-append can leave the file without a final newline;
        appending straight onto that torn line would corrupt the *new*
        record too, so start it on a fresh line (the torn fragment then
        fails to parse on its own, exactly like any other torn line).
        """
        try:
            with open(path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    torn = existing.read(1) != b"\n"
                else:
                    torn = False
        except FileNotFoundError:
            torn = False
        handle = open(path, "a")
        if torn:
            handle.write("\n")
        return handle

    def record_failure(
        self,
        scenario_id: str,
        attempt: int,
        kind: str,
        detail: str,
        duration: float | None = None,
    ) -> dict:
        """Append one failed attempt to the failure ledger.

        The entry carries both a wall-clock timestamp (``wall_time``,
        for humans and cross-host ordering) and the attempt's elapsed
        **monotonic**-clock seconds (``duration_seconds``), so
        retry/backoff analysis stays truthful across NTP steps and
        clock skew — the wall clock may jump, a monotonic duration
        cannot.  Returns the entry as written (the campaign mirrors it
        into its in-memory ledger).
        """
        entry = {
            "scenario_id": scenario_id,
            "attempt": int(attempt),
            "kind": kind,
            "detail": detail,
            "wall_time": time.time(),
            "duration_seconds": (
                None if duration is None else float(duration)
            ),
        }
        if self._failures_file is None:
            self._failures_file = self._open_append(
                self.failures_dir / f"{self.writer}.jsonl"
            )
        self._failures_file.write(_canonical(entry) + "\n")
        self._failures_file.flush()
        os.fsync(self._failures_file.fileno())
        return entry

    def close(self) -> None:
        """Close any open append handles (idempotent)."""
        for handle in (self._records_file, self._failures_file):
            if handle is not None:
                handle.close()
        self._records_file = None
        self._failures_file = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Loading / merging
    # ------------------------------------------------------------------

    def _read_segments_manifest(self) -> dict | None:
        """The committed-segments manifest, or ``None`` when absent."""
        try:
            text = self.segments_manifest_path.read_text()
        except FileNotFoundError:
            return None
        manifest = json.loads(text)
        if (
            manifest.get("format") != SEGMENTS_MANIFEST_FORMAT
            or manifest.get("version") != SEGMENT_VERSION
        ):
            raise ValueError(
                f"{self.segments_manifest_path} is not a segments "
                f"manifest: {manifest!r}"
            )
        return manifest

    def _read_segment_index(self, name: str) -> dict | None:
        """A committed segment's index, or ``None`` when unreadable."""
        try:
            index = json.loads(
                (self.segments_dir / f"{name}.index.json").read_text()
            )
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if (
            index.get("format") != SEGMENT_INDEX_FORMAT
            or index.get("version") != SEGMENT_VERSION
            or index.get("segment") != name
        ):
            return None
        return index

    def _read_segment_data(self, name: str, index: dict) -> dict | None:
        """A segment's verified column arrays, or ``None`` when corrupt."""
        try:
            raw = (self.segments_dir / f"{name}.data.json").read_bytes()
        except FileNotFoundError:
            return None
        if (
            len(raw) != index.get("data_bytes")
            or hashlib.sha256(raw).hexdigest() != index.get("data_sha256")
        ):
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if (
            data.get("format") != SEGMENT_FORMAT
            or data.get("version") != SEGMENT_VERSION
        ):
            return None
        return data.get("columns")

    def _iter_segment_records(self):
        """Yield ``(scenario_id, payload, lease_token)`` per committed
        segment record.

        Anything torn or bit-rotted — an unreadable index, a data file
        whose length or whole-file SHA-256 mismatches, a row whose
        reconstructed payload fails its per-record checksum — is
        counted in :attr:`corrupt_records` and skipped, exactly like a
        torn live line: the affected scenarios simply re-run on resume.
        """
        manifest = self._read_segments_manifest()
        if manifest is None:
            return
        for entry in manifest["segments"]:
            name, expected = entry["name"], int(entry["records"])
            index = self._read_segment_index(name)
            if index is None:
                self.corrupt_records += expected
                continue
            columns = self._read_segment_data(name, index)
            if columns is None:
                self.corrupt_records += expected
                continue
            ids = columns.get("scenario_id", [])
            shas = index.get("record_sha256", [])
            for i, scenario_id in enumerate(ids):
                payload = {
                    "scenario_id": scenario_id,
                    "stats": columns["stats"][i],
                    "backend": columns["backend"][i],
                    "per_block": columns["per_block"][i],
                    "trajectory": columns["trajectory"][i],
                }
                if i >= len(shas) or _payload_sha(payload) != shas[i]:
                    self.corrupt_records += 1
                    continue
                yield scenario_id, payload, columns["lease_token"][i]

    def _iter_live_records(self):
        """Yield ``(scenario_id, payload, lease_token)`` for every valid
        live-tail record.

        Files are visited in sorted-name order and lines in file order —
        a deterministic scan, though nothing downstream depends on it
        (results merge by id).  Invalid lines (torn appends, checksum
        mismatches) increment :attr:`corrupt_records` and are skipped.
        """
        for path in sorted(self.records_dir.glob("*.jsonl")):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        payload = record["result"]
                        expected = record["sha256"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        self.corrupt_records += 1
                        continue
                    if _payload_sha(payload) != expected:
                        self.corrupt_records += 1
                        continue
                    lease = record.get("lease") or {}
                    yield payload["scenario_id"], payload, lease.get("token")

    def _iter_valid_records(self):
        """Every valid record — committed segments first, then the tail."""
        self.corrupt_records = 0
        yield from self._iter_segment_records()
        yield from self._iter_live_records()

    def load(self) -> dict[str, ScenarioResult]:
        """All valid stored results, keyed by scenario id.

        Duplicate ids (a retried scenario, overlapping shards, a
        zombie's late write) must carry identical payloads — results
        are deterministic in the scenario — and a mismatch raises
        rather than silently picking one; that is the store's
        end-to-end corruption check.  Agreeing duplicates recorded
        under *different* lease fencing tokens are counted in
        :attr:`zombie_writes`.
        """
        merged: dict[str, dict] = {}
        tokens: dict[str, set] = {}
        self.zombie_writes = 0
        for scenario_id, payload, token in self._iter_valid_records():
            previous = merged.get(scenario_id)
            if previous is None:
                merged[scenario_id] = payload
                tokens[scenario_id] = {token}
            elif previous != payload:
                raise ValueError(
                    f"store at {self.root} holds two different results "
                    f"for scenario {scenario_id!r}; results are "
                    f"deterministic, so one record is corrupt or from a "
                    f"different grid"
                )
            else:
                tokens[scenario_id].add(token)
        self.zombie_writes = sum(
            1 for seen in tokens.values() if len(seen) > 1
        )
        return {
            scenario_id: ScenarioResult.from_dict(payload)
            for scenario_id, payload in merged.items()
        }

    def scenario_ids(self) -> set[str]:
        """Ids of every validly stored scenario (what resume skips).

        The compacted tier's fast path: a committed segment contributes
        its indexed ids after **one** whole-file checksum pass over its
        data (no JSON parse, no per-record hashing), so on a compacted
        store this is O(segments) + the live tail rather than a full
        re-validation of every record ever appended.
        """
        self.corrupt_records = 0
        ids: set[str] = set()
        manifest = self._read_segments_manifest()
        if manifest is not None:
            for entry in manifest["segments"]:
                name, expected = entry["name"], int(entry["records"])
                index = self._read_segment_index(name)
                if index is None:
                    self.corrupt_records += expected
                    continue
                try:
                    raw = (self.segments_dir / f"{name}.data.json").read_bytes()
                except FileNotFoundError:
                    self.corrupt_records += expected
                    continue
                if (
                    len(raw) != index.get("data_bytes")
                    or hashlib.sha256(raw).hexdigest() != index.get("data_sha256")
                ):
                    self.corrupt_records += expected
                    continue
                ids.update(index["scenario_ids"])
        ids.update(
            scenario_id for scenario_id, _, _ in self._iter_live_records()
        )
        return ids

    def failures(self) -> list[dict]:
        """Every failure-ledger entry, across all writers."""
        entries = []
        for path in sorted(self.failures_dir.glob("*.jsonl")):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue
        return entries

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Cheap structural summary (for ``--status`` and benches)."""
        manifest = self._read_segments_manifest()
        segments = [] if manifest is None else manifest["segments"]
        return {
            "segments": len(segments),
            "segment_records": sum(int(s["records"]) for s in segments),
            "live_files": len(list(self.records_dir.glob("*.jsonl"))),
        }

    def compact(self, min_records: int = 1) -> dict | None:
        """Fold the live tail into one committed columnar segment.

        The crash-safety protocol, in commit order (each arrow is an
        fsync'd boundary; the named points are the deterministic
        fault-injection hooks in :mod:`repro.testing.faults`):

        1. collect every valid live record (duplicates must agree —
           the same check :meth:`load` applies) → write the columnar
           data file to a temp name [``compact/tmp``] → rename it in
           [``compact/data``];
        2. write + rename the index file carrying the ids, per-record
           checksums, and the data file's length and SHA-256
           [``compact/index``];
        3. atomically rewrite ``segments/MANIFEST.json`` listing the
           new segment — **the commit point** [``compact/manifest``];
        4. only now delete the folded live files [``compact/cleanup``
           fires mid-deletion].

        A crash before step 3 leaves orphan segment files no reader
        looks at (the live tail is untouched); a crash after it leaves
        live duplicates of committed records, which merge harmlessly.
        Either way :meth:`load` returns exactly the pre-compaction
        record set.

        Refuses to run while any *other* worker holds a fresh lease
        (:mod:`repro.parallel.leases`) — folding a file a live writer
        has open would drop that writer's subsequent appends with it.
        Returns a summary dict, or ``None`` when fewer than
        *min_records* valid live records exist.
        """
        from repro.testing.faults import maybe_inject

        tracer = obs.tracer()
        with tracer.span("store.compact"):
            with tracer.span("store.compact.collect"):
                self._guard_active_leases()
                live_files = sorted(self.records_dir.glob("*.jsonl"))
                merged: dict[str, dict] = {}
                tokens: dict[str, object] = {}
                self.corrupt_records = 0
                for scenario_id, payload, token in self._iter_live_records():
                    previous = merged.get(scenario_id)
                    if previous is None:
                        merged[scenario_id] = payload
                        tokens[scenario_id] = token
                    elif previous != payload:
                        raise ValueError(
                            f"store at {self.root} holds two different results "
                            f"for scenario {scenario_id!r}; refusing to compact"
                        )
            if len(merged) < max(1, min_records):
                return None
            ids = sorted(merged)
            columns = {
                "scenario_id": ids,
                "stats": [merged[i]["stats"] for i in ids],
                "backend": [merged[i]["backend"] for i in ids],
                "per_block": [merged[i]["per_block"] for i in ids],
                "trajectory": [merged[i]["trajectory"] for i in ids],
                "lease_token": [tokens[i] for i in ids],
            }
            assert set(columns) == set(_SEGMENT_COLUMNS)
            name = self._next_segment_name()
            data_text = _canonical(
                {"format": SEGMENT_FORMAT, "version": SEGMENT_VERSION,
                 "columns": columns}
            )
            data_bytes = data_text.encode()
            with tracer.span("store.compact.data", segment=name):
                self.segments_dir.mkdir(parents=True, exist_ok=True)
                data_path = self.segments_dir / f"{name}.data.json"
                tmp = data_path.with_name(data_path.name + ".tmp")
                with open(tmp, "w") as handle:
                    handle.write(data_text)
                    handle.flush()
                    os.fsync(handle.fileno())
                maybe_inject("compact/tmp")
                os.replace(tmp, data_path)
                self._fsync_dir(self.segments_dir)
                maybe_inject("compact/data")
            with tracer.span("store.compact.index", segment=name):
                index = {
                    "format": SEGMENT_INDEX_FORMAT,
                    "version": SEGMENT_VERSION,
                    "segment": name,
                    "records": len(ids),
                    "scenario_ids": ids,
                    "record_sha256": [_payload_sha(merged[i]) for i in ids],
                    "data_bytes": len(data_bytes),
                    "data_sha256": hashlib.sha256(data_bytes).hexdigest(),
                }
                self._write_atomic(
                    self.segments_dir / f"{name}.index.json",
                    _canonical(index) + "\n",
                )
                maybe_inject("compact/index")
            with tracer.span("store.compact.manifest", segment=name):
                manifest = self._read_segments_manifest() or {
                    "format": SEGMENTS_MANIFEST_FORMAT,
                    "version": SEGMENT_VERSION,
                    "segments": [],
                }
                manifest["segments"].append(
                    {"name": name, "records": len(ids),
                     "data_sha256": index["data_sha256"]}
                )
                self._write_atomic(
                    self.segments_manifest_path,
                    json.dumps(manifest, indent=2) + "\n",
                )
                maybe_inject("compact/manifest")
            with tracer.span("store.compact.cleanup", segment=name):
                deleted = 0
                for path in live_files:
                    path.unlink()
                    deleted += 1
                    if deleted == 1:
                        maybe_inject("compact/cleanup")
                self._fsync_dir(self.records_dir)
            obs.counter("store.compactions").inc()
            return {
                "segment": name,
                "records": len(ids),
                "folded_files": deleted,
            }

    def _next_segment_name(self) -> str:
        """First segment name not taken by the manifest *or* stray files
        (orphans of a crashed compaction must never be overwritten —
        they could be mid-rename twins of a committed file)."""
        taken = set()
        manifest = (
            self._read_segments_manifest()
            if self.segments_manifest_path.exists()
            else None
        )
        if manifest is not None:
            taken.update(entry["name"] for entry in manifest["segments"])
        if self.segments_dir.exists():
            for path in self.segments_dir.glob("segment-*.json"):
                taken.add(path.name.split(".", 1)[0])
        index = 0
        while f"segment-{index:05d}" in taken:
            index += 1
        return f"segment-{index:05d}"

    def _guard_active_leases(self) -> None:
        from repro.parallel.leases import LeaseLedger

        if not (self.root / "leases").exists():
            return
        ledger = LeaseLedger(self.root, owner=self.writer)
        active = [
            state
            for state in ledger.active_leases()
            if state.owner != ledger.owner
        ]
        if active:
            holders = ", ".join(
                f"{s.batch_id}@{s.owner}" for s in active[:4]
            )
            raise ValueError(
                f"store at {self.root} has {len(active)} active lease(s) "
                f"({holders}{'…' if len(active) > 4 else ''}); compaction "
                f"requires a quiescent store — wait for the workers to "
                f"finish or for their leases to expire"
            )

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        dir_fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Cross-store merge
    # ------------------------------------------------------------------

    def ingest(self, other: "ResultStore | str | os.PathLike") -> int:
        """Copy another store's record and ledger files into this one.

        The cross-host merge: run shard or elastic campaigns on separate
        machines, then ingest each remote store into one — duplicate
        scenario ids are harmless (deterministic results; :meth:`load`
        verifies agreement), and fingerprint-bound manifests guarantee
        both stores describe the same grid.  A compacted source store is
        re-expanded into live records on this side (segments stay owned
        by the store that committed them).  Returns the number of files
        copied (a re-expanded segment tier counts as one file).
        """
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        mine = self.read_manifest()
        theirs = other.read_manifest()
        if mine is not None and theirs is not None and (
            mine["grid_fingerprint"] != theirs["grid_fingerprint"]
        ):
            raise ValueError(
                f"cannot ingest {other.root} into {self.root}: the "
                f"stores were created for different scenario grids"
            )
        copied = 0
        for src_dir, dst_dir in (
            (other.records_dir, self.records_dir),
            (other.failures_dir, self.failures_dir),
        ):
            for src in sorted(src_dir.glob("*.jsonl")):
                dst = dst_dir / src.name
                if dst.exists() and dst.resolve() != src.resolve():
                    dst = dst_dir / f"ingested-{hashlib.sha256(str(src.resolve()).encode()).hexdigest()[:10]}-{src.name}"
                if dst.resolve() == src.resolve():
                    continue
                shutil.copyfile(src, dst)
                copied += 1
        # Re-expand the source's committed segments into one live record
        # file on our side (never copy segment files: their manifest is
        # the source store's commit log, not ours).
        other.corrupt_records = 0
        segment_records = list(other._iter_segment_records())
        if segment_records and other.root.resolve() != self.root.resolve():
            digest = hashlib.sha256(str(other.root.resolve()).encode())
            dst = self.records_dir / f"ingested-{digest.hexdigest()[:10]}-segments.jsonl"
            with open(dst, "w") as handle:
                for _, payload, token in segment_records:
                    record = {"sha256": _payload_sha(payload), "result": payload}
                    if token is not None:
                        record["lease"] = {"token": token}
                    handle.write(_canonical(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            copied += 1
        return copied

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, writer={self.writer!r})"
