"""Persistent, crash-safe per-scenario result store for sweep campaigns.

A :class:`ResultStore` is a directory that survives anything the
campaign layer (:mod:`repro.parallel.campaign`) can throw at it — killed
parents, killed workers, torn writes, bit flips — and merges back into a
:class:`~repro.parallel.results.SweepReport` by construction:

``manifest.json``
    Written atomically (temp file + ``os.replace`` + directory fsync).
    Pins the store format version and a *grid fingerprint* (a hash of
    the sorted scenario ids plus the root seed), so resuming a campaign
    against the wrong store fails up front instead of silently merging
    results of a different grid.

``records/<writer>.jsonl``
    Append-only result records, one JSON object per line, each carrying
    a SHA-256 checksum of its canonical payload.  Appends are flushed
    and ``fsync``'d before :meth:`append` returns, so a record either
    exists completely or not at all: a parent killed mid-append leaves
    at most one torn final line, which fails to parse and is skipped on
    load (the scenario simply re-runs on resume).  A corrupted record
    (bit flip, truncation mid-file) fails its checksum and is skipped
    the same way.  Each concurrent writer — a shard, a resumed run —
    appends to its *own* file, so two hosts sharing a directory (or a
    later ``rsync`` of one store into another) never interleave bytes.

``failures/<writer>.jsonl``
    The failure ledger: one record per failed *attempt* (scenario id,
    attempt number, failure kind, detail), appended by the campaign's
    failure policy.  Purely diagnostic — never merged into reports.

**Order-free merge by construction.**  Results are keyed by scenario
id; :meth:`load` reads every record file in sorted-name order and keeps
the first valid record per id.  Scenario results are deterministic in
the scenario (the sweep substrate's contract), so duplicate ids across
files — a retried scenario, two overlapping shards — must agree, and
:meth:`load` verifies they do.  Merging two hosts' stores is therefore
just copying record files into one store (:meth:`ingest`); no ordering,
locking, or coordination exists to get wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path

from repro.parallel.results import ScenarioResult

#: on-disk format identifier (bump STORE_VERSION on incompatible change).
STORE_FORMAT = "repro-campaign-store"
STORE_VERSION = 1


def grid_fingerprint(scenarios) -> str:
    """Stable fingerprint of a campaign's scenario set.

    Hashes the sorted scenario ids and the root seed — the two inputs
    that determine every result bit — so a store can refuse scenarios
    it was not created for.  Deliberately *order-free* (ids are sorted)
    and *shard-free* (every shard of one grid fingerprints identically,
    which is what lets shard stores merge).
    """
    ids = sorted(s.scenario_id for s in scenarios)
    seeds = sorted({s.root_seed for s in scenarios})
    digest = hashlib.sha256()
    for seed in seeds:
        digest.update(f"seed={seed}\n".encode())
    for scenario_id in ids:
        digest.update(scenario_id.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _canonical(payload: dict) -> str:
    """The canonical JSON text a record's checksum covers."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """One campaign's persistent results under *root* (see module docs).

    Parameters
    ----------
    root:
        Store directory; created (with ``records/`` and ``failures/``)
        if missing.
    writer:
        Name of this writer's append files.  Each concurrently-writing
        campaign run must use a distinct name; the campaign layer derives
        it from the shard spec (``shard0of2``) or uses ``"all"``.
    """

    def __init__(self, root: str | os.PathLike, writer: str = "all"):
        if not writer or "/" in writer or writer.startswith("."):
            raise ValueError(f"bad writer name {writer!r}")
        self.root = Path(root)
        self.writer = writer
        self.records_dir = self.root / "records"
        self.failures_dir = self.root / "failures"
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        #: invalid records seen by the last :meth:`load` (torn/corrupt).
        self.corrupt_records = 0
        self._records_file = None
        self._failures_file = None

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @classmethod
    def is_initialized(cls, root: str | os.PathLike) -> bool:
        """True when *root* already holds a store manifest."""
        return (Path(root) / "manifest.json").exists()

    def read_manifest(self) -> dict | None:
        """The stored manifest, or ``None`` for a fresh directory."""
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            return None
        manifest = json.loads(text)
        if (
            manifest.get("format") != STORE_FORMAT
            or manifest.get("version") != STORE_VERSION
        ):
            raise ValueError(
                f"{self.manifest_path} is not a version-{STORE_VERSION} "
                f"{STORE_FORMAT} manifest: {manifest!r}"
            )
        return manifest

    def bind(self, scenarios) -> dict:
        """Bind the store to a scenario set (write or verify the manifest).

        A fresh store gets an atomically-written manifest carrying the
        grid fingerprint; an existing store must fingerprint-match, so a
        resume (or a shard sharing the directory) can never mix grids.
        """
        fingerprint = grid_fingerprint(scenarios)
        manifest = self.read_manifest()
        if manifest is not None:
            if manifest["grid_fingerprint"] != fingerprint:
                raise ValueError(
                    f"store at {self.root} was created for a different "
                    f"scenario grid (fingerprint "
                    f"{manifest['grid_fingerprint'][:12]}… != "
                    f"{fingerprint[:12]}…); use a fresh --campaign "
                    f"directory for a different grid"
                )
            return manifest
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "grid_fingerprint": fingerprint,
            "scenario_count": len(list(scenarios)),
        }
        self._write_atomic(self.manifest_path, json.dumps(manifest, indent=2) + "\n")
        return manifest

    def _write_atomic(self, path: Path, text: str) -> None:
        """Write *text* to *path* atomically and durably.

        temp file in the same directory → flush → fsync → ``os.replace``
        → fsync the directory, so a crash leaves either the old manifest
        or the new one, never a torn file.
        """
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, result: ScenarioResult) -> None:
        """Durably append one scenario's result (crash-atomic).

        The record line carries a checksum of its canonical payload;
        the file is flushed and fsync'd before returning, so once
        :meth:`append` returns the record survives any later crash, and
        a crash *during* the append leaves a torn line that :meth:`load`
        skips — never a half-trusted result.
        """
        payload = result.as_dict()
        record = {"sha256": hashlib.sha256(_canonical(payload).encode()).hexdigest(),
                  "result": payload}
        if self._records_file is None:
            self._records_file = self._open_append(
                self.records_dir / f"{self.writer}.jsonl"
            )
        self._records_file.write(_canonical(record) + "\n")
        self._records_file.flush()
        os.fsync(self._records_file.fileno())

    @staticmethod
    def _open_append(path: Path):
        """Open an append handle, healing a torn tail first.

        A crash mid-append can leave the file without a final newline;
        appending straight onto that torn line would corrupt the *new*
        record too, so start it on a fresh line (the torn fragment then
        fails to parse on its own, exactly like any other torn line).
        """
        try:
            with open(path, "rb") as existing:
                existing.seek(0, os.SEEK_END)
                if existing.tell() > 0:
                    existing.seek(-1, os.SEEK_END)
                    torn = existing.read(1) != b"\n"
                else:
                    torn = False
        except FileNotFoundError:
            torn = False
        handle = open(path, "a")
        if torn:
            handle.write("\n")
        return handle

    def record_failure(
        self, scenario_id: str, attempt: int, kind: str, detail: str
    ) -> None:
        """Append one failed attempt to the failure ledger."""
        entry = {
            "scenario_id": scenario_id,
            "attempt": int(attempt),
            "kind": kind,
            "detail": detail,
        }
        if self._failures_file is None:
            self._failures_file = self._open_append(
                self.failures_dir / f"{self.writer}.jsonl"
            )
        self._failures_file.write(_canonical(entry) + "\n")
        self._failures_file.flush()
        os.fsync(self._failures_file.fileno())

    def close(self) -> None:
        """Close any open append handles (idempotent)."""
        for handle in (self._records_file, self._failures_file):
            if handle is not None:
                handle.close()
        self._records_file = None
        self._failures_file = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Loading / merging
    # ------------------------------------------------------------------

    def _iter_valid_records(self):
        """Yield ``(scenario_id, result_dict)`` for every valid record.

        Files are visited in sorted-name order and lines in file order —
        a deterministic scan, though nothing downstream depends on it
        (results merge by id).  Invalid lines (torn appends, checksum
        mismatches) increment :attr:`corrupt_records` and are skipped.
        """
        self.corrupt_records = 0
        for path in sorted(self.records_dir.glob("*.jsonl")):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        payload = record["result"]
                        expected = record["sha256"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        self.corrupt_records += 1
                        continue
                    actual = hashlib.sha256(
                        _canonical(payload).encode()
                    ).hexdigest()
                    if actual != expected:
                        self.corrupt_records += 1
                        continue
                    yield payload["scenario_id"], payload

    def load(self) -> dict[str, ScenarioResult]:
        """All valid stored results, keyed by scenario id.

        Duplicate ids (a retried scenario, overlapping shards) must
        carry identical payloads — results are deterministic in the
        scenario — and a mismatch raises rather than silently picking
        one; that is the store's end-to-end corruption check.
        """
        merged: dict[str, dict] = {}
        for scenario_id, payload in self._iter_valid_records():
            previous = merged.get(scenario_id)
            if previous is None:
                merged[scenario_id] = payload
            elif previous != payload:
                raise ValueError(
                    f"store at {self.root} holds two different results "
                    f"for scenario {scenario_id!r}; results are "
                    f"deterministic, so one record is corrupt or from a "
                    f"different grid"
                )
        return {
            scenario_id: ScenarioResult.from_dict(payload)
            for scenario_id, payload in merged.items()
        }

    def scenario_ids(self) -> set[str]:
        """Ids of every validly stored scenario (what resume skips)."""
        return {scenario_id for scenario_id, _ in self._iter_valid_records()}

    def failures(self) -> list[dict]:
        """Every failure-ledger entry, across all writers."""
        entries = []
        for path in sorted(self.failures_dir.glob("*.jsonl")):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue
        return entries

    def ingest(self, other: "ResultStore | str | os.PathLike") -> int:
        """Copy another store's record and ledger files into this one.

        The cross-host merge: run ``--shard i/N`` campaigns on separate
        machines, then ingest each remote store into one — duplicate
        scenario ids are harmless (deterministic results; :meth:`load`
        verifies agreement), and fingerprint-bound manifests guarantee
        both stores describe the same grid.  Returns the number of
        files copied.
        """
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        mine = self.read_manifest()
        theirs = other.read_manifest()
        if mine is not None and theirs is not None and (
            mine["grid_fingerprint"] != theirs["grid_fingerprint"]
        ):
            raise ValueError(
                f"cannot ingest {other.root} into {self.root}: the "
                f"stores were created for different scenario grids"
            )
        copied = 0
        for src_dir, dst_dir in (
            (other.records_dir, self.records_dir),
            (other.failures_dir, self.failures_dir),
        ):
            for src in sorted(src_dir.glob("*.jsonl")):
                dst = dst_dir / src.name
                if dst.exists() and dst.resolve() != src.resolve():
                    dst = dst_dir / f"ingested-{hashlib.sha256(str(src.resolve()).encode()).hexdigest()[:10]}-{src.name}"
                if dst.resolve() == src.resolve():
                    continue
                shutil.copyfile(src, dst)
                copied += 1
        return copied

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, writer={self.writer!r})"
